"""Ablation §V-B — pipelining chunk size for CPU/HyperLoop replication.

The paper reports CPU and HyperLoop strategies "with optimal chunk
size".  This bench exposes the underlying trade-off: tiny chunks pay
per-chunk dispatch overhead, huge chunks lose pipelining overlap, so
latency is minimized at an interior optimum.
"""

import pytest

from repro.dfs.layout import ReplicationSpec
from repro.experiments.common import KiB, MiB, measure_latency

CHUNKS = [1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB]
SIZE = 1 * MiB


def _cpu_ring(chunk: int) -> float:
    return measure_latency(
        "cpu", SIZE, replication=ReplicationSpec(k=4, strategy="ring"),
        repeats=1, chunk_bytes=chunk,
    )


def test_chunk_size_tradeoff(benchmark, capsys):
    lats = {c: _cpu_ring(c) for c in CHUNKS}
    with capsys.disabled():
        print("\nCPU-Ring 1MiB k=4 latency by chunk size:")
        for c, l in lats.items():
            print(f"  {c // KiB:5d}KiB  {l:10.0f} ns")
    best = min(lats, key=lats.get)
    # interior optimum: neither the smallest nor the single-chunk case
    assert best != CHUNKS[0], "smallest chunk should pay per-chunk overheads"
    assert best != CHUNKS[-1], "whole-message chunk loses pipelining"
    # pipelining pays: optimum clearly beats store-and-forward
    assert lats[CHUNKS[-1]] / lats[best] > 1.2

    lat = benchmark.pedantic(lambda: _cpu_ring(best), rounds=1, iterations=1)
    assert lat > 0
