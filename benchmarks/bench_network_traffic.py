"""Network-traffic accounting: who injects the bytes per strategy?

The replication section's core economics (§V-B): with RDMA-Flat the
*client* injects k copies (its NIC is the bottleneck and latency grows
linearly in k); with sPIN the client injects once and the storage-node
NICs fan the data out.  Total fabric traffic is ~k·S either way — the
strategies differ in *where* it originates.  This bench measures
per-port TX bytes and checks that split.
"""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.dfs.layout import ReplicationSpec
from repro.protocols import install_spin_targets
from repro.workloads import payload_bytes

KiB = 1024
SIZE = 256 * KiB
K = 4


def _traffic(protocol: str):
    tb = build_testbed(n_storage=8)
    if protocol == "spin":
        install_spin_targets(tb)  # rdma-flat bypasses policies (§V-B)
    c = DfsClient(tb)
    lay = c.create("/f", size=SIZE, replication=ReplicationSpec(k=K, strategy="ring"))
    out = c.write_sync("/f", payload_bytes(SIZE), protocol=protocol)
    assert out.ok
    tb.run(until=tb.sim.now + 300_000)
    client_tx = c.node.nic.port.tx_bytes
    storage_tx = sum(n.nic.port.tx_bytes for n in tb.storage_nodes)
    return client_tx, storage_tx, out.latency_ns


def test_traffic_split_by_strategy(benchmark, capsys):
    flat_c, flat_s, flat_lat = _traffic("rdma-flat")
    spin_c, spin_s, spin_lat = _traffic("spin")
    with capsys.disabled():
        print(f"\n{SIZE // KiB} KiB write, k={K} (bytes on the wire):")
        print(f"  rdma-flat: client tx {flat_c:9d}  storage tx {flat_s:9d}  lat {flat_lat:8.0f} ns")
        print(f"  spin-ring: client tx {spin_c:9d}  storage tx {spin_s:9d}  lat {spin_lat:8.0f} ns")
    # the client injects ~k copies under flat, ~1 under sPIN
    assert flat_c > (K - 0.5) * SIZE
    assert SIZE <= spin_c < 1.2 * SIZE
    # under sPIN the fan-out happens at the storage NICs instead
    assert spin_s > (K - 1.5) * SIZE
    # total fabric traffic is ~k*S either way (+acks/headers)
    total_flat = flat_c + flat_s
    total_spin = spin_c + spin_s
    assert total_spin == pytest.approx(total_flat, rel=0.2)
    # which is exactly why sPIN wins at this size
    assert spin_lat < flat_lat

    res = benchmark.pedantic(lambda: _traffic("spin")[2], rounds=1, iterations=1)
    assert res > 0
