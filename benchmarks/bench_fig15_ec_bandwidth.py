"""Fig. 15 right — encoding bandwidth: sPIN-TriEC vs INEC-TriEC."""

from repro.experiments import fig15_ec_bandwidth as exp
from repro.params import SimParams


def test_fig15_ec_bandwidth(benchmark, experiment_runner):
    rows = experiment_runner(exp)
    small = [r for r in rows if r["size"] == 1024]
    assert all(r["ratio"] > 4.0 for r in small)

    p100 = SimParams().scaled_network(100.0)

    def point():
        return exp._bandwidth("spin", 8 * 1024, 3, 2, p100, n_ops=8, window=8)

    bw = benchmark.pedantic(point, rounds=1, iterations=1)
    assert bw > 0
