"""Striped-file benchmark: aggregating per-node storage bandwidth.

On the NVMe backend each node's flash sustains ~128 Gbit/s while the
wire carries 400 Gbit/s, so a single-region file is device-bound.
Striping across width nodes restores network-bound operation — the
Fig. 1a layout abstraction earning its keep.
"""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.dfs.layout import StripeSpec
from repro.protocols import create_striped, install_spin_targets, read_back_striped, striped_write
from repro.protocols.base import WriteContext
from repro.workloads import payload_bytes

KiB = 1024
MiB = 1024 * 1024
SIZE = 4 * MiB


def _durable_goodput(width: int) -> float:
    tb = build_testbed(n_storage=10, storage_backend="nvme")
    install_spin_targets(tb)
    c = DfsClient(tb)
    lay = create_striped(tb, "/s", size=SIZE,
                         stripe=StripeSpec(width=width, stripe_size=512 * KiB))
    cap = tb.authority.issue(c.client_id, lay.object_id, 0,
                             tb.params.storage_capacity_bytes,
                             __import__("repro").Rights.RW)
    ctx = WriteContext(c.node, c.client_id, cap)
    data = payload_bytes(SIZE)
    out = tb.run_until(striped_write(ctx, lay, data))
    assert out.ok
    tb.run(until=tb.sim.now + 500_000)
    assert np.array_equal(read_back_striped(tb, lay), data)
    return out.goodput_gbps()


def test_striping_restores_network_bound_writes(benchmark, capsys):
    rows = {w: _durable_goodput(w) for w in (1, 2, 4, 8)}
    with capsys.disabled():
        print(f"\ndurable write goodput, {SIZE // MiB} MiB file on NVMe backend:")
        for w, g in rows.items():
            print(f"  width {w}: {g:6.1f} Gbit/s")
    # width 1 is flash-bound (~128 Gbit/s per device)
    assert rows[1] < 140.0
    # widening stripes recovers bandwidth...
    vals = [rows[w] for w in (1, 2, 4, 8)]
    assert all(b >= a * 0.98 for a, b in zip(vals, vals[1:]))
    assert rows[4] > 2.0 * rows[1]
    # ...until the 400 Gbit/s wire (or client injection) binds
    assert rows[8] == pytest.approx(rows[4], rel=0.15)

    g = benchmark.pedantic(lambda: _durable_goodput(4), rounds=1, iterations=1)
    assert g > 0
