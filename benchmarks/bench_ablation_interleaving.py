"""Ablation §VI-B1 — client packet interleaving for erasure coding.

The paper's two claims for interleaving packets across the k data
nodes: (1) intermediate nodes encode in parallel, overlapping encode
with aggregation, so latency drops; (2) the time between consecutive
packets of the same aggregation sequence at the parity node shrinks, so
accumulators are held for shorter periods (smaller peak pool usage).
"""

import numpy as np
import pytest

from repro.dfs.layout import EcSpec
from repro.workloads import payload_bytes

KiB = 1024
SIZE = 256 * KiB


def _run(interleave: bool):
    from repro.dfs.client import DfsClient
    from repro.dfs.cluster import build_testbed
    from repro.protocols import install_spin_targets

    tb = build_testbed(n_storage=8)
    install_spin_targets(tb, n_accumulators=256)
    client = DfsClient(tb)
    lay = client.create("/f", size=SIZE, ec=EcSpec(k=4, m=2))
    data = payload_bytes(SIZE)
    out = client.write_sync("/f", data, protocol="spin", interleave=interleave)
    assert out.ok
    peak_acc = max(
        node.dfs_state.accumulators.peak_in_use
        for node in tb.storage_nodes
        if node.dfs_state is not None
    )
    rec = client.recover("/f", {lay.extents[0].node})
    assert np.array_equal(rec, data), "bytes must be identical either way"
    return out.latency_ns, peak_acc


def test_interleaving_reduces_latency_and_accumulator_pressure(benchmark, capsys):
    lat_seq, acc_seq = _run(interleave=False)
    lat_int, acc_int = _run(interleave=True)
    with capsys.disabled():
        print(f"\nEC 256KiB RS(4,2): interleaved lat={lat_int:.0f}ns peak_acc={acc_int}; "
              f"sequential lat={lat_seq:.0f}ns peak_acc={acc_seq}")
    # (1) latency: interleaving must win
    assert lat_int < lat_seq
    # (2) accumulator allocation period: sequential holds clearly more
    assert acc_seq > acc_int

    lat = benchmark.pedantic(lambda: _run(True)[0], rounds=1, iterations=1)
    assert lat > 0
