"""Incast: many clients hammering one network-accelerated storage node.

The paper's scalability story (§III-B2) is about state, not bandwidth:
handlers are persistent and per-request state is 77 B, so a storage node
can absorb many concurrent writers.  This bench drives N clients at one
sPIN-enabled node and checks that (1) aggregate goodput stays pinned at
the achievable line rate — the accelerator never becomes the bottleneck
— and (2) the switch's output queueing shares that rate fairly.
"""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.protocols import install_spin_targets
from repro.workloads import measure_goodput, payload_bytes

KiB = 1024
SIZE = 64 * KiB
OPS_PER_CLIENT = 12


def _run(n_clients: int):
    tb = build_testbed(n_storage=2, n_clients=n_clients)
    install_spin_targets(tb)
    clients = [DfsClient(tb, i, f"c{i}") for i in range(n_clients)]
    # all objects on the same primary: sn0 takes all the ingress
    paths = []
    attempt = 0
    for i, c in enumerate(clients):
        while True:
            path = f"/f{i}-{attempt}"
            attempt += 1
            lay = c.create(path, size=SIZE)
            if lay.primary.node == "sn0":
                paths.append((c, path))
                break
    data = payload_bytes(SIZE)
    sim = tb.sim
    t0 = sim.now
    per_client_done = []
    events = []
    for c, path in paths:
        evs = [c.write(path, data, protocol="spin") for _ in range(OPS_PER_CLIENT)]
        events.append(evs)
    finish_times = []
    for evs in events:
        for ev in evs:
            out = sim.run_until_event(ev)
            assert out.ok
        finish_times.append(sim.now)
    elapsed = sim.now - t0
    total_bytes = n_clients * OPS_PER_CLIENT * SIZE
    agg_gbps = total_bytes * 8.0 / elapsed
    return agg_gbps, finish_times


def test_incast_aggregate_and_fairness(benchmark, capsys):
    results = {n: _run(n) for n in (1, 2, 4)}
    with capsys.disabled():
        print("\nincast at one sPIN storage node (64 KiB writes):")
        for n, (gbps, _) in results.items():
            print(f"  {n} client(s): aggregate {gbps:6.1f} Gbit/s")
    g1 = results[1][0]
    g4 = results[4][0]
    # more clients raise utilisation until the wire saturates
    assert g4 > g1
    line = 400.0 * 2048 / 2112
    assert g4 <= line * 1.02, "aggregate cannot exceed the achievable line rate"
    assert g4 > 0.6 * line, "4 concurrent clients should approach line rate"
    # fairness: with 4 clients the finishing times bunch together
    _, times4 = results[4]
    spread = (max(times4) - min(times4)) / max(times4)
    assert spread < 0.5, f"one client starved (finish-time spread {spread:.2f})"

    g = benchmark.pedantic(lambda: _run(2)[0], rounds=1, iterations=1)
    assert g > 0
