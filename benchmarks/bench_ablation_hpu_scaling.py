"""Ablation §VI-C — scaling out PsPIN clusters for EC line rate.

Fig. 16 right argues that the modular PsPIN architecture can scale HPU
count (by adding clusters) to sustain data-intensive EC handlers at
line rate.  We measure sPIN-TriEC encode bandwidth at 1x / 4x / 16x the
default cluster count and check that throughput scales until the wire
becomes the bottleneck.
"""

import pytest

from repro.dfs.layout import EcSpec
from repro.experiments.common import KiB, fresh_client
from repro.params import SimParams
from repro.workloads import measure_goodput, payload_bytes

SIZE = 64 * KiB


def _encode_goodput(n_clusters: int) -> float:
    params = SimParams().with_pspin(n_clusters=n_clusters)
    tb, client = fresh_client("spin", params)
    client.create("/f", size=SIZE, ec=EcSpec(k=3, m=2))
    data = payload_bytes(SIZE)
    res = measure_goodput(
        tb,
        lambda i: client.write("/f", data, protocol="spin"),
        n_ops=24,
        op_bytes=SIZE,
        window=16,
    )
    return res.goodput_gbps


def test_hpu_scaling_lifts_ec_throughput(benchmark, capsys):
    g4 = _encode_goodput(4)     # paper default: 32 HPUs
    g16 = _encode_goodput(16)   # 128 HPUs
    g64 = _encode_goodput(64)   # 512 HPUs — the Fig. 16 RS(6,3) target
    with capsys.disabled():
        print(f"\nEC RS(3,2) encode goodput: 32 HPUs={g4:.0f}  128 HPUs={g16:.0f}  "
              f"512 HPUs={g64:.0f} Gbit/s")
    assert g16 > 1.5 * g4, "4x HPUs should clearly lift handler-bound throughput"
    assert g64 >= g16, "scaling further must not regress"

    g = benchmark.pedantic(lambda: _encode_goodput(8), rounds=1, iterations=1)
    assert g > 0
