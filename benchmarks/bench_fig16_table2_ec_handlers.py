"""Fig. 16 left / Table II — EC handler runtimes, instructions, IPC."""

from repro.experiments import fig16_table2_ec_handlers as exp


def test_fig16_table2_ec_handlers(benchmark, experiment_runner):
    rows = experiment_runner(exp)
    by = {r["scheme"]: r for r in rows}
    # 5 instr/byte (RS(3,2)) and 7 instr/byte (RS(6,3)) on 2 KiB payloads
    assert 11300 <= by["RS(3,2)"]["PH_instr"] <= 12050
    assert 15550 <= by["RS(6,3)"]["PH_instr"] <= 16500

    def point():
        return exp.run(quick=True)[0]["PH_ns"]

    ph = benchmark.pedantic(point, rounds=1, iterations=1)
    assert ph > 0
