"""Ablation §III-A — MTU and the EC datapath.

The paper's only hard MTU requirement is that request headers fit in a
single packet (§III-A).  This ablation exposes the real trade-off the
MTU controls for a data-intensive policy like erasure coding:

* **efficiency**: the encode loop costs ~1432 fixed instructions per
  packet plus 5/byte (Table II), so larger MTUs need fewer instructions
  per payload byte;
* **parallelism**: streaming processing exposes packet-level parallelism
  (§II-B1), so *smaller* MTUs spread one chunk across more HPUs and cut
  single-write encode latency.
"""

import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.dfs.layout import EcSpec
from repro.experiments.common import KiB
from repro.params import SimParams
from repro.protocols import install_spin_targets
from repro.workloads import payload_bytes

MTUS = [1024, 2048, 4096, 8192]
SIZE = 256 * KiB


def _run(mtu: int):
    """Returns (write latency, encode instructions per payload byte)."""
    tb = build_testbed(n_storage=8, params=SimParams().with_net(mtu=mtu))
    install_spin_targets(tb)
    client = DfsClient(tb)
    lay = client.create("/f", size=SIZE, ec=EcSpec(k=3, m=2))
    out = client.write_sync("/f", payload_bytes(SIZE), protocol="spin")
    assert out.ok
    instr = bytes_ = 0
    for ext in lay.extents:
        st = tb.node(ext.node).accelerator.stats["payload:dfs"]
        instr += sum(st.instructions)
    bytes_ = SIZE  # every payload byte passes exactly one data-node PH
    return out.latency_ns, instr / bytes_


def test_mtu_tradeoff_parallelism_vs_efficiency(benchmark, capsys):
    results = {m: _run(m) for m in MTUS}
    with capsys.disabled():
        print("\nsPIN-TriEC 256KiB RS(3,2) by MTU:")
        for m, (lat, ipb) in results.items():
            print(f"  {m:5d}B  latency={lat:9.0f} ns  encode instr/byte={ipb:5.2f}")
    ipbs = [results[m][1] for m in MTUS]
    lats = [results[m][0] for m in MTUS]
    # efficiency: instructions per byte strictly improve with MTU
    assert all(b < a for a, b in zip(ipbs, ipbs[1:])), \
        "larger MTU must amortize the fixed per-packet encode cost"
    # parallelism: small MTUs spread the chunk over more HPUs, so the
    # single-write latency is lower (monotone in the other direction)
    assert all(b > a * 0.98 for a, b in zip(lats, lats[1:])), \
        "smaller MTU should win single-write encode latency"
    # headers must fit one MTU: tiny MTUs are rejected outright
    from repro.experiments.common import measure_latency

    with pytest.raises(ValueError):
        measure_latency("spin", 4 * KiB, params=SimParams().with_net(mtu=64),
                        ec=EcSpec(k=3, m=2), repeats=1)

    lat = benchmark.pedantic(lambda: _run(2048)[0], rounds=1, iterations=1)
    assert lat > 0
