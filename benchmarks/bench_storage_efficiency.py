"""Storage efficiency: replication vs erasure coding (§VI motivation).

"The main disadvantage of replication is the storage cost, which is
linear in the replication factor."  This bench measures actual bytes
committed to storage targets per user byte for k-way replication and
RS(k,m), and the latency each pays for equivalent failure tolerance
(surviving f node losses: replication needs k = f+1 copies; RS needs
m = f parity chunks).
"""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.dfs.layout import EcSpec, ReplicationSpec
from repro.protocols import install_spin_targets
from repro.workloads import payload_bytes

KiB = 1024
SIZE = 192 * KiB


def _run(replication=None, ec=None):
    tb = build_testbed(n_storage=12)
    install_spin_targets(tb)
    c = DfsClient(tb)
    c.create("/f", size=SIZE, replication=replication, ec=ec)
    out = c.write_sync("/f", payload_bytes(SIZE), protocol="spin")
    assert out.ok
    tb.run(until=tb.sim.now + 300_000)
    stored = sum(n.memory.bytes_written for n in tb.storage_nodes)
    return stored / SIZE, out.latency_ns


def test_storage_efficiency_vs_failure_tolerance(benchmark, capsys):
    rows = {
        "replication k=3 (f=2)": _run(replication=ReplicationSpec(k=3)),
        "RS(4,2)        (f=2)": _run(ec=EcSpec(k=4, m=2)),
        "replication k=4 (f=3)": _run(replication=ReplicationSpec(k=4)),
        "RS(6,3)        (f=3)": _run(ec=EcSpec(k=6, m=3)),
    }
    with capsys.disabled():
        print(f"\nstorage amplification for {SIZE // KiB} KiB objects:")
        for name, (amp, lat) in rows.items():
            print(f"  {name}: {amp:.2f}x bytes stored, write latency {lat:9.0f} ns")
    # replication amplification is exactly k; EC is (k+m)/k
    assert rows["replication k=3 (f=2)"][0] == pytest.approx(3.0, abs=0.01)
    assert rows["RS(4,2)        (f=2)"][0] == pytest.approx(1.5, abs=0.01)
    assert rows["replication k=4 (f=3)"][0] == pytest.approx(4.0, abs=0.01)
    assert rows["RS(6,3)        (f=3)"][0] == pytest.approx(1.5, abs=0.01)
    # at equal tolerance, EC stores >= 2x less
    assert rows["replication k=3 (f=2)"][0] / rows["RS(4,2)        (f=2)"][0] >= 2.0
    # ...but pays more write latency (per-byte encode on the datapath)
    assert rows["RS(4,2)        (f=2)"][1] > rows["replication k=3 (f=2)"][1]

    amp = benchmark.pedantic(lambda: _run(ec=EcSpec(k=4, m=2))[0], rounds=1, iterations=1)
    assert amp == pytest.approx(1.5, abs=0.01)
