"""Fig. 4 — worst-case NIC memory vs concurrent writes (Little's law)."""

from repro.experiments import fig04_nic_memory as exp
from repro.analysis import littles_law
from repro.params import SimParams


def test_fig04_nic_memory(benchmark, experiment_runner):
    rows = experiment_runner(exp)
    assert rows

    params = SimParams()

    def point():
        return littles_law.concurrent_writes(2048, params)

    result = benchmark(point)
    assert result > 0
