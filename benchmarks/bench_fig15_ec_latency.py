"""Fig. 15 left — encoding latency: sPIN-TriEC vs INEC-TriEC (100 Gbit/s)."""

from repro.dfs.layout import EcSpec
from repro.experiments import fig15_ec_latency as exp
from repro.experiments.common import KiB, measure_latency
from repro.params import SimParams


def test_fig15_ec_latency(benchmark, experiment_runner):
    rows = experiment_runner(exp)
    # the streaming advantage peaks at large blocks (paper: up to 2x)
    assert max(r["speedup"] for r in rows) > 1.6

    p100 = SimParams().scaled_network(100.0)

    def point():
        return measure_latency("spin", 64 * KiB, params=p100, ec=EcSpec(3, 2), repeats=1)

    lat = benchmark(point)
    assert lat > 0
