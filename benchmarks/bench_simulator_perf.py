"""Meta-benchmark: how fast is the simulator itself?

These are the only benches measuring *wall-clock* of the library rather
than simulated nanoseconds: kernel event throughput, packets simulated
per second through the full NIC/accelerator stack, and GF(2^8) encode
throughput of the numpy-vectorized codec.
"""

import numpy as np
import pytest

from repro.ec import RSCode
from repro.simnet import Simulator


def test_kernel_event_throughput(benchmark):
    """Timeout-schedule-dispatch cycles per second."""

    def run():
        sim = Simulator()

        def ping(n):
            for _ in range(n):
                yield sim.timeout(1.0)

        for _ in range(10):
            sim.process(ping(200))
        sim.run()
        return sim.now

    t = benchmark(run)
    assert t == 200.0


def test_packet_pipeline_throughput(benchmark):
    """Full-stack simulated packets per wall-second (64 KiB spin write)."""
    from repro.dfs.client import DfsClient
    from repro.dfs.cluster import build_testbed
    from repro.protocols import install_spin_targets

    def run():
        tb = build_testbed(n_storage=2)
        install_spin_targets(tb)
        c = DfsClient(tb)
        c.create("/f", size=64 * 1024)
        out = c.write_sync("/f", np.zeros(64 * 1024, np.uint8), protocol="spin")
        assert out.ok
        return out.latency_ns

    lat = benchmark(run)
    assert lat > 0


def _spin_write_once(telemetry: bool) -> float:
    """One 64 KiB replicated spin write; returns wall seconds."""
    import time

    from repro.dfs.client import DfsClient
    from repro.dfs.cluster import build_testbed
    from repro.dfs.layout import ReplicationSpec
    from repro.protocols import install_spin_targets

    tb = build_testbed(n_storage=4, telemetry=telemetry)
    install_spin_targets(tb)
    c = DfsClient(tb)
    c.create("/f", size=128 * 1024, replication=ReplicationSpec(k=3))
    data = np.zeros(64 * 1024, np.uint8)
    t0 = time.perf_counter()
    for _ in range(8):
        out = c.write_sync("/f", data, protocol="spin")
        assert out.ok
    return time.perf_counter() - t0


def test_telemetry_disabled_overhead():
    """Telemetry must be free when off: every instrumentation site is one
    attribute load + branch.  Compare min-of-N wall time for the same
    workload with collection disabled vs enabled; disabled must not be
    slower than enabled by more than the 3% guardband (enabled does
    strictly more work, so this catches any disabled-path regression
    without flaking on machine noise)."""
    # interleave the measurements so cache/turbo drift hits both sides
    dis, ena = [], []
    for _ in range(5):
        dis.append(_spin_write_once(telemetry=False))
        ena.append(_spin_write_once(telemetry=True))
    t_disabled, t_enabled = min(dis), min(ena)
    assert t_disabled <= t_enabled * 1.03, (
        f"telemetry-disabled run ({t_disabled * 1e3:.2f} ms) slower than "
        f"enabled ({t_enabled * 1e3:.2f} ms) beyond the 3% guardband"
    )


def test_simulator_self_profile():
    """The engine's self-profile exposes dispatch and heap statistics."""
    sim = Simulator()

    def ping(n):
        for _ in range(n):
            yield sim.timeout(1.0)

    sim.process(ping(100))
    sim.run()
    prof = sim.profile()
    assert prof["events_dispatched"] > 0
    assert prof["heap_high_water"] >= 1
    assert prof["sim_ns"] == 100.0
    assert prof["wall_s"] > 0
    assert prof["wall_ns_per_sim_ns"] == pytest.approx(
        prof["wall_s"] * 1e9 / prof["sim_ns"]
    )


def test_rs_encode_throughput(benchmark):
    """Vectorized RS(6,3) encode bytes per wall-second."""
    rs = RSCode(6, 3)
    data = np.random.default_rng(0).integers(0, 256, 6 * 64 * 1024, dtype=np.uint8)
    chunks = rs.split(data)

    enc = benchmark(rs.encode, chunks)
    assert len(enc) == 9


def test_gf_matmul_throughput(benchmark):
    from repro.ec import gf_matmul

    rng = np.random.default_rng(1)
    a = rng.integers(0, 256, (16, 16), dtype=np.uint8)
    b = rng.integers(0, 256, (16, 4096), dtype=np.uint8)

    out = benchmark(gf_matmul, a, b)
    assert out.shape == (16, 4096)
