"""Meta-benchmark: how fast is the simulator itself?

These are the only benches measuring *wall-clock* of the library rather
than simulated nanoseconds: kernel event throughput, packets simulated
per second through the full NIC/accelerator stack, and GF(2^8) encode
throughput of the numpy-vectorized codec.
"""

import numpy as np
import pytest

from repro.ec import RSCode
from repro.simnet import Simulator


def test_kernel_event_throughput(benchmark):
    """Timeout-schedule-dispatch cycles per second."""

    def run():
        sim = Simulator()

        def ping(n):
            for _ in range(n):
                yield sim.timeout(1.0)

        for _ in range(10):
            sim.process(ping(200))
        sim.run()
        return sim.now

    t = benchmark(run)
    assert t == 200.0


def test_packet_pipeline_throughput(benchmark):
    """Full-stack simulated packets per wall-second (64 KiB spin write)."""
    from repro.dfs.client import DfsClient
    from repro.dfs.cluster import build_testbed
    from repro.protocols import install_spin_targets

    def run():
        tb = build_testbed(n_storage=2)
        install_spin_targets(tb)
        c = DfsClient(tb)
        c.create("/f", size=64 * 1024)
        out = c.write_sync("/f", np.zeros(64 * 1024, np.uint8), protocol="spin")
        assert out.ok
        return out.latency_ns

    lat = benchmark(run)
    assert lat > 0


def test_rs_encode_throughput(benchmark):
    """Vectorized RS(6,3) encode bytes per wall-second."""
    rs = RSCode(6, 3)
    data = np.random.default_rng(0).integers(0, 256, 6 * 64 * 1024, dtype=np.uint8)
    chunks = rs.split(data)

    enc = benchmark(rs.encode, chunks)
    assert len(enc) == 9


def test_gf_matmul_throughput(benchmark):
    from repro.ec import gf_matmul

    rng = np.random.default_rng(1)
    a = rng.integers(0, 256, (16, 16), dtype=np.uint8)
    b = rng.integers(0, 256, (16, 4096), dtype=np.uint8)

    out = benchmark(gf_matmul, a, b)
    assert out.shape == (16, 4096)
