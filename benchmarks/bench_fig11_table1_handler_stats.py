"""Fig. 11 / Table I — replication handler runtimes and IPC."""

from repro.experiments import fig11_table1_handler_stats as exp


def test_fig11_table1_handler_stats(benchmark, experiment_runner):
    rows = experiment_runner(exp)
    by = {r["type"]: r for r in rows}
    # Table I instruction counts are exact
    assert abs(by["k=1"]["PH_instr"] - 55) < 1
    assert abs(by["k=4,Ring"]["PH_instr"] - 105) < 1
    assert abs(by["k=4,PBT"]["PH_instr"] - 130) < 1

    def point():
        return exp.run(quick=True)[0]["HH_ns"]

    hh = benchmark.pedantic(point, rounds=1, iterations=1)
    assert hh > 0
