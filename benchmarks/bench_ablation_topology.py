"""Ablation — fabric topology and uplink oversubscription.

The paper simulates a flat 400 Gbit/s network (§III-D).  Deployments
put clients and storage on separate leaves of a leaf-spine fabric; an
oversubscribed spine then caps the storage ingress below NIC line rate,
shifting the bottleneck off the accelerator entirely.  sPIN results are
insensitive to *where* the bandwidth limit sits — which this ablation
verifies.
"""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.protocols import install_spin_targets
from repro.workloads import measure_goodput, payload_bytes

KiB = 1024
SIZE = 64 * KiB


def _latency(topology, uplink=None):
    tb = build_testbed(n_storage=4, topology=topology, uplink_gbps=uplink)
    install_spin_targets(tb)
    c = DfsClient(tb)
    c.create("/f", size=SIZE)
    out = c.write_sync("/f", payload_bytes(SIZE), protocol="spin")
    assert out.ok
    return out.latency_ns


def _goodput(topology, uplink=None):
    tb = build_testbed(n_storage=4, topology=topology, uplink_gbps=uplink)
    install_spin_targets(tb)
    c = DfsClient(tb)
    c.create("/f", size=SIZE)
    data = payload_bytes(SIZE)
    res = measure_goodput(
        tb, lambda i: c.write("/f", data, protocol="spin"),
        n_ops=24, op_bytes=SIZE, window=12,
    )
    return res.goodput_gbps


def test_topology_and_oversubscription(benchmark, capsys):
    lat_star = _latency("star")
    lat_ls = _latency("leafspine")
    g_star = _goodput("star")
    g_full = _goodput("leafspine", uplink=400.0)
    g_quarter = _goodput("leafspine", uplink=100.0)
    with capsys.disabled():
        print(f"\nstar:              lat={lat_star:7.0f} ns  goodput={g_star:6.1f} Gbit/s")
        print(f"leaf-spine 1:1:    lat={lat_ls:7.0f} ns  goodput={g_full:6.1f} Gbit/s")
        print(f"leaf-spine 4:1:    goodput={g_quarter:6.1f} Gbit/s")
    # two extra switch hops cost latency but not bandwidth
    assert lat_ls > lat_star
    assert lat_ls < lat_star + 3000
    assert g_full > 0.85 * g_star
    # 4:1 oversubscription pins goodput at the uplink, not the NIC
    assert g_quarter < 110.0
    assert g_quarter > 60.0

    lat = benchmark.pedantic(lambda: _latency("leafspine"), rounds=1, iterations=1)
    assert lat > 0


def test_correctness_unaffected_by_topology(benchmark):
    def run():
        tb = build_testbed(n_storage=4, topology="leafspine", uplink_gbps=100.0)
        install_spin_targets(tb)
        c = DfsClient(tb)
        from repro.dfs.layout import ReplicationSpec

        lay = c.create("/f", size=128 * KiB, replication=ReplicationSpec(k=3))
        data = payload_bytes(100 * KiB)
        out = c.write_sync("/f", data, protocol="spin")
        assert out.ok
        for e in lay.extents:
            assert np.array_equal(tb.node(e.node).memory.view(e.addr, data.nbytes), data)
        return out.latency_ns

    lat = benchmark.pedantic(run, rounds=1, iterations=1)
    assert lat > 0
