"""Fig. 16 right — HPUs needed vs handler duration (analytic)."""

from repro.analysis import budget
from repro.experiments import fig16_hpu_budget as exp


def test_fig16_hpu_budget(benchmark, experiment_runner):
    rows = experiment_runner(exp)
    rs63 = next(r for r in rows if r["handler_ns"] == 23018)
    assert 450 <= rs63["hpus_400g"] <= 640  # paper reads off ~512

    def point():
        return budget.hpus_needed(400.0, 2048, 23018)

    n = benchmark(point)
    assert n == rs63["hpus_400g"]
