"""Table III — DFS characteristics survey."""

from repro.analysis.survey import render_table
from repro.experiments import table3_survey as exp


def test_table3_dfs_survey(benchmark, experiment_runner):
    rows = experiment_runner(exp)
    assert len(rows) == 14

    table = benchmark(render_table)
    assert "Lustre" in table and "Ceph" in table
