"""Recovery-path benchmarks: degraded reads and chunk rebuild.

Not a paper figure (decode is explicitly off the write path, §VI-B) but
the natural companion: how fast can a failed node's chunks be rebuilt,
and what does a degraded read cost versus a healthy one?
"""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.dfs.layout import EcSpec
from repro.protocols import degraded_read, install_spin_targets, rebuild_object
from repro.workloads import payload_bytes

KiB = 1024


def _setup(size, k, m):
    tb = build_testbed(n_storage=k + m + 4)
    install_spin_targets(tb)
    c = DfsClient(tb)
    lay = c.create("/obj", size=size, ec=EcSpec(k=k, m=m))
    data = payload_bytes(size)
    assert c.write_sync("/obj", data, protocol="spin").ok
    tb.run(until=tb.sim.now + 300_000)
    return tb, c, lay, data


def test_rebuild_throughput_by_scheme(benchmark, capsys):
    rows = {}
    for k, m in [(3, 2), (6, 3)]:
        tb, c, lay, data = _setup(240 * KiB, k, m)
        failed = {lay.extents[0].node}
        tb.node(lay.extents[0].node).fail()
        report = tb.run_until(rebuild_object(tb, "/obj", failed))
        tb.run(until=tb.sim.now + 300_000)
        assert np.array_equal(c.read_back("/obj"), data)
        rows[(k, m)] = report
    with capsys.disabled():
        print("\nrebuild of one lost chunk (240 KiB object):")
        for (k, m), r in rows.items():
            print(f"  RS({k},{m}): read {r.bytes_read}B, rebuilt {r.bytes_rebuilt}B "
                  f"in {r.duration_ns:.0f} ns ({r.rebuild_gbps():.1f} Gbit/s)")
    # RS(6,3) reads more (k chunks) but each is smaller; both must read
    # exactly k x chunk and rebuild exactly one chunk
    for (k, m), r in rows.items():
        chunk = -(-240 * KiB // k)
        assert r.bytes_read == k * chunk
        assert r.bytes_rebuilt == chunk

    def point():
        tb, c, lay, data = _setup(120 * KiB, 3, 2)
        failed = {lay.extents[0].node}
        tb.node(lay.extents[0].node).fail()
        return tb.run_until(rebuild_object(tb, "/obj", failed)).duration_ns

    lat = benchmark.pedantic(point, rounds=1, iterations=1)
    assert lat > 0


def test_degraded_read_cost(benchmark, capsys):
    tb, c, lay, data = _setup(240 * KiB, 4, 2)
    healthy = c.read_sync("/obj", length=lay.size, protocol="raw").latency_ns
    failed = {lay.extents[1].node}
    tb.node(lay.extents[1].node).fail()
    d, degraded = tb.run_until(degraded_read(tb, "/obj", failed))
    assert np.array_equal(d, data)
    with capsys.disabled():
        print(f"\nhealthy read {healthy:.0f} ns vs degraded read {degraded:.0f} ns "
              f"({degraded / healthy:.2f}x)")
    assert degraded > healthy
    assert degraded < 10 * healthy  # bounded penalty

    def point():
        tb2, c2, lay2, data2 = _setup(60 * KiB, 3, 2)
        f = {lay2.extents[0].node}
        tb2.node(lay2.extents[0].node).fail()
        _, lat = tb2.run_until(degraded_read(tb2, "/obj", f))
        return lat

    lat = benchmark.pedantic(point, rounds=1, iterations=1)
    assert lat > 0
