"""Fig. 6 — write latency with request authentication, all protocols."""

from repro.experiments import fig06_auth_latency as exp
from repro.experiments.common import KiB, measure_latency


def test_fig06_auth_latency(benchmark, experiment_runner):
    rows = experiment_runner(exp)
    assert len(rows) >= 4

    # representative point: a 16 KiB sPIN-validated write simulation
    def point():
        return measure_latency("spin", 16 * KiB, repeats=1)

    lat = benchmark(point)
    assert lat > 0
