"""Shared benchmark fixtures.

Every bench follows the same pattern: run the experiment's full sweep
once (printing the paper-style table and running the shape checks), and
hand pytest-benchmark a representative single point so timing is cheap
and stable.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def experiment_runner(capsys):
    """Run an experiment module end to end, print its table, check its
    shapes, and return the rows."""

    def _run(mod, quick: bool = True, check: bool = True):
        rows = mod.run(quick=quick)
        with capsys.disabled():
            print()
            print(mod.render(rows))
        if check:
            mod.check(rows)
        return rows

    return _run
