"""Ablation §VII — multi-tenant QoS for NIC compute.

Two tenants share one storage node's accelerator: a *heavy* tenant
streaming erasure-coded writes (16-23 µs payload handlers, Table II)
and a *light* tenant doing small plain writes (~92 ns handlers).
Without isolation the heavy tenant's handlers monopolize the HPU pool
and the light tenant's latency balloons; capping the heavy tenant's
context with an HPU quota restores the light tenant's latency at a
bounded cost to heavy-tenant throughput — the fairness knob the paper's
cloud discussion asks for.
"""

import numpy as np
import pytest

from repro.core.policies.dispatch import DispatchPolicy
from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.dfs.layout import EcSpec
from repro.workloads import measure_latency_distribution, payload_bytes

KiB = 1024


def _run(heavy_quota):
    tb = build_testbed(n_storage=8)
    # one context per tenant on every node: heavy (EC writes) and light

    for node in tb.storage_nodes:
        node.install_pspin(
            DispatchPolicy(), authority=tb.authority,
            n_accumulators=128, accumulator_bytes=2048,
            hpu_quota=heavy_quota,
        )
        # the light tenant's context matches a dedicated op class
        node.add_pspin_context(DispatchPolicy(), match_ops=("write_light",))
    heavy = DfsClient(tb, principal="tenant-heavy")
    light = DfsClient(tb, principal="tenant-light")
    big_lay = heavy.create("/big", size=256 * KiB, ec=EcSpec(k=3, m=2))
    hot_nodes = {e.node for e in big_lay.extents}
    # co-locate the light tenant on one of the heavy tenant's data nodes
    attempt = 0
    while True:
        light_lay = light.create(f"/small{attempt}", size=8 * KiB)
        if light_lay.primary.node in hot_nodes:
            break
        attempt += 1

    heavy_data = payload_bytes(256 * KiB)
    light_data = payload_bytes(4 * KiB)

    # keep the heavy tenant's EC writes flowing in the background
    bg = [heavy.write("/big", heavy_data, protocol="spin") for _ in range(6)]

    # light tenant: send its small writes through the dedicated context
    def issue_light(i):
        from repro.core.request import WriteRequestHeader, request_header_bytes
        from repro.protocols.base import WriteContext, wrap_result
        from repro.rdma.nic import fresh_greq_id

        ctx = WriteContext(light.node, light.client_id, light.ticket(f"/small{attempt}"))
        greq = fresh_greq_id()
        dfs = ctx.dfs_header(greq)
        wrh = WriteRequestHeader(addr=light_lay.primary.addr)
        done = light.node.nic.post_write(
            dst=light_lay.primary.node,
            data=light_data,
            headers={"dfs": dfs, "wrh": wrh, "write_len": light_data.nbytes},
            header_bytes=request_header_bytes(dfs, wrh),
            greq_id=greq,
            op="write_light",
        )
        return wrap_result(tb.sim, done, light_data.nbytes, "light")

    stats = measure_latency_distribution(tb, issue_light, n_ops=24, window=4)
    for ev in bg:
        out = tb.sim.run_until_event(ev)
        assert out.ok
    return stats


def test_hpu_quota_protects_light_tenant(benchmark, capsys):
    free = _run(heavy_quota=None)
    capped = _run(heavy_quota=8)  # heavy tenant limited to 8 of 32 HPUs
    with capsys.disabled():
        print("\nlight-tenant 4 KiB write latency while a heavy EC tenant streams:")
        print(f"  no isolation : median={free['median']:8.0f} ns  p99={free['p99']:8.0f} ns")
        print(f"  quota 8/32   : median={capped['median']:8.0f} ns  p99={capped['p99']:8.0f} ns")
    # the quota must protect the light tenant's tail: without it, light
    # handlers queue behind 16-23 us EC handlers for the whole HPU pool
    assert capped["p99"] < free["p99"] / 5
    # median stays in the same RTT regime (network sharing remains; HPU
    # starvation is gone)
    assert capped["median"] < free["p99"] / 10

    lat = benchmark.pedantic(lambda: _run(8)["median"], rounds=1, iterations=1)
    assert lat > 0
