"""Ablation §IV — the threat-model spectrum.

Trusting more costs less: a plain-text ticket check (trusted clients +
network, the sRDMA/Orion setting) is cheaper than the HMAC capability
check (paper default), and both are far cheaper than per-packet MACs
for an untrusted network, which add per-byte authentication work to
every payload handler.
"""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.protocols.base import WriteContext
from repro.protocols.threat import install_threat_targets, threat_write

KiB = 1024


def _latency(mode: str, size: int) -> float:
    tb = build_testbed(n_storage=4)
    install_threat_targets(tb, mode)
    c = DfsClient(tb)
    lay = c.create("/f", size=size * 2)
    ctx = WriteContext(c.node, c.client_id, c.ticket("/f"))
    data = np.random.default_rng(0).integers(0, 256, size, dtype=np.uint8)
    res = tb.run_until(threat_write(ctx, lay, data, mode))
    assert res.ok
    assert np.array_equal(tb.node(lay.primary.node).memory.view(lay.primary.addr, size), data)
    return res.latency_ns


def test_threat_model_cost_spectrum(benchmark, capsys):
    rows = {}
    for mode in ("trusted", "capability", "packet-mac"):
        rows[mode] = {s: _latency(mode, s) for s in (1 * KiB, 64 * KiB)}
    with capsys.disabled():
        print("\nwrite latency by threat model (ns):")
        for mode, lats in rows.items():
            print(f"  {mode:12s} 1KiB={lats[1 * KiB]:8.0f}  64KiB={lats[64 * KiB]:8.0f}")
    # trusting less costs more, at every size
    for s in (1 * KiB, 64 * KiB):
        assert rows["trusted"][s] <= rows["capability"][s]
        assert rows["capability"][s] < rows["packet-mac"][s]
    # per-packet MACs dominate large writes (per-byte work on every PH)
    assert rows["packet-mac"][64 * KiB] > 2 * rows["capability"][64 * KiB]
    # header-only checks are amortized for large writes
    assert rows["capability"][64 * KiB] < 1.1 * rows["trusted"][64 * KiB]

    lat = benchmark.pedantic(lambda: _latency("capability", 16 * KiB), rounds=1, iterations=1)
    assert lat > 0


def test_tampering_detected_end_to_end(benchmark, capsys):
    tb = build_testbed(n_storage=4)
    install_threat_targets(tb, "packet-mac")
    c = DfsClient(tb)
    lay = c.create("/f", size=128 * KiB)
    ctx = WriteContext(c.node, c.client_id, c.ticket("/f"))
    data = np.random.default_rng(1).integers(0, 256, 64 * KiB, dtype=np.uint8)
    res = tb.run_until(threat_write(ctx, lay, data, "packet-mac", tamper_packet=7))
    with capsys.disabled():
        print(f"\ntampered packet 7: ok={res.ok} nack={res.nacks[0]['reason']}")
    assert not res.ok and res.nacks[0]["reason"] == "integrity"
    node = tb.node(lay.primary.node)
    events = node.dfs_state.drain_host_events()
    assert any(e["type"] == "packet_mac_failure" for e in events)

    def clean():
        tb2 = build_testbed(n_storage=4)
        install_threat_targets(tb2, "packet-mac")
        c2 = DfsClient(tb2)
        lay2 = c2.create("/f", size=8 * KiB)
        ctx2 = WriteContext(c2.node, c2.client_id, c2.ticket("/f"))
        return tb2.run_until(threat_write(ctx2, lay2, data[: 4 * KiB], "packet-mac")).latency_ns

    lat = benchmark.pedantic(clean, rounds=1, iterations=1)
    assert lat > 0
