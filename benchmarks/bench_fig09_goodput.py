"""Fig. 9 right — single-node goodput per write size and strategy."""

from repro.experiments import fig09_goodput as exp


def test_fig09_goodput(benchmark, experiment_runner):
    rows = experiment_runner(exp)
    ring = {r["size"]: r["spin-ring"] for r in rows}
    assert max(ring.values()) > 300  # near line rate at large writes

    def point():
        return exp._goodput("ring", 64 * 1024, None, n_ops=12, window=8)

    g = benchmark(point)
    assert g > 0
