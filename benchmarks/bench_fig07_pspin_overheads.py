"""Fig. 7 — PsPIN per-packet processing overhead breakdown."""

from repro.experiments import fig07_pspin_overheads as exp


def test_fig07_pspin_overheads(benchmark, experiment_runner):
    rows = experiment_runner(exp)
    by = {r["stage"]: r["ns"] for r in rows}
    assert by["pkt-buffer-copy"] == 32.0  # Fig. 7 exact values
    assert by["scheduler"] == 2.0
    assert by["l1-copy"] == 43.0

    lat = benchmark(exp._measure_pipeline, exp.SimParams())
    assert lat > 0
