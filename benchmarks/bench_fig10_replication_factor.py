"""Fig. 10 — write latency vs replication factor (4 KiB / 512 KiB)."""

from repro.dfs.layout import ReplicationSpec
from repro.experiments import fig10_replication_factor as exp
from repro.experiments.common import KiB, measure_latency


def test_fig10_replication_factor(benchmark, experiment_runner):
    rows = experiment_runner(exp)
    assert {r["size"] for r in rows} == {4 * KiB, 512 * KiB}

    def point():
        return measure_latency(
            "rdma-flat", 4 * KiB, replication=ReplicationSpec(k=4), repeats=1
        )

    lat = benchmark(point)
    assert lat > 0
