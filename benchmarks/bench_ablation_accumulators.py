"""Ablation §VI-B3 — parity accumulator pool exhaustion.

When the parity node's on-NIC accumulator pool runs dry, aggregation
falls back to the host CPU: correctness is preserved (the final parity
is identical) but the fallback pays PCIe crossings + host XOR, and the
fallback counter ticks.  A *sequential* (non-interleaved) client makes
exhaustion easy to provoke: the parity node must hold accumulators for
every aggregation sequence of the first stream until the later streams
arrive (§VI-B1).
"""

import numpy as np
import pytest

from repro.dfs.layout import EcSpec
from repro.workloads import payload_bytes

KiB = 1024
SIZE = 128 * KiB


def _run(n_accumulators: int, interleave: bool = False):
    from repro.dfs.client import DfsClient
    from repro.dfs.cluster import build_testbed
    from repro.protocols import install_spin_targets

    tb = build_testbed(n_storage=8)
    install_spin_targets(tb, n_accumulators=n_accumulators)
    client = DfsClient(tb)
    lay = client.create("/f", size=SIZE, ec=EcSpec(k=3, m=2))
    data = payload_bytes(SIZE)
    out = client.write_sync("/f", data, protocol="spin", interleave=interleave)
    assert out.ok
    fallbacks = sum(
        node.dfs_state.accumulators.fallbacks
        for node in tb.storage_nodes
        if node.dfs_state is not None
    )
    recovered = client.recover("/f", {lay.extents[0].node})
    return out.latency_ns, fallbacks, np.array_equal(recovered, data)


def test_pool_exhaustion_falls_back_to_cpu(benchmark, capsys):
    lat_big, fb_big, ok_big = _run(n_accumulators=128)
    lat_tiny, fb_tiny, ok_tiny = _run(n_accumulators=2)
    with capsys.disabled():
        print(f"\npool=128: lat={lat_big:.0f}ns fallbacks={fb_big}; "
              f"pool=2: lat={lat_tiny:.0f}ns fallbacks={fb_tiny}")
    assert ok_big and ok_tiny, "fallback must preserve correctness"
    assert fb_big == 0, "ample pool never falls back"
    assert fb_tiny > 0, "tiny pool must exhaust"
    assert lat_tiny > lat_big, "CPU fallback costs latency"

    lat = benchmark.pedantic(lambda: _run(128)[0], rounds=1, iterations=1)
    assert lat > 0
