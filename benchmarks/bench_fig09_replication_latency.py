"""Fig. 9 left/center — replicated-write latency, six strategies, k=2/4."""

from repro.dfs.layout import ReplicationSpec
from repro.experiments import fig09_replication_latency as exp
from repro.experiments.common import KiB, measure_latency


def test_fig09_replication_latency(benchmark, experiment_runner):
    rows = experiment_runner(exp)
    assert {r["k"] for r in rows} == {2, 4}

    def point():
        return measure_latency(
            "spin", 64 * KiB,
            replication=ReplicationSpec(k=4, strategy="ring"), repeats=1,
        )

    lat = benchmark(point)
    assert lat > 0
