#!/usr/bin/env python3
"""HPC checkpointing with NIC-offloaded replication (§V).

The scenario the paper's introduction motivates: compute nodes
periodically dump checkpoints that must survive storage-node failures.
Each checkpoint is written once by the client; the storage-node NICs
propagate it along a source-routed broadcast (ring or pipelined binary
tree) on a per-packet basis — the client never injects the data twice.

The example writes one checkpoint per strategy, verifies every replica
byte-for-byte, and prints a latency comparison including the
client-driven RDMA-Flat baseline.

Run:  python examples/replicated_checkpoint.py
"""

import numpy as np

from repro import DfsClient, ReplicationSpec, build_testbed, install_spin_targets
from repro.protocols import install_cpu_replication_targets

CHECKPOINT_BYTES = 512 * 1024
K = 4  # survive 3 storage-node failures


def replicated_write(protocol: str, strategy: str, install) -> float:
    testbed = build_testbed(n_storage=8)
    if install is not None:
        install(testbed)
    client = DfsClient(testbed, principal="rank0")
    layout = client.create(
        "/ckpt/step-001",
        size=CHECKPOINT_BYTES,
        replication=ReplicationSpec(k=K, strategy=strategy),
    )
    ckpt = np.random.default_rng(42).integers(0, 256, CHECKPOINT_BYTES, dtype=np.uint8)
    outcome = client.write_sync("/ckpt/step-001", ckpt, protocol=protocol)
    assert outcome.ok, outcome.nacks

    # Every replica must hold identical bytes — that is the whole point.
    for extent in layout.extents:
        replica = testbed.node(extent.node).memory.view(extent.addr, CHECKPOINT_BYTES)
        assert np.array_equal(replica, ckpt), f"replica on {extent.node} diverged"
    return outcome.latency_ns


def main() -> None:
    print(f"checkpoint: {CHECKPOINT_BYTES // 1024} KiB, replication factor k={K}\n")
    rows = [
        ("sPIN-Ring (NIC offload)", replicated_write("spin", "ring", install_spin_targets)),
        ("sPIN-PBT  (NIC offload)", replicated_write("spin", "pbt", install_spin_targets)),
        ("RDMA-Flat (client-driven)", replicated_write("rdma-flat", "ring", None)),
        ("CPU-Ring  (storage CPUs)", replicated_write("cpu", "ring", install_cpu_replication_targets)),
    ]
    best = min(lat for _, lat in rows)
    for name, lat in rows:
        bar = "#" * int(40 * best / lat)
        print(f"  {name:28s} {lat:10.0f} ns  {bar}")
    print("\nall replicas verified byte-identical on every strategy")


if __name__ == "__main__":
    main()
