#!/usr/bin/env python3
"""Failure handling: client death mid-write and the cleanup handler (§VII).

A client starts a large write and crashes after injecting only part of
it.  The storage node's NIC now holds dangling state: a request-table
entry (77 B) and an open message run waiting for packets that will never
come.  PsPIN's cleanup-handler extension fires after the inactivity
timeout, frees the NIC state, and posts a ``write_interrupted`` event to
the DFS software on the host, which can then involve the management
service.

Run:  python examples/failure_cleanup.py
"""

import numpy as np

from repro import build_testbed, install_spin_targets, DfsClient
from repro.core.request import WriteRequestHeader, request_header_bytes
from repro.rdma.nic import fresh_greq_id
from repro.simnet.packet import Message, segment_message


def main() -> None:
    testbed = build_testbed(n_storage=2)
    install_spin_targets(testbed)
    client = DfsClient(testbed, principal="flaky-app")
    layout = client.create("/scratch/tmp.bin", size=1 << 20)
    node = testbed.node(layout.primary.node)

    # Hand-craft a partial write: send only the first 3 of 32 packets,
    # then "crash" (stop transmitting).
    data = np.zeros(64 * 1024, dtype=np.uint8)
    greq = fresh_greq_id()
    wrh = WriteRequestHeader(addr=layout.primary.addr)
    from repro.protocols.base import WriteContext

    ctx = WriteContext(client.node, client.client_id, client.ticket("/scratch/tmp.bin"))
    dfs = ctx.dfs_header(greq)
    msg = Message(
        src=client.node.name,
        dst=layout.primary.node,
        op="write",
        data=data,
        headers={"dfs": dfs, "wrh": wrh, "write_len": data.nbytes},
        header_bytes=request_header_bytes(dfs, wrh),
    )
    packets = segment_message(msg, testbed.params.net.mtu)
    for pkt in packets[:3]:
        client.node.nic.port.send(pkt)
    print(f"client injected {3}/{len(packets)} packets, then crashed")

    # Let the simulation idle past the cleanup timeout (1 ms default).
    testbed.run(until=testbed.sim.now + 3 * testbed.params.pspin.cleanup_timeout_ns)

    state = node.dfs_state
    print(f"requests started:   {state.requests_started}")
    print(f"requests cleaned:   {state.requests_cleaned}")
    print(f"req_table entries:  {len(state.req_table)} (dangling state reclaimed)")
    events = state.drain_host_events()
    interrupted = [e for e in events if e["type"] == "write_interrupted"]
    print(f"host events:        {interrupted}")
    assert state.requests_cleaned == 1 and not state.req_table and interrupted

    # The NIC is immediately ready for healthy traffic again.
    out = client.write_sync("/scratch/tmp.bin", data, protocol="spin")
    print(f"\nsubsequent healthy write: ok={out.ok} latency={out.latency_ns:.0f} ns")


if __name__ == "__main__":
    main()
