#!/usr/bin/env python3
"""A replicated, totally-ordered log appended at NIC speed (§VII).

The paper's discussion section argues that consensus-style building
blocks (DARE's replicated log, Tailwind's log replication) map onto
sPIN's RDMA+X model.  This example runs that extension: two producers
append records to one shared journal; the primary storage node's NIC
assigns each record's offset with an atomic fetch-and-add on NIC state
— the "X" plain RDMA cannot express — and source-routes the record down
the replica ring.  No storage-node CPU ever runs.

Run:  python examples/replicated_log.py
"""

import numpy as np

from repro import DfsClient, Rights, build_testbed
from repro.protocols import install_log_targets, log_append
from repro.protocols.base import WriteContext

N_RECORDS = 16


def main() -> None:
    testbed = build_testbed(n_storage=6, n_clients=2)
    log = install_log_targets(testbed, "/journal", capacity=1 << 20, k=3)
    print(f"journal replicated on {[e.node for e in log.layout.extents]}\n")

    producers = []
    for i, principal in enumerate(["producer-a", "producer-b"]):
        client = DfsClient(testbed, client_index=i, principal=principal)
        client._tickets["/journal"] = testbed.metadata.issue_ticket(
            client.client_id, "/journal", Rights.RW
        )
        producers.append(
            WriteContext(client.node, client.client_id, client.ticket("/journal"))
        )

    # Two producers race 16 appends of varying size.
    events, records = [], []
    for i in range(N_RECORDS):
        rec = np.full(512 + 137 * i, ord("A") + i, dtype=np.uint8)
        records.append(rec)
        events.append(log_append(producers[i % 2], log, rec))
    results = [testbed.run_until(ev) for ev in events]

    print("record  producer    bytes  NIC-assigned offset")
    for i, res in enumerate(results):
        assert res.ok
        print(f"  {i:3d}   producer-{'ab'[i % 2]}  {records[i].nbytes:6d}  {res.info['offset']:8d}")

    # The offsets are disjoint and totally ordered; every replica holds
    # every record byte-for-byte.
    testbed.run(until=testbed.sim.now + 100_000)
    regions = sorted((res.info["offset"], rec.nbytes) for res, rec in zip(results, records))
    assert all(o1 + n1 <= o2 for (o1, n1), (o2, _) in zip(regions, regions[1:]))
    for res, rec in zip(results, records):
        for ext in log.layout.extents:
            stored = testbed.node(ext.node).memory.view(ext.addr + res.info["offset"], rec.nbytes)
            assert np.array_equal(stored, rec)
    print("\nlog is gap-free up to", max(o + n for o, n in regions), "bytes;")
    print("all records verified byte-identical on all 3 replicas")

    # The NIC also enforces the log bound.
    overflow = log_append(producers[0], log, np.zeros(2 << 20, dtype=np.uint8))
    res = testbed.run_until(overflow)
    print(f"oversized append rejected on the NIC: ok={res.ok} reason={res.nacks[0]['reason']}")


if __name__ == "__main__":
    main()
