#!/usr/bin/env python3
"""Tenant isolation through on-NIC request authentication (§IV).

Two tenants share the storage cluster.  Capabilities are HMAC-signed by
the DFS services; the storage NIC's header handler verifies every write
request before any payload reaches the target.  A misbehaving client —
forged signature, stolen ticket for the wrong range, or no ticket at
all — is NACK'd on the first packet and its payload packets are dropped
on the NIC (Listing 1's accept bit), never touching host memory.

Run:  python examples/multi_tenant_auth.py
"""

import numpy as np

from repro import DfsClient, build_testbed, install_spin_targets


def main() -> None:
    testbed = build_testbed(n_storage=4, n_clients=2)
    install_spin_targets(testbed)

    alice = DfsClient(testbed, client_index=0, principal="alice")
    eve = DfsClient(testbed, client_index=1, principal="eve")

    layout = alice.create("/tenants/alice/db.bin", size=1 << 20)
    secret = np.full(32 * 1024, 0xAA, dtype=np.uint8)
    ok = alice.write_sync("/tenants/alice/db.bin", secret, protocol="spin")
    print(f"alice writes her object:        ok={ok.ok}")

    # --- eve tries to overwrite alice's object ------------------------
    eve_layout = eve.open("/tenants/alice/db.bin")  # layouts are public metadata
    evil = np.full(32 * 1024, 0xEE, dtype=np.uint8)

    # 1. with a forged capability (bit-flipped signature)
    forged = eve.forge_ticket("/tenants/alice/db.bin")
    res = eve.write_sync("/tenants/alice/db.bin", evil, protocol="spin", capability=forged)
    print(f"eve with forged signature:      ok={res.ok}  nack={res.nacks[0]['reason']}")

    # 2. with no capability at all
    res2 = eve.write_sync(
        "/tenants/alice/db.bin", evil, protocol="spin",
        capability=None if eve._tickets.pop("/tenants/alice/db.bin", None) else None,
    )
    print(f"eve with no ticket:             ok={res2.ok}  nack={res2.nacks[0]['reason']}")

    # --- the data plane enforced isolation ----------------------------
    stored = testbed.node(layout.primary.node).memory.view(layout.primary.addr, secret.nbytes)
    assert np.array_equal(stored, secret), "tenant data was corrupted!"
    print("\nalice's bytes are intact: the NIC dropped every rejected payload")

    node = testbed.node(layout.primary.node)
    print(f"storage node {node.name}: "
          f"{node.dfs_state.requests_rejected_auth} request(s) rejected on the NIC, "
          f"{node.accelerator.nacks_sent} NACK(s) sent")
    events = [e for e in node.dfs_state.drain_host_events() if e["type"] == "auth_reject"]
    print(f"host event queue delivered {len(events)} auth-reject event(s) to the DFS software")


if __name__ == "__main__":
    main()
