#!/usr/bin/env python3
"""Quickstart: an authenticated write through a SmartNIC-offloaded DFS.

Builds a small simulated cluster (one switch, four storage nodes with
PsPIN-enabled NICs, one client), creates an object, and issues a single
RDMA write whose request is validated *on the NIC* (§IV of the paper) —
no storage-node CPU involvement, no extra validation round trip.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DfsClient, ReplicationSpec, build_testbed, install_spin_targets


def main() -> None:
    # 1. Build the testbed: 400 Gbit/s network, MTU 2048 B (§III-D).
    testbed = build_testbed(n_storage=4)
    install_spin_targets(testbed)  # DFS execution contexts on every NIC

    # 2. A client authenticates, creates an object, gets a capability.
    client = DfsClient(testbed, principal="alice")
    layout = client.create("/data/results.bin", size=1 << 20)
    print(f"object placed on {layout.primary.node} @ {layout.primary.addr:#x}")

    # 3. Write 64 KiB.  The capability rides in the request header; the
    #    storage NIC's header handler validates it on the fly.
    data = np.random.default_rng(7).integers(0, 256, 64 * 1024, dtype=np.uint8)
    outcome = client.write_sync("/data/results.bin", data, protocol="spin")
    print(f"write ok={outcome.ok}  latency={outcome.latency_ns:.0f} ns  "
          f"goodput={outcome.goodput_gbps():.1f} Gbit/s")

    # 4. The bytes really are on the storage target.
    stored = client.read_back("/data/results.bin")
    assert np.array_equal(stored[: data.nbytes], data)
    print("read-back verified: storage target holds the written bytes")

    # 5. Compare against the raw (no-policy) and CPU (RPC) paths.
    from repro import install_rpc_targets

    tb_raw = build_testbed(n_storage=4)
    c_raw = DfsClient(tb_raw)
    c_raw.create("/f", size=1 << 20)
    raw = c_raw.write_sync("/f", data, protocol="raw")

    tb_rpc = build_testbed(n_storage=4)
    install_rpc_targets(tb_rpc)
    c_rpc = DfsClient(tb_rpc)
    c_rpc.create("/f", size=1 << 20)
    rpc = c_rpc.write_sync("/f", data, protocol="rpc")

    print(f"\nlatency comparison (64 KiB write):")
    print(f"  raw RDMA (no policy)   {raw.latency_ns:9.0f} ns")
    print(f"  sPIN (on-NIC auth)     {outcome.latency_ns:9.0f} ns")
    print(f"  RPC (CPU auth+copy)    {rpc.latency_ns:9.0f} ns")


if __name__ == "__main__":
    main()
