#!/usr/bin/env python3
"""The complete Fig. 1a workflow, all over the simulated network.

1. the client authenticates with the management service;
2. it queries the *metadata node* (an RPC over the network) to create
   the object and fetch its layout + capability ticket;
3. it writes directly to the storage nodes — the data plane — where the
   PsPIN NICs enforce the policies;
4. when a storage node dies mid-run, the client's timeout fires, it
   reports the failure to the management service (§VII), and recovery
   rebuilds the lost chunks.

Run:  python examples/full_workflow.py
"""

import numpy as np

from repro import DfsClient, EcSpec, build_testbed
from repro.dfs.control_rpc import ControlPlaneClient, install_control_plane
from repro.protocols import install_spin_targets, rebuild_object
from repro.protocols.base import WriteContext
from repro.protocols.spin_write import spin_write

OBJECT_BYTES = 256 * 1024


def main() -> None:
    testbed = build_testbed(n_storage=9, n_clients=1)
    install_spin_targets(testbed)
    install_control_plane(testbed)

    # 1. authenticate (management service)
    client_id = testbed.mgmt.authenticate("analytics-job-17")
    print(f"authenticated as client {client_id}")

    # 2. control plane over the network: create + layout + ticket
    cp = ControlPlaneClient(testbed, testbed.clients[0])
    create_res = testbed.run_until(cp.create("/datasets/shard-17", OBJECT_BYTES,
                                             ec=EcSpec(k=4, m=2)))
    layout = create_res.data
    print(f"metadata RPC: created RS(4,2) object in {create_res.latency_ns:.0f} ns; "
          f"data on {[e.node for e in layout.extents]}")
    ticket_res = testbed.run_until(cp.ticket("/datasets/shard-17", client_id))
    capability = ticket_res.data
    print(f"metadata RPC: ticket issued in {ticket_res.latency_ns:.0f} ns")

    # 3. data plane: one write, validated and encoded on the NICs
    ctx = WriteContext(testbed.clients[0], client_id, capability)
    payload = np.random.default_rng(17).integers(0, 256, OBJECT_BYTES, dtype=np.uint8)
    out = testbed.run_until(spin_write(ctx, layout, payload))
    print(f"data plane: encoded write in {out.latency_ns:.0f} ns "
          f"(control plane stayed off the critical path)")

    # 4. a storage node dies; the client reports it; recovery rebuilds
    victim = layout.extents[2].node
    testbed.node(victim).fail()
    probe = testbed.clients[0].nic.post_read(victim, 0, 64)
    try:
        testbed.run_until(probe, timeout_ns=testbed.sim.now + 500_000)
    except Exception:
        print(f"\n{victim} stopped answering; reporting to the management service")
        testbed.run_until(cp.report_failure(victim))
    assert not testbed.mgmt.is_healthy(victim)

    report = testbed.run_until(rebuild_object(testbed, "/datasets/shard-17", {victim}))
    testbed.run(until=testbed.sim.now + 300_000)
    new_layout = testbed.run_until(cp.lookup("/datasets/shard-17")).data
    print(f"recovery: rebuilt {report.bytes_rebuilt} B onto "
          f"{[e.node for e in report.rebuilt_extents]}; "
          f"new layout avoids {victim}")
    assert victim not in [e.node for e in new_layout.extents]

    # the object is intact end to end
    verifier = DfsClient(testbed, principal="verifier")
    stored = verifier.read_back("/datasets/shard-17")
    assert np.array_equal(stored, payload)
    print("object verified byte-identical after the full lifecycle")


if __name__ == "__main__":
    main()
