#!/usr/bin/env python3
"""Erasure-coded cold storage with streaming on-NIC encoding (§VI).

An archive tier stores objects RS(6,3): 6 data chunks + 3 parity chunks
across 9 storage nodes — 1.5x storage overhead instead of the 4x a
4-way-replicated tier would pay, while still surviving any 3 node
failures.

With sPIN-TriEC, data nodes encode intermediate parities *per packet*
as the write streams through their NICs (Fig. 13 right); parity nodes
fold the k contributions into pooled accumulators and commit the final
parity.  The example then fails 3 nodes and decodes the object from the
survivors.

Run:  python examples/erasure_coded_archive.py
"""

import numpy as np

from repro import DfsClient, EcSpec, build_testbed, install_spin_targets

OBJECT_BYTES = 768 * 1024
K, M = 6, 3


def main() -> None:
    testbed = build_testbed(n_storage=12)
    install_spin_targets(testbed)
    client = DfsClient(testbed, principal="archiver")

    layout = client.create("/archive/block-0007", size=OBJECT_BYTES, ec=EcSpec(k=K, m=M))
    print(f"RS({K},{M}): data on {[e.node for e in layout.extents]}, "
          f"parity on {[e.node for e in layout.parity_extents]}")
    print(f"storage overhead: {M / K:.2f}x (vs {K - 1}x for {K}-way replication)\n")

    payload = np.random.default_rng(3).integers(0, 256, OBJECT_BYTES, dtype=np.uint8)
    outcome = client.write_sync("/archive/block-0007", payload, protocol="spin")
    print(f"encoded write: ok={outcome.ok} latency={outcome.latency_ns:.0f} ns "
          f"({outcome.goodput_gbps():.1f} Gbit/s of user data)")

    # --- disaster strikes: m = 3 storage nodes burn down -------------
    casualties = {
        layout.extents[1].node,       # a data node
        layout.extents[4].node,       # another data node
        layout.parity_extents[0].node,  # and a parity node
    }
    for name in casualties:
        testbed.node(name).fail()
    print(f"\nfailed nodes: {sorted(casualties)}")

    # --- degraded read: serve the object while nodes are down --------
    from repro.protocols import degraded_read, rebuild_object

    data, lat = testbed.run_until(degraded_read(testbed, "/archive/block-0007", casualties))
    assert np.array_equal(data, payload)
    print(f"degraded read served in {lat:.0f} ns (k surviving chunks + decode)")

    # one more failure would exceed m = 3: decode must refuse
    from repro.ec import DecodeError

    try:
        degraded_read(testbed, "/archive/block-0007",
                      casualties | {layout.extents[0].node})
    except DecodeError as e:
        print(f"a 4th failure would be unrecoverable: {e}")

    # --- offline recovery (§VI-B: decode off the write path): a healthy
    # storage node reads k chunks, decodes, and re-places the lost ones
    report = testbed.run_until(rebuild_object(testbed, "/archive/block-0007", casualties))
    testbed.run(until=testbed.sim.now + 200_000)
    print(f"rebuilt {report.bytes_rebuilt} B onto "
          f"{[e.node for e in report.rebuilt_extents]} in {report.duration_ns:.0f} ns "
          f"({report.rebuild_gbps():.1f} Gbit/s)")
    recovered = client.read_back("/archive/block-0007")
    assert np.array_equal(recovered, payload)
    print("object decoded bit-exactly; placement fully healthy again")


if __name__ == "__main__":
    main()
