#!/usr/bin/env python3
"""Writing your own NIC-offloaded policy (the user-level principle, §II-B).

The paper's third design principle is that *user-level* applications can
install custom policies without admin rights — the whole point of the
sPIN execution-context model over eBPF/DPDK.  This example shows what a
downstream user writes: a **T10-DIF-style integrity policy** that
checksums every payload packet on the NIC while storing it, keeps a
per-request digest in NIC state, and hands the final digest to the host
event queue at completion — so the DFS can later audit stored data
without re-reading it through the CPU.

Everything here uses only public library surface:

* subclass :class:`repro.core.handlers.DfsPolicy`;
* override cost hooks (charge your handler's instructions) and the
  ``DFS_request_*`` bodies;
* install with ``StorageNode.install_pspin``.

Run:  python examples/custom_policy.py
"""

import zlib

import numpy as np

from repro import DfsClient, build_testbed
from repro.core.handlers import DfsPolicy
from repro.pspin.isa import HandlerCost


class ChecksumWritePolicy(DfsPolicy):
    """Authenticated write + on-NIC rolling CRC32 per request."""

    name = "auth-write-crc"

    #: the CRC loop costs ~1 instruction/byte on the HPU (table-driven)
    CRC_INSTR_PER_BYTE = 1

    def payload_cost(self, task, entry, pkt) -> HandlerCost:
        base = super().payload_cost(task, entry, pkt)
        return HandlerCost(
            instructions=base.instructions + self.CRC_INSTR_PER_BYTE * pkt.payload_bytes,
            cpi=1.45,
            mem_intensive=True,
        )

    def on_header(self, api, task, entry, pkt) -> None:
        super().on_header(api, task, entry, pkt)
        entry.scratch["crc"] = 0
        entry.scratch["bytes"] = 0

    def process_pkt(self, api, task, entry, pkt):
        if pkt.payload is not None:
            # functional effect: fold this packet into the digest.
            # (packets of one request may be handled out of order across
            # HPUs; CRC32 folding here is per-packet XOR of packet CRCs,
            # which is order-independent)
            pkt_crc = zlib.crc32(pkt.payload.tobytes())
            entry.scratch["crc"] ^= pkt_crc
            entry.scratch["bytes"] += pkt.payload_bytes
        yield from super().process_pkt(api, task, entry, pkt)

    def request_fini(self, api, task, entry, pkt):
        # publish the digest to the DFS software before acking
        task.mem.post_host_event(
            {
                "type": "write_digest",
                "greq_id": entry.greq_id,
                "crc": entry.scratch["crc"],
                "bytes": entry.scratch["bytes"],
                "t": api.now,
            }
        )
        yield from super().request_fini(api, task, entry, pkt)


def expected_digest(data: np.ndarray, header_bytes: int, mtu: int = 2048) -> int:
    """What the NIC should report: XOR of per-packet CRC32s."""
    crc = 0
    off = 0
    first = mtu - header_bytes
    take = min(first, data.nbytes)
    while off < data.nbytes:
        crc ^= zlib.crc32(data[off : off + take].tobytes())
        off += take
        take = min(mtu, data.nbytes - off)
    return crc


def main() -> None:
    testbed = build_testbed(n_storage=2)
    # install the *custom* policy instead of the stock dispatch policy
    for node in testbed.storage_nodes:
        node.install_pspin(ChecksumWritePolicy(), authority=testbed.authority)

    client = DfsClient(testbed, principal="auditor")
    layout = client.create("/audited/object", size=256 * 1024)
    data = np.random.default_rng(99).integers(0, 256, 200 * 1024, dtype=np.uint8)
    outcome = client.write_sync("/audited/object", data, protocol="spin")
    print(f"write ok={outcome.ok} latency={outcome.latency_ns:.0f} ns "
          f"(CRC adds ~1 instr/byte on the payload handlers)")

    node = testbed.node(layout.primary.node)
    events = [e for e in node.dfs_state.drain_host_events() if e["type"] == "write_digest"]
    (digest,) = events
    print(f"NIC-computed digest: crc={digest['crc']:#010x} over {digest['bytes']} bytes")

    # the host can audit without touching the data path
    from repro.core.request import DfsHeader, WriteRequestHeader, request_header_bytes

    hdr_bytes = request_header_bytes(
        DfsHeader(0, "write", client.client_id, client.ticket("/audited/object")),
        WriteRequestHeader(addr=layout.primary.addr),
    )
    want = expected_digest(data, hdr_bytes)
    assert digest["crc"] == want and digest["bytes"] == data.nbytes
    print(f"host-side audit agrees:  crc={want:#010x} — integrity verified")

    stored = client.read_back("/audited/object")
    assert np.array_equal(stored[: data.nbytes], data)
    print("stored bytes match too; custom policy cost only handler cycles")


if __name__ == "__main__":
    main()
