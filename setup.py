"""Setup shim.

The environment has no network and no ``wheel`` package, so PEP-517
editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517`` (and plain ``pip install -e .`` on
older pips) fall back to the classic ``setup.py develop`` path.
"""

from setuptools import setup

setup()
