"""Differential tests for the partitioned conservative-window engine.

Partitioning is a pure performance optimisation: every observable —
operation outcomes, completion times, the final clock, telemetry spans,
metric counters, gauge trajectories, and histograms — must match the
serial engine exactly, for every write protocol, with and without
seeded faults, at 2-, 4-, and 8-way partitioning.

One relaxation, documented in ``docs/parallel_engine.md``: when two
packets carry the *same* timestamp on the *same* egress wire, the
serial engine orders them by heap insertion sequence across the whole
simulation, which a partitioned run cannot reconstruct (each partition
has its own sequence counter).  Both orders are valid event schedules
and every other observable is unaffected, so span signatures
canonicalise the packet id (``m7`` -> ``m*``) everywhere and the
fragment index (``3/17`` -> ``*/17``) on wire (``cat == "net"``) spans
only.  Counters, gauges, and histograms need no such relaxation.

The quiesce horizon matters: ``run(until=T)`` must be driven past all
protocol activity before comparing, because the serial
``run_until_event`` leaves the triggered event's own heap entry
undispatched while whole-window execution dispatches it — a later
``run(until)`` with T *inside* the active region would observe that
bookkeeping difference in the clock rules.  ``QUIESCE`` is far beyond
the last retransmission of the faultiest scenario here.
"""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro import DfsClient, EcSpec, ReplicationSpec, build_testbed
from repro.params import SimParams
from repro.protocols import (
    install_cpu_replication_targets,
    install_hyperloop_targets,
    install_inec_targets,
    install_rpc_rdma_targets,
    install_rpc_targets,
    install_spin_targets,
)
from repro.workloads import LoadSpec, closed_loop_write_load

KiB = 1024

#: run(until=...) horizon: far beyond all protocol + retransmit activity
QUIESCE = 20_000_000.0

LOSS = dict(seed=42, loss_prob=0.05, corrupt_prob=0.03, retransmit=True)

#: packet/message ids differ across engines (per-partition id streams)
MSG = re.compile(r"\bm\d+\b")
#: fragment sequence index within a wire span name ("3/17" -> "*/17")
SEQ = re.compile(r"\b\d+/(\d+)\b")


def _canon(name: str, cat: str) -> str:
    name = MSG.sub("m*", name)
    if cat == "net":
        name = SEQ.sub(r"*/\1", name)
    return name


def _data(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8)


def _tel_sig(tb):
    """Canonicalised telemetry signature (see module docstring)."""
    tel = tb.sim.telemetry
    spans = sorted(
        (_canon(s.name, s.cat), s.cat, s.t0, s.t1) for s in tel.spans
    )
    m = tel.metrics
    counters = {n: c.value for n, c in m.counters.items()}
    gauges = {n: (len(g.times), g.last, g.max, g._area, g._last_t)
              for n, g in m.gauges.items()}
    hists = {MSG.sub("m*", n): sorted(h.values)
             for n, h in m.histograms.items()}
    return spans, counters, gauges, hists


# ---------------------------------------------------------------- scenarios

PROTO = {
    "spin": (install_spin_targets, {}, {}),
    "raw": (None, {}, {}),
    "rpc": (install_rpc_targets, {}, {}),
    "rpc+rdma": (install_rpc_rdma_targets, {}, {}),
    "cpu": (install_cpu_replication_targets,
            {"replication": ReplicationSpec(k=2)}, {"chunk_bytes": 32 * KiB}),
    "rdma-flat": (None, {"replication": ReplicationSpec(k=2)}, {}),
    "rdma-hyperloop": (install_hyperloop_targets,
                       {"replication": ReplicationSpec(k=2)},
                       {"chunk_bytes": 32 * KiB}),
    "inec": (install_inec_targets, {"ec": EcSpec(k=3, m=2)}, {}),
}


def _run_protocol(protocol, faults, partitions, mode="inline"):
    installer, create_kw, write_kw = PROTO[protocol]
    params = SimParams()
    if faults:
        params = params.with_faults(**faults)
    tb = build_testbed(
        n_storage=8, n_clients=2, params=params, telemetry=True,
        partitions=partitions, parallel_mode=mode,
    )
    if installer is not None:
        installer(tb)
    c = DfsClient(tb)
    size = 96 * KiB if protocol == "inec" else 64 * KiB
    c.create("/f", size=size, **create_kw)
    out = c.write_sync("/f", _data(size), protocol=protocol, **write_kw)
    tb.run(until=QUIESCE)
    tb.finish()
    return (out.ok, out.latency_ns, tb.sim.now), tb


#: serial baselines are shared across the k-parametrised cases
_SERIAL_CACHE: dict = {}


def _serial(protocol, faults_key, faults):
    if (protocol, faults_key) not in _SERIAL_CACHE:
        res, tb = _run_protocol(protocol, faults, partitions=1)
        _SERIAL_CACHE[(protocol, faults_key)] = (res, _tel_sig(tb))
    return _SERIAL_CACHE[(protocol, faults_key)]


@pytest.mark.parametrize("partitions", [2, 4, 8])
@pytest.mark.parametrize("faults", [None, LOSS], ids=["clean", "faulty"])
@pytest.mark.parametrize("protocol", list(PROTO))
def test_every_protocol_differential(protocol, faults, partitions):
    """Serial vs k-way partitioned: identical outcomes, completion
    times, final clock, and telemetry on every write protocol, with and
    without seeded faults (tentpole acceptance)."""
    faults_key = "faulty" if faults else "clean"
    rs, ss = _serial(protocol, faults_key, faults)
    rp, tbp = _run_protocol(protocol, faults, partitions)
    assert rp == rs
    sp = _tel_sig(tbp)
    assert sp[0] == ss[0], "span multisets differ"
    assert sp[1] == ss[1], "counters differ"
    assert sp[2] == ss[2], "gauge trajectories differ"
    assert sp[3] == ss[3], "histograms differ"


@pytest.mark.parametrize("protocol", ["spin", "raw", "inec"])
def test_process_mode_matches_inline(protocol):
    """Forked-worker execution is byte-identical to inline stepping,
    including the merged telemetry pulled back at ``finish()``."""
    ri, tbi = _run_protocol(protocol, None, 4, mode="inline")
    rp, tbp = _run_protocol(protocol, None, 4, mode="process")
    assert rp == ri
    assert _tel_sig(tbp) == _tel_sig(tbi)
    assert tbp.sim.events_dispatched == tbi.sim.events_dispatched


# ----------------------------------------------------- closed-loop load

LOAD = LoadSpec(n_clients=8, outstanding=2, think_ns=2_000.0,
                warmup_ns=50_000.0, measure_ns=500_000.0, seed=3)


def _run_load(partitions, mode="inline"):
    tb = build_testbed(n_storage=8, n_clients=4, telemetry=False,
                       partitions=partitions, parallel_mode=mode)
    res = closed_loop_write_load(tb, 16 * KiB, "raw", LOAD)
    tb.finish()
    return (res.ops, res.bytes, res.issued, res.failures, res.elapsed_ns)


def test_closed_loop_load_differential():
    """A multi-client closed loop driven through ``run_until_event``
    (the experiment harness path) completes identically serial vs
    4-way inline vs 4-way forked."""
    serial = _run_load(1)
    assert _run_load(4) == serial
    assert _run_load(4, mode="process") == serial
    assert serial[0] > 0 and serial[3] == 0


# ------------------------------------------------- experiment harness

def _experiment_row(mod, index, partitions):
    from repro.simnet.packet import reset_id_state

    import json

    reset_id_state()
    pts = mod.points(quick=True, partitions=partitions)
    return json.dumps(mod.run_point(pts[index], None), sort_keys=True,
                      default=repr)


@pytest.mark.parametrize(
    "experiment,index",
    [("throughput_sweep", 2), ("recovery_storm", 0)],
)
def test_experiment_partitions_differential(experiment, index):
    """`--partitions` rows are byte-identical to the serial engine's,
    including the recovery storm's repair-schedule digest.  The storm
    point is the hard one: heartbeat agents live on every partition,
    the rack killer fires cross-partition at an exact time, and the
    monitor/re-replicator control loop runs driver-side between windows
    (it caught the stale-local-clock scheduling bug the
    ``run_until_event`` trigger-time sync now prevents)."""
    import importlib

    mod = importlib.import_module(f"repro.experiments.{experiment}")
    serial = _experiment_row(mod, index, 1)
    assert _experiment_row(mod, index, 4) == serial
