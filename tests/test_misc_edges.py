"""Edge-case coverage across modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DfsClient, build_testbed
from repro.simnet import Message, Packet, Simulator, segment_message

KiB = 1024


# ------------------------------------------------------------ segmentation
@settings(max_examples=80, deadline=None)
@given(
    size=st.integers(min_value=0, max_value=200_000),
    header=st.integers(min_value=0, max_value=512),
    mtu=st.sampled_from([512, 1024, 2048, 4096, 9000]),
)
def test_segmentation_invariants(size, header, mtu):
    data = np.zeros(size, dtype=np.uint8) if size else None
    msg = Message(src="a", dst="b", op="write", data=data, header_bytes=header)
    pkts = segment_message(msg, mtu)
    # exactly one header, exactly one completion
    assert sum(p.is_header for p in pkts) == 1
    assert sum(p.is_completion for p in pkts) == 1
    # payload bytes conserved
    assert sum(p.payload_bytes for p in pkts) == size
    # MTU respected: dfs headers + payload never exceed it
    for p in pkts:
        assert p.header_bytes + p.payload_bytes <= mtu
    # offsets consistent with payload ordering
    off = 0
    for p in pkts:
        assert p.payload_offset == off
        off += p.payload_bytes
    # seq numbering dense
    assert [p.seq for p in pkts] == list(range(len(pkts)))


# ---------------------------------------------------------------- nic edges
def test_unknown_packet_op_raises():
    tb = build_testbed(n_storage=1)
    from repro.simnet.packet import Packet

    pkt = Packet(src="client0", dst="sn0", op="quux", msg_id=1, seq=0, nseq=1)
    tb.clients[0].nic.port.send(pkt)
    with pytest.raises(ValueError, match="unknown packet op"):
        tb.run(until=100_000)


def test_write_packet_without_header_silently_dropped():
    tb = build_testbed(n_storage=1)
    pkt = Packet(src="client0", dst="sn0", op="write", msg_id=77, seq=1, nseq=3,
                 payload=np.zeros(100, dtype=np.uint8))
    tb.clients[0].nic.port.send(pkt)
    tb.run(until=100_000)  # no crash, no write
    assert tb.node("sn0").memory.bytes_written == 0


def test_post_read_from_empty_region_ok():
    tb = build_testbed(n_storage=1)
    res = tb.run_until(tb.clients[0].nic.post_read("sn0", 0, 1000))
    assert res.ok and res.data.nbytes == 1000 and not res.data.any()


def test_send_control_requires_port():
    from repro.params import SimParams
    from repro.rdma.nic import RdmaNic

    sim = Simulator()

    class FakeHost:
        memory = None
        pcie = None

    nic = RdmaNic(sim, SimParams(), FakeHost(), "lonely")
    with pytest.raises(AssertionError):
        nic.send_control("x", "ack", {})


# ----------------------------------------------------------- metadata edges
def test_allocate_extent_and_update_layout():
    tb = build_testbed(n_storage=2)
    ext = tb.metadata.allocate_extent("sn0", 1000)
    assert ext.node == "sn0" and ext.length == 1000
    from repro.dfs.metadata import MetadataError

    with pytest.raises(MetadataError):
        tb.metadata.update_layout("/nope", None)  # type: ignore[arg-type]


# --------------------------------------------------------------- cli / csv
def test_experiments_csv_export(tmp_path):
    from repro.experiments.__main__ import main

    out = tmp_path / "rows.csv"
    assert main(["fig04", "--quick", "--csv", str(out)]) == 0
    text = out.read_text()
    assert "n_writes" in text.splitlines()[0]
    assert len(text.splitlines()) > 10


def test_top_level_cli_info(capsys):
    from repro.__main__ import main

    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "400 Gbit/s" in out and "77 B/request" in out


# ---------------------------------------------------------------- hyperloop
def test_hyperloop_requires_config_before_data():
    """Data arriving for an unconfigured ring is dropped gracefully by
    the hook-owner NIC (unknown ring -> KeyError surfaces in sim)."""
    from repro.protocols import install_hyperloop_targets

    tb = build_testbed(n_storage=2)
    install_hyperloop_targets(tb)
    pkt = Packet(src="client0", dst="sn0", op="write", msg_id=5, seq=0, nseq=1,
                 payload=np.zeros(64, np.uint8),
                 headers={"hl_ring": "ghost", "chunk_off": 0, "addr": 0, "greq_id": 1})
    tb.clients[0].nic.port.send(pkt)
    with pytest.raises(KeyError):
        tb.run(until=200_000)


# -------------------------------------------------------------------- inec
def test_inec_interleaved_blocks_do_not_cross_talk():
    from repro import EcSpec
    from repro.protocols import install_inec_targets

    tb = build_testbed(n_storage=8)
    install_inec_targets(tb)
    c = DfsClient(tb)
    c.create("/a", size=30 * KiB, ec=EcSpec(k=3, m=1))
    c.create("/b", size=30 * KiB, ec=EcSpec(k=3, m=1))
    da = np.full(30 * KiB, 1, dtype=np.uint8)
    db = np.full(30 * KiB, 2, dtype=np.uint8)
    ea = c.write("/a", da, protocol="inec")
    eb = c.write("/b", db, protocol="inec")
    assert tb.run_until(ea).ok and tb.run_until(eb).ok
    tb.run(until=tb.sim.now + 300_000)
    assert np.array_equal(c.read_back("/a"), da)
    assert np.array_equal(c.read_back("/b"), db)


def test_api_doc_generator_runs(tmp_path):
    import importlib.util
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", Path(__file__).parent.parent / "scripts" / "gen_api_docs.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    mod.OUT = tmp_path / "API.md"
    assert mod.main() == 0
    text = mod.OUT.read_text()
    assert "repro.core.handlers" in text
    assert "DfsPolicy" in text
