"""Latency anatomy: phase decomposition and critical-path extraction."""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.dfs.layout import EcSpec, ReplicationSpec
from repro.experiments.common import installer_for
from repro.telemetry import (
    PHASES,
    PRIORITY,
    Telemetry,
    critical_path,
    decompose,
    decompose_trace,
    phase_summary,
)

SUM_TOL = 1e-6  # float-rounding headroom, far below the 1 ns contract


# ----------------------------------------------------------- synthetic trees
def _request(tel, t0=0.0, t1=100.0, name="op"):
    root, tctx = tel.root(name, pid="requests", tid="c0", t0=t0,
                          args={"protocol": "test", "op": "write", "bytes": 1})
    root.t1 = t1
    root.args["ok"] = True
    return root, tctx


def test_phases_partition_the_window():
    tel = Telemetry(enabled=True)
    root, tctx = _request(tel, 0.0, 100.0)
    tel.span("w", pid="net", tid="l", t0=10.0, t1=30.0, trace=tctx, phase="wire")
    tel.span("h", pid="pspin:s", tid="c", t0=40.0, t1=70.0, trace=tctx, phase="hpu")
    (op,) = decompose(tel)
    assert op.phases["wire"] == pytest.approx(20.0)
    assert op.phases["hpu"] == pytest.approx(30.0)
    assert op.phases["other"] == pytest.approx(50.0)  # uncovered gaps
    assert op.sum_ns == pytest.approx(op.end_to_end_ns, abs=SUM_TOL)


def test_overlap_goes_to_higher_priority_phase():
    # hpu outranks dma: a DMA flushing under a running handler only
    # claims the non-overlapped tail that actually gates the ack
    tel = Telemetry(enabled=True)
    _, tctx = _request(tel, 0.0, 100.0)
    tel.span("h", pid="p", tid="c", t0=10.0, t1=50.0, trace=tctx, phase="hpu")
    tel.span("d", pid="h", tid="p", t0=30.0, t1=80.0, trace=tctx, phase="dma")
    (op,) = decompose(tel)
    assert op.phases["hpu"] == pytest.approx(40.0)
    assert op.phases["dma"] == pytest.approx(30.0)  # only [50, 80)
    assert op.sum_ns == pytest.approx(op.end_to_end_ns, abs=SUM_TOL)


def test_retransmit_claims_only_idle_time():
    # backoff windows overlap live work; retransmit sits at the bottom
    # of the priority order so it counts only otherwise-idle stall
    tel = Telemetry(enabled=True)
    _, tctx = _request(tel, 0.0, 100.0)
    tel.span("rto", pid="net", tid="n", t0=0.0, t1=100.0, trace=tctx,
             phase="retransmit")
    tel.span("w", pid="net", tid="l", t0=20.0, t1=40.0, trace=tctx, phase="wire")
    (op,) = decompose(tel)
    assert op.phases["wire"] == pytest.approx(20.0)
    assert op.phases["retransmit"] == pytest.approx(80.0)
    assert op.phases["other"] == 0.0
    assert op.sum_ns == pytest.approx(op.end_to_end_ns, abs=SUM_TOL)


def test_children_clipped_to_request_window():
    tel = Telemetry(enabled=True)
    _, tctx = _request(tel, 50.0, 100.0)
    # starts before the window, ends inside
    tel.span("w", pid="net", tid="l", t0=0.0, t1=60.0, trace=tctx, phase="wire")
    # entirely after the window (trailing ack chatter)
    tel.span("a", pid="net", tid="l", t0=150.0, t1=160.0, trace=tctx, phase="ack")
    (op,) = decompose(tel)
    assert op.phases["wire"] == pytest.approx(10.0)
    assert op.phases["ack"] == 0.0
    assert op.sum_ns == pytest.approx(op.end_to_end_ns, abs=SUM_TOL)


def test_unfinished_and_untagged_children_are_ignored():
    tel = Telemetry(enabled=True)
    root, tctx = _request(tel, 0.0, 100.0)
    tel.begin("open", pid="p", tid="t", t0=10.0, trace=tctx, phase="wire")
    tel.span("untagged", pid="p", tid="t", t0=10.0, t1=90.0, trace=tctx)
    (op,) = decompose(tel)
    assert op.phases["wire"] == 0.0
    assert op.phases["other"] == pytest.approx(100.0)


def test_decompose_orders_and_filters_roots():
    tel = Telemetry(enabled=True)
    _request(tel, 200.0, 300.0, name="late")
    _request(tel, 0.0, 100.0, name="early")
    open_root, _ = tel.root("open", pid="requests", tid="c0", t0=50.0)
    ops = decompose(tel)
    assert [op.name for op in ops] == ["early", "late"]  # start order
    assert all(op.t1 is not None for op in ops)


def test_taxonomy_is_consistent():
    assert set(PRIORITY) == set(PHASES) - {"other"}
    assert len(set(PHASES)) == len(PHASES)


def test_phase_summary_shape():
    tel = Telemetry(enabled=True)
    for i in range(4):
        _, tctx = _request(tel, i * 100.0, i * 100.0 + 50.0)
        tel.span("w", pid="net", tid="l", t0=i * 100.0 + 5.0,
                 t1=i * 100.0 + 15.0, trace=tctx, phase="wire")
    stats = phase_summary(decompose(tel))
    assert set(stats) == set(PHASES) | {"end_to_end"}
    assert stats["wire"]["p50"] == pytest.approx(10.0)
    assert stats["end_to_end"]["n"] == 4


# ------------------------------------------------------------ critical path
def test_critical_path_tiles_window_with_waits():
    tel = Telemetry(enabled=True)
    root, tctx = _request(tel, 0.0, 100.0)
    tel.span("a", pid="p", tid="t", t0=10.0, t1=40.0, trace=tctx, phase="wire")
    tel.span("b", pid="p", tid="t", t0=60.0, t1=90.0, trace=tctx, phase="hpu")
    steps = critical_path(tel, root.trace_id)
    assert [s.name for s in steps] == ["wait", "a", "wait", "b", "wait"]
    assert steps[0].t0 == 0.0 and steps[-1].t1 == 100.0
    for prev, nxt in zip(steps, steps[1:]):
        assert prev.t1 == nxt.t0  # exact tiling, no overlap, no gap
    assert sum(s.duration_ns for s in steps) == pytest.approx(100.0)


def test_critical_path_prefers_last_finisher():
    tel = Telemetry(enabled=True)
    root, tctx = _request(tel, 0.0, 100.0)
    tel.span("short", pid="p", tid="t", t0=0.0, t1=50.0, trace=tctx, phase="wire")
    tel.span("long", pid="p", tid="t", t0=0.0, t1=95.0, trace=tctx, phase="hpu")
    steps = critical_path(tel, root.trace_id)
    names = [s.name for s in steps]
    assert "long" in names and "short" not in names  # overlapped fully


def test_critical_path_unknown_trace_raises():
    tel = Telemetry(enabled=True)
    with pytest.raises(KeyError):
        critical_path(tel, 12345)


# ------------------------------------------------- real traced simulations
PROTOCOL_CASES = [
    ("raw", {}),
    ("spin", {"replication": ReplicationSpec(k=3)}),
    ("rpc", {}),
    ("rpc+rdma", {}),
    ("cpu", {"replication": ReplicationSpec(k=3)}),
    ("rdma-flat", {"replication": ReplicationSpec(k=3)}),
    ("rdma-hyperloop", {"replication": ReplicationSpec(k=3)}),
    ("inec", {"ec": EcSpec(k=3, m=2)}),
]


@pytest.mark.parametrize("protocol,create_kw", PROTOCOL_CASES,
                         ids=[p for p, _ in PROTOCOL_CASES])
def test_decomposition_exact_for_every_protocol(protocol, create_kw):
    """Every write protocol's phases sum to its end-to-end latency."""
    tb = build_testbed(n_storage=6, telemetry=True)
    installer = installer_for(protocol)
    if installer is not None:
        installer(tb)
    c = DfsClient(tb)
    size = 64 * 1024
    c.create("/f", size=size * 2, **create_kw)
    data = np.random.default_rng(3).integers(0, 256, size, dtype=np.uint8)
    kw = {"chunk_bytes": 32 * 1024} if protocol in ("cpu", "rdma-hyperloop") else {}
    out = c.write_sync("/f", data, protocol=protocol, **kw)
    assert out.ok, (protocol, out.nacks)
    tb.run(until=tb.sim.now + 200_000)

    ops = [op for op in decompose(tb.telemetry) if op.op == "write" and op.ok]
    assert ops, protocol
    for op in ops:
        assert abs(op.sum_error_ns) <= SUM_TOL, (protocol, op.sum_error_ns)
        assert op.phases["wire"] > 0.0, protocol  # data crossed the fabric
        assert op.phases["retransmit"] == 0.0, protocol  # clean run
        steps = critical_path(tb.telemetry, op.trace_id)
        assert sum(s.duration_ns for s in steps) == pytest.approx(
            op.end_to_end_ns, abs=SUM_TOL
        )


def test_spin_write_decomposes_into_expected_phases():
    tb = build_testbed(n_storage=3, telemetry=True)
    installer_for("spin")(tb)
    c = DfsClient(tb)
    c.create("/f", size=1 << 20)
    data = np.ones(64 * 1024, dtype=np.uint8)
    assert c.write_sync("/f", data, protocol="spin").ok
    tb.run(until=tb.sim.now + 200_000)
    (op,) = [o for o in decompose(tb.telemetry) if o.op == "write"]
    # a sPIN write must show client submit, wire serialization, handler
    # execution, and a durability commit
    for phase in ("submit", "wire", "hpu", "dma"):
        assert op.phases[phase] > 0.0, phase
    assert op.phases["cpu"] == 0.0  # no host CPU on the sPIN data path
