"""Experiment-registry smoke tests: every module runs in quick mode,
renders, and passes its own shape checks (cheap ones run here; the
expensive sweeps run in benchmarks/)."""

import pytest

from repro.experiments import REGISTRY


def test_registry_complete():
    expected = {
        "fig04", "fig06", "fig07", "fig09_latency", "fig09_goodput",
        "fig10", "fig11_table1", "fig15_latency", "fig15_bandwidth",
        "fig16_table2", "fig16_budget", "loss", "recovery_storm",
        "scenario_matrix", "table3", "throughput_sweep",
    }
    assert set(REGISTRY) == expected


def test_every_experiment_declares_metadata():
    for eid, mod in REGISTRY.items():
        assert mod.ID == eid
        assert isinstance(mod.TITLE, str) and mod.TITLE
        assert isinstance(mod.CLAIMS, list) and mod.CLAIMS
        assert callable(mod.run) and callable(mod.check) and callable(mod.render)


@pytest.mark.parametrize("eid", ["fig04", "fig07", "fig16_budget", "table3"])
def test_cheap_experiments_run_and_check(eid):
    mod = REGISTRY[eid]
    rows = mod.run(quick=True)
    assert rows
    mod.check(rows)
    out = mod.render(rows)
    assert isinstance(out, str) and len(out) > 50


@pytest.mark.parametrize("eid", ["fig06", "fig15_latency"])
def test_simulation_experiments_quick(eid):
    mod = REGISTRY[eid]
    rows = mod.run(quick=True)
    assert rows
    mod.check(rows)


def test_cli_list(capsys):
    from repro.experiments.__main__ import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for eid in REGISTRY:
        assert eid in out


def test_cli_unknown_experiment():
    from repro.experiments.__main__ import main

    assert main(["nope"]) == 2


def test_cli_runs_single(capsys):
    from repro.experiments.__main__ import main

    assert main(["fig04", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "82" in out or "81707" in out
