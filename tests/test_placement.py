"""Placement policy unit tests (deterministic pick behaviour)."""

import pytest

from repro.dfs.placement import (
    CapacityAwarePolicy,
    FailureDomainPolicy,
    NodeView,
    RoundRobinPolicy,
    make_policy,
)


def views(free, domains=None):
    domains = domains or list(range(len(free)))
    return [
        NodeView(name=f"sn{i}", index=i, free_bytes=f, domain=domains[i])
        for i, f in enumerate(free)
    ]


def test_round_robin_matches_seed_rotation():
    pol = RoundRobinPolicy()
    vs = views([100] * 4)
    assert pol.pick(vs, 2) == ["sn0", "sn1"]
    assert pol.pick(vs, 2) == ["sn2", "sn3"]
    assert pol.pick(vs, 3) == ["sn0", "sn1", "sn2"]  # wraps


def test_round_robin_snapshot_restore():
    pol = RoundRobinPolicy()
    vs = views([100] * 4)
    pol.pick(vs, 2)
    token = pol.snapshot()
    pol.pick(vs, 2)
    pol.restore(token)
    assert pol.pick(vs, 2) == ["sn2", "sn3"]


def test_capacity_aware_prefers_most_free():
    pol = CapacityAwarePolicy()
    vs = views([50, 400, 200, 400])
    # ties broken by index: sn1 before sn3
    assert pol.pick(vs, 3) == ["sn1", "sn3", "sn2"]


def test_failure_domain_spreads_across_racks():
    pol = FailureDomainPolicy()
    # two nodes per rack, three racks
    vs = views([100] * 6, domains=[0, 0, 1, 1, 2, 2])
    picks = pol.pick(vs, 3)
    assert len({v.domain for v in vs if v.name in picks}) == 3


def test_failure_domain_rotates_start_and_wraps():
    pol = FailureDomainPolicy()
    vs = views([100] * 4, domains=[0, 0, 1, 1])
    first = pol.pick(vs, 2)
    second = pol.pick(vs, 2)
    # both picks span the two domains, but start from different racks
    assert first != second
    # n > n_domains wraps: takes a second node from some rack
    triple = pol.pick(vs, 3)
    assert len(triple) == len(set(triple)) == 3


def test_failure_domain_capacity_aware_within_rack():
    pol = FailureDomainPolicy()
    vs = views([10, 500, 10, 500], domains=[0, 0, 1, 1])
    picks = pol.pick(vs, 2)
    assert set(picks) == {"sn1", "sn3"}  # most free in each rack


def test_factory_resolves_and_rejects():
    assert isinstance(make_policy("roundrobin"), RoundRobinPolicy)
    assert isinstance(make_policy("rr"), RoundRobinPolicy)
    assert isinstance(make_policy("capacity"), CapacityAwarePolicy)
    assert isinstance(make_policy("domain"), FailureDomainPolicy)
    inst = CapacityAwarePolicy()
    assert make_policy(inst) is inst
    with pytest.raises(ValueError):
        make_policy("alphabetical")
