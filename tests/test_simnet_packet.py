"""Unit tests for packets and message segmentation."""

import numpy as np
import pytest

from repro.simnet import (
    TRANSPORT_HEADER_BYTES,
    Message,
    as_payload,
    segment_message,
)


def _msg(nbytes, header_bytes=0, **kw):
    data = np.arange(nbytes, dtype=np.uint8) if nbytes else None
    return Message(
        src="c0", dst="s0", op="write", data=data, header_bytes=header_bytes, **kw
    )


def test_single_packet_message():
    pkts = segment_message(_msg(100), mtu=2048)
    assert len(pkts) == 1
    (p,) = pkts
    assert p.is_header and p.is_completion
    assert p.payload_bytes == 100
    assert p.size == TRANSPORT_HEADER_BYTES + 100


def test_exact_mtu_fill():
    pkts = segment_message(_msg(2048), mtu=2048)
    assert len(pkts) == 1
    assert pkts[0].payload_bytes == 2048


def test_multi_packet_segmentation_counts():
    pkts = segment_message(_msg(2049), mtu=2048)
    assert len(pkts) == 2
    assert pkts[0].payload_bytes == 2048
    assert pkts[1].payload_bytes == 1


def test_header_bytes_reduce_first_packet_budget():
    hdr = 100
    pkts = segment_message(_msg(2048, header_bytes=hdr), mtu=2048)
    assert len(pkts) == 2
    assert pkts[0].payload_bytes == 2048 - hdr
    assert pkts[0].header_bytes == hdr
    assert pkts[1].payload_bytes == hdr
    assert pkts[1].header_bytes == 0
    # headers only travel on the first packet
    assert pkts[0].size == TRANSPORT_HEADER_BYTES + 2048
    assert pkts[1].size == TRANSPORT_HEADER_BYTES + hdr


def test_payload_is_view_not_copy():
    data = np.zeros(5000, dtype=np.uint8)
    msg = Message(src="a", dst="b", op="write", data=data)
    pkts = segment_message(msg, mtu=2048)
    data[:] = 7
    for p in pkts:
        assert (p.payload == 7).all()
    assert all(p.payload.base is data for p in pkts)


def test_payload_reassembly_roundtrip():
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=10_000, dtype=np.uint8)
    msg = Message(src="a", dst="b", op="write", data=data, header_bytes=77)
    pkts = segment_message(msg, mtu=2048)
    out = np.concatenate([p.payload for p in pkts])
    assert np.array_equal(out, data)
    assert pkts[0].is_header and pkts[-1].is_completion
    assert [p.seq for p in pkts] == list(range(len(pkts)))
    assert all(p.nseq == len(pkts) for p in pkts)


def test_zero_byte_message_is_one_control_packet():
    pkts = segment_message(_msg(0, header_bytes=32), mtu=2048)
    assert len(pkts) == 1
    assert pkts[0].payload is None
    assert pkts[0].size == TRANSPORT_HEADER_BYTES + 32


def test_headers_must_fit_in_mtu():
    with pytest.raises(ValueError):
        segment_message(_msg(10, header_bytes=4096), mtu=2048)


def test_headers_dict_only_on_first_packet():
    msg = _msg(5000)
    msg.headers["cap"] = "token"
    pkts = segment_message(msg, mtu=2048)
    assert pkts[0].headers == {"cap": "token"}
    assert all(p.headers == {} for p in pkts[1:])


def test_child_packet_shares_payload_and_overrides():
    pkts = segment_message(_msg(100), mtu=2048)
    fwd = pkts[0].child(dst="s1", headers={"hop": 1})
    assert fwd.dst == "s1"
    assert fwd.payload is pkts[0].payload
    assert fwd.msg_id == pkts[0].msg_id
    assert fwd.pkt_id != pkts[0].pkt_id


def test_as_payload_accepts_bytes_and_arrays():
    a = as_payload(b"\x01\x02")
    assert a.dtype == np.uint8 and a.tolist() == [1, 2]
    arr = np.array([3, 4], dtype=np.uint8)
    assert as_payload(arr) is arr
    with pytest.raises(TypeError):
        as_payload(np.array([1.0]))


def test_packet_ids_unique():
    pkts = segment_message(_msg(10_000), mtu=2048)
    ids = [p.pkt_id for p in pkts]
    assert len(set(ids)) == len(ids)
