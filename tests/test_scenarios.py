"""Scenario specs, the matrix runner, and placement pinning."""

import textwrap

import pytest

from repro.dfs.cluster import build_testbed
from repro.dfs.layout import ReplicationSpec
from repro.dfs.metadata import MetadataError
from repro.scenarios import (
    MATRIX_NAMES,
    QUICK_NAMES,
    SCENARIOS,
    ScenarioSpec,
    get,
    load_toml,
    quick_variant,
    run_scenario,
    scenario_row_keys,
    spec_from_dict,
    spec_to_dict,
)
from repro.scenarios.spec import FaultCampaign, TopologySpec
from repro.workloads.openloop import ArrivalSpec, OpenLoopSpec


# ------------------------------------------------------------------- specs
def test_builtin_specs_validate():
    for spec in SCENARIOS.values():
        spec.validate()
    assert set(MATRIX_NAMES) <= set(SCENARIOS)
    assert set(QUICK_NAMES) <= set(MATRIX_NAMES)
    assert len(QUICK_NAMES) == 3


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_spec_dict_roundtrip(name):
    spec = SCENARIOS[name]
    assert spec_from_dict(spec_to_dict(spec)) == spec


def test_quick_variant_shrinks_but_keeps_shape():
    full = get("hot_shard")
    q = quick_variant(full)
    assert q.workload.n_users < full.workload.n_users
    assert q.workload.measure_ns < full.workload.measure_ns
    assert q.pin_top == full.pin_top
    assert q.protocol == full.protocol


def test_spec_validation_errors():
    with pytest.raises(ValueError, match="pin_node_index"):
        ScenarioSpec(
            name="x", topology=TopologySpec(n_storage=4),
            pin_top=4, pin_node_index=7,
        ).validate()
    with pytest.raises(ValueError, match="telemetry"):
        ScenarioSpec(name="x", slo_budgets=(("end_to_end.p99", 1.0),)).validate()
    with pytest.raises(ValueError, match="kill_node_index"):
        ScenarioSpec(
            name="x", topology=TopologySpec(n_storage=2),
            faults=FaultCampaign(kill_node_index=5),
        ).validate()
    with pytest.raises(ValueError):
        FaultCampaign(loss=1.5).validate()


def test_toml_round_trip(tmp_path):
    path = tmp_path / "scenarios.toml"
    path.write_text(textwrap.dedent("""\
        [[scenario]]
        name = "mini_hot"
        protocol = "spin"
        pin_top = 4
        pin_node_index = 0

        [scenario.topology]
        n_storage = 4
        n_clients = 2

        [scenario.workload]
        n_users = 100
        warmup_ns = 0.0
        measure_ns = 500000.0
        seed = 3

        [scenario.workload.arrival]
        kind = "poisson"
        rate_hz = 500.0

        [scenario.workload.popularity]
        n_objects = 16
        alpha = 1.2

        [[scenario]]
        name = "mini_burst"

        [scenario.workload]
        n_users = 50

        [scenario.workload.arrival]
        kind = "burst"
        burst_period_ns = 50000.0
        burst_jitter_ns = 5000.0
        burst_join = 0.5
    """))
    specs = load_toml(str(path))
    assert [s.name for s in specs] == ["mini_hot", "mini_burst"]
    assert specs[0].pin_top == 4
    assert specs[0].workload.arrival.rate_hz == 500.0
    assert specs[1].workload.arrival.kind == "burst"
    # loaded specs run end to end
    row = run_scenario(specs[0], seed=42)
    assert row["issued"] > 0 and row["quiesced"]


def test_toml_missing_tables(tmp_path):
    path = tmp_path / "empty.toml"
    path.write_text("title = 'nothing'\n")
    with pytest.raises(ValueError, match="scenario"):
        load_toml(str(path))


# ----------------------------------------------------------------- matrix
def test_hot_shard_pins_majority():
    row = run_scenario(get("hot_shard", quick=True), seed=77)
    assert tuple(row) == scenario_row_keys
    assert row["hot_node"] == "sn0"
    assert row["hot_share"] > 0.5
    assert row["quiesced"]


def test_row_determinism_and_engine_equivalence():
    spec = get("incast", quick=True)
    r1 = run_scenario(spec, seed=5)
    r2 = run_scenario(spec, seed=5)
    assert r1 == r2
    r3 = run_scenario(spec, seed=5, engine="explicit")
    # engine choice is reported but changes nothing observable
    assert {k: v for k, v in r1.items() if k != "engine"} == \
        {k: v for k, v in r3.items() if k != "engine"}


def test_timings_out_param():
    timings = {}
    run_scenario(get("uniform_onoff", quick=True), seed=1, timings=timings)
    assert timings["events"] > 0


def test_matrix_rows_jobs_parity():
    """--jobs fan-out must reproduce the serial rows byte for byte."""
    from repro.experiments import scenario_matrix as sm

    rows1 = sm.run(quick=True, jobs=1, cache=False)
    rows2 = sm.run(quick=True, jobs=2, cache=False)
    assert rows1 == rows2
    sm.check(rows1)


def test_kill_campaign_runs():
    spec = ScenarioSpec(
        name="crashy",
        topology=TopologySpec(n_storage=4, n_clients=2),
        workload=OpenLoopSpec(
            n_users=200,
            arrival=ArrivalSpec(kind="poisson", rate_hz=300.0),
            warmup_ns=0.0,
            measure_ns=2_000_000.0,
            seed=2,
        ),
        protocol="spin",
        faults=FaultCampaign(kill_node_index=1, kill_at_ns=500_000.0),
    )
    row = run_scenario(spec, seed=13)
    assert row["issued"] > 0
    # writes against the dead node fail in bounded time, survivors flow
    assert row["failures"] > 0
    assert row["ops"] > 0


# ------------------------------------------------------------ pin placement
def test_pin_nodes_places_and_validates():
    tb = build_testbed(n_storage=4, n_clients=1)
    md = tb.metadata
    lay = md.create("/pinned", size=4096, pin_nodes=["sn2"])
    assert lay.extents[0].node == "sn2"
    lay3 = md.create("/pinned3", size=4096,
                     replication=ReplicationSpec(k=3),
                     pin_nodes=["sn3", "sn0", "sn1"])
    assert [e.node for e in lay3.extents] == ["sn3", "sn0", "sn1"]
    with pytest.raises(MetadataError, match="needs"):
        md.create("/bad1", size=4096, replication=ReplicationSpec(k=3),
                  pin_nodes=["sn0"])
    with pytest.raises(MetadataError, match="unknown"):
        md.create("/bad2", size=4096, pin_nodes=["sn99"])
    with pytest.raises(MetadataError, match="distinct"):
        md.create("/bad3", size=4096, replication=ReplicationSpec(k=2),
                  pin_nodes=["sn0", "sn0"])


def test_pin_nodes_does_not_advance_policy_cursor():
    def first_policy_node(pin_first: bool) -> str:
        tb = build_testbed(n_storage=4, n_clients=1)
        if pin_first:
            tb.metadata.create("/pin", size=1024, pin_nodes=["sn3"])
        return tb.metadata.create("/plain", size=1024).extents[0].node

    assert first_policy_node(pin_first=True) == first_policy_node(pin_first=False)
