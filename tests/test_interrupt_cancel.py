"""Interrupting a process must withdraw its queued resource claims.

Before the ``_abandon`` hook, interrupting a process that was waiting in
a Resource/Store/Container queue left the dead claim enqueued: the next
release granted a slot to a corpse and the pool leaked forever.  These
tests pin the cancellation semantics for all three primitives.
"""

import pytest

from repro.simnet import Container, Resource, SimulationError, Simulator, Store
from repro.simnet.engine import Interrupt


# ---------------------------------------------------------------- Resource
def test_interrupt_while_queued_releases_resource_slot():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(10)
        res.release(req)

    def waiter():
        req = res.request()
        try:
            yield req
            log.append("granted")
            res.release(req)
        except Interrupt:
            log.append("interrupted")

    def late():
        yield sim.timeout(20)
        req = res.request()
        yield req
        log.append(("late", sim.now))
        res.release(req)

    sim.process(holder())
    victim = sim.process(waiter())
    sim.process(late())
    sim.run(until=5)
    victim.interrupt("cancelled")
    sim.run()
    # the victim never got the slot, and its queued claim did not eat
    # the grant when the holder released: the late arrival got it
    assert log == ["interrupted", ("late", 20.0)]
    assert not res.users and not res.queue


def test_interrupt_while_holding_resource_releases_in_finally():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        req = res.request()
        yield req
        try:
            yield sim.timeout(100)
        except Interrupt:
            pass
        finally:
            res.release(req)

    p = sim.process(holder())
    sim.run(until=5)
    p.interrupt()
    sim.run()
    assert not res.users and not res.queue


# ------------------------------------------------------------------- Store
def test_interrupted_store_getter_does_not_consume_item():
    sim = Simulator()
    store = Store(sim)

    def getter():
        with pytest.raises(Interrupt):
            yield store.get()

    p = sim.process(getter())
    sim.run(until=1)
    p.interrupt()
    sim.run()
    store.put("x")
    sim.run()
    # the cancelled getter must not have swallowed the item
    assert list(store.items) == ["x"]


def test_interrupted_store_putter_does_not_deposit_item():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put("first")

    def putter():
        with pytest.raises(Interrupt):
            yield store.put("second")

    p = sim.process(putter())
    sim.run(until=1)
    p.interrupt()
    sim.run()
    assert len(store) == 1
    got = store.get()
    sim.run()
    assert got.value == "first"
    # the cancelled putter's item never entered the store
    assert len(store) == 0 and not store._putters


# --------------------------------------------------------------- Container
def test_interrupted_container_getter_leaves_queue_clean():
    sim = Simulator()
    box = Container(sim, capacity=10, init=0)

    def getter(n, tag, log):
        try:
            yield box.get(n)
            log.append(tag)
        except Interrupt:
            log.append(f"{tag}-interrupted")

    log = []
    victim = sim.process(getter(8, "a", log))
    sim.process(getter(4, "b", log))
    sim.run(until=1)
    victim.interrupt()
    sim.run()
    # the withdrawn 8-unit claim must not block the 4-unit claim behind it
    box.put(4)
    sim.run()
    assert log == ["a-interrupted", "b"]
    assert box.level == 0 and not box._getters


def test_container_over_return_raises():
    sim = Simulator()
    box = Container(sim, capacity=10, init=10)
    ev = box.get(3)
    sim.run()
    assert ev.triggered and box.level == 7
    box.put(3)
    with pytest.raises(SimulationError, match="over-returned"):
        box.put(1)
    # level untouched by the rejected put
    assert box.level == 10
