"""Policy-level behavioural tests: forwarding fan-out, EC streams,
accumulator usage, dispatch routing."""

import numpy as np
import pytest

from repro import DfsClient, EcSpec, ReplicationSpec, build_testbed
from repro.core.policies.dispatch import DispatchPolicy
from repro.core.policies.erasure import rs_for
from repro.protocols import install_spin_targets

KiB = 1024


def make(n=10):
    tb = build_testbed(n_storage=n)
    install_spin_targets(tb)
    return tb, DfsClient(tb)


def n_packets(size, header_bytes, mtu=2048):
    first = mtu - header_bytes
    if size <= first:
        return 1
    return 1 + -(-(size - first) // mtu)


# ------------------------------------------------------------- replication
def test_ring_forwards_every_packet_once_per_hop():
    tb, c = make()
    k = 4
    lay = c.create("/f", size=256 * KiB, replication=ReplicationSpec(k=k, strategy="ring"))
    size = 200 * KiB
    assert c.write_sync("/f", np.zeros(size, np.uint8), protocol="spin").ok
    # each non-tail node forwards every packet of the stream exactly
    # once (acks travel via send_control and are not counted here)
    tail = lay.extents[-1].node
    for ext in lay.extents:
        acc = tb.node(ext.node).accelerator
        if ext.node == tail:
            assert acc.forwarded_packets == 0, "tail must not forward"
        else:
            assert acc.forwarded_packets == acc.packets_processed, ext.node


def test_pbt_root_forwards_twice():
    tb, c = make()
    lay = c.create("/f", size=64 * KiB, replication=ReplicationSpec(k=3, strategy="pbt"))
    size = 60 * KiB
    assert c.write_sync("/f", np.zeros(size, np.uint8), protocol="spin").ok
    root = tb.node(lay.primary.node).accelerator
    # root sends 2 copies of every packet
    assert root.forwarded_packets == 2 * root.packets_processed
    for ext in lay.extents[1:]:
        leaf = tb.node(ext.node).accelerator
        assert leaf.forwarded_packets == 0  # leaves only ack


def test_k1_replication_degenerates_to_plain_write():
    tb, c = make()
    lay = c.create("/f", size=16 * KiB, replication=ReplicationSpec(k=1))
    out = c.write_sync("/f", np.ones(8 * KiB, np.uint8), protocol="spin")
    assert out.ok
    acc = tb.node(lay.primary.node).accelerator
    assert acc.forwarded_packets == 0  # no data forwards, only the ack


# ------------------------------------------------------------------ erasure
def test_data_nodes_emit_m_parity_streams():
    tb, c = make()
    k, m = 3, 2
    lay = c.create("/f", size=96 * KiB, ec=EcSpec(k=k, m=m))
    assert c.write_sync("/f", np.zeros(96 * KiB, np.uint8), protocol="spin").ok
    for ext in lay.extents:
        acc = tb.node(ext.node).accelerator
        # m encoded copies of every chunk packet
        assert acc.forwarded_packets == m * acc.packets_processed


def test_parity_nodes_receive_k_streams():
    tb, c = make()
    k, m = 4, 2
    lay = c.create("/f", size=80 * KiB, ec=EcSpec(k=k, m=m))
    assert c.write_sync("/f", np.zeros(80 * KiB, np.uint8), protocol="spin").ok
    chunk = lay.chunk_length()
    for ext in lay.parity_extents:
        acc = tb.node(ext.node).accelerator
        state = tb.node(ext.node).dfs_state
        assert state.requests_started == k  # one stream per data node
        assert acc.forwarded_packets == 0  # aggregation only, no forwards


def test_accumulators_drained_after_block():
    tb, c = make()
    lay = c.create("/f", size=120 * KiB, ec=EcSpec(k=3, m=2))
    assert c.write_sync("/f", np.zeros(120 * KiB, np.uint8), protocol="spin").ok
    for node in tb.storage_nodes:
        if node.dfs_state is not None:
            assert node.dfs_state.accumulators.in_use == 0
            assert node.dfs_state.accumulators.fallbacks == 0


def test_parity_ack_only_after_all_streams():
    """The parity node must not ack until all k CHs completed."""
    tb, c = make()
    k, m = 3, 1
    lay = c.create("/f", size=60 * KiB, ec=EcSpec(k=k, m=m))
    out = c.write_sync("/f", np.zeros(60 * KiB, np.uint8), protocol="spin")
    assert out.ok
    pnode = tb.node(lay.parity_extents[0].node)
    # no data ever leaves the parity node; the single block ack goes out
    # via the control path
    assert pnode.accelerator.forwarded_packets == 0
    assert pnode.dfs_state.requests_completed == k


def test_rs_for_caches():
    a = rs_for(3, 2)
    b = rs_for(3, 2)
    c_ = rs_for(6, 3)
    assert a is b and a is not c_


# ------------------------------------------------------------------ dispatch
def test_dispatch_routes_by_headers():
    from repro.core.request import (
        DfsHeader,
        EcParams,
        ReplicaCoord,
        ReplicationParams,
        WriteRequestHeader,
    )
    from repro.simnet.packet import Packet

    d = DispatchPolicy()

    def pkt(wrh=None, op="write"):
        headers = {"dfs": DfsHeader(1, op, 1, capability=None)}
        if wrh:
            headers["wrh"] = wrh
        return Packet(src="a", dst="b", op="write", msg_id=1, seq=0, nseq=1,
                      headers=headers)

    assert d._pick(pkt()) is d.auth
    assert d._pick(pkt(WriteRequestHeader(addr=0))) is d.auth
    rp = ReplicationParams("ring", 0, (ReplicaCoord("x", 0),))
    assert d._pick(pkt(WriteRequestHeader(addr=0, resiliency="replication",
                                          replication=rp))) is d.replication
    ecd = EcParams(k=2, m=1, role="data", index=0, block_id=1)
    assert d._pick(pkt(WriteRequestHeader(addr=0, resiliency="ec", ec=ecd))) is d.ec_data
    ecp = EcParams(k=2, m=1, role="parity", index=0, block_id=1)
    assert d._pick(pkt(WriteRequestHeader(addr=0, resiliency="ec", ec=ecp))) is d.ec_parity
    assert d._pick(pkt(op="read")) is d.read
