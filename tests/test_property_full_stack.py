"""Hypothesis property tests over the full simulated DFS stack.

These fuzz write sizes, replication factors, strategies, and EC schemes
through the complete datapath and check the end-to-end invariants the
paper's correctness rests on: byte-identical replicas, decodable
parity, request-table hygiene, and simulator determinism.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DfsClient, EcSpec, ReplicationSpec, build_testbed
from repro.protocols import install_spin_targets

slow = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def run_write(size, replication=None, ec=None, seed=0, strategy="ring"):
    tb = build_testbed(n_storage=10)
    install_spin_targets(tb)
    c = DfsClient(tb)
    repl = ReplicationSpec(k=replication, strategy=strategy) if replication else None
    ecs = EcSpec(*ec) if ec else None
    lay = c.create("/f", size=max(size, (ecs.k if ecs else 1)), replication=repl, ec=ecs)
    data = np.random.default_rng(seed).integers(0, 256, size, dtype=np.uint8)
    out = c.write_sync("/f", data, protocol="spin")
    return tb, c, lay, data, out


@slow
@given(
    size=st.integers(min_value=1, max_value=64 * 1024),
    k=st.integers(min_value=1, max_value=5),
    strategy=st.sampled_from(["ring", "pbt"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_replicated_write_invariants(size, k, strategy, seed):
    repl = k if k > 1 else None
    tb, c, lay, data, out = run_write(size, replication=repl, seed=seed, strategy=strategy)
    assert out.ok
    # every replica byte-identical to the written data
    for e in lay.extents:
        got = tb.node(e.node).memory.view(e.addr, data.nbytes)
        assert np.array_equal(got, data)
    # request tables fully drained, no leaked NIC memory descriptors
    for node in tb.storage_nodes:
        if node.dfs_state is not None:
            assert not node.dfs_state.req_table
            assert (
                node.dfs_state.requests_completed
                == node.dfs_state.requests_started
            )


@slow
@given(
    size=st.integers(min_value=1, max_value=48 * 1024),
    k=st.integers(min_value=2, max_value=5),
    m=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_ec_write_invariants(size, k, m, seed):
    tb, c, lay, data, out = run_write(size, ec=(k, m), seed=seed)
    assert out.ok
    # survive any single failure; decode equals original
    rng = np.random.default_rng(seed)
    nodes = [e.node for e in list(lay.extents) + list(lay.parity_extents)]
    fail = set(rng.choice(nodes, size=min(m, len(nodes)), replace=False).tolist())
    recovered = c.recover("/f", fail)
    # the object may be created larger than the bytes written (size >= k);
    # the written prefix must decode exactly
    assert np.array_equal(recovered[: data.nbytes], data)
    # no accumulators leaked on parity nodes
    for node in tb.storage_nodes:
        if node.dfs_state is not None:
            assert node.dfs_state.accumulators.in_use == 0


@slow
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=16 * 1024), min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_back_to_back_writes_independent(sizes, seed):
    """Sequential writes to distinct regions never interfere."""
    tb = build_testbed(n_storage=4)
    install_spin_targets(tb)
    c = DfsClient(tb)
    rng = np.random.default_rng(seed)
    blobs = []
    for i, size in enumerate(sizes):
        c.create(f"/f{i}", size=size)
        blobs.append(rng.integers(0, 256, size, dtype=np.uint8))
        assert c.write_sync(f"/f{i}", blobs[i], protocol="spin").ok
    for i, blob in enumerate(blobs):
        assert np.array_equal(c.read_back(f"/f{i}")[: blob.nbytes], blob)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    size=st.integers(min_value=1, max_value=32 * 1024),
    k=st.integers(min_value=2, max_value=4),
)
def test_simulation_deterministic(size, k):
    """Identical inputs produce identical latencies and traces."""

    def once():
        tb, c, lay, data, out = run_write(size, replication=k, seed=7)
        return out.latency_ns, tb.sim.now

    assert once() == once()


@slow
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_byte_conservation(seed):
    """Every payload byte the client sends is accounted for: stored
    bytes == written bytes x replication factor."""
    size = 20_000
    k = 3
    tb, c, lay, data, out = run_write(size, replication=k, seed=seed)
    stored = sum(tb.node(e.node).memory.bytes_written for e in lay.extents)
    assert stored == size * k
