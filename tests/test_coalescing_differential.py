"""Differential tests for the packet-train coalescing fast path.

Coalescing is a pure performance optimisation: every observable —
operation outcomes, completion times, telemetry spans, metric counters,
gauge trajectories, histograms, and hardware counters — must be
byte-identical between the fast path (``sim.coalescing=True``, the
default) and the forced slow path (``coalescing=False``).

Two passes are required because they exercise *different* fast paths:

* telemetry **on** — trains still form on the wire, but the accelerator
  commits handlers eagerly (per distinct timestamp) and PCIe runs its
  full callback chain, so spans/metrics must line up sample for sample;
* telemetry **off** — the lazy single-wake train driver and the
  closed-form PCIe scheduler take over; only outcomes, the final clock,
  and hardware counters remain observable, and they must not move.

A third group covers the coalescing x faults contract: an armed
:class:`~repro.faults.FaultInjector` must prevent train formation
entirely (trains bypass per-packet fault checks, so forming one would
skip the injector), while results stay identical with the PR 2
retransmission layer doing the repairs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DfsClient, EcSpec, ReplicationSpec, build_testbed
from repro.params import SimParams
from repro.protocols import (
    install_cpu_replication_targets,
    install_hyperloop_targets,
    install_inec_targets,
    install_rpc_rdma_targets,
    install_rpc_targets,
    install_spin_targets,
)
from repro.simnet.link import Port

KiB = 1024


def _data(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8)


def _build(coalescing, telemetry, topology="star", backend="nvmm", faults=None,
           n_storage=6):
    params = SimParams(coalescing=coalescing)
    if faults:
        params = params.with_faults(**faults)
    return build_testbed(
        n_storage=n_storage, params=params, topology=topology,
        storage_backend=backend, telemetry=telemetry,
    )


def _tel_sig(tb):
    """Full telemetry signature: spans, counters, gauge internals, hists."""
    tel = tb.sim.telemetry
    spans = sorted((s.name, s.cat, s.pid, s.tid, s.t0, s.t1) for s in tel.spans)
    m = tel.metrics
    counters = {n: c.value for n, c in m.counters.items()}
    gauges = {n: (len(g.times), g.last, g.max, g._area, g._last_t)
              for n, g in m.gauges.items()}
    hists = {n: sorted(h.values) for n, h in m.histograms.items()}
    return spans, counters, gauges, hists


def _hw_sig(tb):
    """Hardware-counter signature (the observables left with telemetry
    off): final clock plus per-node PCIe and accelerator counters."""
    sig = {"now": tb.sim.now}
    for name, node in sorted(tb.storage.items()):
        acc = node.accelerator
        sig[name] = (
            node.pcie.busy_ns,
            node.pcie.bytes_transferred,
            node.pcie.transactions,
            None if acc is None else (acc.packets_processed, acc.packets_dropped),
        )
    for node in tb.clients:
        sig[node.name] = (node.pcie.busy_ns, node.pcie.bytes_transferred,
                          node.pcie.transactions)
    return sig


# ---------------------------------------------------------------- scenarios

LOSS = dict(seed=42, loss_prob=0.05, corrupt_prob=0.03, retransmit=True)


def _run_spin_scenario(name, coalescing, telemetry, topology="star",
                       backend="nvmm", faults=None):
    tb = _build(coalescing, telemetry, topology=topology, backend=backend,
                faults=faults)
    install_spin_targets(tb)
    c = DfsClient(tb)
    results = []
    if name == "auth":
        c.create("/f", size=64 * KiB)
        out = c.write_sync("/f", _data(64 * KiB), protocol="spin")
        results.append((out.ok, out.latency_ns))
        results.append(bytes(c.read_back("/f")[:100]))
    elif name == "rep":
        c.create("/r", size=32 * KiB, replication=ReplicationSpec(k=3))
        out = c.write_sync("/r", np.full(32 * KiB, 7, np.uint8), protocol="spin")
        results.append((out.ok, out.latency_ns))
    elif name == "ec":
        c.create("/e", size=96 * KiB, ec=EcSpec(k=3, m=2))
        out = c.write_sync("/e", _data(96 * KiB), protocol="spin")
        results.append((out.ok, out.latency_ns))
    elif name == "multi":
        c.create("/a", size=32 * KiB)
        c.create("/b", size=32 * KiB)
        for path in ("/a", "/b"):
            out = c.write_sync(path, np.full(32 * KiB, 9, np.uint8), protocol="spin")
            results.append((out.ok, out.latency_ns))
    else:  # pragma: no cover - guard against typos in the param list
        raise ValueError(name)
    results.append(tb.sim.now)
    return results, tb


TEL_CASES = [
    ("auth", {}),
    ("rep", {}),
    ("ec", {}),
    ("multi", {}),
    ("auth", {"topology": "leafspine"}),
    ("auth", {"faults": LOSS}),
    ("rep", {"faults": dict(seed=7, loss_prob=0.08, retransmit=True)}),
]


@pytest.mark.parametrize(
    "name,kw", TEL_CASES,
    ids=[f"{n}{'-' + '-'.join(k) if k else ''}" for n, k in TEL_CASES],
)
def test_telemetry_differential(name, kw):
    rf, tbf = _run_spin_scenario(name, True, True, **kw)
    rs, tbs = _run_spin_scenario(name, False, True, **kw)
    assert rf == rs
    sf, ss = _tel_sig(tbf), _tel_sig(tbs)
    assert sf[0] == ss[0], "span multisets differ"
    assert sf[1] == ss[1], "counters differ"
    assert sf[2] == ss[2], "gauge trajectories differ"
    assert sf[3] == ss[3], "histograms differ"


TELOFF_CASES = [
    ("auth", {}),
    ("rep", {}),
    ("ec", {}),
    ("multi", {}),
    ("auth", {"backend": "nvme"}),
    ("auth", {"topology": "leafspine"}),
    ("auth", {"faults": LOSS}),
    ("ec", {"faults": dict(seed=3, corrupt_prob=0.05, retransmit=True)}),
]


@pytest.mark.parametrize(
    "name,kw", TELOFF_CASES,
    ids=[f"{n}{'-' + '-'.join(k) if k else ''}" for n, k in TELOFF_CASES],
)
def test_teloff_differential(name, kw):
    """With telemetry off the lazy commit + closed-form PCIe paths run;
    outcomes, the final clock, and hardware counters must be identical."""
    rf, tbf = _run_spin_scenario(name, True, False, **kw)
    rs, tbs = _run_spin_scenario(name, False, False, **kw)
    assert rf == rs
    assert _hw_sig(tbf) == _hw_sig(tbs)
    if name == "auth" and not kw:
        # single-target 64 KiB: long trains form, so the lazy train/PCIe
        # paths must engage and dispatch measurably fewer kernel events
        # (EC/replication scenarios fan out and may break even).
        assert tbf.sim.events_dispatched < 0.7 * tbs.sim.events_dispatched


# ------------------------------------------------------- every protocol

PROTO = {
    "spin": (install_spin_targets, {}, {}),
    "raw": (None, {}, {}),
    "rpc": (install_rpc_targets, {}, {}),
    "rpc+rdma": (install_rpc_rdma_targets, {}, {}),
    "cpu": (install_cpu_replication_targets,
            {"replication": ReplicationSpec(k=2)}, {"chunk_bytes": 32 * KiB}),
    "rdma-flat": (None, {"replication": ReplicationSpec(k=2)}, {}),
    "rdma-hyperloop": (install_hyperloop_targets,
                       {"replication": ReplicationSpec(k=2)},
                       {"chunk_bytes": 32 * KiB}),
    "inec": (install_inec_targets, {"ec": EcSpec(k=3, m=2)}, {}),
}


def _run_protocol(protocol, coalescing, telemetry, faults):
    installer, create_kw, write_kw = PROTO[protocol]
    tb = _build(coalescing, telemetry, faults=faults)
    if installer is not None:
        installer(tb)
    c = DfsClient(tb)
    size = 96 * KiB if protocol == "inec" else 64 * KiB
    c.create("/f", size=size, **create_kw)
    out = c.write_sync("/f", _data(size), protocol=protocol, **write_kw)
    return (out.ok, out.latency_ns, tb.sim.now), tb


@pytest.mark.parametrize("faults", [None, LOSS], ids=["clean", "faulty"])
@pytest.mark.parametrize("protocol", list(PROTO))
def test_every_protocol_differential(protocol, faults):
    """Fast vs forced-slow: identical completion times and telemetry on
    every write protocol, with and without seeded faults (tentpole
    acceptance)."""
    rf_on, tbf_on = _run_protocol(protocol, True, True, faults)
    rs_on, tbs_on = _run_protocol(protocol, False, True, faults)
    assert rf_on == rs_on
    assert _tel_sig(tbf_on) == _tel_sig(tbs_on)
    rf_off, tbf_off = _run_protocol(protocol, True, False, faults)
    rs_off, tbs_off = _run_protocol(protocol, False, False, faults)
    assert rf_off == rs_off
    assert _hw_sig(tbf_off) == _hw_sig(tbs_off)
    # telemetry must never perturb simulated time
    assert rf_on[2] == rf_off[2]


# ------------------------------------------------- coalescing x faults

FAULT_SWEEP = [
    dict(seed=11, loss_prob=0.06, retransmit=True),
    dict(seed=12, corrupt_prob=0.06, retransmit=True),
    dict(seed=13, loss_prob=0.04, corrupt_prob=0.04, retransmit=True),
]


def _counting_trains(monkeypatch):
    formed = [0]
    orig = Port.try_send_train

    def counting(self, *a, **kw):
        st = orig(self, *a, **kw)
        if st is not None:
            formed[0] += 1
        return st

    monkeypatch.setattr(Port, "try_send_train", counting)
    return formed


def test_trains_form_on_clean_network(monkeypatch):
    formed = _counting_trains(monkeypatch)
    _run_spin_scenario("auth", True, False)
    assert formed[0] > 0


@pytest.mark.parametrize("faults", FAULT_SWEEP,
                         ids=["loss", "corrupt", "loss+corrupt"])
def test_trains_never_skip_armed_injector(monkeypatch, faults):
    """With any armed injector, zero trains may form (a train would
    bypass the per-packet egress verdicts) — and the retransmission
    layer must still converge to identical results either way."""
    formed = _counting_trains(monkeypatch)
    rf, tbf = _run_spin_scenario("rep", True, False, faults=faults)
    assert tbf.faults is not None
    assert tbf.faults.drops + tbf.faults.corrupted > 0, "injector never struck"
    assert formed[0] == 0
    rs, _ = _run_spin_scenario("rep", False, False, faults=faults)
    assert rf == rs


def test_trains_never_skip_link_down_window(monkeypatch):
    """A scheduled link outage also arms the injector: no trains, and
    the write still completes via retransmission after the window."""
    from repro.faults import DownWindow

    faults = dict(
        seed=5,
        link_down=(DownWindow(target="switch->sn0", t0_ns=0.0, t1_ns=30_000.0),),
        retransmit=True,
    )
    formed = _counting_trains(monkeypatch)
    rf, tbf = _run_spin_scenario("auth", True, False, faults=faults)
    assert tbf.faults is not None
    assert formed[0] == 0
    assert rf[0][0] is True  # the write succeeded despite the outage
    rs, _ = _run_spin_scenario("auth", False, False, faults=faults)
    assert rf == rs


@pytest.mark.parametrize("delay_ns", [390, 420, 435, 450, 480])
def test_teardown_after_completion_commit_still_acks(delay_ns):
    """A competing write landing just after a paced train's completion
    handler committed (the short tail packet finishes before full-MTU
    packets) tears the train down with stage[last] already final.  The
    reparented completion tail must still run — for a ~60 ns window of
    ``delay_ns`` the first write used to hang forever, reaped by the
    cleanup sweeper without ever acking the client."""
    tb = build_testbed(n_storage=2, n_clients=2)
    install_spin_targets(tb)
    a = DfsClient(tb, client_index=0, principal="a")
    b = DfsClient(tb, client_index=1, principal="b")
    tb.metadata.create("/big", size=16384, pin_nodes=["sn0"])
    tb.metadata.create("/small", size=2048, pin_nodes=["sn0"])
    a.open("/big")
    b.open("/small")
    big = _data(16384)
    small = _data(2048, seed=1)
    evs = []

    def go():
        evs.append(a.write("/big", big, protocol="spin"))
        yield tb.sim.timeout(float(delay_ns))
        evs.append(b.write("/small", small, protocol="spin"))

    tb.sim.process(go())
    tb.run(until=5_000_000)
    assert all(e.triggered for e in evs), "a write never completed"
    assert all(e.value.ok for e in evs)
