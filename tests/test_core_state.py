"""DfsState / request table / accumulator pool tests."""

import numpy as np
import pytest

from repro.core.state import AccumulatorPool, DfsState
from repro.params import PsPinParams
from repro.pspin.memory import NicMemory
from repro.simnet import Simulator


@pytest.fixture
def state():
    nm = NicMemory(Simulator(), PsPinParams())
    return DfsState(nm, PsPinParams(), authority=None, n_accumulators=4,
                    accumulator_bytes=256)


def test_wide_state_includes_gf_table(state):
    # the 64 KiB MUL table + keys live in the reserved region (§VI-B2)
    used_wide = state.nicmem.wide.capacity - state.nicmem.wide.level
    assert used_wide >= 64 * 1024


def test_request_lifecycle(state):
    e = state.alloc_request(flow_id=1, greq_id=10, cluster=0, accept=True, now_ns=5.0)
    assert e is not None and e.tier == "l1"
    assert state.get_request(1) is e
    assert state.requests_started == 1
    state.free_request(1)
    assert state.get_request(1) is None
    assert state.requests_completed == 1
    assert state.nicmem.in_use_bytes() == 0


def test_request_descriptor_is_77_bytes(state):
    state.alloc_request(1, 10, 0, True, 0.0)
    assert state.nicmem.in_use_bytes() == 77


def test_free_cleaned_counts_separately(state):
    state.alloc_request(1, 10, 0, True, 0.0)
    state.free_request(1, cleaned=True)
    assert state.requests_cleaned == 1 and state.requests_completed == 0


def test_free_unknown_is_noop(state):
    state.free_request(999)  # must not raise


def test_peak_concurrent_tracking(state):
    for i in range(5):
        state.alloc_request(i, i, 0, True, 0.0)
    for i in range(5):
        state.free_request(i)
    assert state.peak_concurrent == 5


def test_denial_counted_when_memory_full():
    params = PsPinParams()
    nm = NicMemory(Simulator(), params)
    st = DfsState(nm, params)
    for c in range(params.n_clusters):
        nm.l1[c].try_get(nm.l1[c].level)
    nm.l2.try_get(nm.l2.level)
    assert st.alloc_request(1, 1, 0, True, 0.0) is None
    assert st.requests_denied_mem == 1


def test_host_event_queue(state):
    state.post_host_event({"type": "x"})
    state.post_host_event({"type": "y"})
    assert [e["type"] for e in state.drain_host_events()] == ["x", "y"]
    assert state.drain_host_events() == []


# --------------------------------------------------------------- accumulators
def test_accumulator_acquire_release(state):
    pool = state.accumulators
    a = pool.acquire(("b", 0, 0))
    assert a is not None and a.nbytes == 256 and not a.any()
    assert pool.lookup(("b", 0, 0)) is a
    assert pool.in_use == 1
    pool.release(("b", 0, 0))
    assert pool.in_use == 0
    assert pool.lookup(("b", 0, 0)) is None


def test_accumulator_acquire_idempotent_for_same_key(state):
    pool = state.accumulators
    a = pool.acquire(("k",))
    b = pool.acquire(("k",))
    assert a is b and pool.in_use == 1


def test_accumulator_exhaustion_falls_back(state):
    pool = state.accumulators
    for i in range(4):
        assert pool.acquire(("k", i)) is not None
    assert pool.acquire(("k", 99)) is None
    assert pool.fallbacks == 1
    pool.release(("k", 0))
    assert pool.acquire(("k", 99)) is not None


def test_accumulator_reuse_is_zeroed(state):
    pool = state.accumulators
    a = pool.acquire(("k1",))
    a[:] = 0xFF
    pool.release(("k1",))
    b = pool.acquire(("k2",))
    assert not b.any()


def test_accumulator_peak_tracking(state):
    pool = state.accumulators
    pool.acquire(("a",))
    pool.acquire(("b",))
    pool.release(("a",))
    pool.acquire(("c",))
    assert pool.peak_in_use == 2


def test_accumulator_pool_must_fit_nic_memory():
    nm = NicMemory(Simulator(), PsPinParams())
    with pytest.raises(MemoryError):
        DfsState(nm, PsPinParams(), n_accumulators=10_000, accumulator_bytes=2048)


def test_zero_accumulator_pool():
    nm = NicMemory(Simulator(), PsPinParams())
    st = DfsState(nm, PsPinParams(), n_accumulators=0)
    assert st.accumulators.acquire(("x",)) is None
    assert st.accumulators.fallbacks == 1
