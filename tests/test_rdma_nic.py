"""RDMA NIC tests: one-sided write/read, RPC delivery, ack handling."""

import numpy as np
import pytest

from repro.dfs.cluster import build_testbed
from repro.dfs.nodes import ClientNode, StorageNode
from repro.params import SimParams


@pytest.fixture
def tb():
    return build_testbed(n_storage=3, n_clients=2)


def _data(n, seed=0):
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8)


def test_one_sided_write_lands_in_memory(tb):
    client = tb.clients[0]
    data = _data(10_000)
    ev = client.nic.post_write("sn0", data, headers={"addr": 128})
    res = tb.run_until(ev)
    assert res.ok
    assert np.array_equal(tb.node("sn0").memory.view(128, 10_000), data)


def test_write_latency_includes_post_and_completion(tb):
    client = tb.clients[0]
    ev = client.nic.post_write("sn0", _data(100), headers={"addr": 0})
    res = tb.run_until(ev)
    p = tb.params
    floor = p.client_post_ns + p.nic_tx_ns + p.nic_rx_ns + p.client_completion_ns
    assert res.latency_ns > floor


def test_rdma_write_acks_before_flush(tb):
    """RDMA semantics (§III-B1): the ack races the PCIe flush."""
    client = tb.clients[0]
    data = _data(4096)
    ev = client.nic.post_write("sn0", data, headers={"addr": 0})
    res = tb.run_until(ev)
    assert res.ok
    # data becomes durable shortly after; let DMA drain
    tb.run(until=tb.sim.now + 10_000)
    assert np.array_equal(tb.node("sn0").memory.view(0, 4096), data)


def test_one_sided_read_roundtrip(tb):
    data = _data(30_000, seed=3)
    tb.node("sn1").memory.write(512, data)
    client = tb.clients[0]
    ev = client.nic.post_read("sn1", addr=512, length=30_000)
    res = tb.run_until(ev)
    assert res.ok
    assert np.array_equal(res.data, data)


def test_read_of_zeros(tb):
    client = tb.clients[0]
    res = tb.run_until(client.nic.post_read("sn0", addr=0, length=64))
    assert res.ok and not res.data.any()


def test_rpc_request_response(tb):
    node = tb.node("sn0")

    def handler(n: StorageNode, headers, payload, src):
        yield from n.cpu.run(100)
        n.respond(src, headers["greq_id"], f"echo:{headers['x']}:{payload.nbytes}")

    node.register_rpc("echo", handler)
    client = tb.clients[0]
    ev = client.nic.post_rpc("sn0", {"rpc": "echo", "x": 7}, data=_data(500))
    res = tb.run_until(ev)
    assert res.ok and res.data == "echo:7:500"
    assert node.rpcs_served == 1


def test_unknown_rpc_errors(tb):
    client = tb.clients[0]
    res = tb.run_until(client.nic.post_rpc("sn0", {"rpc": "nope"}))
    assert not res.ok


def test_concurrent_writes_from_two_clients(tb):
    c0, c1 = tb.clients
    d0, d1 = _data(8000, 1), _data(8000, 2)
    e0 = c0.nic.post_write("sn0", d0, headers={"addr": 0})
    e1 = c1.nic.post_write("sn0", d1, headers={"addr": 16_384})
    r0 = tb.run_until(e0)
    r1 = tb.run_until(e1)
    assert r0.ok and r1.ok
    tb.run(until=tb.sim.now + 10_000)
    assert np.array_equal(tb.node("sn0").memory.view(0, 8000), d0)
    assert np.array_equal(tb.node("sn0").memory.view(16_384, 8000), d1)


def test_multi_ack_transaction(tb):
    client = tb.clients[0]
    greq, done = client.nic.open_transaction(expected_acks=3)
    for sn in ["sn0", "sn1", "sn2"]:
        client.nic.post_write(
            sn, _data(100), headers={"addr": 0}, greq_id=greq, expected_acks=0
        )
    res = tb.run_until(done)
    assert res.ok


def test_nack_completes_with_failure(tb):
    client = tb.clients[0]
    greq, done = client.nic.open_transaction(expected_acks=1)
    # server-side NACK (simulate policy rejection)
    tb.node("sn0").nic.send_control(client.name, "nack", {"ack_for": greq, "reason": "auth"})
    res = tb.run_until(done)
    assert not res.ok and res.nacks[0]["reason"] == "auth"


def test_stray_ack_ignored(tb):
    client = tb.clients[0]
    tb.node("sn0").nic.send_control(client.name, "ack", {"ack_for": 999_999})
    tb.run(until=10_000)  # must not raise


def test_send_message_fire_and_forget(tb):
    client = tb.clients[0]
    client.nic.send_message("sn0", "write", {"addr": 64}, data=_data(100, 9))
    tb.run(until=100_000)
    assert np.array_equal(tb.node("sn0").memory.view(64, 100), _data(100, 9))
    assert client.nic.pending_count() == 0


def test_failed_node_ignores_traffic(tb):
    tb.node("sn2").fail()
    client = tb.clients[0]
    ev = client.nic.post_write("sn2", _data(100), headers={"addr": 0})
    with pytest.raises(Exception):
        tb.run_until(ev, timeout_ns=1_000_000)


def test_large_write_segments_and_reassembles(tb):
    client = tb.clients[0]
    data = _data(300_000, seed=11)
    res = tb.run_until(client.nic.post_write("sn1", data, headers={"addr": 0}))
    assert res.ok
    tb.run(until=tb.sim.now + 50_000)
    assert np.array_equal(tb.node("sn1").memory.view(0, 300_000), data)
