"""Duplicate delivery is the normal case under retransmission: every
target-side path must be idempotent (re-ack, never re-DMA, never
double-count), and the completion/watchdog pair must tolerate the
timeout-vs-ack race at the RTO boundary."""

import numpy as np

from repro.dfs.cluster import build_testbed
from repro.dfs.client import DfsClient
from repro.dfs.layout import ReplicationSpec
from repro.experiments.common import installer_for
from repro.faults import DownWindow
from repro.params import SimParams
from repro.simnet.packet import Message, Packet, fresh_msg_id, segment_message

SIZE = 8 * 1024
DATA = np.random.default_rng(1).integers(0, 256, SIZE, dtype=np.uint8)


def _deliver_write(tb, sn, greq, msg_id=None):
    """Inject one full raw-write packet stream into ``sn``'s NIC, as the
    network would deliver it.  Reusing ``msg_id`` models a retransmit."""
    msg = Message(
        src="client0",
        dst=sn.name,
        op="write",
        data=DATA,
        headers={"addr": 0, "greq_id": greq, "reply_to": "client0"},
        header_bytes=8,
    )
    if msg_id is not None:
        msg.msg_id = msg_id
    for pkt in segment_message(msg, tb.params.net.mtu):
        sn.nic.receive(pkt)
    return msg.msg_id


# ----------------------------------------------------- duplicate writes
def test_duplicate_write_reacks_without_redma():
    tb = build_testbed(n_storage=1)
    sn = tb.storage_nodes[0]
    client = tb.clients[0]
    greq, done = client.nic.open_transaction(expected_acks=2)

    mid = _deliver_write(tb, sn, greq)
    tb.run(until=tb.sim.now + 100_000)
    assert sn.nic.acks_sent == 1
    assert np.array_equal(sn.memory.view(0, SIZE), DATA)
    dma_before = sn.pcie.bytes_transferred
    written_before = sn.memory.bytes_written

    # the full stream again with the SAME msg_id: a retransmission of a
    # write already committed and acked
    _deliver_write(tb, sn, greq, msg_id=mid)
    tb.run(until=tb.sim.now + 100_000)

    assert sn.nic.dup_completions == 1
    assert sn.nic.acks_sent == 2          # re-ack in case the ack was lost
    assert sn.pcie.bytes_transferred == dma_before   # never re-DMA'd
    assert sn.memory.bytes_written == written_before
    # the client saw both acks but counted the dedup key only once
    op = client.nic._pending[greq]
    assert op.acks == 1 and client.nic.dup_acks == 1
    assert not done.triggered


# -------------------------------------------------------- duplicate acks
def test_duplicate_ack_same_dedup_key_counts_once():
    tb = build_testbed(n_storage=1)
    nic = tb.clients[0].nic
    greq, done = nic.open_transaction(expected_acks=2)

    def ack(dedup):
        nic._dispatch(Packet(
            src="sn0", dst="client0", op="ack", msg_id=fresh_msg_id(),
            seq=0, nseq=1,
            headers={"ack_for": greq, "node": "sn0", "dedup": dedup},
        ))

    ack(("sn0", "w", 1))
    ack(("sn0", "w", 1))  # duplicate: same key, must not complete the op
    tb.run(until=tb.sim.now + 1_000)
    assert not done.triggered
    assert nic.dup_acks == 1 and nic._pending[greq].acks == 1

    ack(("sn0", "w", 2))  # a genuinely new ack completes it
    tb.run(until=tb.sim.now + 1_000)
    assert done.triggered and done.value.ok
    assert nic.pending_count() == 0


def test_ack_after_completion_is_ignored():
    tb = build_testbed(n_storage=1)
    nic = tb.clients[0].nic
    greq, done = nic.open_transaction(expected_acks=1)
    pkt = Packet(
        src="sn0", dst="client0", op="ack", msg_id=fresh_msg_id(),
        seq=0, nseq=1,
        headers={"ack_for": greq, "node": "sn0", "dedup": ("sn0", "w", 1)},
    )
    nic._dispatch(pkt)
    tb.run(until=tb.sim.now + 1_000)
    assert done.triggered and nic.pending_count() == 0
    # late duplicate for a finished op: no KeyError, no state resurrection
    nic._dispatch(pkt)
    tb.run(until=tb.sim.now + 1_000)
    assert nic.pending_count() == 0


# ---------------------------------------------------- duplicate read_resp
def test_duplicate_read_resp_after_completion_is_ignored():
    tb = build_testbed(n_storage=1)
    sn = tb.storage_nodes[0]
    client = tb.clients[0]
    sn.memory.write(0, DATA)

    done = client.nic.post_read(sn.name, addr=0, length=SIZE)
    res = tb.run_until(done)
    assert res.ok and np.array_equal(res.data, DATA)

    # the same read_req again (e.g. a retransmitted request whose first
    # response also arrived): the target serves a fresh response stream,
    # which the client must discard because the op is gone
    req = Packet(
        src="client0", dst=sn.name, op="read_req", msg_id=fresh_msg_id(),
        seq=0, nseq=1,
        headers={"greq_id": res.greq_id, "addr": 0, "length": SIZE,
                 "reply_to": "client0"},
    )
    sn.nic.receive(req)
    tb.run(until=tb.sim.now + 200_000)
    assert client.nic.pending_count() == 0
    # no leaked reassembly state on the client
    assert not client.nic._rx_writes


# ------------------------------------------------ timeout-vs-ack race
def test_watchdog_timeout_vs_ack_race_is_clean():
    """An ack landing at exactly the watchdog's give-up instant must
    yield exactly one completion, whichever side wins the tie."""
    rto = 50_000.0
    params = SimParams().with_faults(
        node_down=(DownWindow("sn0", 0.0, 1e18),),  # target never answers
        retransmit=True, rto_ns=rto, rto_max_ns=rto, max_retransmits=0,
    )
    tb = build_testbed(n_storage=1, params=params)
    nic = tb.clients[0].nic
    done = nic.post_write("sn0", DATA, headers={"addr": 0, "reply_to": "client0"})
    greq = next(iter(nic._pending))

    def racing_ack():
        yield tb.sim.timeout(rto)  # same timestamp as the watchdog firing
        nic._dispatch(Packet(
            src="sn0", dst="client0", op="ack", msg_id=fresh_msg_id(),
            seq=0, nseq=1,
            headers={"ack_for": greq, "node": "sn0", "dedup": ("sn0", "w", 1)},
        ))

    tb.sim.process(racing_ack())
    res = tb.run_until(done)
    tb.run(until=tb.sim.now + 500_000)
    # exactly one outcome, no crash, no pending state either way
    if res.ok:
        assert not res.nacks
    else:
        assert res.nacks[0]["reason"] == "timeout"
    assert nic.pending_count() == 0
    assert nic.timeouts + int(res.ok) == 1


# ------------------------------------------------------- lossless baseline
def test_lossless_write_never_retransmits():
    tb = build_testbed(n_storage=4)
    installer_for("spin")(tb)
    c = DfsClient(tb)
    c.create("/f", size=SIZE, replication=ReplicationSpec(k=3))
    out = c.write_sync("/f", DATA, protocol="spin")
    assert out.ok
    tb.run(until=tb.sim.now + 200_000)
    for host in [tb.clients[0], *tb.storage_nodes]:
        n = host.nic
        assert (n.retransmits, n.timeouts, n.dup_acks, n.dup_completions,
                n.incomplete_drops, n.rx_dropped) == (0, 0, 0, 0, 0, 0), host.name
