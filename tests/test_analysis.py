"""Tests for the analytic models and shape-check helpers."""

import pytest

from repro.analysis import (
    DFS_SURVEY,
    ShapeError,
    Support,
    assert_crossover_within,
    assert_faster,
    assert_monotonic,
    assert_ratio_between,
    check,
    concurrent_writes,
    crossover_point,
    handler_budget_ns,
    hpus_needed,
    max_concurrent_writes,
    packet_interarrival_ns,
    relative_gap,
    render_table,
    required_memory_bytes,
)
from repro.params import PsPinParams, SimParams


# --------------------------------------------------------------- littles law
def test_required_memory_linear():
    assert required_memory_bytes(0) == 0
    assert required_memory_bytes(1) == 77
    assert required_memory_bytes(1000) == 77_000
    assert required_memory_bytes(10, descriptor_bytes=100) == 1000
    with pytest.raises(ValueError):
        required_memory_bytes(-1)


def test_max_concurrent_writes_is_82k():
    assert max_concurrent_writes(PsPinParams()) == pytest.approx(82_000, rel=0.01)


def test_concurrent_writes_littles_law():
    p = SimParams()
    # small writes at line rate: overhead dominates residence -> many in flight
    small = concurrent_writes(512, p)
    big = concurrent_writes(1 << 20, p)
    assert small > big
    # L = lambda * W with W = transfer + extra; transfer-only -> exactly 1
    exactly_one = concurrent_writes(1 << 20, p, extra_latency_ns=0.0)
    assert exactly_one == pytest.approx(1.0)
    with pytest.raises(ValueError):
        concurrent_writes(0, p)


# -------------------------------------------------------------------- budget
def test_packet_interarrival():
    # 2 KiB at 400 Gbit/s: 40.96 ns (§VI-C)
    assert packet_interarrival_ns(400.0, 2048) == pytest.approx(40.96)
    with pytest.raises(ValueError):
        packet_interarrival_ns(0, 2048)


def test_handler_budget_32_hpus():
    # "each handler should not last more than ~1310 ns" (§VI-C)
    assert handler_budget_ns(400.0, 2048, 32) == pytest.approx(1310.72)
    with pytest.raises(ValueError):
        handler_budget_ns(400.0, 2048, 0)


def test_hpus_needed_rs63():
    # the paper reads off ~512 HPUs for RS(6,3) at 400 Gbit/s
    assert hpus_needed(400.0, 2048, 23018) == 562
    assert hpus_needed(200.0, 2048, 23018) == 281
    assert hpus_needed(400.0, 2048, 0) == 1
    with pytest.raises(ValueError):
        hpus_needed(400.0, 2048, -1)


# -------------------------------------------------------------------- survey
def test_survey_size_and_render():
    assert len(DFS_SURVEY) == 14
    table = render_table()
    for e in DFS_SURVEY:
        assert e.name in table


def test_survey_symbols():
    assert Support.YES.symbol == "Y"
    assert Support.PARTIAL.symbol == "~"
    assert Support.NO.symbol == "x"


def test_survey_gap_claim():
    """The paper's motivation: no surveyed DFS has full RDMA + all
    three policies."""
    full = [
        e for e in DFS_SURVEY
        if e.rdma == Support.YES and e.auth == Support.YES
        and e.replication == Support.YES and e.erasure_coding == Support.YES
    ]
    assert not full


# -------------------------------------------------------------------- shapes
def test_check_and_assert_faster():
    check(True, "fine")
    with pytest.raises(ShapeError):
        check(False, "nope")
    assert_faster(1.0, 2.0, "ok")
    with pytest.raises(ShapeError):
        assert_faster(2.0, 1.0, "bad")


def test_assert_monotonic():
    assert_monotonic([1, 2, 2, 3])
    assert_monotonic([3, 2, 1], increasing=False)
    with pytest.raises(ShapeError):
        assert_monotonic([1, 3, 2])


def test_assert_ratio_between():
    assert_ratio_between(2.0, 1.0, 1.5, 2.5, "ok")
    with pytest.raises(ShapeError):
        assert_ratio_between(3.0, 1.0, 1.5, 2.5, "bad")


def test_relative_gap():
    assert relative_gap(1.27, 1.0) == pytest.approx(0.27)


def test_crossover_point():
    a = {1: 10, 2: 20, 4: 40, 8: 80}
    b = {1: 30, 2: 30, 4: 30, 8: 30}
    assert crossover_point(a, b) == 4
    assert crossover_point(b, a) == 1  # b never starts faster
    assert crossover_point(a, {1: 100, 2: 100, 4: 100, 8: 100}) is None


def test_assert_crossover_within():
    a = {1: 10, 2: 20, 4: 40, 8: 80}
    b = {1: 30, 2: 30, 4: 30, 8: 30}
    assert assert_crossover_within(a, b, 2, 8, "ok") == 4
    with pytest.raises(ShapeError):
        assert_crossover_within(a, b, 1, 2, "window too early")
    with pytest.raises(ShapeError):
        assert_crossover_within(b, a, 1, 8, "wrong direction")
