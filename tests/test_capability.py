"""Capability authentication tests (§IV threat model)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dfs.capability import (
    CAPABILITY_WIRE_BYTES,
    Capability,
    CapabilityAuthority,
    Rights,
)


@pytest.fixture
def authority():
    return CapabilityAuthority(key=b"test-key")


def test_issue_and_verify(authority):
    cap = authority.issue(1, 42, addr=0, length=4096, rights=Rights.RW)
    assert authority.verify(cap, Rights.WRITE, 0, 4096)
    assert authority.verify(cap, Rights.READ, 100, 100)
    assert authority.verified_ok == 2


def test_forged_signature_rejected(authority):
    cap = authority.issue(1, 42, 0, 4096, Rights.RW)
    bad = Capability(
        cap.client_id, cap.object_id, cap.addr, cap.length,
        cap.rights, cap.expiry_ns, bytes(b ^ 1 for b in cap.signature),
    )
    assert not authority.verify(bad, Rights.WRITE, 0, 4096)
    assert authority.verified_fail == 1


def test_tampered_descriptor_rejected(authority):
    """Upgrading your own rights invalidates the signature."""
    cap = authority.issue(1, 42, 0, 4096, Rights.READ)
    escalated = Capability(
        cap.client_id, cap.object_id, cap.addr, cap.length,
        Rights.RW, cap.expiry_ns, cap.signature,
    )
    assert not authority.verify(escalated, Rights.WRITE, 0, 4096)


def test_rights_enforced(authority):
    cap = authority.issue(1, 42, 0, 4096, Rights.READ)
    assert authority.verify(cap, Rights.READ, 0, 4096)
    assert not authority.verify(cap, Rights.WRITE, 0, 4096)


def test_range_enforced(authority):
    cap = authority.issue(1, 42, addr=1000, length=100, rights=Rights.RW)
    assert authority.verify(cap, Rights.WRITE, 1000, 100)
    assert authority.verify(cap, Rights.WRITE, 1050, 50)
    assert not authority.verify(cap, Rights.WRITE, 999, 10)   # before range
    assert not authority.verify(cap, Rights.WRITE, 1050, 51)  # past range


def test_expiry_enforced(authority):
    cap = authority.issue(1, 42, 0, 64, Rights.RW, expiry_ns=1000)
    assert authority.verify(cap, Rights.WRITE, 0, 64, now_ns=999)
    assert not authority.verify(cap, Rights.WRITE, 0, 64, now_ns=1001)


def test_different_key_rejects(authority):
    other = CapabilityAuthority(key=b"other-key")
    cap = authority.issue(1, 42, 0, 64, Rights.RW)
    assert not other.verify(cap, Rights.WRITE, 0, 64)


def test_key_rotation(authority):
    """§III-C: the host updates keys in NIC memory; old tickets die."""
    cap = authority.issue(1, 42, 0, 64, Rights.RW)
    authority.rotate_key(b"new-key")
    assert not authority.verify(cap, Rights.WRITE, 0, 64)
    cap2 = authority.issue(1, 42, 0, 64, Rights.RW)
    assert authority.verify(cap2, Rights.WRITE, 0, 64)


def test_wire_roundtrip(authority):
    cap = authority.issue(7, 99, 512, 2048, Rights.WRITE, expiry_ns=123456)
    blob = cap.to_wire()
    assert len(blob) == CAPABILITY_WIRE_BYTES
    back = Capability.from_wire(blob)
    assert back == cap
    assert authority.verify(back, Rights.WRITE, 512, 2048)


def test_wire_bad_length():
    with pytest.raises(ValueError):
        Capability.from_wire(b"short")


def test_rights_flags_compose():
    assert Rights.RW == Rights.READ | Rights.WRITE
    assert (Rights.READ & Rights.WRITE) == Rights.NONE


@given(
    client=st.integers(min_value=0, max_value=2**32 - 1),
    obj=st.integers(min_value=0, max_value=2**64 - 1),
    addr=st.integers(min_value=0, max_value=2**63 - 1),
    length=st.integers(min_value=0, max_value=2**62 - 1),
)
def test_wire_roundtrip_property(client, obj, addr, length):
    auth = CapabilityAuthority(key=b"prop")
    cap = auth.issue(client, obj, addr, length, Rights.RW)
    back = Capability.from_wire(cap.to_wire())
    assert back == cap


@given(flip=st.integers(min_value=0, max_value=CAPABILITY_WIRE_BYTES * 8 - 1))
def test_any_single_bit_flip_rejected(flip):
    """Flipping ANY bit of the wire blob (descriptor or signature) must
    fail verification — the HMAC binds the whole descriptor."""
    auth = CapabilityAuthority(key=b"prop2")
    cap = auth.issue(3, 9, 0, 1 << 20, Rights.RW)
    blob = bytearray(cap.to_wire())
    blob[flip // 8] ^= 1 << (flip % 8)
    tampered = Capability.from_wire(bytes(blob))
    assert not auth.verify(tampered, Rights.WRITE, 0, 1 << 20)
