"""Network-timed EC recovery tests (degraded reads + rebuild)."""

import numpy as np
import pytest

from repro import DfsClient, EcSpec, build_testbed
from repro.ec import DecodeError
from repro.protocols import install_spin_targets
from repro.protocols.recovery import degraded_read, rebuild_object

KiB = 1024


@pytest.fixture
def env():
    tb = build_testbed(n_storage=10)
    install_spin_targets(tb)
    c = DfsClient(tb)
    lay = c.create("/obj", size=120 * KiB, ec=EcSpec(k=4, m=2))
    data = np.random.default_rng(0).integers(0, 256, 120 * KiB, dtype=np.uint8)
    assert c.write_sync("/obj", data, protocol="spin").ok
    tb.run(until=tb.sim.now + 100_000)
    return tb, c, lay, data


def _fail(tb, nodes):
    for n in nodes:
        tb.node(n).fail()
    return set(nodes)


def test_degraded_read_matches_data(env):
    tb, c, lay, data = env
    failed = _fail(tb, [lay.extents[0].node, lay.extents[2].node])
    d, lat = tb.run_until(degraded_read(tb, "/obj", failed))
    assert np.array_equal(d, data)
    assert lat > 0


def test_degraded_read_slower_than_healthy_read(env):
    tb, c, lay, data = env
    healthy = c.read_sync("/obj", length=lay.size, protocol="raw").latency_ns
    failed = _fail(tb, [lay.extents[0].node])
    _, degraded = tb.run_until(degraded_read(tb, "/obj", failed))
    assert degraded > healthy  # extra chunks + decode


def test_rebuild_restores_placement_and_bytes(env):
    tb, c, lay, data = env
    failed = _fail(tb, [lay.extents[1].node, lay.parity_extents[0].node])
    report = tb.run_until(rebuild_object(tb, "/obj", failed))
    tb.run(until=tb.sim.now + 100_000)
    assert report.bytes_rebuilt == 2 * lay.chunk_length()
    assert report.bytes_read == 4 * lay.chunk_length()
    new = c.open("/obj")
    assert all(
        e.node not in failed for e in list(new.extents) + list(new.parity_extents)
    )
    assert np.array_equal(c.read_back("/obj"), data)


def test_rebuilt_object_survives_further_failures(env):
    tb, c, lay, data = env
    failed = _fail(tb, [lay.extents[0].node, lay.extents[3].node])
    tb.run_until(rebuild_object(tb, "/obj", failed))
    tb.run(until=tb.sim.now + 100_000)
    new = c.open("/obj")
    again = {new.extents[1].node, new.parity_extents[0].node}
    rec = c.recover("/obj", again)
    assert np.array_equal(rec, data)


def test_rebuild_reports_failed_nodes_to_management(env):
    tb, c, lay, data = env
    failed = _fail(tb, [lay.extents[0].node])
    tb.run_until(rebuild_object(tb, "/obj", failed))
    assert set(tb.mgmt.failed_nodes()) == failed


def test_too_many_failures_unrecoverable(env):
    tb, c, lay, data = env
    victims = [e.node for e in lay.extents[:3]]  # 3 > m=2
    failed = _fail(tb, victims)
    with pytest.raises(DecodeError):
        rebuild_object(tb, "/obj", failed)
    with pytest.raises(DecodeError):
        degraded_read(tb, "/obj", failed)


def test_rebuild_requires_ec_object(env):
    tb, c, lay, data = env
    c.create("/plain", size=1 * KiB)
    with pytest.raises(DecodeError):
        rebuild_object(tb, "/plain", set())


def test_rebuild_with_explicit_coordinator(env):
    tb, c, lay, data = env
    failed = _fail(tb, [lay.parity_extents[1].node])
    healthy = next(n for n in tb.storage if n not in failed)
    report = tb.run_until(rebuild_object(tb, "/obj", failed, coordinator=healthy))
    assert report.rebuilt_extents
    tb.run(until=tb.sim.now + 100_000)
    assert np.array_equal(c.read_back("/obj"), data)


def test_rebuild_scales_with_chunk_size(env):
    """Bigger objects take longer to rebuild (network + decode bound)."""
    tb, c, lay, data = env

    def rebuild_time(size):
        tb2 = build_testbed(n_storage=10)
        install_spin_targets(tb2)
        c2 = DfsClient(tb2)
        lay2 = c2.create("/o", size=size, ec=EcSpec(k=4, m=2))
        d = np.zeros(size, dtype=np.uint8)
        assert c2.write_sync("/o", d, protocol="spin").ok
        tb2.run(until=tb2.sim.now + 200_000)
        failed = _fail(tb2, [lay2.extents[0].node])
        return tb2.run_until(rebuild_object(tb2, "/o", failed)).duration_ns

    assert rebuild_time(512 * KiB) > 1.5 * rebuild_time(64 * KiB)
