"""Parameter bundle tests."""

import pytest

from repro.params import HostParams, InecParams, MiB, PsPinParams, SimParams
from repro.simnet.network import NetConfig


def test_defaults_match_paper():
    p = SimParams()
    assert p.net.bandwidth_gbps == 400.0        # §III-D
    assert p.net.mtu == 2048                    # §III-D
    assert p.net.link_latency_ns == 20.0        # §III-D
    assert p.pspin.n_hpus == 32                 # §II-B1
    assert p.pspin.freq_ghz == 1.0
    assert p.pspin.l1_bytes_per_cluster == 1 * MiB
    assert p.pspin.l2_bytes == 4 * MiB
    assert p.pspin.request_descriptor_bytes == 77   # §III-B2
    assert p.pspin.dfs_wide_state_bytes == 2 * MiB  # §III-B2


def test_pspin_derived_values():
    p = PsPinParams()
    assert p.cycle_ns == 1.0
    assert PsPinParams(freq_ghz=2.0).cycle_ns == 0.5
    assert PsPinParams(n_clusters=16).n_hpus == 128


def test_scaled_network_preserves_everything_else():
    p = SimParams().scaled_network(100.0)
    assert p.net.bandwidth_gbps == 100.0
    assert p.net.mtu == 2048
    assert p.pspin.n_hpus == 32
    # original untouched (frozen dataclasses)
    assert SimParams().net.bandwidth_gbps == 400.0


def test_with_helpers():
    p = SimParams().with_pspin(n_clusters=8).with_net(mtu=4096).with_host(cpu_cores=2)
    assert p.pspin.n_clusters == 8
    assert p.net.mtu == 4096
    assert p.host.cpu_cores == 2


def test_frozen():
    with pytest.raises(Exception):
        SimParams().net.mtu = 1  # type: ignore[misc]
    with pytest.raises(Exception):
        PsPinParams().freq_ghz = 2  # type: ignore[misc]


def test_inec_params_present():
    p = InecParams()
    assert p.block_overhead_ns > 0 and p.engine_gbps > 0


def test_fig7_stage_arithmetic():
    """The Fig. 7 numbers fall out of the parameter choices."""
    p = PsPinParams()
    assert -(-2048 // p.pkt_buffer_bytes_per_cycle) == 32
    assert -(-2048 // p.l1_copy_bytes_per_cycle) == 43
    assert p.sched_cycles == 2
    assert p.hpu_dispatch_ns == 1.0
