"""Cross-feature integration: combinations of topology, backend,
control plane, and policies working together."""

import numpy as np
import pytest

from repro import DfsClient, EcSpec, ReplicationSpec, build_testbed
from repro.dfs.control_rpc import ControlPlaneClient, install_control_plane
from repro.protocols import install_spin_targets

KiB = 1024


def test_leafspine_plus_nvme_plus_ec():
    """Oversubscribed fabric + flash durability + streaming EC, at once."""
    tb = build_testbed(n_storage=8, topology="leafspine", uplink_gbps=200.0,
                       storage_backend="nvme")
    install_spin_targets(tb)
    c = DfsClient(tb)
    lay = c.create("/x", size=96 * KiB, ec=EcSpec(k=3, m=2))
    data = np.random.default_rng(0).integers(0, 256, 96 * KiB, dtype=np.uint8)
    out = c.write_sync("/x", data, protocol="spin")
    assert out.ok
    rec = c.recover("/x", {lay.extents[0].node, lay.parity_extents[0].node})
    assert np.array_equal(rec, data)


def test_control_plane_on_leafspine():
    tb = build_testbed(n_storage=4, topology="leafspine")
    install_spin_targets(tb)
    install_control_plane(tb)  # mds lands on the storage leaf
    cp = ControlPlaneClient(tb, tb.clients[0])
    res = tb.run_until(cp.create("/f", 8 * KiB))
    assert res.ok
    # cross-leaf metadata RPC costs more than the paper's flat network
    assert res.latency_ns > 2_000


def test_mixed_protocols_one_testbed():
    """RPC targets and sPIN targets can coexist: the RPC handler runs on
    the CPU while the NIC context serves spin writes."""
    from repro.protocols import install_rpc_targets

    tb = build_testbed(n_storage=4)
    install_spin_targets(tb)
    install_rpc_targets(tb)
    c = DfsClient(tb)
    c.create("/a", size=32 * KiB)
    c.create("/b", size=32 * KiB)
    da = np.full(16 * KiB, 1, np.uint8)
    db = np.full(16 * KiB, 2, np.uint8)
    assert c.write_sync("/a", da, protocol="spin").ok
    assert c.write_sync("/b", db, protocol="rpc").ok
    assert np.array_equal(c.read_back("/a")[: da.nbytes], da)
    assert np.array_equal(c.read_back("/b")[: db.nbytes], db)


def test_experiment_runs_are_deterministic():
    from repro.experiments import fig06_auth_latency as exp

    a = exp.run(quick=True)
    b = exp.run(quick=True)
    assert a == b


def test_replication_on_nvme_waits_for_all_flash():
    tb = build_testbed(n_storage=6, storage_backend="nvme")
    install_spin_targets(tb)
    c = DfsClient(tb)
    lay = c.create("/r", size=32 * KiB, replication=ReplicationSpec(k=3))
    data = np.random.default_rng(1).integers(0, 256, 32 * KiB, dtype=np.uint8)
    out = c.write_sync("/r", data, protocol="spin")
    assert out.ok
    # at ack time every replica is already durable on flash
    for e in lay.extents:
        assert np.array_equal(tb.node(e.node).memory.view(e.addr, data.nbytes), data)
    # and the latency includes at least one flash program
    assert out.latency_ns > 10_000


def test_qos_quota_context_is_public_api():
    from repro.core.policies.dispatch import DispatchPolicy

    tb = build_testbed(n_storage=2)
    node = tb.storage_nodes[0]
    node.install_pspin(DispatchPolicy(), authority=tb.authority, hpu_quota=4)
    ctx = node.accelerator.contexts[0]
    assert ctx.hpu_quota == 4 and ctx._quota_sem is not None
    with pytest.raises(ValueError):
        from repro.core.handlers import build_dfs_context

        build_dfs_context("x", DispatchPolicy(), node.dfs_state, hpu_quota=0)
