"""Integration tests: every write protocol, end to end.

Each test checks both *function* (bytes land where they should, with the
right redundancy) and *plausibility* (latency ordering between
protocols where the paper pins it down).
"""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.dfs.layout import EcSpec, ReplicationSpec
from repro.protocols import (
    install_cpu_replication_targets,
    install_hyperloop_targets,
    install_inec_targets,
    install_rpc_rdma_targets,
    install_rpc_targets,
    install_spin_targets,
)

KiB = 1024


def make(installer=None, n_storage=8, n_clients=1, **kw):
    tb = build_testbed(n_storage=n_storage, n_clients=n_clients)
    if installer:
        installer(tb, **kw)
    return tb, DfsClient(tb)


def data_of(n, seed=0):
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8)


def assert_replicas(tb, layout, data):
    for e in layout.extents:
        got = tb.node(e.node).memory.view(e.addr, data.nbytes)
        assert np.array_equal(got, data), f"replica diverged on {e.node}"


# ------------------------------------------------------------------- raw
def test_raw_write_no_validation():
    tb, c = make()
    lay = c.create("/f", size=64 * KiB)
    d = data_of(32 * KiB)
    out = c.write_sync("/f", d, protocol="raw")
    assert out.ok and out.protocol == "raw"
    tb.run(until=tb.sim.now + 50_000)
    assert np.array_equal(tb.node(lay.primary.node).memory.view(lay.primary.addr, d.nbytes), d)


def test_raw_write_exceeding_extent_rejected():
    tb, c = make()
    c.create("/f", size=1 * KiB)
    with pytest.raises(ValueError):
        c.write("/f", data_of(64 * KiB), protocol="raw")


# ------------------------------------------------------------------ spin
def test_spin_plain_write_durable_before_ack():
    """sPIN acks only after the PCIe flush (§III-B1): at ack time the
    bytes are already in the storage target."""
    tb, c = make(install_spin_targets)
    lay = c.create("/f", size=64 * KiB)
    d = data_of(16 * KiB, 1)
    out = c.write_sync("/f", d, protocol="spin")
    assert out.ok
    got = tb.node(lay.primary.node).memory.view(lay.primary.addr, d.nbytes)
    assert np.array_equal(got, d)  # no extra draining needed


def test_spin_write_rejected_without_ticket():
    tb, c = make(install_spin_targets)
    c.create("/f", size=4 * KiB)
    out = c.write_sync("/f", data_of(1 * KiB), protocol="spin", capability=None)
    # DfsClient auto-attaches the ticket; force-remove it
    tb2, c2 = make(install_spin_targets)
    c2.create("/g", size=4 * KiB)
    c2._tickets.clear()
    out2 = c2.write_sync("/g", data_of(1 * KiB), protocol="spin")
    assert not out2.ok and out2.nacks[0]["reason"] == "auth"


def test_spin_write_forged_ticket_rejected_and_data_dropped():
    tb, c = make(install_spin_targets)
    lay = c.create("/f", size=64 * KiB)
    d = data_of(16 * KiB, 2)
    out = c.write_sync("/f", d, protocol="spin", capability=c.forge_ticket("/f"))
    assert not out.ok
    assert not tb.node(lay.primary.node).memory.view(lay.primary.addr, d.nbytes).any()


@pytest.mark.parametrize("strategy", ["ring", "pbt"])
@pytest.mark.parametrize("k", [2, 3, 5])
def test_spin_replication_all_replicas_identical(strategy, k):
    tb, c = make(install_spin_targets)
    lay = c.create("/f", size=128 * KiB, replication=ReplicationSpec(k=k, strategy=strategy))
    d = data_of(100 * KiB, k)
    out = c.write_sync("/f", d, protocol="spin")
    assert out.ok
    assert_replicas(tb, lay, d)


def test_spin_ec_parity_correct():
    """On-NIC streamed parity equals a direct RS encode."""
    from repro.core.policies.erasure import rs_for

    tb, c = make(install_spin_targets)
    lay = c.create("/f", size=96 * KiB, ec=EcSpec(k=3, m=2))
    d = data_of(96 * KiB, 5)
    out = c.write_sync("/f", d, protocol="spin")
    assert out.ok
    rs = rs_for(3, 2)
    chunks = rs.split(d)
    enc = rs.encode(chunks)
    for i, ext in enumerate(lay.extents):
        got = tb.node(ext.node).memory.view(ext.addr, chunks[0].nbytes)
        assert np.array_equal(got, enc[i])
    for i, ext in enumerate(lay.parity_extents):
        got = tb.node(ext.node).memory.view(ext.addr, chunks[0].nbytes)
        assert np.array_equal(got, enc[3 + i]), f"parity {i} wrong"


def test_spin_ec_recovery_all_two_node_failures():
    tb, c = make(install_spin_targets)
    lay = c.create("/f", size=30 * KiB, ec=EcSpec(k=3, m=2))
    d = data_of(30 * KiB, 6)
    assert c.write_sync("/f", d, protocol="spin").ok
    import itertools

    nodes = [e.node for e in list(lay.extents) + list(lay.parity_extents)]
    for failed in itertools.combinations(nodes, 2):
        rec = c.recover("/f", set(failed))
        assert np.array_equal(rec, d), f"recovery failed for {failed}"


# ------------------------------------------------------------------- rpc
def test_rpc_write_validates_and_stores():
    tb, c = make(install_rpc_targets)
    lay = c.create("/f", size=64 * KiB)
    d = data_of(48 * KiB, 7)
    out = c.write_sync("/f", d, protocol="rpc")
    assert out.ok
    assert np.array_equal(tb.node(lay.primary.node).memory.view(lay.primary.addr, d.nbytes), d)


def test_rpc_write_forged_ticket_rejected():
    tb, c = make(install_rpc_targets)
    c.create("/f", size=4 * KiB)
    out = c.write_sync("/f", data_of(2 * KiB), protocol="rpc",
                       capability=c.forge_ticket("/f"))
    assert not out.ok


def test_rpc_rdma_write_stores():
    tb, c = make(install_rpc_rdma_targets)
    lay = c.create("/f", size=64 * KiB)
    d = data_of(20 * KiB, 8)
    out = c.write_sync("/f", d, protocol="rpc+rdma")
    assert out.ok
    assert np.array_equal(tb.node(lay.primary.node).memory.view(lay.primary.addr, d.nbytes), d)


def test_rpc_rdma_slower_than_spin_small():
    """The extra round trip (Fig. 5) costs latency at small sizes."""
    _, c1 = make(install_spin_targets)
    c1.create("/f", size=8 * KiB)
    spin = c1.write_sync("/f", data_of(1 * KiB), protocol="spin").latency_ns
    _, c2 = make(install_rpc_rdma_targets)
    c2.create("/f", size=8 * KiB)
    rr = c2.write_sync("/f", data_of(1 * KiB), protocol="rpc+rdma").latency_ns
    assert rr > spin * 1.5


# ------------------------------------------------------- cpu replication
@pytest.mark.parametrize("strategy,k", [("ring", 3), ("pbt", 4)])
def test_cpu_replication_replicas_identical(strategy, k):
    tb, c = make(install_cpu_replication_targets)
    lay = c.create("/f", size=256 * KiB, replication=ReplicationSpec(k=k, strategy=strategy))
    d = data_of(200 * KiB, 9)
    out = c.write_sync("/f", d, protocol="cpu", chunk_bytes=64 * KiB)
    assert out.ok
    assert_replicas(tb, lay, d)


def test_cpu_replication_occupies_cpu():
    tb, c = make(install_cpu_replication_targets)
    c.create("/f", size=128 * KiB, replication=ReplicationSpec(k=3))
    c.write_sync("/f", data_of(128 * KiB), protocol="cpu", chunk_bytes=32 * KiB)
    primary = tb.node(c.open("/f").primary.node)
    assert primary.cpu.busy_ns > 0
    assert primary.rpcs_served >= 4  # one per chunk


def test_spin_replication_leaves_cpu_idle():
    tb, c = make(install_spin_targets)
    c.create("/f", size=128 * KiB, replication=ReplicationSpec(k=3))
    c.write_sync("/f", data_of(128 * KiB), protocol="spin")
    primary = tb.node(c.open("/f").primary.node)
    assert primary.cpu.busy_ns == 0  # the whole point of offloading
    assert primary.rpcs_served == 0


# ------------------------------------------------------------- rdma-flat
def test_rdma_flat_replicas_identical():
    tb, c = make()
    lay = c.create("/f", size=64 * KiB, replication=ReplicationSpec(k=3))
    d = data_of(64 * KiB, 10)
    out = c.write_sync("/f", d, protocol="rdma-flat")
    assert out.ok
    tb.run(until=tb.sim.now + 100_000)
    assert_replicas(tb, lay, d)


def test_rdma_flat_latency_grows_with_k_large_writes():
    def lat(k):
        _, c = make()
        c.create("/f", size=512 * KiB, replication=ReplicationSpec(k=k))
        return c.write_sync("/f", data_of(512 * KiB), protocol="rdma-flat").latency_ns

    assert lat(4) > 1.6 * lat(2)


# -------------------------------------------------------------- hyperloop
def test_hyperloop_replicas_identical():
    tb, c = make(install_hyperloop_targets)
    lay = c.create("/f", size=256 * KiB, replication=ReplicationSpec(k=3))
    d = data_of(256 * KiB, 11)
    out = c.write_sync("/f", d, protocol="rdma-hyperloop", chunk_bytes=64 * KiB)
    assert out.ok
    tb.run(until=tb.sim.now + 100_000)
    assert_replicas(tb, lay, d)
    assert out.details["config_acks"] == 3


def test_hyperloop_config_overhead_hurts_small_writes():
    _, c1 = make(install_hyperloop_targets)
    c1.create("/f", size=4 * KiB, replication=ReplicationSpec(k=2))
    hl = c1.write_sync("/f", data_of(2 * KiB), protocol="rdma-hyperloop").latency_ns
    _, c2 = make()
    c2.create("/f", size=4 * KiB, replication=ReplicationSpec(k=2))
    flat = c2.write_sync("/f", data_of(2 * KiB), protocol="rdma-flat").latency_ns
    assert hl > 1.5 * flat


def test_hyperloop_cpu_stays_idle():
    tb, c = make(install_hyperloop_targets)
    c.create("/f", size=64 * KiB, replication=ReplicationSpec(k=3))
    c.write_sync("/f", data_of(64 * KiB), protocol="rdma-hyperloop")
    for e in c.open("/f").extents:
        assert tb.node(e.node).cpu.busy_ns == 0


# ------------------------------------------------------------------ inec
def test_inec_parity_matches_rs_encode():
    from repro.core.policies.erasure import rs_for

    tb, c = make(install_inec_targets)
    lay = c.create("/f", size=60 * KiB, ec=EcSpec(k=3, m=2))
    d = data_of(60 * KiB, 12)
    out = c.write_sync("/f", d, protocol="inec")
    assert out.ok
    tb.run(until=tb.sim.now + 200_000)
    rs = rs_for(3, 2)
    enc = rs.encode(rs.split(d))
    for i, ext in enumerate(list(lay.extents) + list(lay.parity_extents)):
        got = tb.node(ext.node).memory.view(ext.addr, enc[0].nbytes)
        assert np.array_equal(got, enc[i])


def test_spin_and_inec_produce_identical_bytes():
    """Two different datapaths, same algebra."""
    d = data_of(90 * KiB, 13)
    results = {}
    for proto, installer in [("spin", install_spin_targets), ("inec", install_inec_targets)]:
        tb, c = make(installer)
        lay = c.create("/f", size=90 * KiB, ec=EcSpec(k=3, m=2))
        assert c.write_sync("/f", d, protocol=proto).ok
        tb.run(until=tb.sim.now + 200_000)
        results[proto] = [
            tb.node(e.node).memory.view(e.addr, lay.chunk_length()).copy()
            for e in list(lay.extents) + list(lay.parity_extents)
        ]
    for a, b in zip(results["spin"], results["inec"]):
        assert np.array_equal(a, b)


# ------------------------------------------------------------------- api
def test_unknown_protocol_rejected():
    _, c = make()
    c.create("/f", size=1 * KiB)
    with pytest.raises(ValueError):
        c.write("/f", data_of(10), protocol="carrier-pigeon")
