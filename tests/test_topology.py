"""Leaf–spine fabric tests."""

import numpy as np
import pytest

from repro.simnet import NetConfig, Simulator
from repro.simnet.packet import Packet
from repro.simnet.topology import LeafSpineNetwork


class Sink:
    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.received = []
        self.times = []

    def receive(self, pkt):
        self.received.append(pkt)
        self.times.append(self.sim.now)


def _pkt(src, dst, nbytes=2048 - 64):
    return Packet(src=src, dst=dst, op="write", msg_id=1, seq=0, nseq=1,
                  payload=np.zeros(nbytes, dtype=np.uint8))


def build(n_leaves=2, n_spines=1, uplink_gbps=None, **cfg_kw):
    sim = Simulator()
    cfg = NetConfig(link_latency_ns=20, switch_latency_ns=100, **cfg_kw)
    net = LeafSpineNetwork(sim, cfg, n_leaves=n_leaves, n_spines=n_spines,
                           uplink_gbps=uplink_gbps)
    return sim, net


def test_intra_leaf_one_switch_hop():
    sim, net = build()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    pa = net.register(a, leaf=0)
    net.register(b, leaf=0)
    pa.send(_pkt("a", "b"))
    sim.run()
    assert len(b.received) == 1
    intra = b.times[0]

    # cross-leaf costs two extra hops (leaf->spine->leaf)
    sim2, net2 = build()
    c, d = Sink(sim2, "c"), Sink(sim2, "d")
    pc = net2.register(c, leaf=0)
    net2.register(d, leaf=1)
    pc.send(_pkt("c", "d"))
    sim2.run()
    inter = d.times[0]
    assert inter > intra + 100  # at least 2 extra links + 2 switch stages


def test_routing_reaches_every_leaf():
    sim, net = build(n_leaves=3, n_spines=2)
    sinks = {}
    ports = {}
    for i in range(6):
        s = Sink(sim, f"n{i}")
        sinks[s.name] = s
        ports[s.name] = net.register(s, leaf=i % 3)
    for src in sinks:
        for dst in sinks:
            if src != dst:
                ports[src].send(_pkt(src, dst))
    sim.run()
    for name, s in sinks.items():
        assert len(s.received) == 5, name


def test_unknown_destination_raises():
    sim, net = build()
    a = Sink(sim, "a")
    pa = net.register(a, leaf=0)
    pa.send(_pkt("a", "ghost"))
    with pytest.raises(KeyError):
        sim.run()


def test_duplicate_name_rejected():
    sim, net = build()
    net.register(Sink(sim, "a"))
    with pytest.raises(ValueError):
        net.register(Sink(sim, "a"))


def test_oversubscription_throttles_cross_leaf():
    """A 4:1 oversubscribed uplink caps cross-leaf throughput."""

    def drain_time(uplink):
        sim, net = build(uplink_gbps=uplink)
        src, dst = Sink(sim, "s"), Sink(sim, "d")
        ps = net.register(src, leaf=0)
        net.register(dst, leaf=1)
        for _ in range(64):
            ps.send(_pkt("s", "d"))
        sim.run()
        return max(dst.times)

    full = drain_time(400.0)
    quarter = drain_time(100.0)
    assert quarter > 3.0 * full


def test_ecmp_spreads_over_spines():
    sim, net = build(n_leaves=2, n_spines=2)
    a, b = Sink(sim, "a"), Sink(sim, "b")
    pa = net.register(a, leaf=0)
    net.register(b, leaf=1)
    for i in range(10):
        pa.send(_pkt("a", "b"))
    sim.run()
    assert len(b.received) == 10
    # both spines carried traffic
    assert all(sp.rx_packets > 0 for sp in net.spines)
