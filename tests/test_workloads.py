"""Workload driver tests."""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.protocols import install_spin_targets
from repro.workloads import (
    measure_goodput,
    measure_write_latency,
    optimal_chunk_size,
    payload_bytes,
    sweep,
)

KiB = 1024


def test_payload_bytes_deterministic():
    a = payload_bytes(1000, seed=3)
    b = payload_bytes(1000, seed=3)
    c = payload_bytes(1000, seed=4)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    assert a.dtype == np.uint8


def _env():
    tb = build_testbed(n_storage=4)
    install_spin_targets(tb)
    c = DfsClient(tb)
    c.create("/f", size=64 * KiB)
    return tb, c


def test_measure_write_latency_median():
    _, c = _env()
    lat = measure_write_latency(c, "/f", 4 * KiB, "spin", warmup=1, repeats=3)
    assert lat > 0


def test_measure_write_latency_fails_loudly_on_nack():
    _, c = _env()
    c._tickets.clear()
    with pytest.raises(RuntimeError):
        measure_write_latency(c, "/f", 1 * KiB, "spin", warmup=0, repeats=1)


def test_measure_goodput_accounts_all_ops():
    tb, c = _env()
    data = payload_bytes(8 * KiB)
    res = measure_goodput(
        tb, lambda i: c.write("/f", data, protocol="spin"),
        n_ops=10, op_bytes=8 * KiB, window=4,
    )
    assert res.n_ops == 10
    assert res.bytes_completed == 10 * 8 * KiB
    assert res.goodput_gbps > 0


def test_goodput_window_speedup():
    """A wider window overlaps writes and raises goodput."""
    def run(window):
        tb, c = _env()
        data = payload_bytes(4 * KiB)
        return measure_goodput(
            tb, lambda i: c.write("/f", data, protocol="spin"),
            n_ops=24, op_bytes=4 * KiB, window=window,
        ).goodput_gbps

    assert run(8) > 2 * run(1)


def test_sweep():
    assert sweep(lambda x: x * 2, [1, 2, 3]) == {1: 2, 2: 4, 3: 6}


def test_optimal_chunk_size_picks_minimum():
    costs = {8 << 10: 50.0, 16 << 10: 30.0, 32 << 10: 40.0}
    best, lat = optimal_chunk_size(lambda c: costs.get(c, 100.0), list(costs))
    assert best == 16 << 10 and lat == 30.0


def test_optimal_chunk_size_default_candidates():
    seen = []

    def run(c):
        seen.append(c)
        return float(c)

    best, _ = optimal_chunk_size(run)
    assert best == min(seen)
    assert len(seen) == 6


def test_latency_distribution_summary():
    from repro.workloads import measure_latency_distribution

    tb, c = _env()
    data = payload_bytes(4 * KiB)
    stats = measure_latency_distribution(
        tb, lambda i: c.write("/f", data, protocol="spin"), n_ops=16, window=4
    )
    assert stats["n"] == 16
    assert 0 < stats["min"] <= stats["median"] <= stats["p99"] <= stats["max"]


def test_latency_distribution_tail_grows_under_load():
    """Deeper windows queue more: the p99 under load exceeds the
    unloaded median."""
    from repro.workloads import measure_latency_distribution

    def stats(window):
        tb, c = _env()
        data = payload_bytes(16 * KiB)
        return measure_latency_distribution(
            tb, lambda i: c.write("/f", data, protocol="spin"),
            n_ops=32, window=window,
        )

    light, heavy = stats(1), stats(24)
    assert heavy["p99"] > light["median"] * 1.5
