"""PsPIN accelerator tests: pipeline timing, handler ordering, HPU
scheduling, egress back-pressure, cleanup."""

import numpy as np
import pytest

from repro.core.context import ExecutionContext, Handler, HandlerSet
from repro.core.handlers import DfsPolicy, build_dfs_context
from repro.core.request import DfsHeader, WriteRequestHeader
from repro.core.state import DfsState
from repro.params import PsPinParams, SimParams
from repro.pspin.accelerator import PsPinAccelerator
from repro.pspin.isa import HandlerCost
from repro.pspin.memory import NicMemory
from repro.simnet import Simulator
from repro.simnet.packet import Message, Packet, segment_message


class Harness:
    """Accelerator with stub NIC egress and DMA."""

    def __init__(self, params: PsPinParams | None = None, authority=None,
                 egress_delay_ns: float = 0.0):
        self.sim = Simulator()
        self.params = params or PsPinParams()
        self.sent: list[Packet] = []
        self.dmas: list[tuple] = []
        self.egress_delay_ns = egress_delay_ns

        def send_fn(pkt):
            self.sent.append(pkt)
            ev = self.sim.event()
            if self.egress_delay_ns:
                self.sim._call_soon(lambda: ev.succeed(None), delay=self.egress_delay_ns)
            else:
                ev.succeed(None)
            return ev

        def dma_fn(addr, payload):
            self.dmas.append((addr, payload))
            ev = self.sim.event()
            ev.succeed(None)
            return ev

        self.accel = PsPinAccelerator(self.sim, self.params, "node", send_fn, dma_fn)
        self.nicmem = NicMemory(self.sim, self.params)
        self.state = DfsState(self.nicmem, self.params, authority=authority)

    def install_policy(self, policy=None):
        ctx = build_dfs_context("dfs", policy or DfsPolicy(), self.state)
        self.accel.install(ctx)
        return ctx

    def write_packets(self, nbytes, msg_id=1, header_bytes=80):
        dfs = DfsHeader(greq_id=msg_id, op="write", client_id=1, capability=None,
                        reply_to="client")
        wrh = WriteRequestHeader(addr=0)
        msg = Message(
            src="client", dst="node", op="write",
            data=np.zeros(nbytes, dtype=np.uint8),
            headers={"dfs": dfs, "wrh": wrh, "write_len": nbytes},
            header_bytes=header_bytes, msg_id=msg_id,
        )
        return segment_message(msg, 2048)


def test_non_matching_packet_not_consumed():
    h = Harness()
    h.install_policy()
    pkt = Packet(src="a", dst="node", op="ack", msg_id=9, seq=0, nseq=1)
    assert not h.accel.ingest(pkt)


def test_no_context_not_consumed():
    h = Harness()
    pkt = Packet(src="a", dst="node", op="write", msg_id=9, seq=0, nseq=1)
    assert not h.accel.ingest(pkt)


def test_single_packet_write_acks_and_dmas():
    h = Harness()
    h.install_policy()
    for pkt in h.write_packets(1000):
        assert h.accel.ingest(pkt)
    h.sim.run(until=100_000)
    acks = [p for p in h.sent if p.op == "ack"]
    assert len(acks) == 1 and acks[0].dst == "client"
    assert len(h.dmas) == 1 and h.dmas[0][1].nbytes == 1000
    assert h.accel.packets_processed == 1
    assert h.state.requests_completed == 1 and not h.state.req_table


def test_multi_packet_write_one_request_entry():
    h = Harness()
    h.install_policy()
    pkts = h.write_packets(20_000)
    assert len(pkts) > 5
    for pkt in pkts:
        assert h.accel.ingest(pkt)
    h.sim.run(until=1_000_000)
    assert h.state.requests_started == 1
    assert h.state.requests_completed == 1
    assert sum(d[1].nbytes for d in h.dmas) == 20_000
    assert len([p for p in h.sent if p.op == "ack"]) == 1


def test_handler_ordering_hh_before_ph_before_ch():
    """sPIN contract: HH completes before PHs; CH after all PHs."""
    h = Harness()
    order = []

    class P(DfsPolicy):
        def on_header(self, api, task, entry, pkt):
            super().on_header(api, task, entry, pkt)
            order.append(("hh", api.now))

        def process_pkt(self, api, task, entry, pkt):
            order.append(("ph", api.now))
            return
            yield

        def request_fini(self, api, task, entry, pkt):
            order.append(("ch", api.now))
            return
            yield

    h.install_policy(P())
    for pkt in h.write_packets(30_000):
        h.accel.ingest(pkt)
    h.sim.run(until=1_000_000)
    kinds = [k for k, _ in order]
    assert kinds[0] == "hh" and kinds[-1] == "ch"
    assert kinds.count("ph") == len(h.write_packets(30_000))
    hh_t = order[0][1]
    ch_t = order[-1][1]
    assert all(hh_t <= t <= ch_t for _, t in order)


def test_out_of_order_payload_waits_for_header():
    h = Harness()
    h.install_policy()
    pkts = h.write_packets(5000)
    # deliver payload packets before the header
    for pkt in pkts[1:]:
        h.accel.ingest(pkt)
    h.sim.run(until=10_000)
    assert h.state.requests_started == 0  # parked on hh_done
    h.accel.ingest(pkts[0])
    h.sim.run(until=1_000_000)
    assert h.state.requests_completed == 1
    assert sum(d[1].nbytes for d in h.dmas) == 5000


def test_pipeline_latency_matches_fig7():
    """Single 2 KiB packet: buffer copy 32 + sched 2 + L1 copy 43 +
    dispatch 1 + HH 211 (+ PH + CH) — the ingest-to-HH-start delay is
    the Fig. 7 fixed pipeline."""
    h = Harness()
    t_hh = []

    class P(DfsPolicy):
        def on_header(self, api, task, entry, pkt):
            super().on_header(api, task, entry, pkt)
            t_hh.append(api.now)

    h.install_policy(P())
    (pkt,) = h.write_packets(2048 - 80)
    assert pkt.size == 2048 + 64  # transport framing extra
    h.accel.ingest(pkt)
    h.sim.run(until=10_000)
    # on_header runs after pipeline + HH compute: 33+2+44+1+211 = 291
    assert t_hh[0] == pytest.approx(291, abs=5)


def test_hpu_parallelism_bounded_by_pool():
    """With 1 cluster x 1 HPU, payload handlers serialize."""
    h = Harness(PsPinParams(n_clusters=1, hpus_per_cluster=1))
    h.install_policy()
    pkts = h.write_packets(20_000)
    for pkt in pkts:
        h.accel.ingest(pkt)
    h.sim.run(until=10_000_000)
    assert h.state.requests_completed == 1
    st = h.accel.stats["payload:dfs"]
    assert st.n == len(pkts)


def test_egress_backpressure_stretches_handler():
    """If egress transmissions are slow, forwarding handlers stall."""
    from repro.core.policies.replication import ReplicationPolicy
    from repro.core.request import ReplicaCoord, ReplicationParams

    def run(delay):
        h = Harness(egress_delay_ns=delay)
        h.install_policy(ReplicationPolicy())
        dfs = DfsHeader(greq_id=5, op="write", client_id=1, capability=None, reply_to="c")
        rp = ReplicationParams(strategy="ring", virtual_rank=0,
                               coords=(ReplicaCoord("n2", 0),))
        wrh = WriteRequestHeader(addr=0, resiliency="replication", replication=rp)
        msg = Message(src="c", dst="node", op="write",
                      data=np.zeros(30_000, dtype=np.uint8),
                      headers={"dfs": dfs, "wrh": wrh, "write_len": 30_000},
                      header_bytes=100, msg_id=77)
        for pkt in segment_message(msg, 2048):
            h.accel.ingest(pkt)
        h.sim.run(until=50_000_000)
        return h.accel.stats["payload:dfs"].mean_duration()

    fast = run(0.0)
    slow = run(2000.0)
    assert slow > fast * 2


def test_ingress_overload_nacks_new_messages():
    """When the accelerator can't keep up, new messages are denied and
    the client retries later (§III-B2/§III-C)."""
    h = Harness(PsPinParams(ingress_queue_packets=2, n_clusters=1, hpus_per_cluster=1))
    h.install_policy()
    first = h.write_packets(40_000, msg_id=1)
    for pkt in first[:4]:  # saturate the 2-packet ingress queue
        assert h.accel.ingest(pkt)
    second = h.write_packets(4_000, msg_id=2)
    for pkt in second:
        assert h.accel.ingest(pkt)  # consumed: denied, not raw-written
    h.sim.run(until=50_000_000)
    assert h.accel.packets_steered >= len(second)
    nacks = [p for p in h.sent if p.op == "nack"]
    assert any(p.headers.get("reason") == "overload" for p in nacks)
    # the denied message wrote nothing
    assert sum(d[1].nbytes for d in h.dmas) <= 40_000


def test_auth_reject_nacks_and_drops():
    from repro.dfs.capability import CapabilityAuthority

    h = Harness(authority=CapabilityAuthority(key=b"k"))
    h.install_policy()
    pkts = h.write_packets(10_000)  # capability=None -> reject
    for pkt in pkts:
        h.accel.ingest(pkt)
    h.sim.run(until=1_000_000)
    nacks = [p for p in h.sent if p.op == "nack"]
    assert len(nacks) == 1 and nacks[0].headers["reason"] == "auth"
    assert not h.dmas  # no payload ever crossed to the host
    assert h.state.requests_rejected_auth == 1
    assert [e["type"] for e in h.state.drain_host_events()] == ["auth_reject"]


def test_memory_denial_nacks():
    params = PsPinParams()
    h = Harness(params)
    h.install_policy()
    # exhaust request memory: drain every L1 and whatever L2 remains
    for c in range(params.n_clusters):
        assert h.nicmem.l1[c].try_get(h.nicmem.l1[c].level)
    assert h.nicmem.l2.try_get(h.nicmem.l2.level)
    for pkt in h.write_packets(1000):
        h.accel.ingest(pkt)
    h.sim.run(until=1_000_000)
    nacks = [p for p in h.sent if p.op == "nack"]
    assert len(nacks) == 1 and nacks[0].headers["reason"] == "nic_mem"


def test_cleanup_reclaims_abandoned_request():
    params = PsPinParams(cleanup_timeout_ns=10_000.0)
    h = Harness(params)
    h.install_policy()
    pkts = h.write_packets(50_000)
    for pkt in pkts[:3]:  # client dies mid-write
        h.accel.ingest(pkt)
    h.sim.run(until=200_000)
    assert h.state.requests_cleaned == 1
    assert not h.state.req_table
    assert h.accel.in_flight_messages == 0
    events = h.state.drain_host_events()
    assert any(e["type"] == "write_interrupted" for e in events)


def test_cleanup_does_not_touch_active_requests():
    params = PsPinParams(cleanup_timeout_ns=50_000.0)
    h = Harness(params)
    h.install_policy()
    for pkt in h.write_packets(4000):
        h.accel.ingest(pkt)
    h.sim.run(until=500_000)
    assert h.state.requests_cleaned == 0
    assert h.state.requests_completed == 1


def test_stats_record_instruction_counts():
    h = Harness()
    h.install_policy()
    for pkt in h.write_packets(10_000):
        h.accel.ingest(pkt)
    h.sim.run(until=1_000_000)
    hh = h.accel.stats["header:dfs"]
    assert hh.n == 1 and hh.mean_instructions() == 120
    assert hh.mean_duration() == pytest.approx(211, abs=2)
    assert hh.mean_ipc(1.0) == pytest.approx(0.57, abs=0.02)
