"""GF(2^8) matrix algebra tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import (
    SingularMatrixError,
    gf_mat_inv,
    gf_matmul,
    gf_mul,
    systematic_encoding_matrix,
    vandermonde,
)


def rand_matrix(rng, rows, cols):
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)


def naive_matmul(a, b):
    m, n = a.shape
    n2, p = b.shape
    out = np.zeros((m, p), dtype=np.uint8)
    for i in range(m):
        for j in range(p):
            acc = 0
            for k in range(n):
                acc ^= gf_mul(int(a[i, k]), int(b[k, j]))
            out[i, j] = acc
    return out


def test_matmul_matches_naive():
    rng = np.random.default_rng(3)
    a = rand_matrix(rng, 4, 5)
    b = rand_matrix(rng, 5, 3)
    assert np.array_equal(gf_matmul(a, b), naive_matmul(a, b))


def test_matmul_identity():
    rng = np.random.default_rng(4)
    a = rand_matrix(rng, 6, 6)
    eye = np.eye(6, dtype=np.uint8)
    assert np.array_equal(gf_matmul(a, eye), a)
    assert np.array_equal(gf_matmul(eye, a), a)


def test_matmul_shape_check():
    with pytest.raises(ValueError):
        gf_matmul(np.zeros((2, 3), np.uint8), np.zeros((4, 2), np.uint8))


def test_matmul_with_zero_rows():
    a = np.zeros((3, 3), dtype=np.uint8)
    b = np.arange(9, dtype=np.uint8).reshape(3, 3)
    assert not gf_matmul(a, b).any()


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**31 - 1))
def test_inverse_roundtrip(n, seed):
    """Random invertible matrices invert correctly."""
    rng = np.random.default_rng(seed)
    eye = np.eye(n, dtype=np.uint8)
    for _ in range(50):
        m = rand_matrix(rng, n, n)
        try:
            inv = gf_mat_inv(m)
        except SingularMatrixError:
            continue
        assert np.array_equal(gf_matmul(m, inv), eye)
        assert np.array_equal(gf_matmul(inv, m), eye)
        return
    pytest.skip("no invertible matrix drawn")  # pragma: no cover


def test_singular_detected():
    m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
    with pytest.raises(SingularMatrixError):
        gf_mat_inv(m)
    with pytest.raises(SingularMatrixError):
        gf_mat_inv(np.zeros((3, 3), dtype=np.uint8))


def test_inverse_requires_square():
    with pytest.raises(ValueError):
        gf_mat_inv(np.zeros((2, 3), dtype=np.uint8))


def test_vandermonde_structure():
    v = vandermonde(5, 3)
    assert v.shape == (5, 3)
    assert (v[:, 0] == 1).all()            # i**0 == 1
    assert v[1, 1] == 1 and v[2, 1] == 2   # i**1 == i
    assert v[0, 1] == 0 and v[0, 2] == 0   # 0**j == 0 for j>0
    with pytest.raises(ValueError):
        vandermonde(257, 2)


@pytest.mark.parametrize("k,m", [(1, 1), (2, 1), (3, 2), (4, 2), (6, 3), (10, 4)])
def test_systematic_matrix_properties(k, m):
    enc = systematic_encoding_matrix(k, m)
    assert enc.shape == (k + m, k)
    assert np.array_equal(enc[:k], np.eye(k, dtype=np.uint8))
    # MDS property: every k x k submatrix is invertible (checked on all
    # C(k+m, k) row subsets for these small codes).
    import itertools

    for rows in itertools.combinations(range(k + m), k):
        gf_mat_inv(enc[list(rows), :])  # must not raise


def test_systematic_matrix_validation():
    with pytest.raises(ValueError):
        systematic_encoding_matrix(0, 2)
    with pytest.raises(ValueError):
        systematic_encoding_matrix(-1, 2)
    with pytest.raises(ValueError):
        systematic_encoding_matrix(2, -1)
    with pytest.raises(ValueError):
        systematic_encoding_matrix(250, 10)
