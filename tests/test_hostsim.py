"""Unit tests for the host models: memory target, PCIe, CPU."""

import numpy as np
import pytest

from repro.hostsim import AddressError, Cpu, MemoryTarget, Pcie
from repro.params import HostParams
from repro.simnet import Simulator


# ------------------------------------------------------------ MemoryTarget
def test_memory_write_read_roundtrip():
    m = MemoryTarget(1024)
    data = np.arange(100, dtype=np.uint8)
    m.write(10, data)
    assert np.array_equal(m.read(10, 100), data)
    assert m.bytes_written == 100 and m.write_ops == 1


def test_memory_read_returns_copy():
    m = MemoryTarget(64)
    m.write(0, np.ones(8, dtype=np.uint8))
    r = m.read(0, 8)
    r[:] = 0
    assert (m.view(0, 8) == 1).all()


def test_memory_view_is_zero_copy():
    m = MemoryTarget(64)
    v = m.view(0, 8)
    m.write(0, np.full(8, 9, dtype=np.uint8))
    assert (v == 9).all()


def test_memory_bounds_checked():
    m = MemoryTarget(16)
    with pytest.raises(AddressError):
        m.write(10, np.zeros(8, dtype=np.uint8))
    with pytest.raises(AddressError):
        m.read(-1, 4)
    with pytest.raises(AddressError):
        m.read(0, 17)


def test_memory_bad_capacity():
    with pytest.raises(ValueError):
        MemoryTarget(0)


def test_memory_overlapping_writes_last_wins():
    m = MemoryTarget(32)
    m.write(0, np.full(16, 1, dtype=np.uint8))
    m.write(8, np.full(16, 2, dtype=np.uint8))
    assert (m.view(0, 8) == 1).all()
    assert (m.view(8, 16) == 2).all()


# ------------------------------------------------------------------ Pcie
def _pcie(sim, lat=200.0, bw=512.0):
    return Pcie(sim, HostParams(pcie_latency_ns=lat, pcie_bandwidth_gbps=bw))


def test_pcie_latency_plus_serialization():
    sim = Simulator()
    p = _pcie(sim)
    done_at = []

    def proc():
        yield p.dma(6400)  # 6400 B * 8/512 = 100 ns + 200 ns latency
        done_at.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done_at == [pytest.approx(300.0)]
    assert p.transactions == 1 and p.bytes_transferred == 6400


def test_pcie_serializes_transfers():
    """Two DMAs share the channel: second completes one serialization
    later (latency overlaps)."""
    sim = Simulator()
    p = _pcie(sim)
    done = []

    def proc(tag):
        yield p.dma(6400)
        done.append((tag, sim.now))

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert done[0] == ("a", pytest.approx(300.0))
    assert done[1] == ("b", pytest.approx(400.0))


def test_pcie_on_complete_fires_at_durability():
    sim = Simulator()
    p = _pcie(sim)
    m = MemoryTarget(64)
    data = np.full(8, 5, dtype=np.uint8)
    p.dma(8, on_complete=lambda: m.write(0, data))
    sim.run(until=100)
    assert not m.view(0, 8).any()  # not yet durable
    sim.run()
    assert (m.view(0, 8) == 5).all()


def test_pcie_zero_byte_transaction():
    sim = Simulator()
    p = _pcie(sim)
    fired = []

    def proc():
        yield p.dma(0)
        fired.append(sim.now)

    sim.process(proc())
    sim.run()
    assert fired == [pytest.approx(200.0)]  # latency only


def test_pcie_negative_rejected():
    sim = Simulator()
    p = _pcie(sim)
    with pytest.raises(ValueError):
        p.dma(-1)


def test_pcie_utilisation():
    sim = Simulator()
    p = _pcie(sim)
    p.dma(6400)
    sim.run()
    assert 0 < p.utilisation() <= 1


# ------------------------------------------------------------------- Cpu
def test_cpu_cycles_and_memcpy_costs():
    sim = Simulator()
    cpu = Cpu(sim, HostParams(cpu_freq_ghz=3.0, memcpy_gbps=160.0))
    assert cpu.cycles_ns(300) == pytest.approx(100.0)
    assert cpu.memcpy_ns(2000) == pytest.approx(2000 * 8 / 160.0)


def test_cpu_core_contention():
    sim = Simulator()
    cpu = Cpu(sim, HostParams(cpu_cores=1))
    order = []

    def worker(tag):
        yield from cpu.run(100)
        order.append((tag, sim.now))

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    assert order == [("a", 100.0), ("b", 200.0)]


def test_cpu_parallel_cores():
    sim = Simulator()
    cpu = Cpu(sim, HostParams(cpu_cores=4))
    done = []

    def worker():
        yield from cpu.run(100)
        done.append(sim.now)

    for _ in range(4):
        sim.process(worker())
    sim.run()
    assert done == [100.0] * 4
