"""Fig. 4 accounting validated against the running simulator: NIC
memory consumption really is 77 bytes per concurrent request."""

import numpy as np
import pytest

from repro import DfsClient, ReplicationSpec, build_testbed
from repro.analysis import littles_law
from repro.params import SimParams
from repro.protocols import install_spin_targets
from repro.workloads import measure_goodput, payload_bytes

KiB = 1024


def test_peak_nic_memory_is_descriptor_times_concurrency():
    tb = build_testbed(n_storage=2)
    install_spin_targets(tb)
    c = DfsClient(tb)
    c.create("/f", size=64 * KiB)
    data = payload_bytes(64 * KiB)
    measure_goodput(
        tb, lambda i: c.write("/f", data, protocol="spin"),
        n_ops=32, op_bytes=64 * KiB, window=16,
    )
    lay = c.open("/f")
    node = tb.node(lay.primary.node)
    peak = node.dfs_state.peak_concurrent
    assert peak >= 2  # the window really overlapped requests
    # peak_in_use sums per-cluster watermarks (clusters peak at
    # different instants), so it upper-bounds the true simultaneous
    # peak; every byte of it is 77-byte descriptors.
    peak_bytes = node.nicmem.peak_in_use_bytes()
    assert peak_bytes % 77 == 0
    assert peak * 77 <= peak_bytes <= node.dfs_state.requests_started * 77


def test_concurrency_grows_with_window():
    def peak(window):
        tb = build_testbed(n_storage=2)
        install_spin_targets(tb)
        c = DfsClient(tb)
        c.create("/f", size=16 * KiB)
        data = payload_bytes(16 * KiB)
        measure_goodput(
            tb, lambda i: c.write("/f", data, protocol="spin"),
            n_ops=48, op_bytes=16 * KiB, window=window,
        )
        return tb.node(c.open("/f").primary.node).dfs_state.peak_concurrent

    assert peak(24) > peak(2)


def test_littles_law_bounds_measured_concurrency():
    """The Fig. 4 worst-case (writes arriving at full line rate) upper-
    bounds what the simulator actually sustains at the same size."""
    size = 16 * KiB
    tb = build_testbed(n_storage=2)
    install_spin_targets(tb)
    c = DfsClient(tb)
    c.create("/f", size=size)
    data = payload_bytes(size)
    res = measure_goodput(
        tb, lambda i: c.write("/f", data, protocol="spin"),
        n_ops=64, op_bytes=size, window=32,
    )
    node = tb.node(c.open("/f").primary.node)
    measured_peak = node.dfs_state.peak_concurrent
    # scale the worst-case model to the achieved goodput and the
    # actual mean residence implied by Little's law: L = lambda * W
    arrival_per_ns = res.goodput_gbps / (size * 8.0)
    # residence from the simulator itself
    mean_residence = measured_peak / arrival_per_ns
    predicted = littles_law.concurrent_writes(
        size, SimParams(), extra_latency_ns=mean_residence
    )
    assert measured_peak <= predicted  # worst case really is worst


def test_request_memory_never_exceeds_capacity():
    params = SimParams()
    tb = build_testbed(n_storage=2, params=params)
    install_spin_targets(tb)
    c = DfsClient(tb)
    c.create("/f", size=8 * KiB)
    data = payload_bytes(8 * KiB)
    measure_goodput(
        tb, lambda i: c.write("/f", data, protocol="spin"),
        n_ops=64, op_bytes=8 * KiB, window=48,
    )
    for node in tb.storage_nodes:
        if node.nicmem is not None:
            assert node.nicmem.peak_in_use_bytes() <= node.nicmem.request_capacity_bytes
