"""Unit tests for the partitioned-engine building blocks.

Covers the conservative-window kernel primitive
(:meth:`Simulator.run_window`), the deterministic heap tie-break
contract the parallel engine relies on, the :meth:`Topology.partition`
validation surface, telemetry merging, and the coordinator-facing
pieces of :class:`ParallelSimulator` (boundary ordering, ``call_at``,
``MultiEvent``).
"""

from __future__ import annotations

import pytest

from repro.simnet.engine import SimulationError, Simulator
from repro.simnet.network import NetConfig
from repro.simnet.parallel import MultiEvent, ParallelSimulator, PartitionedNetwork
from repro.simnet.topology import PartitionSpec, Topology, star_topology
from repro.telemetry.merge import (
    PARTITION_ID_STRIDE,
    MergedTelemetry,
    merge_telemetry,
)
from repro.telemetry.spans import Telemetry


# ------------------------------------------------------------- run_window

class TestRunWindow:
    def test_exclusive_bound(self):
        sim = Simulator()
        fired = []
        for t in (5.0, 10.0, 15.0):
            sim._call_soon(lambda t=t: fired.append(t), delay=t)
        sim.run_window(10.0)
        assert fired == [5.0]
        assert sim.now == 5.0  # never advanced to the bound

    def test_inclusive_bound(self):
        sim = Simulator()
        fired = []
        for t in (5.0, 10.0, 15.0):
            sim._call_soon(lambda t=t: fired.append(t), delay=t)
        sim.run_window(10.0, inclusive=True)
        assert fired == [5.0, 10.0]
        assert sim.now == 10.0

    def test_events_beyond_bound_stay_queued(self):
        sim = Simulator()
        fired = []
        sim._call_soon(lambda: fired.append(1), delay=20.0)
        sim.run_window(10.0)
        assert fired == [] and sim.now == 0.0
        assert len(sim._heap) == 1
        sim.run_window(30.0)
        assert fired == [1] and sim.now == 20.0

    def test_injection_between_windows_is_legal(self):
        """The whole point of run_window: after a window ends at the last
        dispatched event, an absolute-time injection inside the *next*
        window must not be in the past."""
        sim = Simulator()
        fired = []
        sim._call_soon(lambda: fired.append("a"), delay=3.0)
        sim.run_window(10.0)
        assert sim.now == 3.0
        sim._call_at1(fired.append, "boundary", 7.0)  # 7.0 > now: fine
        sim.run_window(10.0)
        assert fired == ["a", "boundary"]

    def test_counters_maintained(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim._call_soon(lambda: None, delay=t)
        sim.run_window(2.5)
        assert sim.events_dispatched == 2
        assert sim._heap_high_water >= 3
        assert sim.wall_seconds > 0.0


# ------------------------------------------- heap tie-break determinism

class TestHeapTieBreak:
    """Satellite: same-timestamp events must dispatch in insertion
    order, stably across fresh kernels and under partition merge."""

    N = 32
    T = 100.0

    def _schedule(self, sim, log, tag=""):
        for i in range(self.N):
            sim._call_at1(log.append, f"{tag}{i}", self.T)

    def test_insertion_order_on_one_kernel(self):
        sim, log = Simulator(), []
        self._schedule(sim, log)
        sim.run(until=self.T)
        assert log == [f"{i}" for i in range(self.N)]

    def test_order_survives_kernel_restart(self):
        runs = []
        for _ in range(3):
            sim, log = Simulator(), []
            self._schedule(sim, log)
            sim.run(until=self.T)
            runs.append(log)
        assert runs[0] == runs[1] == runs[2] == [f"{i}" for i in range(self.N)]

    def test_order_survives_run_window_split(self):
        """Dispatching the tie through run_window (the partitioned path)
        must preserve the same insertion order as run()."""
        sim, log = Simulator(), []
        self._schedule(sim, log)
        sim.run_window(self.T)          # exclusive: dispatches nothing
        assert log == []
        sim.run_window(self.T, inclusive=True)
        assert log == [f"{i}" for i in range(self.N)]

    def test_order_under_partition_merge(self):
        """Per-partition ties keep their local insertion order after the
        windows interleave; injected boundary ties sort by
        (fire_t, src_rank, src_seq) — reproducibly."""
        logs = []
        for _ in range(2):
            topo = star_topology(["a", "b"])
            psim = ParallelSimulator(topo.partition(2))
            log = []
            for rank in (0, 1):
                sim = psim.sims[rank]
                for i in range(4):
                    sim._call_at1(log.append, (rank, i), self.T)
            psim.run(until=self.T)
            logs.append(log)
        assert logs[0] == logs[1]
        # within one partition the insertion order is intact
        for rank in (0, 1):
            mine = [x for x in logs[0] if x[0] == rank]
            assert mine == [(rank, i) for i in range(4)]


# ------------------------------------------------- Topology.partition

class TestPartitionValidation:
    """Satellite: every invalid cut raises with a message naming the
    offender."""

    def _topo(self, n=4):
        return star_topology([f"n{i}" for i in range(n)])

    def test_default_assignment_is_contiguous(self):
        spec = self._topo(4).partition(2)
        assert spec.k == 2
        assert spec.members(0) == ["n0", "n1"]
        assert spec.members(1) == ["n2", "n3"]
        assert spec.lookahead_ns == NetConfig().switch_latency_ns

    def test_k_exceeds_node_count(self):
        with pytest.raises(ValueError, match=r"k=5 partitions exceed the 4"):
            self._topo(4).partition(5)

    def test_single_node_topology(self):
        spec = self._topo(1).partition(1)
        assert spec.members(0) == ["n0"]
        with pytest.raises(ValueError, match="exceed the 1 endpoint"):
            self._topo(1).partition(2)

    def test_invalid_k(self):
        for bad in (0, -1, 1.5, True, "2"):
            with pytest.raises(ValueError, match="positive integer"):
                self._topo().partition(bad)

    def test_empty_topology(self):
        with pytest.raises(ValueError, match="empty topology"):
            Topology().partition(1)

    def test_orphaned_endpoint(self):
        with pytest.raises(ValueError, match=r"orphans link n3<->switch"):
            self._topo(4).partition(2, {"n0": 0, "n1": 0, "n2": 1})

    def test_unknown_endpoint_in_assignment(self):
        with pytest.raises(ValueError, match="unknown endpoint 'ghost'"):
            self._topo(2).partition(
                2, {"n0": 0, "n1": 1, "ghost": 0})

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError, match=r"outside range\(0, 2\)"):
            self._topo(2).partition(2, {"n0": 0, "n1": 2})

    def test_empty_partition(self):
        with pytest.raises(ValueError, match="partition 1 would be empty"):
            self._topo(2).partition(2, {"n0": 0, "n1": 0})

    def test_duplicate_endpoint(self):
        topo = self._topo(2)
        with pytest.raises(ValueError, match="duplicate endpoint"):
            topo.add_endpoint("n0")

    def test_direct_link_cannot_cross_cut(self):
        topo = self._topo(4)
        topo.add_link("n0", "n3")
        with pytest.raises(ValueError, match=r"direct link n0<->n3"):
            topo.partition(2)
        # co-partitioned is fine
        spec = topo.partition(2, {"n0": 0, "n3": 0, "n1": 1, "n2": 1})
        assert spec.rank_of("n3") == 0

    def test_link_to_unregistered_endpoint(self):
        with pytest.raises(ValueError, match="unknown endpoint 'nx'"):
            self._topo(2).add_link("n0", "nx")


# ------------------------------------------------------ telemetry merge

class TestTelemetryMerge:
    def _parts(self, k=2):
        parts = []
        for rank in range(k):
            t = Telemetry(enabled=True)
            import itertools
            t._trace_ids = itertools.count(1 + rank * PARTITION_ID_STRIDE)
            t._span_ids = itertools.count(1 + rank * PARTITION_ID_STRIDE)
            parts.append(t)
        return parts

    def test_span_ids_never_collide(self):
        parts = self._parts()
        s0 = parts[0].begin("a", "p", "t", 1.0)
        s1 = parts[1].begin("b", "p", "t", 2.0)
        assert s0.span_id != s1.span_id
        assert abs(s0.span_id - s1.span_id) >= PARTITION_ID_STRIDE - 1

    def test_spans_sorted_globally(self):
        parts = self._parts()
        parts[1].span("late", "p", "t", 5.0, 6.0)
        parts[0].span("early", "p", "t", 1.0, 2.0)
        parts[1].span("mid", "p", "t", 3.0, 4.0)
        merged = merge_telemetry(parts)
        assert [s.name for s in merged.spans] == ["early", "mid", "late"]

    def test_shared_counters_sum(self):
        parts = self._parts()
        parts[0].metrics.counter("switch.rx").inc(3)
        parts[1].metrics.counter("switch.rx").inc(4)
        parts[0].metrics.counter("only0").inc(7)
        m = merge_telemetry(parts).metrics
        assert m.counters["switch.rx"].value == 7
        # unique names are shared, not copied
        assert m.counters["only0"] is parts[0].metrics.counters["only0"]

    def test_colliding_gauges_replay_in_time_order(self):
        parts = self._parts()
        parts[0].metrics.gauge("q").set(1.0, 1.0)
        parts[0].metrics.gauge("q").set(5.0, 0.0)
        parts[1].metrics.gauge("q").set(3.0, 2.0)
        g = merge_telemetry(parts).metrics.gauges["q"]
        assert list(zip(g.times, g.values)) == [(1.0, 1.0), (3.0, 2.0), (5.0, 0.0)]
        assert g.max == 2.0

    def test_colliding_histograms_concat(self):
        parts = self._parts()
        parts[0].metrics.histogram("lat").observe(1.0)
        parts[1].metrics.histogram("lat").observe(2.0)
        assert sorted(
            merge_telemetry(parts).metrics.histograms["lat"].values
        ) == [1.0, 2.0]

    def test_facade_enabled_fans_out(self):
        parts = self._parts()
        mt = MergedTelemetry(parts)
        mt.enabled = False
        assert not parts[0].enabled and not parts[1].enabled
        mt.enabled = True
        assert parts[0].enabled and parts[1].enabled

    def test_facade_reset_fans_out(self):
        parts = self._parts()
        parts[0].span("x", "p", "t", 1.0, 2.0)
        parts[1].metrics.counter("c").inc()
        mt = MergedTelemetry(parts)
        mt.reset()
        assert mt.spans == [] and mt.metrics.counters == {}


# ------------------------------------------------- ParallelSimulator

def _psim(k=2, n=4, mode="inline"):
    topo = star_topology([f"n{i}" for i in range(n)])
    return ParallelSimulator(topo.partition(k), mode=mode)


class TestParallelSimulator:
    def test_rejects_bad_mode(self):
        topo = star_topology(["a", "b"])
        with pytest.raises(ValueError, match="mode"):
            ParallelSimulator(topo.partition(2), mode="threads")

    def test_rejects_zero_lookahead(self):
        spec = PartitionSpec(k=2, ranks=(("a", 0), ("b", 1)), lookahead_ns=0.0)
        with pytest.raises(SimulationError, match="positive lookahead"):
            ParallelSimulator(spec)

    def test_network_lookahead_consistency(self):
        """The cut rides the switch hop: a network whose switch latency
        is *below* the spec's claimed lookahead would let boundary
        packets fire inside the current window — rejected."""
        spec = PartitionSpec(k=2, ranks=(("a", 0), ("b", 1)),
                             lookahead_ns=NetConfig().switch_latency_ns + 1.0)
        psim = ParallelSimulator(spec)
        with pytest.raises(SimulationError, match="lookahead"):
            PartitionedNetwork(psim, NetConfig())

    def test_call_at_rejects_past(self):
        psim = _psim()
        psim.run(until=100.0)
        with pytest.raises(SimulationError, match="past"):
            psim.call_at(50.0, lambda: None)

    def test_call_at_targets_rank(self):
        psim = _psim(k=2, n=4)
        hits = []
        psim.call_at(10.0, lambda: hits.append("r0"), rank=0)
        psim.call_at(10.0, lambda: hits.append("r1"), rank=1)
        psim.run(until=20.0)
        assert sorted(hits) == ["r0", "r1"]

    def test_now_is_max_and_run_returns_it(self):
        psim = _psim()
        assert psim.run(until=500.0) == 500.0
        assert psim.now == 500.0
        for s in psim.sims:
            assert s.now == 500.0

    def test_timers_across_partitions(self):
        psim = _psim(k=2, n=4)
        fired = []
        for rank, sim in enumerate(psim.sims):
            def tick(rank=rank, sim=sim):
                yield sim.timeout(50.0 + rank)
                fired.append((sim.now, rank))
            sim.process(tick(), name=f"tick{rank}")
        psim.run(until=100.0)
        assert fired == [(50.0, 0), (51.0, 1)]

    def test_profile_shape(self):
        psim = _psim()
        psim.sims[0]._call_soon(lambda: None, delay=5.0)
        psim.run(until=10.0)
        prof = psim.profile()
        assert prof["partitions"] == 2
        assert prof["mode"] == "inline"
        assert prof["rounds"] >= 1

    def test_multievent_all_of(self):
        psim = _psim()
        evs = [s.event(f"e{r}") for r, s in enumerate(psim.sims)]
        me = psim.all_of(evs)
        assert isinstance(me, MultiEvent)
        assert not me.triggered
        evs[0].succeed(value="a")
        assert not me.triggered
        evs[1].succeed(value="b")
        assert me.triggered
        assert me.value == ["a", "b"]

    def test_run_until_event_deadlock_message_matches_serial(self):
        psim = _psim()
        ev = psim.event("never")
        with pytest.raises(SimulationError, match="can never fire"):
            psim.run_until_event(ev)

    def test_run_until_event_limit(self):
        psim = _psim()
        ev = psim.event("slow")
        psim.sims[1]._call_at1(lambda e: e.succeed(), ev, 1000.0)
        with pytest.raises(SimulationError, match="did not fire by"):
            psim.run_until_event(ev, limit=10.0)

    def test_boundary_message_ordering(self):
        """Equal fire times sort by (src_rank, src_seq): emission order
        within a rank, rank order across ranks."""
        psim = _psim(k=2, n=4)
        rt0, rt1 = psim._runtimes[0], psim._runtimes[1]
        rt1.emit(5.0, 0, "n0", "pkt-b")
        rt0.emit(5.0, 1, "n2", "pkt-a")
        rt0.emit(3.0, 1, "n2", "pkt-first")
        psim._route(rt0.take() + rt1.take())
        fire = [(m[0], m[1], m[5]) for m in psim._pending[1]]
        assert fire == [(3.0, 0, "pkt-first"), (5.0, 0, "pkt-a")]
        assert [(m[0], m[1], m[5]) for m in psim._pending[0]] == [
            (5.0, 1, "pkt-b")
        ]
