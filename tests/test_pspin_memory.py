"""NIC memory accounting tests (§III-B2)."""

import pytest

from repro.params import MiB, PsPinParams
from repro.pspin.memory import NicMemory
from repro.simnet import Simulator


@pytest.fixture
def nicmem():
    return NicMemory(Simulator(), PsPinParams())


def test_capacity_matches_paper(nicmem):
    # 4 x 1 MiB L1 + 4 MiB L2 - 2 MiB wide state = 6 MiB for requests
    assert nicmem.request_capacity_bytes == 6 * MiB
    # ~82 K concurrent 77-byte descriptors
    assert nicmem.max_concurrent_requests() == 6 * MiB // 77


def test_alloc_prefers_l1(nicmem):
    a = nicmem.alloc(cluster=0, nbytes=77)
    assert a is not None and a.tier == "l1" and a.cluster == 0
    assert nicmem.in_use_bytes() == 77


def test_l1_spills_to_l2(nicmem):
    big = PsPinParams().l1_bytes_per_cluster
    a1 = nicmem.alloc(0, big)  # fills cluster 0's L1
    assert a1.tier == "l1"
    a2 = nicmem.alloc(0, 77)
    assert a2.tier == "l2"
    assert nicmem.l2_spills == 1


def test_denial_when_full():
    p = PsPinParams()
    sim = Simulator()
    nm = NicMemory(sim, p)
    for c in range(p.n_clusters):
        assert nm.alloc(c, p.l1_bytes_per_cluster).tier == "l1"
    assert nm.alloc(0, p.l2_bytes - p.dfs_wide_state_bytes).tier == "l2"
    assert nm.alloc(0, 77) is None
    assert nm.denials == 1


def test_free_returns_capacity(nicmem):
    a = nicmem.alloc(1, 1000)
    nicmem.free(a)
    assert nicmem.in_use_bytes() == 0
    with pytest.raises(ValueError):
        nicmem.free(a)  # double free


def test_free_l2_allocation(nicmem):
    big = PsPinParams().l1_bytes_per_cluster
    nicmem.alloc(2, big)
    spill = nicmem.alloc(2, 500)
    assert spill.tier == "l2"
    before = nicmem.l2.level
    nicmem.free(spill)
    assert nicmem.l2.level == before + 500


def test_wide_state_allocation(nicmem):
    w = nicmem.alloc_wide(64 * 1024)  # the GF table
    assert w is not None and w.tier == "wide"
    nicmem.free(w)


def test_wide_state_exhaustion(nicmem):
    assert nicmem.alloc_wide(2 * MiB) is not None
    assert nicmem.alloc_wide(1) is None


def test_peak_tracking(nicmem):
    a = nicmem.alloc(0, 5000)
    nicmem.free(a)
    nicmem.alloc(0, 100)
    assert nicmem.peak_in_use_bytes() >= 5000


def test_invalid_allocs(nicmem):
    with pytest.raises(ValueError):
        nicmem.alloc(0, 0)
    with pytest.raises(ValueError):
        nicmem.alloc(0, -5)


def test_wide_reserve_must_fit():
    with pytest.raises(ValueError):
        NicMemory(Simulator(), PsPinParams(dfs_wide_state_bytes=5 * MiB))


def test_per_cluster_l1_isolated(nicmem):
    big = PsPinParams().l1_bytes_per_cluster
    nicmem.alloc(0, big)
    # other clusters' L1 still available
    assert nicmem.alloc(1, 77).tier == "l1"
    assert nicmem.alloc(2, 77).tier == "l1"
    assert nicmem.alloc(3, 77).tier == "l1"
