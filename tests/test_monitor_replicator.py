"""Heartbeat monitor + re-replicator: detection, repair, determinism."""

import dataclasses

import numpy as np
import pytest

from repro.dfs import build_testbed
from repro.dfs.client import DfsClient
from repro.dfs.layout import FileLayout, ReplicationSpec
from repro.dfs.monitor import MonitorConfig, install_monitor
from repro.dfs.nodes import StorageNode
from repro.dfs.replicator import ReplicatorConfig, ReReplicator
from repro.experiments.common import MiB, installer_for
from repro.params import SimParams

INTERVAL = 50_000.0
MISS = 3


def storm_testbed(seed=7, n_storage=8, max_inflight=2, protocol="spin"):
    params = dataclasses.replace(
        SimParams(), storage_capacity_bytes=4 * MiB
    ).with_faults(retransmit=True, rto_ns=30_000.0, rto_max_ns=120_000.0,
                  max_retransmits=3, seed=seed)
    tb = build_testbed(
        n_storage=n_storage, n_clients=1, params=params,
        placement="domain",
        failure_domains={f"sn{i}": i // 2 for i in range(n_storage)},
    )
    installer_for(protocol)(tb)
    mon = install_monitor(
        tb, config=MonitorConfig(interval_ns=INTERVAL, miss_threshold=MISS)
    )
    repl = ReReplicator(tb, ReplicatorConfig(max_inflight=max_inflight),
                        monitor=mon)
    return tb, mon, repl


def write_files(tb, n=6, size=4096, protocol="spin"):
    cl = DfsClient(tb, client_index=0)
    data = (np.arange(size, dtype=np.uint8) * 7 + 3).astype(np.uint8)
    for i in range(n):
        cl.create(f"/f{i}", size=size * 2, replication=ReplicationSpec(k=3))
        out = cl.write_sync(f"/f{i}", data, protocol=protocol)
        assert out.ok, out.nacks
    return data


def drain(tb, mon, repl, victims):
    for _ in range(200):
        tb.run(until=tb.sim.now + INTERVAL)
        if all(mon.is_dead(v) for v in victims) and repl.pending() == 0:
            return True
    return False


# ---------------------------------------------------------------- detection
def test_heartbeats_keep_live_nodes_alive():
    tb, mon, _ = storm_testbed()
    tb.run(until=20 * INTERVAL)  # many sweeps, nobody dies
    assert mon.dead == {}
    assert mon.beats_received > 0
    assert tb.metadata.dead_nodes() == []


def test_death_detected_within_miss_budget():
    tb, mon, _ = storm_testbed()
    t_kill = 4 * INTERVAL
    def killer():
        yield tb.sim.timeout(t_kill)
        tb.node("sn3").fail()
    tb.sim.process(killer(), name="killer")
    tb.run(until=t_kill + (MISS + 2) * INTERVAL)
    assert mon.is_dead("sn3")
    detect = mon.dead["sn3"] - t_kill
    assert MISS * INTERVAL <= detect <= (MISS + 2) * INTERVAL
    # verdict propagated to placement and management
    assert not tb.metadata.is_alive("sn3")
    assert not tb.mgmt.is_healthy("sn3")
    # nobody else got declared
    assert list(mon.dead) == ["sn3"]


def test_fail_also_stops_coalesced_trains():
    tb, _, _ = storm_testbed()
    node = tb.node("sn0")
    node.fail()
    # both delivery entry points are stubbed; a train must be swallowed
    assert node.nic.receive_train.__name__ == "<lambda>"
    assert node.nic.receive_train(object()) is None


# ------------------------------------------------------------------- repair
def test_repair_restores_redundancy_and_bytes():
    tb, mon, repl = storm_testbed()
    data = write_files(tb, n=6)
    md = tb.metadata
    assert md.allocated_bytes() == md.live_layout_bytes()
    def killer():
        yield tb.sim.timeout(2 * INTERVAL)
        tb.node("sn2").fail()
    tb.sim.process(killer(), name="killer")
    assert drain(tb, mon, repl, ["sn2"])
    assert repl.schedule and not repl.failed_repairs
    for path, lay in md.objects():
        assert isinstance(lay, FileLayout)
        for e in lay.extents:
            # no layout references the dead node, and every replica
            # (including repaired ones) holds the payload bytes
            assert e.node != "sn2", path
            got = tb.node(e.node).memory.read(e.addr, len(data))
            assert np.array_equal(got, data), (path, e)
    assert md.allocated_bytes() == md.live_layout_bytes()
    md.allocator.check()


def test_repair_excludes_existing_replica_nodes():
    tb, mon, repl = storm_testbed()
    write_files(tb, n=4)
    tb.node("sn2").fail()
    mon.declare_dead("sn2")
    assert drain(tb, mon, repl, ["sn2"])
    for _, lay in tb.metadata.objects():
        nodes = [e.node for e in lay.extents]
        assert len(nodes) == len(set(nodes))  # still k distinct nodes


def test_inflight_budget_respected():
    tb, mon, repl = storm_testbed(max_inflight=2)
    write_files(tb, n=10)
    tb.node("sn2").fail()
    tb.node("sn3").fail()
    mon.declare_dead("sn2")
    mon.declare_dead("sn3")
    assert drain(tb, mon, repl, ["sn2", "sn3"])
    assert repl.extents_repaired > 2
    assert repl.peak_inflight <= 2


def test_repair_schedule_is_deterministic():
    def one_run():
        tb, mon, repl = storm_testbed(seed=11)
        write_files(tb, n=6)
        def killer():
            yield tb.sim.timeout(2 * INTERVAL)
            tb.node("sn4").fail()
        tb.sim.process(killer(), name="killer")
        assert drain(tb, mon, repl, ["sn4"])
        return [dataclasses.astuple(r) for r in repl.schedule]

    assert one_run() == one_run()


def test_unrepairable_object_is_recorded_not_crashed():
    tb, mon, repl = storm_testbed()
    cl = DfsClient(tb, client_index=0)
    cl.create("/lonely", size=4096)  # single extent, no redundancy
    victim = tb.metadata.lookup("/lonely").extents[0].node
    tb.node(victim).fail()
    mon.declare_dead(victim)
    assert drain(tb, mon, repl, [victim])
    assert repl.failed_repairs == [("/lonely", 0, "no live replica")]


# ------------------------------------------- crashed-node writes time out
def test_write_to_dead_primary_fails_in_bounded_time():
    tb, _, _ = storm_testbed(protocol="rpc")
    cl = DfsClient(tb, client_index=0)
    data = np.zeros(2048, dtype=np.uint8)
    cl.create("/x", size=4096, replication=ReplicationSpec(k=3))
    tb.node(tb.metadata.lookup("/x").primary.node).fail()
    t0 = tb.sim.now
    out = cl.write_sync("/x", data, protocol="rpc")
    assert not out.ok
    assert any(n.get("reason") == "timeout" for n in out.nacks)
    # capped exponential backoff bounds the stall: 30+60+120+120 us + slack
    assert tb.sim.now - t0 < 500_000.0


# -------------------------------------------------- leaf placement by role
def test_leafspine_places_by_role_not_name():
    tb = build_testbed(n_storage=2, n_clients=1, topology="leafspine")
    fabric = tb.net.fabric
    assert fabric.leaf_of["sn0"] == "leaf1"
    assert fabric.leaf_of["client0"] == "leaf0"
    # a storage node with a name the old "sn" prefix match would miss
    weird = StorageNode(tb.sim, tb.net, "backup-7", tb.params)
    assert fabric.leaf_of["backup-7"] == "leaf1"
    # the metadata node reuses StorageNode machinery -> storage leaf
    from repro.dfs.control_rpc import install_control_plane

    install_control_plane(tb)
    assert fabric.leaf_of["mds"] == "leaf1"
