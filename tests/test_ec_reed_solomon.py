"""Reed-Solomon codec tests: encode/decode/repair + hypothesis invariants."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import DecodeError, RSCode, pad_to_chunks


def _data(n, seed=0):
    return np.random.default_rng(seed).integers(0, 256, size=n, dtype=np.uint8)


# ------------------------------------------------------------------ split
def test_split_pads_to_equal_chunks():
    rs = RSCode(3, 2)
    chunks = rs.split(np.arange(10, dtype=np.uint8))
    assert len(chunks) == 3
    assert all(c.nbytes == 4 for c in chunks)
    assert chunks[2][2] == 0 and chunks[2][3] == 0  # padding


def test_split_empty_input():
    chunks = pad_to_chunks(np.zeros(0, dtype=np.uint8), 4)
    assert len(chunks) == 4 and all(c.nbytes == 1 for c in chunks)


def test_join_trims_padding():
    rs = RSCode(3, 2)
    data = _data(10)
    chunks = rs.split(data)
    assert np.array_equal(rs.join(chunks, length=10), data)


# ----------------------------------------------------------------- encode
def test_encode_is_systematic():
    rs = RSCode(4, 2)
    chunks = rs.split(_data(64))
    enc = rs.encode(chunks)
    assert len(enc) == 6
    for i in range(4):
        assert np.array_equal(enc[i], chunks[i])


def test_encode_rs_1_m_is_replication():
    """RS(1, m) degenerates to (m+1)-way replication."""
    rs = RSCode(1, 3)
    data = _data(32)
    enc = rs.encode([data])
    for c in enc:
        assert np.array_equal(c, data)


def test_encode_chunk_count_mismatch():
    rs = RSCode(3, 2)
    with pytest.raises(ValueError):
        rs.encode([np.zeros(4, np.uint8)] * 2)


def test_encode_chunk_length_mismatch():
    rs = RSCode(2, 1)
    with pytest.raises(ValueError):
        rs.encode([np.zeros(4, np.uint8), np.zeros(5, np.uint8)])


# ----------------------------------------------------------------- decode
@pytest.mark.parametrize("k,m", [(2, 1), (3, 2), (6, 3)])
def test_decode_all_erasure_patterns(k, m):
    """Any k of k+m chunks reconstruct the data (MDS property)."""
    rs = RSCode(k, m)
    data = _data(k * 40, seed=k * 17 + m)
    chunks = rs.split(data)
    enc = rs.encode(chunks)
    for keep in itertools.combinations(range(k + m), k):
        got = rs.decode({i: enc[i] for i in keep})
        for a, b in zip(got, chunks):
            assert np.array_equal(a, b), f"pattern {keep} failed"


def test_decode_too_few_chunks():
    rs = RSCode(3, 2)
    enc = rs.encode(rs.split(_data(30)))
    with pytest.raises(DecodeError):
        rs.decode({0: enc[0], 1: enc[1]})


def test_decode_bad_index():
    rs = RSCode(2, 1)
    enc = rs.encode(rs.split(_data(8)))
    with pytest.raises(DecodeError):
        rs.decode({0: enc[0], 7: enc[1]})


def test_decode_length_mismatch():
    rs = RSCode(2, 1)
    enc = rs.encode(rs.split(_data(8)))
    with pytest.raises(DecodeError):
        rs.decode({0: enc[0], 1: enc[1][:2]})


def test_repair_rebuilds_parity_and_data():
    rs = RSCode(3, 2)
    enc = rs.encode(rs.split(_data(60)))
    available = {i: enc[i] for i in (0, 2, 4)}
    repaired = rs.repair(available, missing=[1, 3])
    assert np.array_equal(repaired[1], enc[1])
    assert np.array_equal(repaired[3], enc[3])


# -------------------------------------------------- incremental (TriEC) path
def test_intermediate_parity_accumulation_matches_full_encode():
    """The sPIN-TriEC dataflow (per-data-node intermediate parities,
    XOR-folded at the parity node — Fig. 14) equals direct encoding."""
    rs = RSCode(3, 2)
    chunks = rs.split(_data(96, seed=5))
    enc = rs.encode(chunks)
    for p in range(rs.m):
        acc = np.zeros_like(chunks[0])
        for j, c in enumerate(chunks):
            RSCode.accumulate(acc, rs.intermediate_parity(p, j, c))
        assert np.array_equal(acc, enc[rs.k + p])
        assert np.array_equal(rs.parity_from_intermediates(p, chunks), enc[rs.k + p])


def test_accumulation_order_independent():
    rs = RSCode(4, 2)
    chunks = rs.split(_data(64, seed=9))
    ref = rs.parity_from_intermediates(0, chunks)
    acc = np.zeros_like(chunks[0])
    for j in [2, 0, 3, 1]:  # arbitrary arrival order
        RSCode.accumulate(acc, rs.intermediate_parity(0, j, chunks[j]))
    assert np.array_equal(acc, ref)


# ---------------------------------------------------------------- misc
def test_storage_overhead():
    assert RSCode(3, 2).storage_overhead == pytest.approx(2 / 3)
    assert RSCode(6, 3).storage_overhead == pytest.approx(0.5)


def test_invalid_params():
    with pytest.raises(ValueError):
        RSCode(0, 1)
    with pytest.raises(ValueError):
        RSCode(3, -1)
    with pytest.raises(ValueError):
        RSCode(200, 100)


# ------------------------------------------------------------- properties
@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=8),
    m=st.integers(min_value=0, max_value=4),
    nbytes=st.integers(min_value=0, max_value=500),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_roundtrip_random_erasures(k, m, nbytes, seed):
    """Drop up to m random chunks; decode always round-trips."""
    rng = np.random.default_rng(seed)
    rs = RSCode(k, m)
    data = rng.integers(0, 256, size=nbytes, dtype=np.uint8)
    chunks = rs.split(data)
    enc = rs.encode(chunks)
    drop = rng.choice(k + m, size=min(m, k + m - k), replace=False)
    available = {i: enc[i] for i in range(k + m) if i not in set(int(d) for d in drop)}
    got = rs.decode(available)
    assert np.array_equal(rs.join(got, length=nbytes), data)


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_parity_detects_single_chunk_corruption(k, m, seed):
    """Corrupting one surviving data chunk changes decoded output
    (i.e. parity actually binds the data)."""
    rng = np.random.default_rng(seed)
    rs = RSCode(k, m)
    data = rng.integers(0, 256, size=k * 16, dtype=np.uint8)
    chunks = rs.split(data)
    enc = rs.encode(chunks)
    # decode from parity chunks plus k - m data chunks, then corrupt one
    keep = list(range(m, k)) + list(range(k, k + m))
    available = {i: enc[i].copy() for i in keep[: rs.k]}
    corrupt_idx = keep[0]
    available[corrupt_idx] = available[corrupt_idx].copy()
    available[corrupt_idx][0] ^= 0xFF
    got = rs.decode(available)
    assert not all(np.array_equal(a, b) for a, b in zip(got, chunks))
