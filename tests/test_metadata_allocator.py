"""Free-list allocator + transactional metadata service (leak fixes)."""

import pytest

from repro.dfs.allocator import AllocError, ExtentAllocator, FreeList
from repro.dfs.capability import CapabilityAuthority
from repro.dfs.layout import EcSpec, Extent, FileLayout, ReplicationSpec
from repro.dfs.metadata import MetadataError, MetadataService


def make_md(n=4, cap=10_000, **kw):
    return MetadataService(
        storage_nodes=[f"sn{i}" for i in range(n)],
        node_capacity=cap,
        authority=CapabilityAuthority(key=b"k"),
        **kw,
    )


# ------------------------------------------------------------------ FreeList
def test_freelist_alloc_free_roundtrip():
    fl = FreeList(1000)
    a = fl.alloc(300)
    b = fl.alloc(300)
    assert (a, b) == (0, 300)
    assert fl.free_bytes == 400
    fl.free(a, 300)
    fl.check()
    # first fit reuses the hole at the front
    assert fl.alloc(300) == 0
    fl.free(0, 300)
    fl.free(b, 300)
    fl.check()
    # everything coalesced back into one hole
    assert fl.largest_hole() == 1000
    assert fl.used == 0


def test_freelist_coalesces_both_neighbours():
    fl = FreeList(900)
    a, b, c = fl.alloc(300), fl.alloc(300), fl.alloc(300)
    fl.free(a, 300)
    fl.free(c, 300)
    fl.free(b, 300)  # middle free must merge with both sides
    fl.check()
    assert fl.largest_hole() == 900


def test_freelist_detects_double_free():
    fl = FreeList(1000)
    a = fl.alloc(100)
    fl.free(a, 100)
    with pytest.raises(AllocError):
        fl.free(a, 100)
    with pytest.raises(AllocError):
        fl.free(900, 200)  # past capacity


def test_freelist_exhaustion_reports_fragmentation():
    fl = FreeList(1000)
    a = fl.alloc(400)
    fl.alloc(400)
    fl.free(a, 400)
    # 600 B free but the largest hole is only 400 B
    assert fl.free_bytes == 600
    assert not fl.can_fit(500)
    with pytest.raises(AllocError):
        fl.alloc(500)


def test_extent_allocator_per_node_accounting():
    ea = ExtentAllocator(1000, ["a", "b"])
    ea.alloc("a", 400)
    off = ea.alloc("b", 250)
    assert ea.used_bytes("a") == 400
    assert ea.allocated_bytes() == 650
    ea.free("b", off, 250)
    assert ea.allocated_bytes() == 400
    ea.check()
    with pytest.raises(AllocError):
        ea.alloc("nope", 10)


# ------------------------------------------------- delete/update free extents
def test_delete_returns_storage():
    """The seed's bump cursor leaked every deleted object's extents."""
    md = make_md(n=2, cap=1000)
    # churn 20x the total capacity through create/delete
    for i in range(40):
        md.create(f"/x{i}", size=900)
        md.delete(f"/x{i}")
    assert md.allocated_bytes() == 0
    md.allocator.check()


def test_update_layout_frees_replaced_extents():
    md = make_md(n=3, cap=1000)
    lay = md.create("/f", size=600, replication=ReplicationSpec(k=2))
    before = md.allocated_bytes()
    # simulate recovery: slot 1 moves to a fresh extent
    new_ext = md.allocate_extent("sn2", 600)
    md.update_layout(
        "/f",
        FileLayout(
            object_id=lay.object_id,
            size=lay.size,
            extents=(lay.extents[0], new_ext),
            resiliency="replication",
            replication=lay.replication,
        ),
    )
    # the dead extent came back to the pool: no net growth
    assert md.allocated_bytes() == before
    assert md.allocated_bytes() == md.live_layout_bytes()


def test_churn_invariant_allocated_equals_live():
    """allocated bytes == live layout bytes after arbitrary churn."""
    md = make_md(n=6, cap=100_000)
    alive = []
    for i in range(30):
        kind = i % 3
        if kind == 0:
            md.create(f"/r{i}", size=4_000, replication=ReplicationSpec(k=3))
        elif kind == 1:
            md.create(f"/e{i}", size=6_000, ec=EcSpec(k=4, m=2))
        else:
            md.create(f"/p{i}", size=2_500)
        alive.append(i)
        if i % 2 == 1:  # delete every other object as we go
            j = alive.pop(0)
            md.delete(f"/{'rep'[j % 3]}{j}")
    assert md.allocated_bytes() == md.live_layout_bytes()
    md.allocator.check()


# ------------------------------------------------------- transactional create
def test_create_rolls_back_on_midway_failure(monkeypatch):
    md = make_md(n=3, cap=10_000)
    cursor0 = md.policy.snapshot()
    real = md._alloc_on
    calls = {"n": 0}

    def flaky(node, length):
        calls["n"] += 1
        if calls["n"] == 2:  # second replica's allocation explodes
            raise MetadataError("injected")
        return real(node, length)

    monkeypatch.setattr(md, "_alloc_on", flaky)
    with pytest.raises(MetadataError):
        md.create("/f", size=1_000, replication=ReplicationSpec(k=3))
    monkeypatch.undo()
    # no trace: no bytes held, no object registered, cursor restored
    assert md.allocated_bytes() == 0
    assert not md.exists("/f")
    assert md.policy.snapshot() == cursor0
    # and the next create starts from the same rotation the seed would
    lay = md.create("/f", size=1_000)
    assert lay.extents[0].node == "sn0"


def test_failed_create_leaves_no_partial_object():
    md = make_md(n=4, cap=1000)
    md.create("/big", size=900)  # fills sn0
    # k=4 needs 4 eligible nodes with 900 B free; sn0 can't fit
    with pytest.raises(MetadataError):
        md.create("/r", size=900, replication=ReplicationSpec(k=4))
    assert md.allocated_bytes() == md.live_layout_bytes() == 900


def test_bad_free_is_detected():
    md = make_md(n=1, cap=1000)
    with pytest.raises(MetadataError):
        md.free_extent(Extent(node="sn0", addr=500, length=100))


# ------------------------------------------------------------ placement fixes
def test_capacity_aware_placement_avoids_full_nodes():
    md = make_md(n=3, cap=1000, placement="capacity")
    md.create("/fill", size=800)  # lands on sn0 (all equal, index tie-break)
    assert md.lookup("/fill").extents[0].node == "sn0"
    # the seed's capacity-blind rotation would now try sn1, sn2, sn0
    # and explode on sn0's third extent; capacity-aware never does
    for i in range(3):
        md.create(f"/f{i}", size=500)
    nodes = [md.lookup(f"/f{i}").extents[0].node for i in range(3)]
    assert "sn0" not in nodes
    assert md.allocated_bytes() == md.live_layout_bytes()


def test_roundrobin_skips_full_nodes_instead_of_failing():
    md = make_md(n=3, cap=1000)  # default roundrobin
    md.create("/a", size=900)  # sn0 nearly full
    # 500 B extents can only fit on sn1/sn2; rotation must skip sn0
    for i in range(4):
        lay = md.create(f"/b{i}", size=500)
        assert lay.extents[0].node != "sn0"


def test_dead_nodes_excluded_from_placement():
    md = make_md(n=3, cap=10_000)
    md.mark_dead("sn1")
    for i in range(4):
        lay = md.create(f"/f{i}", size=100, replication=ReplicationSpec(k=2))
        assert all(e.node != "sn1" for e in lay.extents)
    with pytest.raises(MetadataError):
        md.allocate_extent("sn1", 100)
    with pytest.raises(MetadataError):  # only 2 alive, k=3 impossible
        md.create("/r", size=100, replication=ReplicationSpec(k=3))
    md.mark_alive("sn1")
    md.create("/r", size=100, replication=ReplicationSpec(k=3))


def test_allocate_auto_respects_exclusions():
    md = make_md(n=3, cap=10_000)
    ext = md.allocate_auto(500, exclude=["sn0", "sn1"])
    assert ext.node == "sn2"
    md.free_extent(ext)
    assert md.allocated_bytes() == 0
