"""Handler cost-model tests: Table I/II calibration is exact here."""

import pytest

from repro.pspin import isa


def test_header_handler_matches_table1():
    c = isa.header_handler_cost()
    assert c.instructions == 120
    assert c.compute_ns(1.0) == pytest.approx(211, abs=1)


def test_plain_payload_matches_table1():
    c = isa.payload_handler_cost()
    assert c.instructions == 55
    assert c.compute_ns(1.0) == pytest.approx(92, abs=1)


def test_completion_matches_table1():
    c = isa.completion_handler_cost()
    assert c.instructions == 66
    assert c.compute_ns(1.0) == pytest.approx(107, abs=1)


def test_forward_cost_scales_with_children():
    assert isa.forward_payload_cost(0).instructions == 55
    assert isa.forward_payload_cost(1).instructions == 105  # ring (Table I)
    assert isa.forward_payload_cost(2).instructions == 130  # pbt (Table I)


def test_completion_cost_children():
    assert isa.completion_handler_cost(1).instructions == 66
    assert isa.completion_handler_cost(2).instructions == 82  # pbt (Table I)


def test_ec_instruction_counts_match_table2():
    # RS(3,2): 5 instr/byte * 2048 + 1432 = 11672 (Table II)
    c32 = isa.ec_data_payload_cost(m=2, payload_bytes=2048)
    assert c32.instructions == 11672
    # RS(6,3): 7 instr/byte * 2048 + 1692 = 16028 (Table II)
    c63 = isa.ec_data_payload_cost(m=3, payload_bytes=2048)
    assert c63.instructions == 16028


def test_ec_durations_match_table2():
    assert isa.ec_data_payload_cost(2, 2048).compute_ns(1.0) == pytest.approx(16681, rel=0.02)
    assert isa.ec_data_payload_cost(3, 2048).compute_ns(1.0) == pytest.approx(23018, rel=0.02)


def test_ec_ipc_is_07():
    c = isa.ec_data_payload_cost(2, 2048)
    ipc = c.instructions / c.compute_cycles()
    assert ipc == pytest.approx(0.7, abs=0.01)


def test_ec_per_byte_model():
    assert isa.ec_instructions_per_byte(2) == 5
    assert isa.ec_instructions_per_byte(3) == 7
    assert isa.ec_instructions_per_byte(1) == 3
    # unknown m falls back to the generic fixed model
    c = isa.ec_data_payload_cost(4, 1024)
    assert c.instructions == 9 * 1024 + isa.ec_fixed_instructions(4)


def test_ec_completion_cost_is_35_instructions():
    assert isa.ec_completion_cost().instructions == 35


def test_parity_cost_scales_with_payload():
    small = isa.ec_parity_payload_cost(256)
    big = isa.ec_parity_payload_cost(2048)
    assert big.instructions > small.instructions
    assert big.mem_intensive and small.mem_intensive


def test_mem_intensive_contention_scaling():
    c = isa.ec_data_payload_cost(2, 2048)
    base = c.compute_ns(1.0)
    contended = c.compute_ns(1.0, contention_factor=1.1)
    assert contended == pytest.approx(base * 1.1)
    # non-mem-intensive handlers ignore contention
    h = isa.header_handler_cost()
    assert h.compute_ns(1.0, contention_factor=2.0) == h.compute_ns(1.0)


def test_frequency_scaling():
    c = isa.header_handler_cost()
    assert c.compute_ns(2.0) == pytest.approx(c.compute_ns(1.0) / 2)


def test_cleanup_cost_is_modest():
    c = isa.cleanup_handler_cost()
    assert 0 < c.compute_ns(1.0) < 500
