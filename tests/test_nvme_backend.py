"""NVMe JBOF backend tests (§III storage-medium abstraction)."""

import numpy as np
import pytest

from repro import DfsClient, build_testbed
from repro.hostsim.nvme import NvmeParams, NvmeTarget
from repro.protocols import install_spin_targets
from repro.simnet import Simulator

KiB = 1024


# ----------------------------------------------------------- device model
def test_submit_write_durable_after_program_latency():
    sim = Simulator()
    dev = NvmeTarget(sim, 1 << 20, NvmeParams(write_latency_ns=10_000, channel_gbps=16))
    data = np.full(4096, 7, dtype=np.uint8)
    done = dev.submit_write(0, data)
    sim.run(until=5_000)
    assert not done.triggered
    assert not dev.view(0, 4096).any()  # not yet durable
    sim.run(until=30_000)
    assert done.triggered and (dev.view(0, 4096) == 7).all()
    assert dev.commands_completed == 1


def test_channels_limit_transfer_parallelism():
    """Channels serialize the data *transfer*; the program latency
    overlaps across planes."""
    sim = Simulator()
    dev = NvmeTarget(sim, 1 << 20, NvmeParams(write_latency_ns=0, n_channels=2,
                                              channel_gbps=1.0))
    # 1 Gbit/s channel: 125 B/us -> a 1250 B transfer takes 10 us
    done = [dev.submit_write(i * 2048, np.zeros(1250, np.uint8)) for i in range(4)]
    times = []
    for d in done:
        d.add_callback(lambda ev: times.append(sim.now))
    sim.run()
    assert sum(1 for t in times if t <= 10_100) == 2
    assert sum(1 for t in times if t > 10_100) == 2


def test_program_latency_overlaps_across_commands():
    sim = Simulator()
    dev = NvmeTarget(sim, 1 << 20, NvmeParams(write_latency_ns=10_000, n_channels=1,
                                              channel_gbps=1000.0))
    times = []
    for i in range(4):
        dev.submit_write(i * 128, np.zeros(64, np.uint8)).add_callback(
            lambda ev: times.append(sim.now)
        )
    sim.run()
    # transfers are instant-ish; all four program concurrently -> all
    # complete right after one program latency, not four
    assert max(times) < 11_000


def test_bandwidth_term():
    sim = Simulator()
    dev = NvmeTarget(sim, 1 << 20, NvmeParams(write_latency_ns=0, n_channels=1,
                                              channel_gbps=16))
    t = []
    dev.submit_write(0, np.zeros(16_000, np.uint8)).add_callback(lambda e: t.append(sim.now))
    sim.run()
    assert t[0] == pytest.approx(16_000 * 8 / 16.0)


def test_queue_full_rejection():
    sim = Simulator()
    dev = NvmeTarget(sim, 1 << 20, NvmeParams(queue_depth=1, write_latency_ns=1e6))
    oks, fails = 0, 0
    for i in range(8):
        ev = dev.submit_write(0, np.zeros(64, np.uint8))
        if ev.triggered and ev.exception is not None:
            fails += 1
        else:
            oks += 1
    assert fails > 0 and dev.queue_full_rejections == fails
    sim.run(until=10_000)  # rejected commands must not crash the sim


def test_functional_write_still_immediate():
    sim = Simulator()
    dev = NvmeTarget(sim, 1024)
    dev.write(0, np.full(8, 3, dtype=np.uint8))  # MemoryTarget path
    assert (dev.view(0, 8) == 3).all()


def test_range_checked():
    sim = Simulator()
    dev = NvmeTarget(sim, 1024)
    from repro.hostsim import AddressError

    with pytest.raises(AddressError):
        dev.submit_write(1020, np.zeros(16, np.uint8))


# ------------------------------------------------------------ integration
def test_spin_write_on_nvme_backend():
    tb = build_testbed(n_storage=4, storage_backend="nvme")
    install_spin_targets(tb)
    c = DfsClient(tb)
    lay = c.create("/f", size=64 * KiB)
    data = np.random.default_rng(0).integers(0, 256, 32 * KiB, dtype=np.uint8)
    out = c.write_sync("/f", data, protocol="spin")
    assert out.ok
    # ack only after flash durability: bytes already in place
    got = tb.node(lay.primary.node).memory.view(lay.primary.addr, data.nbytes)
    assert np.array_equal(got, data)


def test_nvme_ack_waits_for_flash():
    """The sPIN completion handler waits for durability, so the NVMe
    program latency shows up in the write latency (vs NVMM)."""

    def lat(backend):
        tb = build_testbed(n_storage=4, storage_backend=backend)
        install_spin_targets(tb)
        c = DfsClient(tb)
        c.create("/f", size=16 * KiB)
        return c.write_sync("/f", np.zeros(4 * KiB, np.uint8), protocol="spin").latency_ns

    nvmm, nvme = lat("nvmm"), lat("nvme")
    assert nvme > nvmm + 8_000  # the 10 us program latency dominates


def test_nvme_replication_end_to_end():
    from repro.dfs.layout import ReplicationSpec

    tb = build_testbed(n_storage=6, storage_backend="nvme")
    install_spin_targets(tb)
    c = DfsClient(tb)
    lay = c.create("/f", size=64 * KiB, replication=ReplicationSpec(k=3))
    data = np.random.default_rng(1).integers(0, 256, 48 * KiB, dtype=np.uint8)
    assert c.write_sync("/f", data, protocol="spin").ok
    for e in lay.extents:
        assert np.array_equal(tb.node(e.node).memory.view(e.addr, data.nbytes), data)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        build_testbed(n_storage=1, storage_backend="tape")
