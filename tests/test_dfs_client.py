"""DfsClient end-to-end API tests."""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.dfs.layout import EcSpec, ReplicationSpec
from repro.ec import DecodeError
from repro.protocols import install_spin_targets

KiB = 1024


@pytest.fixture
def env():
    tb = build_testbed(n_storage=8, n_clients=2)
    install_spin_targets(tb)
    return tb, DfsClient(tb, principal="alice")


def test_create_issues_ticket(env):
    tb, c = env
    c.create("/f", size=1 * KiB)
    cap = c.ticket("/f")
    assert tb.authority.verify(cap, cap.rights, 0, 100)


def test_open_existing_object(env):
    tb, c = env
    lay = c.create("/f", size=1 * KiB)
    other = DfsClient(tb, client_index=1, principal="bob")
    assert other.open("/f") is lay
    assert other.ticket("/f").client_id == other.client_id


def test_write_and_read_back(env):
    _, c = env
    c.create("/f", size=8 * KiB)
    data = np.random.default_rng(0).integers(0, 256, 5 * KiB, dtype=np.uint8)
    out = c.write_sync("/f", data, protocol="spin")
    assert out.ok
    got = c.read_back("/f")
    assert np.array_equal(got[: data.nbytes], data)


def test_read_back_ec_object(env):
    _, c = env
    c.create("/e", size=30 * KiB, ec=EcSpec(k=3, m=2))
    data = np.random.default_rng(1).integers(0, 256, 30 * KiB, dtype=np.uint8)
    assert c.write_sync("/e", data, protocol="spin").ok
    assert np.array_equal(c.read_back("/e"), data)


def test_recover_requires_ec(env):
    _, c = env
    c.create("/plain", size=1 * KiB)
    with pytest.raises(DecodeError):
        c.recover("/plain", set())


def test_recover_too_many_failures(env):
    _, c = env
    lay = c.create("/e", size=30 * KiB, ec=EcSpec(k=3, m=1))
    data = np.zeros(30 * KiB, dtype=np.uint8)
    assert c.write_sync("/e", data, protocol="spin").ok
    with pytest.raises(DecodeError):
        c.recover("/e", {lay.extents[0].node, lay.extents[1].node})


def test_forge_ticket_differs_only_in_signature(env):
    _, c = env
    c.create("/f", size=1 * KiB)
    good, bad = c.ticket("/f"), c.forge_ticket("/f")
    assert good.descriptor_bytes() == bad.descriptor_bytes()
    assert good.signature != bad.signature


def test_two_clients_distinct_identities(env):
    tb, alice = env
    bob = DfsClient(tb, client_index=1, principal="bob")
    assert alice.client_id != bob.client_id
    assert tb.mgmt.principal(alice.client_id) == "alice"
    assert tb.mgmt.principal(bob.client_id) == "bob"


def test_two_clients_write_different_objects_concurrently(env):
    tb, alice = env
    bob = DfsClient(tb, client_index=1, principal="bob")
    alice.create("/a", size=64 * KiB)
    bob.create("/b", size=64 * KiB)
    da = np.full(32 * KiB, 0xA, dtype=np.uint8)
    db = np.full(32 * KiB, 0xB, dtype=np.uint8)
    ea = alice.write("/a", da, protocol="spin")
    eb = bob.write("/b", db, protocol="spin")
    ra = tb.run_until(ea)
    rb = tb.run_until(eb)
    assert ra.ok and rb.ok
    assert np.array_equal(alice.read_back("/a")[: da.nbytes], da)
    assert np.array_equal(bob.read_back("/b")[: db.nbytes], db)


def test_write_uses_stored_ticket_by_default(env):
    _, c = env
    c.create("/f", size=4 * KiB)
    out = c.write_sync("/f", np.zeros(1 * KiB, dtype=np.uint8))
    assert out.ok  # spin is the default protocol


def test_metadata_lookup_failure_propagates(env):
    _, c = env
    with pytest.raises(Exception):
        c.write("/missing", np.zeros(10, dtype=np.uint8))
