"""Telemetry subsystem: spans, trace propagation, metrics, self-profile.

The cross-layer tests drive one replicated sPIN write through a real
testbed and assert that every layer (request / net / hpu / host) emitted
spans tied to the same trace — the end-to-end property the subsystem
exists for.
"""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.dfs.layout import ReplicationSpec
from repro.protocols import install_spin_targets
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Telemetry,
    TraceContext,
)


def _traced_replicated_write(telemetry: bool = True):
    tb = build_testbed(n_storage=4, telemetry=telemetry)
    install_spin_targets(tb)
    client = DfsClient(tb)
    client.create("/f", size=128 * 1024, replication=ReplicationSpec(k=3))
    data = np.arange(64 * 1024, dtype=np.uint8)
    out = client.write_sync("/f", data, protocol="spin")
    assert out.ok
    # drain trailing DMAs / acks so late spans close
    tb.run(until=tb.sim.now + 200_000)
    return tb, out


# ---------------------------------------------------------------- spans
def test_span_begin_end_and_complete():
    tel = Telemetry(enabled=True)
    s = tel.begin("work", pid="p", tid="t", t0=10.0, cat="x")
    assert s.t1 is None and s.duration_ns == 0.0
    tel.end(s, 25.0)
    assert s.duration_ns == 15.0
    done = tel.span("done", pid="p", tid="t", t0=1.0, t1=2.5, cat="x")
    assert done.duration_ns == 1.5
    assert tel.finished_spans() == [s, done]


def test_root_span_allocates_trace_and_children_link_to_it():
    tel = Telemetry(enabled=True)
    root, tctx = tel.root("req", pid="requests", tid="c0", t0=0.0)
    assert isinstance(tctx, TraceContext)
    assert tctx.trace_id == root.trace_id
    assert tctx.span_id == root.span_id
    child = tel.span("hop", pid="net", tid="port", t0=1.0, t1=2.0, trace=tctx)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    # a second request gets a distinct trace id
    root2, tctx2 = tel.root("req2", pid="requests", tid="c0", t0=5.0)
    assert tctx2.trace_id != tctx.trace_id
    assert tel.spans_for_trace(tctx.trace_id) == [root, child]


def test_reset_clears_data_but_keeps_enabled():
    tel = Telemetry(enabled=True)
    tel.span("s", pid="p", tid="t", t0=0.0, t1=1.0)
    tel.metrics.counter("c").inc()
    tel.reset()
    assert tel.enabled
    assert tel.spans == [] and tel.metrics.counters == {}


# ----------------------------------------------------- cross-layer trace
def test_replicated_write_spans_every_layer_one_trace():
    tb, out = _traced_replicated_write()
    tel = tb.telemetry
    roots = tel.spans_by_cat("request")
    assert len(roots) == 1
    root = roots[0]
    assert root.t1 is not None
    # the root span closes exactly at the outcome's completion time
    assert root.t1 == pytest.approx(out.t_end)
    assert root.duration_ns == pytest.approx(out.latency_ns)

    per_trace = tel.spans_for_trace(root.trace_id)
    cats = {s.cat for s in per_trace}
    # every protocol phase of Fig. 2 shows up on the request's trace:
    # client issue (request), wire (net), NIC handlers (hpu), host
    # commit (host)
    assert {"request", "net", "hpu", "host"} <= cats
    # all non-root spans on the trace are children of the root
    for s in per_trace:
        if s is not root:
            assert s.parent_id == root.span_id
    # replication k=3: handler spans appear on all three replica nodes
    hpu_nodes = {s.pid for s in per_trace if s.cat == "hpu"}
    assert len(hpu_nodes) == 3


def test_child_spans_carry_anatomy_phase_tags():
    # the latency-anatomy decomposition relies on child spans being
    # phase-tagged at the source: a traced sPIN write must label its
    # client submit, wire serialization, handler execution, and
    # durability commit, while the request root stays untagged (it is
    # the window being decomposed, not a phase of it)
    from repro.telemetry.anatomy import PHASES

    tb, _ = _traced_replicated_write()
    tel = tb.telemetry
    (root,) = tel.spans_by_cat("request")
    assert root.phase is None
    children = [s for s in tel.spans_for_trace(root.trace_id) if s is not root]
    tagged = {s.phase for s in children if s.phase is not None}
    assert {"submit", "wire", "hpu", "dma"} <= tagged
    # every tag used is a phase the decomposition knows about
    assert tagged <= set(PHASES)


def test_nested_span_timestamps_are_ordered():
    tb, _ = _traced_replicated_write()
    for s in tb.telemetry.finished_spans():
        assert s.t1 >= s.t0 >= 0.0


def test_per_protocol_latency_histogram_recorded():
    tb, out = _traced_replicated_write()
    m = tb.telemetry.metrics
    h = m.histogram("protocol.spin-ring.latency_ns")
    assert h.n == 1
    assert h.values[0] == pytest.approx(out.latency_ns)
    assert m.counter("protocol.spin-ring.requests").value == 1


def test_disabled_telemetry_emits_nothing():
    tb, _ = _traced_replicated_write(telemetry=False)
    tel = tb.telemetry
    assert not tel.enabled
    assert tel.spans == []
    assert tel.metrics.counters == {}
    assert tel.metrics.gauges == {}
    assert tel.metrics.histograms == {}


def test_enable_mid_run_starts_recording():
    tb = build_testbed(n_storage=2)
    install_spin_targets(tb)
    client = DfsClient(tb)
    client.create("/f", size=64 * 1024)
    data = np.zeros(16 * 1024, np.uint8)
    assert client.write_sync("/f", data, protocol="spin").ok
    assert tb.telemetry.spans == []
    tb.telemetry.enabled = True  # flip the one master switch
    assert client.write_sync("/f", data, protocol="spin").ok
    tb.run(until=tb.sim.now + 200_000)
    assert len(tb.telemetry.spans) > 0
    assert len(tb.telemetry.spans_by_cat("request")) == 1


# --------------------------------------------------------------- metrics
def test_counter_math():
    c = Counter("x")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5


def test_gauge_time_weighted_average_and_max():
    g = Gauge("depth")
    g.set(0.0, 2.0)   # level 2 over [0, 10)
    g.set(10.0, 6.0)  # level 6 over [10, 20)
    g.set(20.0, 0.0)
    assert g.max == 6.0
    assert g.last == 0.0
    assert g.time_average(20.0) == pytest.approx((2 * 10 + 6 * 10) / 20)
    # extrapolates the held level past the last sample
    assert g.time_average(40.0) == pytest.approx((2 * 10 + 6 * 10) / 40)
    d = g.to_dict(20.0)
    assert d["max"] == 6.0 and d["n_samples"] == 3.0


def test_histogram_summary_uses_interpolated_percentiles():
    h = Histogram("lat")
    for v in (1.0, 2.0, 3.0, 4.0, 100.0):
        h.observe(v)
    s = h.summary()
    assert h.n == 5 and h.sum == 110.0
    assert s["p90"] == pytest.approx(61.6)
    assert s["p99"] == pytest.approx(96.16)
    assert s["std"] == pytest.approx(1522.0**0.5)  # population std


def test_registry_lazy_creation_and_matching():
    m = MetricsRegistry()
    m.counter("link.a.busy_ns").inc(10)
    m.counter("link.b.busy_ns").inc(30)
    m.counter("link.a.tx_bytes").inc(999)
    assert m.sum_matching("link.", ".busy_ns") == 40.0
    assert m.max_matching("link.", ".busy_ns") == 30.0
    assert m.max_matching("pspin.", ".busy_ns") == 0.0
    assert m.counter("link.a.busy_ns") is m.counter("link.a.busy_ns")
    d = m.to_dict()
    assert d["counters"]["link.a.tx_bytes"] == 999.0


def test_subsystem_metrics_populated_by_real_run():
    tb, _ = _traced_replicated_write()
    m = tb.telemetry.metrics
    assert m.sum_matching("link.", ".busy_ns") > 0
    assert m.sum_matching("pspin.", ".hpu_busy_ns") > 0
    assert m.sum_matching("pcie.", ".busy_ns") > 0
    assert m.sum_matching("switch.", ".rx_packets") > 0
    assert m.max_matching("pspin.", ".packets_ingested") > 0
    # handler latency histograms carry per-invocation samples
    hists = [n for n in m.histograms if ".handler." in n]
    assert hists and all(m.histogram(n).n > 0 for n in hists)


# ---------------------------------------------------------- self-profile
def test_simulator_profile_keys_and_consistency():
    tb, _ = _traced_replicated_write()
    prof = tb.sim.profile()
    for key in ("events_dispatched", "heap_high_water", "sim_ns", "wall_s",
                "wall_ns_per_sim_ns", "events_per_wall_s"):
        assert key in prof
    assert prof["events_dispatched"] > 0
    assert prof["heap_high_water"] >= 1
    assert prof["sim_ns"] == tb.sim.now
    assert prof["wall_s"] > 0
