"""Metadata / management / layout control-plane tests."""

import pytest

from repro.dfs.capability import CapabilityAuthority, Rights
from repro.dfs.layout import EcSpec, Extent, FileLayout, ReplicationSpec
from repro.dfs.management import AuthError, ManagementService
from repro.dfs.metadata import MetadataError, MetadataService


@pytest.fixture
def meta():
    return MetadataService(
        storage_nodes=[f"sn{i}" for i in range(8)],
        node_capacity=1 << 20,
        authority=CapabilityAuthority(key=b"svc"),
    )


# ----------------------------------------------------------------- layout
def test_layout_validation_replication():
    with pytest.raises(ValueError):
        FileLayout(1, 100, extents=(Extent("a", 0, 100),),
                   resiliency="replication", replication=ReplicationSpec(k=2))


def test_layout_validation_ec():
    with pytest.raises(ValueError):
        FileLayout(1, 100, extents=(Extent("a", 0, 50), Extent("b", 0, 50)),
                   resiliency="ec", ec=EcSpec(k=2, m=1), parity_extents=())


def test_layout_plain_single_extent():
    with pytest.raises(ValueError):
        FileLayout(1, 100, extents=(Extent("a", 0, 50), Extent("b", 0, 50)))


def test_replication_spec_validation():
    with pytest.raises(ValueError):
        ReplicationSpec(k=0)
    with pytest.raises(ValueError):
        ReplicationSpec(k=2, strategy="star")  # type: ignore[arg-type]


def test_ec_spec_validation():
    with pytest.raises(ValueError):
        EcSpec(k=0, m=1)
    with pytest.raises(ValueError):
        EcSpec(k=3, m=0)


# --------------------------------------------------------------- metadata
def test_create_plain(meta):
    lay = meta.create("/a", 1000)
    assert lay.resiliency == "none" and lay.size == 1000
    assert lay.primary.length == 1000
    assert meta.lookup("/a") is lay
    assert meta.exists("/a")


def test_create_duplicate_rejected(meta):
    meta.create("/a", 100)
    with pytest.raises(MetadataError):
        meta.create("/a", 100)


def test_create_replicated_distinct_nodes(meta):
    lay = meta.create("/r", 4096, replication=ReplicationSpec(k=4))
    nodes = [e.node for e in lay.extents]
    assert len(set(nodes)) == 4
    assert all(e.length == 4096 for e in lay.extents)


def test_create_ec_distinct_nodes_and_chunks(meta):
    lay = meta.create("/e", 6000, ec=EcSpec(k=3, m=2))
    all_nodes = lay.all_nodes
    assert len(set(all_nodes)) == 5
    chunk = lay.chunk_length()
    assert chunk == 2000
    assert all(e.length == chunk for e in lay.parity_extents)


def test_replication_and_ec_exclusive(meta):
    with pytest.raises(MetadataError):
        meta.create("/x", 100, replication=ReplicationSpec(k=2), ec=EcSpec(2, 1))


def test_too_many_replicas_rejected(meta):
    with pytest.raises(MetadataError):
        meta.create("/x", 100, replication=ReplicationSpec(k=9))


def test_capacity_exhaustion():
    meta = MetadataService(["sn0"], node_capacity=1000,
                           authority=CapabilityAuthority(key=b"k"))
    meta.create("/a", 800)
    with pytest.raises(MetadataError):
        meta.create("/b", 300)


def test_allocations_do_not_overlap(meta):
    lays = [meta.create(f"/f{i}", 3000) for i in range(16)]
    by_node: dict = {}
    for lay in lays:
        e = lay.primary
        by_node.setdefault(e.node, []).append((e.addr, e.addr + e.length))
    for ranges in by_node.values():
        ranges.sort()
        for (s1, e1), (s2, _) in zip(ranges, ranges[1:]):
            assert e1 <= s2, "overlapping extents"


def test_delete(meta):
    meta.create("/a", 100)
    meta.delete("/a")
    assert not meta.exists("/a")
    with pytest.raises(MetadataError):
        meta.delete("/a")
    with pytest.raises(MetadataError):
        meta.lookup("/a")


def test_write_grant_exclusive(meta):
    meta.create("/a", 100)
    assert meta.grant_write("/a", client_id=1)
    assert meta.grant_write("/a", client_id=1)  # re-grant to holder ok
    assert not meta.grant_write("/a", client_id=2)
    meta.revoke_write("/a", client_id=1)
    assert meta.grant_write("/a", client_id=2)


def test_issue_ticket_covers_object(meta):
    lay = meta.create("/a", 100)
    cap = meta.issue_ticket(client_id=1, path="/a", rights=Rights.RW)
    assert cap.object_id == lay.object_id
    assert meta.authority.verify(cap, Rights.WRITE, lay.primary.addr, 100)


def test_invalid_sizes(meta):
    with pytest.raises(MetadataError):
        meta.create("/z", 0)
    with pytest.raises(MetadataError):
        meta.create("/z", -5)


def test_placement_round_robins(meta):
    primaries = [meta.create(f"/p{i}", 10).primary.node for i in range(8)]
    assert len(set(primaries)) == 8  # spread across all nodes


def test_needs_at_least_one_node():
    with pytest.raises(MetadataError):
        MetadataService([], 100, CapabilityAuthority(key=b"k"))


# -------------------------------------------------------------- management
def test_management_authenticate():
    m = ManagementService()
    cid = m.authenticate("alice")
    assert m.is_authenticated(cid)
    assert m.principal(cid) == "alice"
    assert not m.is_authenticated(cid + 1)


def test_management_rejects_unknown_principal():
    m = ManagementService()
    with pytest.raises(AuthError):
        m.authenticate("mallory-the-attacker")


def test_management_health_tracking():
    m = ManagementService()
    m.report_healthy("sn0")
    m.report_failed("sn1")
    assert m.is_healthy("sn0")
    assert not m.is_healthy("sn1")
    assert m.is_healthy("sn9")  # unknown defaults healthy
    assert m.failed_nodes() == ["sn1"]


def test_children_of_ring_and_pbt():
    from repro.core.request import ReplicaCoord, ReplicationParams

    coords = tuple(ReplicaCoord(f"n{i}", 0) for i in range(1, 7))  # k=7
    ring = ReplicationParams("ring", 0, coords)
    assert ring.children_of(0) == [1]
    assert ring.children_of(5) == [6]
    assert ring.children_of(6) == []
    pbt = ReplicationParams("pbt", 0, coords)
    assert pbt.children_of(0) == [1, 2]
    assert pbt.children_of(1) == [3, 4]
    assert pbt.children_of(2) == [5, 6]
    assert pbt.children_of(3) == []
    assert pbt.coord_for_rank(1).node == "n1"
