"""Parallel sweep runner: determinism, caching, key derivation."""

import json

import pytest

from repro import runner
from repro.experiments import fig06_auth_latency as fig06
from repro.params import SimParams


def _dumps(rows):
    return json.dumps(rows, sort_keys=True)


def test_parallel_rows_identical_to_serial(monkeypatch):
    """--jobs N must be byte-identical to --jobs 1 (same rows, same order)."""
    serial = fig06.run(quick=True, jobs=1, cache=False)
    # pretend to have cores so the clamp doesn't serialize us on 1-CPU CI,
    # and a costly point so the break-even heuristic picks the pool
    monkeypatch.setattr(runner.os, "cpu_count", lambda: 4)
    monkeypatch.setattr(runner, "_COST_EMA", {"fig06": 1.0})
    try:
        parallel = fig06.run(quick=True, jobs=2, cache=False)
    finally:
        runner.shutdown_pool()
    assert _dumps(serial) == _dumps(parallel)
    assert runner.LAST_STATS.jobs == 2
    assert runner.LAST_STATS.n_computed == len(serial)


def test_small_sweeps_skip_the_pool():
    """Pool spin-up is skipped (and recorded as serial) when workers
    would get fewer than two points each."""
    rows = fig06.run(quick=True, jobs=16, cache=False)
    assert len(rows) < 2 * 16
    assert runner.LAST_STATS.jobs == 1


def test_jobs_clamped_to_cpu_count(monkeypatch):
    monkeypatch.setattr(runner.os, "cpu_count", lambda: 2)
    # a costly estimate keeps the break-even heuristic out of the way:
    # this test is about the core-count clamp only
    monkeypatch.setattr(runner, "_COST_EMA", {"fig06": 1.0})
    try:
        rows = fig06.run(quick=True, jobs=64, cache=False)
    finally:
        runner.shutdown_pool()
    assert rows
    assert runner.LAST_STATS.jobs == 2


def test_cache_hit_returns_identical_rows_without_resimulating(tmp_path):
    cdir = str(tmp_path / "cache")
    cold = fig06.run(quick=True, jobs=1, cache=True, cache_dir=cdir)
    stats = runner.LAST_STATS
    assert stats.n_computed == len(cold) and stats.n_cached == 0

    warm = fig06.run(quick=True, jobs=1, cache=True, cache_dir=cdir)
    stats = runner.LAST_STATS
    assert stats.n_cached == len(warm) and stats.n_computed == 0
    assert _dumps(cold) == _dumps(warm)


def test_cached_rows_really_come_from_disk(tmp_path):
    """Tamper with a cache entry; the tampered row must come back (proof
    that a hit short-circuits the simulation entirely)."""
    cdir = tmp_path / "cache"
    fig06.run(quick=True, jobs=1, cache=True, cache_dir=str(cdir))
    victim = sorted(cdir.glob("*.json"))[0]
    entry = json.loads(victim.read_text())
    entry["row"]["raw"] = -123.0
    victim.write_text(json.dumps(entry))

    rows = fig06.run(quick=True, jobs=1, cache=True, cache_dir=str(cdir))
    assert runner.LAST_STATS.n_cached == len(rows)
    assert any(r["raw"] == -123.0 for r in rows)


def test_cache_keys_depend_on_point_params_and_source():
    src = runner._module_source_hash(fig06.ID)
    k1 = runner.point_key(fig06.ID, {"size": 1024}, None, src)
    assert k1 == runner.point_key(fig06.ID, {"size": 1024}, None, src)
    assert k1 != runner.point_key(fig06.ID, {"size": 2048}, None, src)
    assert k1 != runner.point_key(fig06.ID, {"size": 1024}, SimParams(), src)
    assert k1 != runner.point_key(fig06.ID, {"size": 1024}, None, "othersrc")
    assert k1 != runner.point_key("other", {"size": 1024}, None, src)


def test_corrupt_cache_entry_is_recomputed(tmp_path):
    cdir = tmp_path / "cache"
    fig06.run(quick=True, jobs=1, cache=True, cache_dir=str(cdir))
    for f in cdir.glob("*.json"):
        f.write_text("{not json")
    rows = fig06.run(quick=True, jobs=1, cache=True, cache_dir=str(cdir))
    assert runner.LAST_STATS.n_computed == len(rows)


def test_point_seed_is_stable():
    s = runner.point_seed("exp", {"loss": 1e-3})
    assert s == runner.point_seed("exp", {"loss": 1e-3})
    assert s != runner.point_seed("exp", {"loss": 1e-2})
    assert s != runner.point_seed("other", {"loss": 1e-3})


def test_all_converted_experiments_expose_the_point_protocol():
    from repro.experiments import REGISTRY

    converted = [eid for eid, mod in REGISTRY.items() if hasattr(mod, "run_point")]
    assert {"fig06", "fig09_latency", "fig10", "fig15_latency", "loss"} <= set(converted)
    for eid in converted:
        mod = REGISTRY[eid]
        pts = mod.points(quick=True)
        assert pts, eid
        # points must round-trip through JSON (cache + pool pickling)
        assert json.loads(json.dumps(pts)) == pts, eid


@pytest.mark.parametrize("eid", ["fig15_latency", "loss"])
def test_single_point_matches_full_sweep_row(eid):
    """run_point on the first point reproduces the first row of run()."""
    from repro.experiments import REGISTRY

    mod = REGISTRY[eid]
    rows = mod.run(quick=True, jobs=1, cache=False)
    row = runner._exec_point(eid, mod.points(quick=True)[0], None)
    assert _dumps([rows[0]]) == _dumps([row])


# ------------------------------------------------ warm pool + break-even

def test_pool_decision_and_cost_ema_recorded(monkeypatch):
    """A serial sweep records its decision and seeds the per-experiment
    cost estimate the break-even heuristic feeds on."""
    monkeypatch.setattr(runner, "_COST_EMA", {})
    fig06.run(quick=True, jobs=1, cache=False)
    assert runner.LAST_STATS.pool_decision == "serial:jobs=1"
    assert runner.LAST_STATS.est_point_s is None  # nothing known yet
    assert runner._COST_EMA["fig06"] > 0.0  # ...but now there is


def test_break_even_keeps_cheap_sweeps_serial(monkeypatch):
    """With a known tiny per-point cost, forking can never pay off: the
    sweep runs serial and says why."""
    monkeypatch.setattr(runner.os, "cpu_count", lambda: 4)
    monkeypatch.setattr(runner, "_COST_EMA", {"fig06": 1e-6})
    rows = fig06.run(quick=True, jobs=2, cache=False)
    assert rows
    assert runner.LAST_STATS.pool_decision == "serial:break-even"
    assert runner.LAST_STATS.jobs == 1
    assert runner.LAST_STATS.est_point_s == 1e-6


def test_warm_pool_is_reused_across_sweeps(monkeypatch):
    """The worker pool persists between run_sweep calls: the first
    parallel sweep pays the fork, the second reuses it."""
    monkeypatch.setattr(runner.os, "cpu_count", lambda: 4)
    # a (fake) expensive point makes the pool path the clear winner
    monkeypatch.setattr(runner, "_COST_EMA", {"fig06": 1.0})
    runner.shutdown_pool()
    try:
        fig06.run(quick=True, jobs=2, cache=False)
        assert runner.LAST_STATS.pool_decision == "pool:cold"
        assert not runner.LAST_STATS.pool_reused
        monkeypatch.setitem(runner._COST_EMA, "fig06", 1.0)
        fig06.run(quick=True, jobs=2, cache=False)
        assert runner.LAST_STATS.pool_decision == "pool:warm"
        assert runner.LAST_STATS.pool_reused
    finally:
        runner.shutdown_pool()
