"""Threat-model policy tests (§IV)."""

import numpy as np
import pytest

from repro import DfsClient, build_testbed
from repro.core.policies.threat_models import (
    THREAT_MODELS,
    ThreatModelPolicy,
    sign_packet,
)
from repro.protocols.base import WriteContext
from repro.protocols.threat import SHARED_SECRET, install_threat_targets, threat_write

KiB = 1024


def make(mode):
    tb = build_testbed(n_storage=4)
    install_threat_targets(tb, mode)
    c = DfsClient(tb)
    lay = c.create("/f", size=256 * KiB)
    ctx = WriteContext(c.node, c.client_id, c.ticket("/f"))
    return tb, c, lay, ctx


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        ThreatModelPolicy(mode="paranoid")


def test_sign_packet_deterministic():
    a = np.arange(100, dtype=np.uint8)
    assert sign_packet(b"k", a) == sign_packet(b"k", a)
    assert sign_packet(b"k", a) != sign_packet(b"k2", a)
    assert len(sign_packet(b"k", a)) == 8
    assert sign_packet(b"k", None) == sign_packet(b"k", b"")


@pytest.mark.parametrize("mode", THREAT_MODELS)
def test_each_mode_writes_correctly(mode):
    tb, c, lay, ctx = make(mode)
    data = np.random.default_rng(1).integers(0, 256, 48 * KiB, dtype=np.uint8)
    res = tb.run_until(threat_write(ctx, lay, data, mode))
    assert res.ok
    got = tb.node(lay.primary.node).memory.view(lay.primary.addr, data.nbytes)
    assert np.array_equal(got, data)


def test_trusted_mode_rejects_wrong_ticket():
    tb, c, lay, ctx = make("trusted")
    # bypass the driver to send a wrong plain-text secret
    from repro.core.request import WriteRequestHeader, request_header_bytes
    from repro.rdma.nic import fresh_greq_id

    greq = fresh_greq_id()
    dfs = ctx.dfs_header(greq)
    wrh = WriteRequestHeader(addr=lay.primary.addr)
    done = ctx.client.nic.post_write(
        dst=lay.primary.node,
        data=np.zeros(1 * KiB, np.uint8),
        headers={"dfs": dfs, "wrh": wrh, "write_len": 1024, "ticket": b"wrong"},
        header_bytes=request_header_bytes(dfs, wrh),
        greq_id=greq,
    )
    res = tb.run_until(done)
    assert not res.ok and res.nacks[0]["reason"] == "auth"


def test_trusted_header_handler_is_cheaper():
    trusted = ThreatModelPolicy("trusted").header_cost(None, None)
    cap = ThreatModelPolicy("capability").header_cost(None, None)
    assert trusted.compute_ns(1.0) < cap.compute_ns(1.0) / 2


def test_packet_mac_ph_cost_scales_per_byte():
    p = ThreatModelPolicy("packet-mac")

    class _Pkt:
        payload_bytes = 2048
        payload = np.zeros(2048, np.uint8)

    class _Entry:
        scratch: dict = {"coord_array": []}

    big = p.payload_cost(None, _Entry(), _Pkt())
    _Pkt.payload_bytes = 256
    small = p.payload_cost(None, _Entry(), _Pkt())
    assert big.instructions - small.instructions == 2 * (2048 - 256)
    assert big.mem_intensive


def test_tamper_detection_per_packet():
    tb, c, lay, ctx = make("packet-mac")
    data = np.random.default_rng(2).integers(0, 256, 32 * KiB, dtype=np.uint8)
    res = tb.run_until(threat_write(ctx, lay, data, "packet-mac", tamper_packet=3))
    assert not res.ok and res.nacks[0]["reason"] == "integrity"
    node = tb.node(lay.primary.node)
    policy = node.accelerator.contexts[0].handlers.payload.policy
    assert policy.mac_failures == 1


def test_untampered_packets_of_tampered_write_still_validated():
    """Only the tampered packet is dropped; the rest carried valid MACs
    (defence is per packet, not per message)."""
    tb, c, lay, ctx = make("packet-mac")
    data = np.random.default_rng(3).integers(0, 256, 16 * KiB, dtype=np.uint8)
    res = tb.run_until(threat_write(ctx, lay, data, "packet-mac", tamper_packet=0))
    assert not res.ok
    # packets after the tampered one still landed (their MACs verified)
    stored = tb.node(lay.primary.node).memory.view(lay.primary.addr, data.nbytes)
    tail_matches = np.array_equal(stored[4096:], data[4096:])
    head_matches = np.array_equal(stored[:1024], data[:1024])
    assert tail_matches and not head_matches


def test_mac_failure_event_reaches_host():
    tb, c, lay, ctx = make("packet-mac")
    data = np.zeros(8 * KiB, np.uint8)
    tb.run_until(threat_write(ctx, lay, data, "packet-mac", tamper_packet=1))
    events = tb.node(lay.primary.node).dfs_state.drain_host_events()
    assert any(e["type"] == "packet_mac_failure" for e in events)
