"""Open-loop workload engine: determinism, aggregation exactness,
samplers, and the payload cache."""

import hashlib

import pytest

from repro.dfs.cluster import build_testbed
from repro.workloads import payload_bytes
from repro.workloads.openloop import (
    _REQ_PACK,
    ArrivalSpec,
    OpenLoopSpec,
    PopularitySpec,
    SizeSpec,
    WorkloadClass,
    ZipfSampler,
    open_loop_write_load,
    sample_size,
)
from repro.workloads.streams import TAG_GAP, TAG_OBJ, u01


# ------------------------------------------------------------------ streams
def test_u01_open_interval_and_pure():
    vals = [u01(3, c, k, TAG_GAP) for c in range(50) for k in range(20)]
    assert all(0.0 < v < 1.0 for v in vals)
    # pure function: same key -> same draw, in any evaluation order
    assert u01(3, 7, 11, TAG_GAP) == u01(3, 7, 11, TAG_GAP)
    # distinct tags decorrelate the same (seed, client, k) triple
    assert u01(3, 7, 11, TAG_GAP) != u01(3, 7, 11, TAG_OBJ)
    # roughly uniform: the mean of 1000 draws is near 1/2
    assert abs(sum(vals) / len(vals) - 0.5) < 0.05


def test_zipf_sampler_skew_and_bounds():
    z = ZipfSampler(100, alpha=1.2)
    assert z.mass[0] > z.mass[1] > z.mass[50]
    assert z.pick(1e-12) == 0
    assert z.pick(1.0 - 1e-12) == 99
    # alpha=0 degenerates to uniform mass
    u = ZipfSampler(10, alpha=0.0)
    assert abs(u.mass[0] - 0.1) < 1e-12 and abs(u.mass[9] - 0.1) < 1e-12


@pytest.mark.parametrize("dist", ["lognormal", "pareto"])
def test_sample_size_clamped_and_quantized(dist):
    s = SizeSpec(dist=dist, median_bytes=4096, sigma=1.5, alpha=1.1,
                 min_bytes=1024, max_bytes=32768, quantum=512)
    for k in range(500):
        size = sample_size(u01(1, 5, k, TAG_OBJ), s)
        assert 1024 <= size <= 32768
        assert size % 512 == 0 or size == s.min_bytes


def test_sample_size_fixed():
    s = SizeSpec(dist="fixed", fixed_bytes=9999)
    assert sample_size(0.5, s) == 9999


# ---------------------------------------------------------------- validation
def test_burst_requires_jitter():
    with pytest.raises(ValueError, match="jitter"):
        ArrivalSpec(kind="burst", burst_jitter_ns=0.0).validate()


def test_spec_validation():
    with pytest.raises(ValueError):
        OpenLoopSpec(n_users=0).validate()
    with pytest.raises(ValueError):
        OpenLoopSpec(arrival=ArrivalSpec(kind="nope")).validate()
    with pytest.raises(ValueError):
        OpenLoopSpec(size=SizeSpec(min_bytes=0)).validate()
    with pytest.raises(ValueError):
        OpenLoopSpec(
            classes=(WorkloadClass("a", 0.5), WorkloadClass("b", 0.9)),
        ).validate()


# ------------------------------------------------------- engine differential
def _spec(kind: str, n_users: int, seed: int = 11) -> OpenLoopSpec:
    return OpenLoopSpec(
        n_users=n_users,
        arrival=ArrivalSpec(
            kind=kind, rate_hz=2000.0,
            on_min_ns=20_000.0, off_min_ns=50_000.0,
            burst_period_ns=100_000.0, burst_jitter_ns=10_000.0,
            burst_join=0.4,
        ),
        popularity=PopularitySpec(n_objects=32, alpha=1.2),
        size=SizeSpec(dist="lognormal", median_bytes=4096, sigma=0.6,
                      min_bytes=1024, max_bytes=8192),
        warmup_ns=100_000.0,
        measure_ns=1_000_000.0,
        seed=seed,
    )


def _run(engine: str, kind: str, n_users: int, record: bool = False):
    tb = build_testbed(n_storage=4, n_clients=2)
    res, nodes = open_loop_write_load(
        tb, _spec(kind, n_users), protocol="raw", engine=engine, record=record
    )
    tb.finish()
    return res, nodes


@pytest.mark.parametrize("kind", ["poisson", "onoff", "burst"])
@pytest.mark.parametrize("n_users", [1, 4, 32])
def test_aggregated_matches_explicit(kind, n_users):
    """The exactness gate: the aggregated heap-merge generator must
    produce the byte-identical request schedule — and therefore the
    identical completions — of the per-client reference engine."""
    a, na = _run("aggregated", kind, n_users)
    b, nb = _run("explicit", kind, n_users)
    assert a.schedule_digest == b.schedule_digest
    assert a.issued == b.issued
    assert (a.ops, a.failures, a.bytes) == (b.ops, b.failures, b.bytes)
    assert a.latency == b.latency
    assert a.obj_counts == b.obj_counts
    assert na == nb


def test_schedule_deterministic_across_runs():
    a, _ = _run("aggregated", "poisson", 16)
    b, _ = _run("aggregated", "poisson", 16)
    assert a.schedule_digest == b.schedule_digest
    assert a.latency == b.latency


def test_seed_changes_schedule():
    tb1 = build_testbed(n_storage=4, n_clients=2)
    r1, _ = open_loop_write_load(tb1, _spec("poisson", 16, seed=1), protocol="raw")
    tb2 = build_testbed(n_storage=4, n_clients=2)
    r2, _ = open_loop_write_load(tb2, _spec("poisson", 16, seed=2), protocol="raw")
    assert r1.schedule_digest != r2.schedule_digest


def test_recorded_schedule_matches_digest():
    res, _ = _run("aggregated", "poisson", 8, record=True)
    assert res.schedule is not None
    assert len(res.schedule) == res.issued
    # timestamps ascend and the digest re-derives from the entries
    ts = [e[0] for e in res.schedule]
    assert ts == sorted(ts)
    h = hashlib.sha256()
    for entry in res.schedule:
        h.update(_REQ_PACK.pack(*entry))
    assert h.hexdigest() == res.schedule_digest


def test_workload_classes_differential():
    """Mixed populations (per-class arrival + size) stay exact."""
    spec = OpenLoopSpec(
        n_users=24,
        arrival=ArrivalSpec(kind="poisson", rate_hz=1000.0),
        popularity=PopularitySpec(n_objects=16, alpha=1.0),
        size=SizeSpec(dist="fixed", fixed_bytes=2048),
        classes=(
            WorkloadClass("small", 0.7),
            WorkloadClass(
                "bulk", 0.3,
                arrival=ArrivalSpec(kind="poisson", rate_hz=200.0),
                size=SizeSpec(dist="fixed", fixed_bytes=8192),
            ),
        ),
        warmup_ns=0.0,
        measure_ns=2_000_000.0,
        seed=5,
    )

    def go(engine):
        tb = build_testbed(n_storage=4, n_clients=2)
        res, nodes = open_loop_write_load(tb, spec, protocol="raw", engine=engine)
        return res

    a, b = go("aggregated"), go("explicit")
    assert a.schedule_digest == b.schedule_digest
    assert a.latency == b.latency
    # both class sizes actually occur
    assert a.bytes % 2048 != 0 or a.bytes >= 8192


def test_quiet_client_beyond_horizon():
    """A rate so low that no arrival lands inside the horizon issues
    nothing — and the run still quiesces cleanly."""
    spec = OpenLoopSpec(
        n_users=4,
        arrival=ArrivalSpec(kind="poisson", rate_hz=1e-6),
        measure_ns=1_000.0,
        seed=9,
    )
    tb = build_testbed(n_storage=2, n_clients=1)
    res, _ = open_loop_write_load(tb, spec, protocol="raw")
    assert res.issued == 0
    assert res.quiesced
    assert res.active_users == 0


def test_inflight_gauge_when_telemetry_on():
    tb = build_testbed(n_storage=4, n_clients=2, telemetry=True)
    res, _ = open_loop_write_load(tb, _spec("poisson", 8), protocol="raw")
    g = tb.telemetry.metrics.gauges.get("workload.openloop.inflight")
    assert g is not None
    assert res.inflight_peak >= 1
    assert res.phase_latency is not None
    assert "end_to_end" in res.phase_latency


# ------------------------------------------------------------- payload cache
def test_payload_cache_identity_and_immutability():
    a = payload_bytes(4096, seed=3)
    b = payload_bytes(4096, seed=3)
    assert a is b  # cached: no allocator churn per request
    assert not a.flags.writeable
    c = payload_bytes(4096, seed=4)
    assert c is not a and not (a == c).all()
    with pytest.raises(ValueError):
        a[0] = 1


def test_payload_cache_slices_are_views():
    base = payload_bytes(16384, seed=0)
    view = base[:4096]
    assert view.base is base
    assert not view.flags.writeable
