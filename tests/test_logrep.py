"""Replicated-log extension tests (§VII)."""

import numpy as np
import pytest

from repro import DfsClient, Rights, build_testbed
from repro.core.policies.logrep import LogDescriptor
from repro.protocols import install_log_targets, install_spin_targets, log_append
from repro.protocols.base import WriteContext

KiB = 1024


def make(capacity=256 * KiB, k=3, n_clients=2, preinstall_dfs=False):
    tb = build_testbed(n_storage=6, n_clients=n_clients)
    if preinstall_dfs:
        install_spin_targets(tb)
    log = install_log_targets(tb, "/log", capacity=capacity, k=k)
    ctxs = []
    for i in range(n_clients):
        c = DfsClient(tb, client_index=i, principal=f"p{i}")
        c._tickets["/log"] = tb.metadata.issue_ticket(c.client_id, "/log", Rights.RW)
        ctxs.append(WriteContext(c.node, c.client_id, c.ticket("/log")))
    return tb, log, ctxs


# ------------------------------------------------------------- descriptor
def test_descriptor_reserve_monotonic():
    d = LogDescriptor(1, 0, 100)
    assert d.reserve(40) == 0
    assert d.reserve(40) == 40
    assert d.reserve(40) is None  # would overflow
    assert d.reserve(20) == 80
    assert d.rejected == 1 and d.appends == 3


# ------------------------------------------------------------ single append
def test_single_append_ok_and_durable():
    tb, log, (ctx, _) = make()
    rec = np.arange(2000, dtype=np.int64).view(np.uint8)
    res = tb.run_until(log_append(ctx, log, rec))
    assert res.ok and res.info["offset"] == 0
    tb.run(until=tb.sim.now + 50_000)
    for ext in log.layout.extents:
        got = tb.node(ext.node).memory.view(ext.addr, rec.nbytes)
        assert np.array_equal(got, rec)


def test_appends_are_sequential():
    tb, log, (ctx, _) = make()
    offs = []
    for i in range(5):
        res = tb.run_until(log_append(ctx, log, np.zeros(100 + i, np.uint8)))
        offs.append(res.info["offset"])
    assert offs == [0, 100, 201, 303, 406]


def test_concurrent_appends_disjoint_and_ordered():
    tb, log, ctxs = make()
    events, sizes = [], []
    for i in range(20):
        n = 64 + 97 * i
        sizes.append(n)
        events.append(log_append(ctxs[i % 2], log, np.full(n, i, np.uint8)))
    results = [tb.run_until(ev) for ev in events]
    assert all(r.ok for r in results)
    regions = sorted((r.info["offset"], n) for r, n in zip(results, sizes))
    assert regions[0][0] == 0
    for (o1, n1), (o2, _) in zip(regions, regions[1:]):
        assert o1 + n1 == o2, "log must be gap-free and non-overlapping"


def test_replicas_converge_bytewise():
    tb, log, ctxs = make()
    recs = [np.random.default_rng(i).integers(0, 256, 500 + i * 61, dtype=np.uint8)
            for i in range(8)]
    results = [tb.run_until(log_append(ctxs[i % 2], log, r)) for i, r in enumerate(recs)]
    tb.run(until=tb.sim.now + 100_000)
    used = max(r.info["offset"] + rec.nbytes for r, rec in zip(results, recs))
    images = [
        tb.node(e.node).memory.view(e.addr, used).copy() for e in log.layout.extents
    ]
    for img in images[1:]:
        assert np.array_equal(img, images[0])


def test_overflow_nacked():
    tb, log, (ctx, _) = make(capacity=4 * KiB)
    assert tb.run_until(log_append(ctx, log, np.zeros(3 * KiB, np.uint8))).ok
    res = tb.run_until(log_append(ctx, log, np.zeros(2 * KiB, np.uint8)))
    assert not res.ok and res.nacks[0]["reason"] == "log_full"
    # the log still accepts records that fit
    res2 = tb.run_until(log_append(ctx, log, np.zeros(1 * KiB, np.uint8)))
    assert res2.ok


def test_unknown_log_rejected():
    tb, log, (ctx, _) = make()
    fake = type(log)(log_id=999, layout=log.layout, capacity=log.capacity)
    res = tb.run_until(log_append(ctx, fake, np.zeros(64, np.uint8)))
    assert not res.ok and res.nacks[0]["reason"] == "auth"


def test_forged_capability_rejected():
    tb, log, (ctx, _) = make()
    bad_sig = bytes(b ^ 0xFF for b in ctx.capability.signature)
    from repro.dfs.capability import Capability

    forged = Capability(
        ctx.capability.client_id, ctx.capability.object_id, ctx.capability.addr,
        ctx.capability.length, ctx.capability.rights, ctx.capability.expiry_ns, bad_sig,
    )
    bad_ctx = WriteContext(ctx.client, ctx.client_id, forged)
    res = tb.run_until(log_append(bad_ctx, log, np.zeros(64, np.uint8)))
    assert not res.ok and res.nacks[0]["reason"] == "auth"


def test_log_coexists_with_dfs_context():
    """A NIC can host the DFS write context and a log context at once."""
    tb, log, (ctx, _) = make(preinstall_dfs=True)
    res = tb.run_until(log_append(ctx, log, np.zeros(128, np.uint8)))
    assert res.ok
    # plain DFS writes still work on the same nodes
    c = DfsClient(tb, client_index=1, principal="other")
    c.create("/plain", size=4 * KiB)
    out = c.write_sync("/plain", np.ones(1 * KiB, np.uint8), protocol="spin")
    assert out.ok


def test_two_logs_share_policy_state():
    tb = build_testbed(n_storage=6)
    log1 = install_log_targets(tb, "/l1", capacity=64 * KiB, k=2)
    log2 = install_log_targets(tb, "/l2", capacity=64 * KiB, k=2)
    assert log1.log_id != log2.log_id
    c = DfsClient(tb, principal="p")
    for path in ("/l1", "/l2"):
        c._tickets[path] = tb.metadata.issue_ticket(c.client_id, path, Rights.RW)
    ctx1 = WriteContext(c.node, c.client_id, c.ticket("/l1"))
    ctx2 = WriteContext(c.node, c.client_id, c.ticket("/l2"))
    r1 = tb.run_until(log_append(ctx1, log1, np.zeros(100, np.uint8)))
    r2 = tb.run_until(log_append(ctx2, log2, np.zeros(100, np.uint8)))
    assert r1.ok and r2.ok
    assert r1.info["offset"] == 0 and r2.info["offset"] == 0
