"""Unit tests for protocol-driver plumbing."""

import numpy as np
import pytest

from repro.core.request import ReplicationParams
from repro.dfs.capability import CapabilityAuthority, Rights
from repro.dfs.layout import Extent, FileLayout, ReplicationSpec
from repro.dfs.nodes import ClientNode
from repro.protocols.base import (
    WriteContext,
    WriteOutcome,
    as_uint8,
    make_dfs_header,
    replication_params_for,
    wrap_result,
)
from repro.simnet import Simulator


# ------------------------------------------------------------ WriteOutcome
def test_write_outcome_latency_and_goodput():
    out = WriteOutcome(ok=True, t_start=100.0, t_end=1100.0, size=125_000, protocol="x")
    assert out.latency_ns == 1000.0
    assert out.goodput_gbps() == pytest.approx(1000.0)


def test_write_outcome_zero_duration():
    out = WriteOutcome(ok=True, t_start=5.0, t_end=5.0, size=10, protocol="x")
    assert out.goodput_gbps() == 0.0


# ---------------------------------------------------------------- as_uint8
def test_as_uint8_accepts_many_types():
    assert as_uint8(b"\x01\x02").tolist() == [1, 2]
    assert as_uint8(bytearray(b"\x03")).tolist() == [3]
    assert as_uint8(memoryview(b"\x04")).tolist() == [4]
    arr = np.array([[1, 2], [3, 4]], dtype=np.uint8)
    assert as_uint8(arr).shape == (4,)
    wide = np.array([300], dtype=np.int64)
    assert as_uint8(wide).dtype == np.uint8  # cast, truncating
    assert as_uint8([5, 6]).tolist() == [5, 6]


def test_as_uint8_zero_copy_for_uint8():
    arr = np.arange(8, dtype=np.uint8)
    assert np.shares_memory(as_uint8(arr), arr)


# ------------------------------------------------------------- dfs headers
def test_make_dfs_header_binds_client_identity():
    class FakeNode:
        name = "clientX"

    cap = CapabilityAuthority(key=b"k").issue(7, 1, 0, 10, Rights.RW)
    ctx = WriteContext(client=FakeNode(), client_id=7, capability=cap)
    h = make_dfs_header(ctx, greq_id=42)
    assert h.greq_id == 42
    assert h.client_id == 7
    assert h.reply_to == "clientX"
    assert h.capability is cap
    r = ctx.dfs_header(43, op="read")
    assert r.op == "read"


# ------------------------------------------------- replication_params_for
def test_replication_params_for_builds_coords():
    lay = FileLayout(
        object_id=1,
        size=100,
        extents=(Extent("a", 0, 100), Extent("b", 16, 100), Extent("c", 32, 100)),
        resiliency="replication",
        replication=ReplicationSpec(k=3, strategy="pbt"),
    )
    rp = replication_params_for(lay)
    assert isinstance(rp, ReplicationParams)
    assert rp.strategy == "pbt" and rp.virtual_rank == 0
    assert [c.node for c in rp.coords] == ["b", "c"]
    assert [c.addr for c in rp.coords] == [16, 32]


# -------------------------------------------------------------- wrap_result
def test_wrap_result_converts_opresult():
    from repro.rdma.nic import OpResult

    sim = Simulator()
    done = sim.event()
    out_ev = wrap_result(sim, done, size=100, protocol="p")
    done.succeed(OpResult(ok=True, t_start=1.0, t_end=2.0, greq_id=9))
    sim.run()
    out = out_ev.value
    assert isinstance(out, WriteOutcome)
    assert out.ok and out.size == 100 and out.protocol == "p" and out.greq_id == 9


def test_wrap_result_propagates_failure():
    sim = Simulator()
    done = sim.event()
    out_ev = wrap_result(sim, done, size=1, protocol="p")
    seen = []
    out_ev.add_callback(lambda ev: seen.append(ev.exception))
    done.fail(RuntimeError("transport died"))
    sim.run()
    assert isinstance(seen[0], RuntimeError)


# -------------------------------------------------- goodput ceiling helper
def test_achievable_line_rate():
    from repro.experiments.fig09_goodput import achievable_line_rate

    # 400 * 2048/2112 = 387.9
    assert achievable_line_rate() == pytest.approx(387.9, abs=0.1)


# ------------------------------------------------------------ handler stats
def test_handler_stats_math():
    from repro.pspin.accelerator import HandlerStats

    st = HandlerStats()
    assert st.mean_duration() == 0.0 and st.mean_ipc(1.0) == 0.0
    st.record(100.0, 60)
    st.record(200.0, 60)
    assert st.n == 2
    assert st.mean_duration() == 150.0
    assert st.mean_instructions() == 60
    assert st.mean_ipc(1.0) == pytest.approx(0.4)
    assert st.mean_ipc(2.0) == pytest.approx(0.2)
