"""Fault injection end-to-end: every protocol survives seeded packet
loss, outage windows are honoured, give-up is clean, runs are
deterministic, and nothing leaks after quiesce."""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.dfs.layout import EcSpec, ReplicationSpec
from repro.experiments.common import installer_for
from repro.faults import DownWindow, FaultInjector, FaultParams
from repro.params import SimParams
from repro.simnet.engine import Simulator

SIZE = 64 * 1024
DATA = np.random.default_rng(0).integers(0, 256, SIZE, dtype=np.uint8)

#: seed chosen so loss=1e-3 actually drops packets during the run
SEED = 2

ALL_PROTOCOLS = [
    ("raw", {}),
    ("spin", {}),
    ("rpc", {}),
    ("rpc+rdma", {}),
    ("spin-repl", {"replication": ReplicationSpec(k=3)}),
    ("rdma-flat", {"replication": ReplicationSpec(k=3)}),
    ("cpu", {"replication": ReplicationSpec(k=3)}),
    ("rdma-hyperloop", {"replication": ReplicationSpec(k=3)}),
    ("spin-ec", {"ec": EcSpec(k=3, m=2)}),
    ("inec", {"ec": EcSpec(k=3, m=2)}),
]


def _quiesced(tb):
    if any(h.nic.pending_count() for h in [tb.clients[0], *tb.storage_nodes]):
        return False
    for node in tb.storage_nodes:
        acc = node.accelerator
        if acc is not None and (
            acc.in_flight_messages or any(cl.hpus.users for cl in acc.clusters)
        ):
            return False
    return True


def _drain(tb, budget_ns=200_000_000):
    tb.run(until=tb.sim.now + 200_000)
    deadline = tb.sim.now + budget_ns
    while not _quiesced(tb) and tb.sim.now < deadline:
        tb.run(until=tb.sim.now + 1_000_000)


def _assert_quiesced(tb, label):
    for host in [tb.clients[0], *tb.storage_nodes]:
        assert host.nic.pending_count() == 0, (label, host.name)
    for node in tb.storage_nodes:
        if node.accelerator is not None:
            assert node.accelerator.in_flight_messages == 0, (label, node.name)
            for cl in node.accelerator.clusters:
                assert not cl.hpus.users, (label, node.name)


def _run_write(protocol, create_kw, params, app_retries=3, telemetry=False):
    """One verified write under ``params``; returns the testbed + stats."""
    tb = build_testbed(n_storage=8, params=params, telemetry=telemetry)
    wire_protocol = protocol.replace("-repl", "").replace("-ec", "")
    installer = installer_for(wire_protocol)
    if installer:
        installer(tb)
    c = DfsClient(tb)
    c.create("/f", size=SIZE, **create_kw)
    kw = {"chunk_bytes": 32 * 1024} if wire_protocol == "cpu" else {}
    out = None
    for _ in range(app_retries):
        out = c.write_sync("/f", DATA, protocol=wire_protocol, **kw)
        if out.ok:
            break
    _drain(tb)
    return tb, c, out


# ------------------------------------------------ all protocols, seeded loss
@pytest.mark.parametrize("protocol,create_kw", ALL_PROTOCOLS,
                         ids=[p for p, _ in ALL_PROTOCOLS])
def test_write_completes_under_loss(protocol, create_kw):
    params = SimParams().with_faults(loss_prob=1e-3, seed=SEED, retransmit=True)
    tb, c, out = _run_write(protocol, create_kw, params)
    assert out.ok, (protocol, out.nacks)
    got = c.read_back("/f")
    assert np.array_equal(got[:SIZE], DATA), protocol
    _assert_quiesced(tb, protocol)


def test_loss_actually_recovers_via_retransmit():
    # 1% loss on every link: the run must both drop and retransmit
    params = SimParams().with_faults(loss_prob=1e-2, seed=1, retransmit=True)
    tb, c, out = _run_write("spin", {}, params)
    assert out.ok, out.nacks
    assert tb.faults.drops > 0
    nics = [tb.clients[0].nic, *(n.nic for n in tb.storage_nodes)]
    assert sum(n.retransmits for n in nics) > 0
    assert np.array_equal(c.read_back("/f")[:SIZE], DATA)
    _assert_quiesced(tb, "spin@1e-2")


# -------------------------------------- trace context across retransmissions
@pytest.mark.parametrize("protocol", ["raw", "spin"])
def test_retransmit_spans_join_request_trace(protocol):
    """A retransmitted packet stays in its request's span tree: the RTO
    backoff windows appear as ``retransmit``-phase children of the same
    trace, and the phase decomposition stays exact under faults."""
    from repro.telemetry.anatomy import decompose

    params = SimParams().with_faults(loss_prob=1e-2, seed=1, retransmit=True)
    tb, c, out = _run_write(protocol, {}, params, telemetry=True)
    assert out.ok, out.nacks
    assert tb.faults.drops > 0
    nics = [tb.clients[0].nic, *(n.nic for n in tb.storage_nodes)]
    assert sum(n.retransmits for n in nics) > 0

    tel = tb.telemetry
    backoffs = [s for s in tel.finished_spans() if s.phase == "retransmit"]
    assert backoffs, "retransmissions must leave backoff spans"
    roots = {
        s.trace_id: s for s in tel.finished_spans() if s.cat == "request"
    }
    for s in backoffs:
        # same span tree as the request whose packet was dropped
        assert s.trace_id in roots
        assert s.parent_id == roots[s.trace_id].span_id

    ops = [op for op in decompose(tel) if op.op == "write" and op.ok]
    assert ops
    # the stall the fault added is attributed to the retransmit phase...
    assert any(op.phases["retransmit"] > 0.0 for op in ops)
    # ...and phases still sum exactly to the end-to-end latency
    for op in ops:
        assert abs(op.sum_error_ns) <= 1.0, (op.name, op.sum_error_ns)


def test_clean_run_has_no_retransmit_phase():
    tb, c, out = _run_write("spin", {}, SimParams(), telemetry=True)
    assert out.ok
    from repro.telemetry.anatomy import decompose

    assert all(s.phase != "retransmit" for s in tb.telemetry.finished_spans())
    for op in decompose(tb.telemetry):
        assert op.phases["retransmit"] == 0.0


# ----------------------------------------------------------- determinism
def test_same_seed_same_trace():
    params = SimParams().with_faults(loss_prob=1e-2, seed=5, retransmit=True)
    runs = []
    for _ in range(2):
        tb, _, out = _run_write("raw", {}, params)
        assert out.ok
        runs.append((out.latency_ns, tb.faults.drops,
                     dict(tb.faults.drops_by_link), tb.sim.now))
    assert runs[0] == runs[1]


def test_different_seed_different_drops():
    def drops(seed):
        params = SimParams().with_faults(loss_prob=2e-2, seed=seed, retransmit=True)
        tb, _, out = _run_write("raw", {}, params)
        assert out.ok
        return dict(tb.faults.drops_by_link)

    assert drops(1) != drops(9)


# ------------------------------------------------------------- give-up path
def test_total_loss_gives_up_cleanly():
    # nothing ever arrives: the op must fail with a "timeout" nack after
    # exhausting its retransmission budget, leaving no pending state
    params = SimParams().with_faults(
        loss_prob=1.0, seed=0, retransmit=True,
        rto_ns=10_000.0, rto_max_ns=40_000.0, max_retransmits=3,
    )
    tb, c, out = _run_write("raw", {}, params, app_retries=1)
    assert not out.ok
    assert out.nacks and out.nacks[0]["reason"] == "timeout"
    assert out.nacks[0]["attempts"] == 4  # original + max_retransmits
    assert tb.clients[0].nic.timeouts == 1
    _assert_quiesced(tb, "total-loss")


# ------------------------------------------------------------ down windows
def test_node_down_window_recovers():
    # every storage NIC black-holes its ingress for the first 50 us; the
    # client's watchdog retransmits after the window and the write lands
    params = SimParams().with_faults(
        node_down=(DownWindow("sn", 0.0, 50_000.0),), retransmit=True,
    )
    tb, c, out = _run_write("raw", {}, params)
    assert out.ok, out.nacks
    assert tb.faults.node_drops > 0
    assert np.array_equal(c.read_back("/f")[:SIZE], DATA)
    _assert_quiesced(tb, "node-down")


def test_link_down_window_recovers():
    # the switch egress towards every storage node is dark for 50 us
    params = SimParams().with_faults(
        link_down=(DownWindow("->sn", 0.0, 50_000.0),), retransmit=True,
    )
    tb, c, out = _run_write("raw", {}, params)
    assert out.ok, out.nacks
    assert tb.faults.drops > 0
    assert all("->sn" in link for link in tb.faults.drops_by_link)
    assert np.array_equal(c.read_back("/f")[:SIZE], DATA)
    _assert_quiesced(tb, "link-down")


# ------------------------------------------------------------- corruption
def test_corruption_dropped_at_receiver_and_recovered():
    # corrupted packets pass the wire but fail the receiving NIC's CRC:
    # receiver-visible loss, recovered by the same retransmission path
    params = SimParams().with_faults(corrupt_prob=2e-2, seed=3, retransmit=True)
    tb, c, out = _run_write("spin", {}, params)
    assert out.ok, out.nacks
    assert tb.faults.corrupted > 0
    nics = [tb.clients[0].nic, *(n.nic for n in tb.storage_nodes)]
    assert sum(n.rx_dropped for n in nics) == tb.faults.corrupted
    assert np.array_equal(c.read_back("/f")[:SIZE], DATA)
    _assert_quiesced(tb, "corrupt")


# ----------------------------------------------------- injector unit tests
def test_injector_streams_are_per_link_and_deterministic():
    class _Pkt:  # egress_verdict only draws one uniform per call
        pass

    def verdicts(seed, link, n=200):
        sim = Simulator()
        inj = FaultInjector(sim, FaultParams(seed=seed, loss_prob=0.1))
        return [inj.egress_verdict(link, _Pkt()) for _ in range(n)]

    a = verdicts(1, "switch->sn0")
    assert a == verdicts(1, "switch->sn0")          # same seed, same fate
    assert a != verdicts(2, "switch->sn0")          # seed matters
    assert a != verdicts(1, "switch->sn1")          # per-link streams
    assert 0 < a.count("drop") < len(a)


def test_fault_params_inactive_by_default():
    assert not FaultParams().active
    assert SimParams().faults is FaultParams() or not SimParams().faults.active
    tb = build_testbed(n_storage=1)
    assert tb.faults is None and tb.sim.faults is None
