"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simnet import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_ordering():
    sim = Simulator()
    log = []

    def proc(name, delay):
        yield sim.timeout(delay)
        log.append((sim.now, name))

    sim.process(proc("a", 5.0))
    sim.process(proc("b", 3.0))
    sim.process(proc("c", 3.0))
    sim.run()
    assert log == [(3.0, "b"), (3.0, "c"), (5.0, "a")]


def test_tie_break_is_fifo():
    """Events scheduled for the same instant fire in schedule order."""
    sim = Simulator()
    log = []

    def proc(name):
        yield sim.timeout(1.0)
        log.append(name)

    for i in range(10):
        sim.process(proc(i))
    sim.run()
    assert log == list(range(10))


def test_process_return_value():
    sim = Simulator()

    def inner():
        yield sim.timeout(2.0)
        return 42

    def outer():
        value = yield sim.process(inner())
        return value + 1

    p = sim.process(outer())
    assert sim.run_until_complete(p) == 43
    assert sim.now == 2.0


def test_event_succeed_value_passes_through_yield():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        v = yield ev
        got.append(v)

    sim.process(waiter())

    def trigger():
        yield sim.timeout(1.0)
        ev.succeed("hello")

    sim.process(trigger())
    sim.run()
    assert got == ["hello"]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as e:
            caught.append(str(e))

    sim.process(waiter())
    ev.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates_to_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("crash")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="crash"):
        sim.run()


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def worker(delay, value):
        yield sim.timeout(delay)
        return value

    def main():
        procs = [sim.process(worker(d, v)) for d, v in [(3, "x"), (1, "y"), (2, "z")]]
        values = yield AllOf(sim, procs)
        return values

    p = sim.process(main())
    assert sim.run_until_complete(p) == ["x", "y", "z"]
    assert sim.now == 3.0


def test_any_of_returns_first():
    sim = Simulator()

    def worker(delay, value):
        yield sim.timeout(delay)
        return value

    def main():
        slow = sim.process(worker(9, "slow"))
        fast = sim.process(worker(1, "fast"))
        first = yield AnyOf(sim, [slow, fast])
        return first.value

    p = sim.process(main())
    assert sim.run_until_complete(p) == "fast"


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def main():
        values = yield AllOf(sim, [])
        return values

    p = sim.process(main())
    assert sim.run_until_complete(p) == []


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("slept")
        except Interrupt as i:
            log.append(("interrupted", i.cause, sim.now))

    p = sim.process(sleeper())

    def killer():
        yield sim.timeout(5.0)
        p.interrupt("reason")

    sim.process(killer())
    sim.run()
    assert log == [("interrupted", "reason", 5.0)]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    p.interrupt("late")  # must not raise
    sim.run()


def test_run_until_limits_time():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(10.0)
        log.append("fired")

    sim.process(proc())
    sim.run(until=5.0)
    assert log == [] and sim.now == 5.0
    sim.run()
    assert log == ["fired"] and sim.now == 10.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42  # not an Event

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_callback_on_already_fired_event_still_runs():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    sim.run()
    got = []

    def waiter():
        v = yield ev
        got.append(v)

    sim.process(waiter())
    sim.run()
    assert got == ["v"]


def test_determinism_same_trace_twice():
    def build():
        sim = Simulator()
        log = []

        def proc(i):
            yield sim.timeout(i % 3)
            log.append((sim.now, i))
            yield sim.timeout((i * 7) % 5)
            log.append((sim.now, -i))

        for i in range(20):
            sim.process(proc(i))
        sim.run()
        return log

    assert build() == build()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 7.0


def test_reentrant_run_rejected():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        sim.run()  # illegal: we're inside run()

    sim.process(proc())
    with pytest.raises(SimulationError, match="re-entrantly"):
        sim.run()


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    never = sim.event()
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_event(never)


def test_run_until_event_limit():
    sim = Simulator()
    ev = sim.event()

    def late():
        yield sim.timeout(100.0)
        ev.succeed("v")

    sim.process(late())
    with pytest.raises(SimulationError, match="did not fire"):
        sim.run_until_event(ev, limit=10.0)
    # and it can still complete afterwards
    assert sim.run_until_event(ev) == "v"


def test_run_until_event_raises_event_failure():
    sim = Simulator()
    ev = sim.event()

    def failer():
        yield sim.timeout(1.0)
        ev.fail(ValueError("boom"))

    sim.process(failer())
    with pytest.raises(ValueError, match="boom"):
        sim.run_until_event(ev)


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(2.0, value="payload")
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["payload"]


def test_any_of_propagates_failure():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("child died")

    def main():
        p = sim.process(bad())
        try:
            yield AnyOf(sim, [p, sim.timeout(50.0)])
        except RuntimeError as e:
            return str(e)
        return "no error"

    m = sim.process(main())
    assert sim.run_until_complete(m) == "child died"


def test_interrupt_while_holding_resource():
    """Interrupting a process mid-critical-section must not corrupt the
    resource (the holder releases in its except path)."""
    from repro.simnet import Resource

    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def holder():
        req = res.request()
        yield req
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            log.append("interrupted")
        finally:
            res.release(req)

    def other():
        req = res.request()
        yield req
        log.append(("other-in", sim.now))
        res.release(req)

    p = sim.process(holder())
    sim.process(other())

    def killer():
        yield sim.timeout(5.0)
        p.interrupt()

    sim.process(killer())
    sim.run()
    assert log == ["interrupted", ("other-in", 5.0)]
