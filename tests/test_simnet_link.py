"""Unit tests for ports, links, switches and the star network."""

import numpy as np
import pytest

from repro.simnet import (
    Message,
    NetConfig,
    Network,
    Packet,
    Port,
    Simulator,
    gbps_to_ns_per_byte,
    segment_message,
)


class Sink:
    def __init__(self, name="sink"):
        self.name = name
        self.received = []

    def receive(self, pkt):
        self.received.append(pkt)


class TimestampSink(Sink):
    def __init__(self, sim, name="sink"):
        super().__init__(name)
        self.sim = sim
        self.times = []

    def receive(self, pkt):
        super().receive(pkt)
        self.times.append(self.sim.now)


def _pkt(size_payload, src="a", dst="b", seq=0, nseq=1):
    return Packet(
        src=src,
        dst=dst,
        op="write",
        msg_id=1,
        seq=seq,
        nseq=nseq,
        payload=np.zeros(size_payload, dtype=np.uint8),
    )


def test_gbps_conversion():
    # 400 Gbit/s -> 0.02 ns per byte
    assert gbps_to_ns_per_byte(400) == pytest.approx(0.02)


def test_port_serialization_plus_latency():
    sim = Simulator()
    sink = TimestampSink(sim)
    port = Port(sim, "a", bandwidth_gbps=400)
    port.connect(sink, latency_ns=20)
    pkt = _pkt(2048 - 64)  # wire size exactly 2048 B
    port.send(pkt)
    sim.run()
    # 2048 B * 0.02 ns/B = 40.96 ns serialization + 20 ns propagation
    assert sink.times == [pytest.approx(60.96)]


def test_port_pipelines_back_to_back_packets():
    """Second packet arrives one serialization time after the first."""
    sim = Simulator()
    sink = TimestampSink(sim)
    port = Port(sim, "a", bandwidth_gbps=400)
    port.connect(sink, latency_ns=0)
    for _ in range(3):
        port.send(_pkt(2048 - 64))
    sim.run()
    ser = 2048 * 0.02
    assert sink.times == [
        pytest.approx(ser),
        pytest.approx(2 * ser),
        pytest.approx(3 * ser),
    ]


def test_send_event_fires_at_serialization_end():
    sim = Simulator()
    sink = Sink()
    port = Port(sim, "a", bandwidth_gbps=400)
    port.connect(sink, latency_ns=1000)
    t_done = []

    def sender():
        yield port.send(_pkt(2048 - 64))
        t_done.append(sim.now)

    sim.process(sender())
    sim.run()
    # sender unblocked at serialization end, not delivery
    assert t_done == [pytest.approx(40.96)]


def test_try_send_full_queue_returns_none():
    sim = Simulator()
    sink = Sink()
    port = Port(sim, "a", bandwidth_gbps=400, queue_packets=1)
    port.connect(sink, latency_ns=0)
    accepted = 0
    # At t=0 the server has not drained anything yet.
    for _ in range(5):
        if port.try_send(_pkt(100)) is not None:
            accepted += 1
    assert accepted == 1
    sim.run()
    assert len(sink.received) == accepted


def test_port_stats():
    sim = Simulator()
    sink = Sink()
    port = Port(sim, "a", bandwidth_gbps=400)
    port.connect(sink, latency_ns=0)
    port.send(_pkt(2048 - 64))
    port.send(_pkt(1024 - 64))
    sim.run()
    assert port.tx_packets == 2
    assert port.tx_bytes == 2048 + 1024
    assert port.busy_ns == pytest.approx((2048 + 1024) * 0.02)


def test_double_connect_rejected():
    sim = Simulator()
    port = Port(sim, "a", bandwidth_gbps=400)
    port.connect(Sink(), latency_ns=0)
    with pytest.raises(RuntimeError):
        port.connect(Sink(), latency_ns=0)


# ------------------------------------------------------------- network/star
def test_star_network_end_to_end_latency():
    sim = Simulator()
    cfg = NetConfig(bandwidth_gbps=400, link_latency_ns=20, switch_latency_ns=100)
    net = Network(sim, cfg)
    a, b = TimestampSink(sim, "a"), TimestampSink(sim, "b")
    port_a = net.register(a)
    net.register(b)
    pkt = _pkt(2048 - 64, src="a", dst="b")
    port_a.send(pkt)
    sim.run()
    ser = 2048 * 0.02  # per store-and-forward hop
    expect = ser + 20 + 100 + ser + 20
    assert b.times == [pytest.approx(expect)]


def test_network_routes_to_correct_endpoint():
    sim = Simulator()
    net = Network(sim)
    nodes = {n: Sink(n) for n in ["a", "b", "c"]}
    ports = {n: net.register(nodes[n]) for n in nodes}
    ports["a"].send(_pkt(10, src="a", dst="c"))
    ports["b"].send(_pkt(10, src="b", dst="a"))
    sim.run()
    assert len(nodes["c"].received) == 1
    assert len(nodes["a"].received) == 1
    assert len(nodes["b"].received) == 0


def test_network_unknown_destination_raises():
    sim = Simulator()
    net = Network(sim)
    a = Sink("a")
    pa = net.register(a)
    pa.send(_pkt(10, src="a", dst="ghost"))
    with pytest.raises(KeyError):
        sim.run()


def test_duplicate_registration_rejected():
    sim = Simulator()
    net = Network(sim)
    net.register(Sink("a"))
    with pytest.raises(ValueError):
        net.register(Sink("a"))


def test_in_order_delivery_of_message():
    """sPIN requires header first, completion last; links are FIFO."""
    sim = Simulator()
    net = Network(sim)
    a, b = Sink("a"), Sink("b")
    pa = net.register(a)
    net.register(b)
    data = np.arange(100_000, dtype=np.uint64).view(np.uint8)
    msg = Message(src="a", dst="b", op="write", data=data)
    for p in segment_message(msg, mtu=2048):
        pa.send(p)
    sim.run()
    seqs = [p.seq for p in b.received]
    assert seqs == sorted(seqs)
    assert b.received[0].is_header and b.received[-1].is_completion


def test_congestion_two_senders_one_receiver():
    """Two hosts flooding one sink share the sink's egress port at the
    switch: total delivery time is ~2x the one-sender case."""
    cfg = NetConfig(bandwidth_gbps=400, link_latency_ns=0, switch_latency_ns=0)

    def run(n_senders):
        sim = Simulator()
        net = Network(sim, cfg)
        sink = TimestampSink(sim, "sink")
        net.register(sink)
        for s in range(n_senders):
            name = f"src{s}"
            port = net.register(Sink(name))
            for _ in range(50):
                port.send(_pkt(2048 - 64, src=name, dst="sink"))
        sim.run()
        return sim.now

    t1, t2 = run(1), run(2)
    assert t2 / t1 == pytest.approx(2.0, rel=0.05)
