"""sPIN authenticated-read path tests (§III-A read request format)."""

import numpy as np
import pytest

from repro import DfsClient, build_testbed
from repro.protocols import install_spin_targets
from repro.protocols.base import WriteContext
from repro.protocols.spin_write import spin_read

KiB = 1024


@pytest.fixture
def env():
    tb = build_testbed(n_storage=4)
    install_spin_targets(tb)
    c = DfsClient(tb, principal="reader")
    c.create("/f", size=256 * KiB)
    data = np.random.default_rng(0).integers(0, 256, 200 * KiB, dtype=np.uint8)
    assert c.write_sync("/f", data, protocol="spin").ok
    return tb, c, data


def test_full_read_roundtrip(env):
    tb, c, data = env
    res = c.read_sync("/f", length=200 * KiB, protocol="spin")
    assert res.ok
    assert np.array_equal(res.data, data)


def test_partial_range_read(env):
    tb, c, data = env
    res = c.read_sync("/f", addr=10_000, length=5_000, protocol="spin")
    assert res.ok
    assert np.array_equal(res.data, data[10_000:15_000])


def test_read_latency_plausible(env):
    tb, c, data = env
    res = c.read_sync("/f", length=1 * KiB, protocol="spin")
    # request RTT + handler chain + PCIe fetch
    assert 1_000 < res.latency_ns < 20_000


def test_spin_read_close_to_raw_read(env):
    tb, c, data = env
    spin = c.read_sync("/f", length=64 * KiB, protocol="spin").latency_ns
    raw = c.read_sync("/f", length=64 * KiB, protocol="raw").latency_ns
    # on-NIC validation adds only the handler chain
    assert spin < raw * 1.5


def test_read_exceeding_extent_rejected(env):
    tb, c, _ = env
    with pytest.raises(ValueError):
        c.read("/f", addr=0, length=10 << 20, protocol="spin")


def test_forged_read_capability_nacked(env):
    tb, c, _ = env
    ctx = WriteContext(c.node, c.client_id, c.forge_ticket("/f"))
    res = tb.run_until(spin_read(ctx, c.open("/f"), 0, 1 * KiB))
    assert not res.ok and res.nacks[0]["reason"] == "auth"


def test_write_only_capability_cannot_read(env):
    tb, c, _ = env
    from repro.dfs.capability import Rights

    lay = c.open("/f")
    wo_cap = tb.metadata.authority.issue(
        c.client_id, lay.object_id, 0, 1 << 30, Rights.WRITE
    )
    ctx = WriteContext(c.node, c.client_id, wo_cap)
    res = tb.run_until(spin_read(ctx, lay, 0, 1 * KiB))
    assert not res.ok and res.nacks[0]["reason"] == "auth"


def test_read_protocol_validation(env):
    _, c, _ = env
    with pytest.raises(ValueError):
        c.read("/f", protocol="rpc")


def test_concurrent_reads(env):
    tb, c, data = env
    evs = [c.read("/f", addr=i * 8 * KiB, length=8 * KiB, protocol="spin") for i in range(8)]
    results = [tb.run_until(ev) for ev in evs]
    assert all(r.ok for r in results)
    for i, r in enumerate(results):
        assert np.array_equal(r.data, data[i * 8 * KiB : (i + 1) * 8 * KiB])


def test_read_from_secondary_replica():
    from repro import ReplicationSpec

    tb = build_testbed(n_storage=6)
    install_spin_targets(tb)
    c = DfsClient(tb, principal="r")
    lay = c.create("/rep", size=64 * KiB, replication=ReplicationSpec(k=3))
    data = np.random.default_rng(5).integers(0, 256, 64 * KiB, dtype=np.uint8)
    assert c.write_sync("/rep", data, protocol="spin").ok
    for r in range(3):
        res = c.read_sync("/rep", length=64 * KiB, protocol="spin", replica=r)
        assert res.ok and np.array_equal(res.data, data), f"replica {r}"


def test_read_failover_after_primary_death():
    from repro import ReplicationSpec

    tb = build_testbed(n_storage=6)
    install_spin_targets(tb)
    c = DfsClient(tb, principal="r")
    lay = c.create("/rep", size=32 * KiB, replication=ReplicationSpec(k=2))
    data = np.random.default_rng(6).integers(0, 256, 32 * KiB, dtype=np.uint8)
    assert c.write_sync("/rep", data, protocol="spin").ok
    tb.node(lay.primary.node).fail()
    # the primary is dead: reading replica 0 times out ...
    ev = c.read("/rep", length=32 * KiB, protocol="spin", replica=0)
    with pytest.raises(Exception):
        tb.run_until(ev, timeout_ns=tb.sim.now + 1_000_000)
    # ... but the secondary serves the same bytes
    res = c.read_sync("/rep", length=32 * KiB, protocol="spin", replica=1)
    assert res.ok and np.array_equal(res.data, data)
