"""Regression guards for the simulation-kernel fast path.

The packet pipeline was rewritten to dispatch a bounded number of heap
events per packet (fused Port serialization/delivery, fused PCIe DMA
stages, callback-based NIC hops).  These tests pin the *event counts*,
which are deterministic, so a change that quietly re-inflates the
per-packet cost fails here rather than only showing up as a slow CI.
"""

import numpy as np

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.protocols import install_spin_targets
from repro.simnet import Simulator


def _spin_write_64k():
    tb = build_testbed(n_storage=2)
    install_spin_targets(tb)
    c = DfsClient(tb)
    c.create("/f", size=64 * 1024)
    out = c.write_sync("/f", np.zeros(64 * 1024, np.uint8), protocol="spin")
    assert out.ok
    return tb


def test_events_per_packet_budget():
    """With packet-train coalescing a 64 KiB sPIN write costs 56 events
    for 34 switched packets (~1.65 events/packet).  Allow modest
    headroom; the pre-coalescing pipeline sat at ~18.4 and must not
    return."""
    tb = _spin_write_64k()
    packets = tb.net.switch.rx_packets
    events = tb.sim.events_dispatched
    assert packets == 34, f"packet count changed: {packets}"
    assert events / packets <= 2.5, (
        f"packet pipeline regressed: {events} events / {packets} packets "
        f"= {events / packets:.1f} events/packet (budget 2.5)"
    )


def test_timeout_costs_one_event():
    """The kernel core loop: N timeouts dispatch exactly N+2 events
    (process start + N timeouts + process completion)."""
    sim = Simulator()

    def ping():
        for _ in range(100):
            yield sim.timeout(1.0)

    sim.process(ping())
    sim.run()
    assert sim.events_dispatched == 102
    assert sim.now == 100.0


def test_identical_writes_identical_event_counts():
    """The fast path must stay deterministic: two fresh testbeds running
    the same write dispatch exactly the same number of events."""
    a, b = _spin_write_64k(), _spin_write_64k()
    assert a.sim.events_dispatched == b.sim.events_dispatched
    assert a.sim.now == b.sim.now
