"""Client retry semantics for transient NIC denials (§III-B2, §III-C)."""

import numpy as np
import pytest

from repro import DfsClient, build_testbed
from repro.params import SimParams
from repro.protocols import install_spin_targets

KiB = 1024


def test_retry_succeeds_after_overload_drains():
    """A tiny ingress queue overloads under a burst; retries succeed
    once the accelerator drains."""
    params = SimParams().with_pspin(ingress_queue_packets=8)
    tb = build_testbed(n_storage=2, params=params)
    install_spin_targets(tb)
    c = DfsClient(tb)
    c.create("/f", size=2 << 20)
    data = np.zeros(256 * KiB, np.uint8)
    # saturate: issue a burst of background writes without waiting
    bg = [c.write("/f", data, protocol="spin") for _ in range(6)]
    out = c.write_with_retry("/f", data, protocol="spin", max_retries=12)
    assert out.ok
    assert out.details["attempts"] >= 1
    for ev in bg:
        res = tb.run_until(ev)  # background writes settle (ok or denied)


def test_retry_gives_up_after_max_attempts():
    params = SimParams().with_pspin(ingress_queue_packets=2)
    tb = build_testbed(n_storage=2, params=params)
    install_spin_targets(tb)
    c = DfsClient(tb)
    c.create("/f", size=2 << 20)
    data = np.zeros(512 * KiB, np.uint8)
    # permanent pressure: keep re-issuing background floods
    for _ in range(10):
        c.write("/f", data, protocol="spin")
    out = c.write_with_retry("/f", np.zeros(64 * KiB, np.uint8),
                             max_retries=1, backoff_ns=10.0)
    # either it squeezed through or it gave up with a retryable nack
    if not out.ok:
        assert out.details["attempts"] == 2
        assert out.nacks[0]["reason"] in DfsClient.RETRYABLE_NACKS
    tb.run(until=tb.sim.now + 50_000_000)


def test_auth_rejection_not_retried():
    tb = build_testbed(n_storage=2)
    install_spin_targets(tb)
    c = DfsClient(tb)
    c.create("/f", size=64 * KiB)
    out = c.write_with_retry("/f", np.zeros(1 * KiB, np.uint8),
                             capability=c.forge_ticket("/f"))
    assert not out.ok
    assert out.details["attempts"] == 1  # no retry on auth failure
    assert out.nacks[0]["reason"] == "auth"


def test_retry_noop_on_success():
    tb = build_testbed(n_storage=2)
    install_spin_targets(tb)
    c = DfsClient(tb)
    c.create("/f", size=64 * KiB)
    out = c.write_with_retry("/f", np.zeros(4 * KiB, np.uint8))
    assert out.ok and out.details["attempts"] == 1
