"""Unit tests for Resource / Store / Container."""

import pytest

from repro.simnet import Container, Resource, SimulationError, Simulator, Store


# ---------------------------------------------------------------- Resource
def test_resource_serializes_access():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def worker(name, hold):
        req = res.request()
        yield req
        log.append((sim.now, name, "in"))
        yield sim.timeout(hold)
        res.release(req)
        log.append((sim.now, name, "out"))

    sim.process(worker("a", 5))
    sim.process(worker("b", 3))
    sim.run()
    assert log == [
        (0.0, "a", "in"),
        (5.0, "a", "out"),
        (5.0, "b", "in"),
        (8.0, "b", "out"),
    ]


def test_resource_capacity_parallelism():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def worker(name):
        req = res.request()
        yield req
        yield sim.timeout(10)
        res.release(req)
        done.append((sim.now, name))

    for n in ["a", "b", "c"]:
        sim.process(worker(n))
    sim.run()
    assert done == [(10.0, "a"), (10.0, "b"), (20.0, "c")]


def test_resource_fifo_grant_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(name, start):
        yield sim.timeout(start)
        req = res.request()
        yield req
        order.append(name)
        yield sim.timeout(1)
        res.release(req)

    for i, n in enumerate(["a", "b", "c", "d"]):
        sim.process(worker(n, i * 0.1))
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_resource_release_unheld_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req = res.request()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_resource_utilisation():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        req = res.request()
        yield req
        yield sim.timeout(5)
        res.release(req)
        yield sim.timeout(5)

    sim.process(worker())
    sim.run()
    assert res.utilisation() == pytest.approx(0.5)


def test_resource_bad_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


# ---------------------------------------------------------------- Store
def test_store_fifo():
    sim = Simulator()
    st = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield st.put(i)
            yield sim.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield st.get()
            got.append((sim.now, item))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert [v for _, v in got] == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    st = Store(sim)
    got = []

    def consumer():
        item = yield st.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(7)
        yield st.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(7.0, "x")]


def test_store_capacity_blocks_put():
    sim = Simulator()
    st = Store(sim, capacity=1)
    log = []

    def producer():
        yield st.put("a")
        log.append(("a", sim.now))
        yield st.put("b")  # blocks until consumer takes "a"
        log.append(("b", sim.now))

    def consumer():
        yield sim.timeout(5)
        item = yield st.get()
        log.append(("got", item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("a", 0.0) in log
    assert ("got", "a", 5.0) in log
    assert ("b", 5.0) in log


def test_store_try_put_respects_capacity():
    sim = Simulator()
    st = Store(sim, capacity=2)
    assert st.try_put(1)
    assert st.try_put(2)
    assert not st.try_put(3)
    assert len(st) == 2
    assert st.peak == 2


# ---------------------------------------------------------------- Container
def test_container_get_put():
    sim = Simulator()
    c = Container(sim, capacity=100, init=50)
    got = []

    def taker():
        yield c.get(60)  # must wait for a put
        got.append(sim.now)

    def giver():
        yield sim.timeout(3)
        c.put(20)

    sim.process(taker())
    sim.process(giver())
    sim.run()
    assert got == [3.0]
    assert c.level == pytest.approx(10)


def test_container_fifo_blocking():
    """A large blocked request must not be starved by later small ones."""
    sim = Simulator()
    c = Container(sim, capacity=100, init=10)
    order = []

    def taker(name, amount, start):
        yield sim.timeout(start)
        yield c.get(amount)
        order.append(name)

    sim.process(taker("big", 50, 0))
    sim.process(taker("small", 5, 1))

    def giver():
        yield sim.timeout(2)
        c.put(90)

    sim.process(giver())
    sim.run()
    assert order == ["big", "small"]


def test_container_try_get():
    sim = Simulator()
    c = Container(sim, capacity=10, init=10)
    assert c.try_get(4)
    assert c.try_get(6)
    assert not c.try_get(1)
    c.put(1)
    assert c.try_get(1)
    assert c.min_level == 0


def test_container_overflow_raises():
    # over-returning credits is an accounting bug in the caller; it must
    # surface, not be silently clamped at capacity
    sim = Simulator()
    c = Container(sim, capacity=10, init=5)
    with pytest.raises(SimulationError):
        c.put(100)
    assert c.level == 5
    c.put(5)
    assert c.level == 10


def test_container_get_more_than_capacity_rejected():
    sim = Simulator()
    c = Container(sim, capacity=10)
    with pytest.raises(SimulationError):
        c.get(11)
