"""Tracer / Timeline / summarize tests."""

import pytest

from repro.simnet.trace import Timeline, Tracer, summarize


def test_timeline_accumulates():
    tl = Timeline("x")
    tl.add(1.0, "a")
    tl.add(2.0, "b")
    assert len(tl) == 2
    assert list(tl) == [(1.0, "a"), (2.0, "b")]


def test_tracer_emit_and_get():
    t = Tracer()
    t.emit("lat", 1.0, 100)
    t.emit("lat", 2.0, 200)
    t.emit("other", 5.0)
    assert t.values("lat") == [100, 200]
    assert len(t.get("other")) == 1
    assert len(t.get("missing")) == 0


def test_tracer_get_registers_timeline():
    # Regression: get() used to return a fresh unregistered Timeline for
    # unknown streams, so samples added through it were silently lost.
    t = Tracer()
    tl = t.get("new-stream")
    tl.add(1.0, 42)
    assert t.values("new-stream") == [42]
    assert t.get("new-stream") is tl


def test_tracer_peek_does_not_register():
    t = Tracer()
    tl = t.peek("ghost")
    assert len(tl) == 0
    assert "ghost" not in t.timelines
    tl.add(1.0, 1)  # mutating the ephemeral timeline leaves the tracer alone
    assert t.values("ghost") == []


def test_tracer_counters():
    t = Tracer()
    t.count("drops")
    t.count("drops", 4)
    assert t.counters["drops"] == 5


def test_tracer_disabled_is_noop():
    t = Tracer(enabled=False)
    t.emit("lat", 1.0, 100)
    t.count("drops")
    assert t.values("lat") == []
    assert t.counters == {}


def test_summarize_empty():
    # Zero samples produce no statistics: a 0.0 "latency" from an empty
    # population reads as an excellent result instead of a missing one.
    s = summarize([])
    assert s["n"] == 0
    assert s["mean"] is None and s["p90"] is None
    assert s["p999"] is None and s["std"] is None


def test_summarize_stats():
    # Linear-interpolation percentiles (numpy default method), not
    # nearest-rank: p99 of 5 samples interpolates toward the max rather
    # than collapsing onto it.
    s = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
    assert s["n"] == 5
    assert s["min"] == 1.0 and s["max"] == 100.0
    assert s["mean"] == pytest.approx(22.0)
    assert s["median"] == 3.0
    assert s["p50"] == s["median"]
    assert s["p90"] == pytest.approx(61.6)
    assert s["p99"] == pytest.approx(96.16)
    assert s["p999"] == pytest.approx(99.616)
    assert s["std"] == pytest.approx(1522.0**0.5)  # population std


def test_summarize_matches_numpy():
    np = pytest.importorskip("numpy")
    samples = [float(x) for x in (5, 1, 9, 2, 7, 3, 8, 4, 6, 100)]
    s = summarize(samples)
    for key, q in (("p50", 50), ("p90", 90), ("p99", 99), ("p999", 99.9)):
        assert s[key] == pytest.approx(float(np.percentile(samples, q)))
    assert s["std"] == pytest.approx(float(np.std(samples)))


def test_summarize_single():
    s = summarize([7.0])
    assert s["min"] == s["max"] == s["median"] == s["p99"] == 7.0
    assert s["std"] == 0.0
    # a tail percentile needs a tail: below 4 samples p999 is just the
    # max wearing a misleading label
    assert s["p999"] is None


def test_summarize_small_n_has_no_p999():
    assert summarize([1.0, 2.0, 3.0])["p999"] is None
    assert summarize([1.0, 2.0, 3.0, 4.0])["p999"] is not None
