"""Tracer / Timeline / summarize tests."""

import pytest

from repro.simnet.trace import Timeline, Tracer, summarize


def test_timeline_accumulates():
    tl = Timeline("x")
    tl.add(1.0, "a")
    tl.add(2.0, "b")
    assert len(tl) == 2
    assert list(tl) == [(1.0, "a"), (2.0, "b")]


def test_tracer_emit_and_get():
    t = Tracer()
    t.emit("lat", 1.0, 100)
    t.emit("lat", 2.0, 200)
    t.emit("other", 5.0)
    assert t.values("lat") == [100, 200]
    assert len(t.get("other")) == 1
    assert len(t.get("missing")) == 0


def test_tracer_counters():
    t = Tracer()
    t.count("drops")
    t.count("drops", 4)
    assert t.counters["drops"] == 5


def test_tracer_disabled_is_noop():
    t = Tracer(enabled=False)
    t.emit("lat", 1.0, 100)
    t.count("drops")
    assert t.values("lat") == []
    assert t.counters == {}


def test_summarize_empty():
    s = summarize([])
    assert s["n"] == 0 and s["mean"] == 0.0


def test_summarize_stats():
    s = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
    assert s["n"] == 5
    assert s["min"] == 1.0 and s["max"] == 100.0
    assert s["mean"] == pytest.approx(22.0)
    assert s["median"] == 3.0
    assert s["p99"] == 100.0


def test_summarize_single():
    s = summarize([7.0])
    assert s["min"] == s["max"] == s["median"] == s["p99"] == 7.0
