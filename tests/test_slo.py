"""SLO suite: scenario runs, budget evaluation, snapshot regression."""

import json

import pytest

from repro.slo import (
    QUICK_NAMES,
    SCENARIOS,
    SUM_TOLERANCE_NS,
    SloSpec,
    compare_snapshots,
    evaluate,
    main,
    run_scenario,
    snapshot,
)

SC = {sc.name: sc for sc in SCENARIOS}


# ------------------------------------------------------------- evaluation
def test_evaluate_pass_and_fail():
    spec = SloSpec(budgets={"end_to_end.p99": 100.0, "wire.p50": 10.0})
    phases = {"end_to_end": {"p99": 80.0}, "wire": {"p50": 50.0}}
    rep = evaluate(spec, phases, scenario="s", n_ops=1, max_sum_error_ns=0.0)
    verdicts = {key: ok for key, _, _, ok in rep.checks}
    assert verdicts == {"end_to_end.p99": True, "wire.p50": False}
    assert not rep.slo_ok


def test_evaluate_missing_stat_cannot_violate():
    # n too small for a p999: the stat is None and the budget passes
    spec = SloSpec(budgets={"end_to_end.p999": 1.0})
    rep = evaluate(spec, {"end_to_end": {"p999": None}}, "s", 1, 0.0)
    assert rep.slo_ok


def test_anatomy_ok_reflects_sum_tolerance():
    rep = evaluate(SloSpec(), {}, "s", 1, max_sum_error_ns=SUM_TOLERANCE_NS * 2)
    assert not rep.anatomy_ok
    rep = evaluate(SloSpec(), {}, "s", 1, max_sum_error_ns=0.0)
    assert rep.anatomy_ok


# -------------------------------------------------------------- scenarios
def test_scenario_names_unique_and_quick_subset():
    names = [sc.name for sc in SCENARIOS]
    assert len(names) == len(set(names))
    assert set(QUICK_NAMES) <= set(names)


def test_clean_scenario_decomposes_exactly():
    rep = run_scenario(SC["spin_r3_64k"])
    assert rep.anatomy_ok and rep.slo_ok
    assert rep.n_ops >= SC["spin_r3_64k"].repeats
    assert rep.phases["hpu"]["p50"] > 0.0
    assert rep.phases["retransmit"]["max"] == 0.0  # clean run


def test_lossy_scenario_attributes_retransmit_phase():
    rep = run_scenario(SC["spin_r3_64k_lossy"])
    assert rep.anatomy_ok
    # seeded loss must surface as retransmit-phase time somewhere
    assert rep.phases["retransmit"]["max"] > 0.0


def test_load_scenario_reports_phase_latency():
    rep = run_scenario(SC["load_spin_8k"])
    assert rep.anatomy_ok and rep.slo_ok
    assert rep.n_ops > 100  # a real population, not a single op
    assert rep.phases["end_to_end"]["p999"] is not None


def test_scenarios_are_deterministic():
    a = run_scenario(SC["raw_64k"])
    b = run_scenario(SC["raw_64k"])
    assert a.phases == b.phases


# -------------------------------------------------------------- snapshots
def _snap(p99_e2e=100.0, p99_hpu=50.0):
    return {
        "scenarios": {
            "s1": {
                "n_ops": 3,
                "slo_ok": True,
                "max_sum_error_ns": 0.0,
                "phases": {
                    "end_to_end": {"p50": 80.0, "p99": p99_e2e, "p999": None},
                    "hpu": {"p50": 40.0, "p99": p99_hpu, "p999": None},
                },
            }
        }
    }


def test_compare_identical_passes():
    assert compare_snapshots(_snap(), _snap()) == []


def test_compare_flags_phase_regression_beyond_band():
    base, got = _snap(), _snap(p99_hpu=50.0 * 1.2 + 300.0)
    fails = compare_snapshots(got, base, rtol=0.10, atol_ns=200.0)
    assert len(fails) == 1 and "hpu.p99" in fails[0]


def test_compare_tolerates_noise_band():
    got = _snap(p99_e2e=100.0 * 1.05, p99_hpu=50.0 + 150.0)
    assert compare_snapshots(got, _snap(), rtol=0.10, atol_ns=200.0) == []


def test_compare_improvement_is_not_a_regression():
    assert compare_snapshots(_snap(p99_e2e=10.0), _snap()) == []


def test_compare_flags_missing_scenario_and_blown_budget():
    base = _snap()
    assert compare_snapshots({"scenarios": {}}, base)
    got = _snap()
    got["scenarios"]["s1"]["slo_ok"] = False
    assert any("budget" in f for f in compare_snapshots(got, base))


def test_compare_skips_none_stats():
    base, got = _snap(), _snap()
    base["scenarios"]["s1"]["phases"]["hpu"]["p99"] = None
    assert compare_snapshots(got, base) == []


# -------------------------------------------------------------------- CLI
def test_cli_check_round_trip(tmp_path):
    out = tmp_path / "slo.json"
    assert main(["--quick", "--out", str(out)]) == 0
    assert main(["--quick", "--check", str(out)]) == 0


def test_cli_check_fails_on_injected_regression(tmp_path):
    out = tmp_path / "slo.json"
    assert main(["--quick", "--out", str(out)]) == 0
    base = json.loads(out.read_text())
    # shrink a baseline stat: the fresh run now reads as a regression
    ph = base["scenarios"]["spin_r3_64k"]["phases"]["hpu"]
    ph["p99"] = ph["p99"] * 0.5
    out.write_text(json.dumps(base))
    assert main(["--quick", "--check", str(out)]) == 1


def test_committed_baseline_matches(request):
    # BENCH_slo.json is the committed contract: the quick subset of the
    # suite must still agree with it within the default noise band
    path = request.config.rootpath / "BENCH_slo.json"
    base = json.loads(path.read_text())
    reports = [run_scenario(SC[name]) for name in QUICK_NAMES]
    fails = compare_snapshots(snapshot(reports), base)
    # restrict to the scenarios this quick run produced
    ran = {r.scenario for r in reports}
    fails = [f for f in fails if f.split(":")[0] in ran]
    assert fails == [], fails
