"""Exporters: Perfetto trace_event round-trip, metrics dumps, CLI smoke."""

import csv
import json

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.dfs.layout import ReplicationSpec
from repro.protocols import install_spin_targets
from repro.telemetry import (
    Telemetry,
    chrome_trace,
    dump_metrics,
    metrics_snapshot,
    trace_events,
    utilization_report,
    write_chrome_trace,
)


@pytest.fixture(scope="module")
def traced_testbed():
    tb = build_testbed(n_storage=4, telemetry=True)
    install_spin_targets(tb)
    client = DfsClient(tb)
    client.create("/f", size=128 * 1024, replication=ReplicationSpec(k=3))
    out = client.write_sync("/f", np.arange(64 * 1024, dtype=np.uint8), protocol="spin")
    assert out.ok
    tb.run(until=tb.sim.now + 200_000)
    return tb


# ------------------------------------------------------------- perfetto
def test_perfetto_round_trip(traced_testbed, tmp_path):
    tb = traced_testbed
    path = tmp_path / "run.trace.json"
    write_chrome_trace(tb.telemetry, str(path))
    doc = json.loads(path.read_text())  # must be valid JSON as written
    assert doc["displayTimeUnit"] == "ns"
    events = doc["traceEvents"]
    assert events

    meta = [e for e in events if e["ph"] == "M"]
    slices = [e for e in events if e["ph"] == "X"]
    counters = [e for e in events if e["ph"] == "C"]
    assert slices and counters
    assert {e["ph"] for e in events} <= {"M", "X", "C"}

    # every pid/tid referenced by a slice has name metadata
    named_pids = {e["pid"] for e in meta if e["name"] == "process_name"}
    named_tids = {(e["pid"], e["tid"]) for e in meta if e["name"] == "thread_name"}
    for e in slices:
        assert e["pid"] in named_pids
        assert (e["pid"], e["tid"]) in named_tids

    # timestamps: non-negative, durations non-negative, monotonic order
    # over the non-metadata tail
    timed = [e for e in events if e["ph"] != "M"]
    ts = [e["ts"] for e in timed]
    assert ts == sorted(ts)
    assert all(t >= 0 for t in ts)
    assert all(e["dur"] >= 0 for e in slices)

    # slices carry the span/trace linkage in args
    root = next(e for e in slices if e["cat"] == "request")
    tid = root["args"]["trace_id"]
    linked = [e for e in slices if e["args"].get("trace_id") == tid]
    assert {e["cat"] for e in linked} >= {"request", "net", "hpu", "host"}


def test_perfetto_track_names_cover_layers(traced_testbed):
    # process names lead with the simulated component, so the viewer
    # groups tracks by pipeline stage instead of bare ids
    events = trace_events(traced_testbed.telemetry)
    names = {
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert "[request] requests" in names
    assert "[wire] net" in names
    assert "[metrics] metrics" in names
    assert any(n.startswith("[hpu] pspin:") for n in names)
    assert any(n.startswith("[host] host:") for n in names)


def test_perfetto_component_sort_order(traced_testbed):
    # sort indices put components in pipeline order: request tracks
    # first, then wire, hpu, host, metrics
    events = trace_events(traced_testbed.telemetry)
    name_by_pid = {
        e["pid"]: e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    sort_by_pid = {
        e["pid"]: e["args"]["sort_index"] for e in events
        if e["ph"] == "M" and e["name"] == "process_sort_index"
    }
    assert set(sort_by_pid) == set(name_by_pid)  # every process is ranked

    def rank(prefix):
        return {v for p, v in sort_by_pid.items() if name_by_pid[p].startswith(prefix)}

    (req,) = rank("[request]")
    (wire,) = rank("[wire]")
    assert req < wire < min(rank("[hpu]")) < min(rank("[host]")) < min(rank("[metrics]"))


def test_perfetto_phase_colors(traced_testbed):
    # phase-tagged spans carry the phase in args and a distinct cname
    events = trace_events(traced_testbed.telemetry)
    slices = [e for e in events if e["ph"] == "X"]
    phased = [e for e in slices if "phase" in e["args"]]
    assert phased
    cnames = {e["args"]["phase"]: e.get("cname") for e in phased}
    assert {"wire", "hpu", "dma"} <= set(cnames)
    assert all(c is not None for c in cnames.values())
    assert len(set(cnames.values())) == len(cnames)  # distinct per phase
    # request roots are unphased: they are the window being decomposed
    roots = [e for e in slices if e["cat"] == "request"]
    assert roots and all("phase" not in e["args"] for e in roots)


def test_perfetto_timestamps_are_microseconds():
    tel = Telemetry(enabled=True)
    tel.span("s", pid="p", tid="t", t0=1500.0, t1=4500.0)  # ns
    (ev,) = [e for e in trace_events(tel) if e["ph"] == "X"]
    assert ev["ts"] == pytest.approx(1.5)
    assert ev["dur"] == pytest.approx(3.0)


def test_open_spans_and_counterless_export():
    tel = Telemetry(enabled=True)
    tel.begin("never-closed", pid="p", tid="t", t0=0.0)
    assert [e for e in trace_events(tel) if e["ph"] == "X"] == []
    doc = chrome_trace(tel, include_counters=False)
    assert all(e["ph"] != "C" for e in doc["traceEvents"])


def test_export_does_not_mutate_telemetry(traced_testbed):
    tel = traced_testbed.telemetry
    n_spans = len(tel.spans)
    n_gauges = len(tel.metrics.gauges)
    trace_events(tel)
    chrome_trace(tel)
    assert len(tel.spans) == n_spans
    assert len(tel.metrics.gauges) == n_gauges


# ------------------------------------------------------------ metrics IO
def test_metrics_json_dump(traced_testbed, tmp_path):
    tb = traced_testbed
    path = tmp_path / "metrics.json"
    dump_metrics(tb.telemetry, str(path), fmt="json", now=tb.sim.now,
                 profile=tb.sim.profile())
    snap = json.loads(path.read_text())
    assert set(snap) >= {"counters", "gauges", "histograms", "sim_now_ns",
                         "n_spans", "simulator_profile"}
    assert snap["sim_now_ns"] == tb.sim.now
    assert any(k.endswith(".latency_ns") for k in snap["histograms"])
    assert snap["simulator_profile"]["events_dispatched"] > 0


def test_metrics_csv_dump(traced_testbed, tmp_path):
    tb = traced_testbed
    path = tmp_path / "metrics.csv"
    dump_metrics(tb.telemetry, str(path), fmt="csv", now=tb.sim.now)
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert rows
    assert set(rows[0]) == {"kind", "name", "stat", "value"}
    kinds = {r["kind"] for r in rows}
    assert kinds == {"counter", "gauge", "histogram"}


def test_dump_metrics_rejects_unknown_format(traced_testbed, tmp_path):
    with pytest.raises(ValueError):
        dump_metrics(traced_testbed.telemetry, str(tmp_path / "x"), fmt="xml")


def test_metrics_snapshot_without_profile():
    tel = Telemetry(enabled=True)
    tel.metrics.counter("c").inc()
    snap = metrics_snapshot(tel, now=5.0)
    assert "simulator_profile" not in snap
    assert snap["counters"]["c"] == 1.0


def test_utilization_report(traced_testbed):
    tb = traced_testbed
    p = tb.params.pspin
    util = utilization_report(tb.telemetry, tb.sim.now,
                              n_hpus_per_node=p.n_clusters * p.hpus_per_cluster)
    assert set(util) == {"max_hpu_busy", "max_link_busy", "max_pcie_busy"}
    assert 0 < util["max_hpu_busy"] <= 1.0
    assert 0 < util["max_link_busy"] <= 1.0
    assert 0 < util["max_pcie_busy"] <= 1.0
    # empty sink / t=0 degenerate cases stay at zero
    assert utilization_report(Telemetry(), 0.0, 8)["max_link_busy"] == 0.0


# ------------------------------------------------------------------- CLI
def test_trace_cli_smoke(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "cli.trace.json"
    metrics = tmp_path / "cli.metrics.csv"
    rc = main(["trace", "--protocol", "spin", "--replication", "3",
               "--size", "16384", "--storage", "4",
               "--out", str(out), "--metrics", str(metrics)])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "ui.perfetto.dev" in printed
    doc = json.loads(out.read_text())
    cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {"request", "net", "hpu", "host"} <= cats
    with open(metrics, newline="") as fh:
        assert list(csv.DictReader(fh))
