"""Networked control-plane tests: the full Fig. 1a workflow."""

import numpy as np
import pytest

from repro import DfsClient, ReplicationSpec, build_testbed
from repro.dfs.capability import Rights
from repro.dfs.control_rpc import ControlPlaneClient, install_control_plane
from repro.protocols import install_spin_targets
from repro.protocols.base import WriteContext
from repro.protocols.spin_write import spin_write

KiB = 1024


@pytest.fixture
def env():
    tb = build_testbed(n_storage=4)
    install_spin_targets(tb)
    mds = install_control_plane(tb)
    cp = ControlPlaneClient(tb, tb.clients[0])
    return tb, mds, cp


def test_create_and_lookup_over_network(env):
    tb, mds, cp = env
    res = tb.run_until(cp.create("/f", 64 * KiB))
    assert res.ok
    layout = res.data
    assert layout.size == 64 * KiB
    res2 = tb.run_until(cp.lookup("/f"))
    assert res2.ok and res2.data is layout
    assert res2.latency_ns > 1000  # a real network round trip


def test_lookup_missing_object_errors(env):
    tb, mds, cp = env
    res = tb.run_until(cp.lookup("/missing"))
    assert not res.ok


def test_full_fig1a_workflow(env):
    """1. query metadata -> 2. get layout+ticket -> 3. write directly."""
    tb, mds, cp = env
    client_id = tb.mgmt.authenticate("workflow-user")
    lay = tb.run_until(cp.create("/wf", 64 * KiB, replication=ReplicationSpec(k=2))).data
    cap = tb.run_until(cp.ticket("/wf", client_id)).data
    assert tb.authority.verify(cap, Rights.WRITE, 0, 100)
    ctx = WriteContext(tb.clients[0], client_id, cap)
    data = np.random.default_rng(0).integers(0, 256, 32 * KiB, dtype=np.uint8)
    out = tb.run_until(spin_write(ctx, lay, data))
    assert out.ok
    for e in lay.extents:
        assert np.array_equal(tb.node(e.node).memory.view(e.addr, data.nbytes), data)


def test_control_plane_off_critical_path(env):
    """Metadata round trips cost microseconds; the data path doesn't
    pay them once the layout is cached (the paper's methodology)."""
    tb, mds, cp = env
    client_id = tb.mgmt.authenticate("u")
    lay = tb.run_until(cp.create("/x", 64 * KiB)).data
    cap = tb.run_until(cp.ticket("/x", client_id)).data
    ctx = WriteContext(tb.clients[0], client_id, cap)
    data = np.zeros(1 * KiB, np.uint8)
    lookup_lat = tb.run_until(cp.lookup("/x")).latency_ns
    write_lat = tb.run_until(spin_write(ctx, lay, data)).latency_ns
    # both are ~RTT-scale, so skipping the lookup per write matters
    assert lookup_lat > 0.4 * write_lat


def test_failure_reporting_over_network(env):
    tb, mds, cp = env
    res = tb.run_until(cp.report_failure("sn2"))
    assert res.ok
    assert not tb.mgmt.is_healthy("sn2")


def test_duplicate_create_errors(env):
    tb, mds, cp = env
    assert tb.run_until(cp.create("/dup", 1 * KiB)).ok
    assert not tb.run_until(cp.create("/dup", 1 * KiB)).ok
