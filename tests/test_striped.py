"""Striped-layout tests: parallelism across storage nodes."""

import numpy as np
import pytest

from repro import DfsClient, ReplicationSpec, build_testbed
from repro.dfs.layout import StripeSpec, StripedLayout
from repro.protocols import install_spin_targets
from repro.protocols.base import WriteContext
from repro.protocols.striped import create_striped, read_back_striped, striped_write

KiB = 1024
MiB = 1024 * 1024


def make(n=10):
    tb = build_testbed(n_storage=n)
    install_spin_targets(tb)
    c = DfsClient(tb)
    ctx = WriteContext(c.node, c.client_id, None)
    return tb, c, ctx


def _ticket(tb, c, path):
    cap = tb.metadata.issue_ticket(c.client_id, path + "#r0", __import__("repro").Rights.RW)
    return cap


# ------------------------------------------------------------------ layout
def test_stripe_spec_validation():
    with pytest.raises(ValueError):
        StripeSpec(width=0)
    with pytest.raises(ValueError):
        StripeSpec(width=2, stripe_size=0)


def test_stripe_ranges_round_robin():
    tb, c, ctx = make()
    lay = create_striped(tb, "/s", size=10 * KiB, stripe=StripeSpec(width=3, stripe_size=4 * KiB))
    ranges = lay.stripe_ranges()
    assert [r[2] for r in ranges] == [0, 1, 2]          # region round robin
    assert [r[0] for r in ranges] == [0, 4 * KiB, 8 * KiB]
    assert ranges[-1][1] == 2 * KiB                      # tail stripe short
    assert lay.region_offset(0) == 0
    assert lay.region_offset(3) == 4 * KiB              # second stripe row


def test_regions_land_on_distinct_nodes():
    tb, c, ctx = make()
    lay = create_striped(tb, "/s", size=4 * MiB, stripe=StripeSpec(width=4))
    nodes = [r.primary.node for r in lay.regions]
    assert len(set(nodes)) == 4


def test_duplicate_path_rejected():
    tb, c, ctx = make()
    create_striped(tb, "/s", size=1 * MiB, stripe=StripeSpec(width=2))
    from repro.dfs.metadata import MetadataError

    with pytest.raises(MetadataError):
        create_striped(tb, "/s", size=1 * MiB, stripe=StripeSpec(width=2))


# ------------------------------------------------------------------ writes
def test_striped_write_roundtrip():
    tb, c, ctx = make()
    lay = create_striped(tb, "/s", size=1 * MiB, stripe=StripeSpec(width=4, stripe_size=128 * KiB))
    ctx = WriteContext(c.node, c.client_id,
                       tb.authority.issue(c.client_id, lay.object_id, 0,
                                          tb.params.storage_capacity_bytes,
                                          __import__("repro").Rights.RW))
    data = np.random.default_rng(0).integers(0, 256, 1 * MiB, dtype=np.uint8)
    out = tb.run_until(striped_write(ctx, lay, data))
    assert out.ok and out.details["stripes"] == 8
    tb.run(until=tb.sim.now + 200_000)
    assert np.array_equal(read_back_striped(tb, lay), data)


def test_striped_write_partial_file():
    tb, c, ctx = make()
    lay = create_striped(tb, "/s", size=1 * MiB, stripe=StripeSpec(width=4, stripe_size=64 * KiB))
    cap = tb.authority.issue(c.client_id, lay.object_id, 0,
                             tb.params.storage_capacity_bytes,
                             __import__("repro").Rights.RW)
    ctx = WriteContext(c.node, c.client_id, cap)
    data = np.random.default_rng(1).integers(0, 256, 200 * KiB, dtype=np.uint8)
    out = tb.run_until(striped_write(ctx, lay, data))
    assert out.ok
    tb.run(until=tb.sim.now + 200_000)
    assert np.array_equal(read_back_striped(tb, lay)[: data.nbytes], data)


def test_striped_write_oversize_rejected():
    tb, c, ctx = make()
    lay = create_striped(tb, "/s", size=64 * KiB, stripe=StripeSpec(width=2))
    with pytest.raises(ValueError):
        striped_write(ctx, lay, np.zeros(1 * MiB, np.uint8))


def test_striped_replicated_write():
    tb, c, _ = make(n=12)
    lay = create_striped(
        tb, "/s", size=512 * KiB,
        stripe=StripeSpec(width=2, stripe_size=128 * KiB),
        replication=ReplicationSpec(k=2, strategy="ring"),
    )
    cap = tb.authority.issue(c.client_id, lay.object_id, 0,
                             tb.params.storage_capacity_bytes,
                             __import__("repro").Rights.RW)
    ctx = WriteContext(c.node, c.client_id, cap)
    data = np.random.default_rng(2).integers(0, 256, 512 * KiB, dtype=np.uint8)
    out = tb.run_until(striped_write(ctx, lay, data))
    assert out.ok and out.details["k"] == 2
    tb.run(until=tb.sim.now + 300_000)
    # every stripe replicated on the region's secondary as well
    for stripe_idx, (off, length, ri) in enumerate(lay.stripe_ranges()):
        region = lay.regions[ri]
        roff = lay.region_offset(stripe_idx)
        for ext in region.extents:
            got = tb.node(ext.node).memory.view(ext.addr + roff, length)
            assert np.array_equal(got, data[off : off + length])


def test_striping_aggregates_storage_bandwidth():
    """When the storage device (not the network) is the bottleneck —
    NVMe flash at 128 Gbit/s per node vs the 400 Gbit/s wire — striping
    across width nodes aggregates device bandwidth and cuts the durable
    write latency ~proportionally."""

    def latency(width):
        tb = build_testbed(n_storage=10, storage_backend="nvme")
        install_spin_targets(tb)
        c = DfsClient(tb)
        lay = create_striped(tb, "/s", size=2 * MiB,
                             stripe=StripeSpec(width=width, stripe_size=256 * KiB))
        cap = tb.authority.issue(c.client_id, lay.object_id, 0,
                                 tb.params.storage_capacity_bytes,
                                 __import__("repro").Rights.RW)
        ctx = WriteContext(c.node, c.client_id, cap)
        out = tb.run_until(striped_write(ctx, lay, np.zeros(2 * MiB, np.uint8)))
        assert out.ok
        return out.latency_ns

    lat1, lat4 = latency(1), latency(4)
    assert lat4 < lat1 / 1.8, f"striping should aggregate flash bandwidth ({lat1} vs {lat4})"
