"""GF(2^8) field arithmetic tests, including field-axiom property tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec import (
    EXP_TABLE,
    LOG_TABLE,
    MUL_TABLE,
    MUL_TABLE_BYTES,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_scalar_vec,
    gf_mulvec_accumulate,
    gf_pow,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


def test_table_shapes_and_footprint():
    assert MUL_TABLE.shape == (256, 256) and MUL_TABLE.dtype == np.uint8
    # The paper stores this exact 64 KiB table in NIC memory (§VI-B2).
    assert MUL_TABLE_BYTES == 64 * 1024


def test_known_products():
    # 2*2=4, 2*128 wraps through the primitive polynomial 0x11d
    assert gf_mul(2, 2) == 4
    assert gf_mul(2, 128) == 0x1D
    assert gf_mul(7, 3) == 9  # carry-less product below the modulus


def test_exp_log_are_inverse_bijections():
    for a in range(1, 256):
        assert EXP_TABLE[LOG_TABLE[a]] == a
    # exp over 0..254 hits every nonzero element exactly once
    assert len(set(int(EXP_TABLE[i]) for i in range(255))) == 255


@given(elements, elements)
def test_mul_commutative(a, b):
    assert gf_mul(a, b) == gf_mul(b, a)


@given(elements, elements, elements)
def test_mul_associative(a, b, c):
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


@given(elements, elements, elements)
def test_distributive(a, b, c):
    assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))


@given(elements)
def test_identities(a):
    assert gf_mul(a, 1) == a
    assert gf_mul(a, 0) == 0
    assert gf_add(a, a) == 0  # characteristic 2
    assert gf_add(a, 0) == a


@given(nonzero)
def test_inverse(a):
    assert gf_mul(a, gf_inv(a)) == 1


@given(elements, nonzero)
def test_div_mul_roundtrip(a, b):
    assert gf_mul(gf_div(a, b), b) == a


def test_zero_inverse_rejected():
    with pytest.raises(ZeroDivisionError):
        gf_inv(0)
    with pytest.raises(ZeroDivisionError):
        gf_div(5, 0)


@given(nonzero, st.integers(min_value=-10, max_value=10))
def test_pow_matches_repeated_mul(a, n):
    expected = 1
    base = a if n >= 0 else gf_inv(a)
    for _ in range(abs(n)):
        expected = gf_mul(expected, base)
    assert gf_pow(a, n) == expected


def test_pow_zero_cases():
    assert gf_pow(0, 0) == 1
    assert gf_pow(0, 5) == 0
    with pytest.raises(ZeroDivisionError):
        gf_pow(0, -1)


# ----------------------------------------------------------- vector forms
def test_mul_scalar_vec_matches_scalar():
    rng = np.random.default_rng(1)
    vec = rng.integers(0, 256, size=1000, dtype=np.uint8)
    for s in [0, 1, 2, 0x53, 255]:
        out = gf_mul_scalar_vec(s, vec)
        assert out.dtype == np.uint8
        assert all(int(out[i]) == gf_mul(s, int(vec[i])) for i in range(0, 1000, 97))


def test_mul_scalar_vec_rejects_wrong_dtype():
    with pytest.raises(TypeError):
        gf_mul_scalar_vec(3, np.zeros(4, dtype=np.int32))


def test_mulvec_accumulate_in_place():
    rng = np.random.default_rng(2)
    acc = rng.integers(0, 256, size=512, dtype=np.uint8)
    vec = rng.integers(0, 256, size=512, dtype=np.uint8)
    expected = np.bitwise_xor(acc, gf_mul_scalar_vec(7, vec))
    view = acc  # gf_mulvec_accumulate must mutate in place
    gf_mulvec_accumulate(acc, 7, vec)
    assert np.array_equal(acc, expected)
    assert view is acc


def test_mulvec_accumulate_shape_mismatch():
    with pytest.raises(ValueError):
        gf_mulvec_accumulate(np.zeros(3, np.uint8), 1, np.zeros(4, np.uint8))
