"""Wire-format tests (§III-A, Fig. 3)."""

import pytest

from repro.core.request import (
    DFS_HEADER_FIXED_BYTES,
    DfsHeader,
    EcParams,
    ReadRequestHeader,
    ReplicaCoord,
    ReplicationParams,
    WriteRequestHeader,
    request_header_bytes,
)
from repro.dfs.capability import CAPABILITY_WIRE_BYTES, CapabilityAuthority, Rights


def _cap():
    return CapabilityAuthority(key=b"k").issue(1, 2, 0, 100, Rights.RW)


def test_dfs_header_size_with_and_without_capability():
    h = DfsHeader(1, "write", 1, capability=None)
    assert h.wire_bytes == DFS_HEADER_FIXED_BYTES
    h2 = DfsHeader(1, "write", 1, capability=_cap())
    assert h2.wire_bytes == DFS_HEADER_FIXED_BYTES + CAPABILITY_WIRE_BYTES


def test_wrh_plain_size():
    assert WriteRequestHeader(addr=0).wire_bytes == 12


def test_wrh_replication_size_scales_with_replicas():
    coords = tuple(ReplicaCoord(f"n{i}", 0) for i in range(3))
    rp = ReplicationParams("ring", 0, coords)
    wrh = WriteRequestHeader(addr=0, resiliency="replication", replication=rp)
    assert wrh.wire_bytes == 12 + 4 + 3 * ReplicaCoord.WIRE_BYTES


def test_wrh_ec_size_scales_with_parity_nodes():
    ec = EcParams(k=3, m=2, role="data", index=0, block_id=1,
                  parity_coords=(ReplicaCoord("p0", 0), ReplicaCoord("p1", 0)))
    wrh = WriteRequestHeader(addr=0, resiliency="ec", ec=ec)
    assert wrh.wire_bytes == 12 + 16 + 2 * ReplicaCoord.WIRE_BYTES


def test_wrh_validation():
    with pytest.raises(ValueError):
        WriteRequestHeader(addr=0, resiliency="replication")
    with pytest.raises(ValueError):
        WriteRequestHeader(addr=0, resiliency="ec")
    rp = ReplicationParams("ring", 0, ())
    ec = EcParams(k=2, m=1, role="data", index=0, block_id=1)
    with pytest.raises(ValueError):
        WriteRequestHeader(addr=0, resiliency="replication", replication=rp, ec=ec)


def test_rrh_size():
    assert ReadRequestHeader(addr=0, length=10).wire_bytes == 16


def test_request_header_bytes_compose():
    dfs = DfsHeader(1, "write", 1, capability=_cap())
    wrh = WriteRequestHeader(addr=0)
    rrh = ReadRequestHeader(addr=0, length=10)
    assert request_header_bytes(dfs) == dfs.wire_bytes
    assert request_header_bytes(dfs, wrh) == dfs.wire_bytes + wrh.wire_bytes
    assert request_header_bytes(dfs, rrh=rrh) == dfs.wire_bytes + rrh.wire_bytes


def test_headers_fit_one_mtu_for_reasonable_k():
    """§III-A: request headers must fit a single packet; check the WRH
    stays under a 2 KiB MTU even for wide replication/EC configs."""
    dfs = DfsHeader(1, "write", 1, capability=_cap())
    coords = tuple(ReplicaCoord(f"n{i}", i) for i in range(64))
    rp = ReplicationParams("ring", 0, coords)
    wrh = WriteRequestHeader(addr=0, resiliency="replication", replication=rp)
    assert request_header_bytes(dfs, wrh) < 2048


def test_replication_params_unknown_strategy():
    rp = ReplicationParams.__new__(ReplicationParams)
    object.__setattr__(rp, "strategy", "mesh")
    object.__setattr__(rp, "virtual_rank", 0)
    object.__setattr__(rp, "coords", ())
    with pytest.raises(ValueError):
        rp.children_of(0)


def test_ring_is_unary_tree():
    coords = tuple(ReplicaCoord(f"n{i}", 0) for i in range(1, 5))
    rp = ReplicationParams("ring", 0, coords)
    chain = [0]
    while True:
        ch = rp.children_of(chain[-1])
        if not ch:
            break
        assert len(ch) == 1
        chain.append(ch[0])
    assert chain == [0, 1, 2, 3, 4]


def test_pbt_depth_is_logarithmic():
    coords = tuple(ReplicaCoord(f"n{i}", 0) for i in range(1, 8))  # k=8
    rp = ReplicationParams("pbt", 0, coords)

    def depth(rank):
        ch = rp.children_of(rank)
        return 1 + max((depth(c) for c in ch), default=0)

    assert depth(0) == 4  # ceil(log2(8)) + 1 levels
    ring = ReplicationParams("ring", 0, coords)

    def rdepth(rank):
        ch = ring.children_of(rank)
        return 1 + (rdepth(ch[0]) if ch else 0)

    assert rdepth(0) == 8
