"""Sanitizer efficacy tests: revert-style regression fixtures.

The quick-matrix / demo / partition gates prove the committed tree is
*currently clean*; these tests prove the sanitizer would actually catch
the bug classes it was built for.  Each fixture re-introduces, in a
throwaway fixture sim (never in the real code), a bug class from this
repository's history:

* the **PR 2 leak-on-interrupt class** — an interrupt lands between a
  resource grant and its protecting ``try``/``finally``, the process
  unwinds, and the slot is never released (``leak-resource``);
* the **PR 9 teardown-hang class** — a multi-message transaction is
  opened on the NIC and never completed, and a request span is opened
  and never closed, so teardown hangs with no diagnosis
  (``leak-greq`` / ``orphan-span``);

plus direct positives/negatives for the schedule-race and clock-rewind
detectors, the zero-perturbation guarantee (a sanitized run's schedule
is byte-identical to an unsanitized one), and the cross-partition
boundary auditor's ``first_divergence``.
"""

import numpy as np
import pytest

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.protocols import install_spin_targets
from repro.simnet.engine import Interrupt, SimulationError, Simulator
from repro.simnet.resources import Container, Resource, Store
from repro.simsan import BoundaryAudit, first_divergence


def _quiesce_report(sim):
    """Run the quiesce sweep and return the full report."""
    sim.sanitizer.check_quiesce()
    return sim.sanitizer.report()


# ===================================================================
# PR 2 class: resource slot leaked when an interrupt unwinds the holder
# ===================================================================

class TestLeakOnInterrupt:
    def _run_victim(self, swallow_without_release: bool):
        sim = Simulator(sanitize=True)
        pool = Resource(sim, capacity=1, name="hpus")

        def victim():
            req = pool.request()
            yield req  # granted immediately (capacity 1, empty pool)
            if swallow_without_release:
                # the PR 2 bug class: the interrupt unwinds the process
                # and the grant is never released
                try:
                    yield sim.timeout(10_000)
                except Interrupt:
                    return
            else:
                try:
                    yield sim.timeout(10_000)
                except Interrupt:
                    pass
                finally:
                    pool.release(req)

        vp = sim.process(victim(), name="victim")

        def killer():
            yield sim.timeout(50)
            vp.interrupt("teardown")

        sim.process(killer(), name="killer")
        sim.run()
        return sim, pool

    def test_swallowed_interrupt_leaks_granted_slot(self):
        sim, pool = self._run_victim(swallow_without_release=True)
        assert len(pool.users) == 1  # the fixture really does leak
        report = _quiesce_report(sim)
        assert report.kinds() == {"leak-resource"}
        (finding,) = report.findings
        assert "still held at quiesce" in finding.message
        assert "hpus" in finding.message
        # the acquisition backtrace points at the fixture's request()
        # call site, not at the quiesce sweep that noticed the leak
        assert "test_simsan" in finding.where

    def test_release_in_finally_is_clean(self):
        sim, pool = self._run_victim(swallow_without_release=False)
        assert not pool.users
        report = _quiesce_report(sim)
        assert report.ok, report.summary()

    def test_interrupt_of_queued_waiter_is_withdrawn(self):
        """The engine-side fix for the PR 2 class: interrupting a process
        whose claim is still *queued* withdraws the claim, so the slot is
        never granted to the dead waiter and nothing leaks."""
        sim = Simulator(sanitize=True)
        pool = Resource(sim, capacity=1, name="hpus")

        def holder():
            req = pool.request()
            yield req
            try:
                yield sim.timeout(1_000)
            finally:
                pool.release(req)

        def waiter():
            req = pool.request()  # queued behind holder
            try:
                yield req
            except Interrupt:
                return

        sim.process(holder(), name="holder")
        wp = sim.process(waiter(), name="waiter")

        def killer():
            yield sim.timeout(100)
            wp.interrupt("teardown")

        sim.process(killer(), name="killer")
        sim.run()
        report = _quiesce_report(sim)
        assert report.ok, report.summary()
        assert not pool.users and not pool.queue


# ===================================================================
# PR 9 class: teardown hang — outstanding greq / orphaned request span
# ===================================================================

class TestTeardownHang:
    def test_open_transaction_never_completed_is_leak_greq(self):
        tb = build_testbed(n_storage=2, sanitize=True)
        client = tb.clients[0]
        # a completed write retires cleanly...
        data = np.zeros(4096, np.uint8)
        res = tb.run_until(client.nic.post_write("sn0", data, headers={"addr": 0}))
        assert res.ok
        # ...but a transaction opened and never fed any acks is exactly
        # the state that used to hang teardown with no diagnosis
        gid, done = client.nic.open_transaction(expected_acks=2)
        tb.run(until=tb.sim.now + 100_000)
        assert not done.triggered
        report = tb.sanitize_report()
        assert report.kinds() == {"leak-greq"}
        (finding,) = report.findings
        assert f"greq {gid}" in finding.message
        assert "still pending at quiesce" in finding.message
        assert finding.where  # posted-from backtrace is attached

    def test_orphaned_request_span_detected(self):
        sim = Simulator(sanitize=True)
        sim.telemetry.enabled = True
        sim.telemetry.begin("write/never-closed", "client", "c0", t0=0.0,
                            cat="request")
        sim.run(until=10_000_000)  # well past the 5 ms span budget
        report = _quiesce_report(sim)
        assert "orphan-span" in report.kinds()
        (finding,) = [f for f in report.findings if f.kind == "orphan-span"]
        assert "write/never-closed" in finding.message

    def test_closed_and_non_request_spans_are_clean(self):
        sim = Simulator(sanitize=True)
        sim.telemetry.enabled = True
        tel = sim.telemetry
        s = tel.begin("write/closed", "client", "c0", t0=0.0, cat="request")
        tel.end(s, 500.0)
        # an open non-request span (a phase mark) is not an orphan
        tel.begin("phase/open", "client", "c0", t0=0.0, cat="host")
        sim.run(until=10_000_000)
        report = _quiesce_report(sim)
        assert report.ok, report.summary()


# ===================================================================
# schedule-race detector: positives, exemptions, declare_coincident
# ===================================================================

def _race_fixture(declare=()):
    """Two coroutines independently schedule the same fire time from
    different earlier instants — the order-dependent tie."""
    sim = Simulator(sanitize=True)
    if declare:
        sim.sanitizer.declare_coincident(*declare)

    def a():
        yield sim.timeout(10)
        yield sim.timeout(90)  # pushed at t=10, fires at t=100

    def b():
        yield sim.timeout(20)
        yield sim.timeout(80)  # pushed at t=20, fires at t=100

    sim.process(a(), name="a")
    sim.process(b(), name="b")
    sim.run()
    return _quiesce_report(sim)


class TestScheduleRace:
    def test_independent_same_fire_time_is_flagged(self):
        report = _race_fixture()
        assert report.kinds() == {"schedule-race"}
        (finding,) = report.findings
        assert "proc:a" in finding.message and "proc:b" in finding.message
        assert "insertion order" in finding.message
        assert report.stats["ties_cross_origin"] >= 1

    def test_synchronized_burst_is_exempt(self):
        """Two processes pushed at the *same* instant toward the same
        fire time share a common cause (a broadcast / synchronized
        start) — not insertion-order luck, not flagged."""
        sim = Simulator(sanitize=True)

        def sleeper():
            yield sim.timeout(100)

        sim.process(sleeper(), name="a")
        sim.process(sleeper(), name="b")
        sim.run()
        report = _quiesce_report(sim)
        assert report.ok, report.summary()
        assert report.stats["ties_seen"] >= 1  # the tie existed; exempted

    def test_declare_coincident_suppresses(self):
        report = _race_fixture(declare=("proc:a",))
        assert report.ok, report.summary()


class TestClockRewind:
    def test_absolute_push_into_the_past(self):
        sim = Simulator(sanitize=True)

        def proc():
            yield sim.timeout(100)
            sim._call_at1(lambda _arg: None, None, 50.0)  # behind now=100
            yield sim.timeout(1)

        sim.process(proc(), name="rewinder")
        with pytest.raises(SimulationError):
            sim.run()
        report = sim.sanitizer.report()
        assert "clock-rewind" in report.kinds()
        assert any("scheduled into the past" in f.message
                   for f in report.findings)


# ===================================================================
# store / container quiesce sweeps
# ===================================================================

class TestStoreContainerSweeps:
    def test_blocked_putter_is_leak_idle_getter_is_not(self):
        sim = Simulator(sanitize=True)
        full = Store(sim, capacity=1, name="egress")
        empty = Store(sim, name="workq")

        def producer():
            yield full.put("a")  # fits
            yield full.put("b")  # blocks forever: nobody drains

        def server():
            while True:
                yield empty.get()  # idle service loop: the steady state

        sim.process(producer(), name="producer")
        sim.process(server(), name="server")
        sim.run(until=10_000)
        report = _quiesce_report(sim)
        assert report.kinds() == {"leak-store"}
        (finding,) = report.findings
        assert "putter" in finding.message and "egress" in finding.message

    def test_units_never_returned_is_leak_container(self):
        sim = Simulator(sanitize=True)
        credits = Container(sim, capacity=10, name="credits")

        def taker():
            yield credits.get(4)
            # returns without put(4): units are gone

        sim.process(taker(), name="taker")
        sim.run()
        report = _quiesce_report(sim)
        assert report.kinds() == {"leak-container"}
        (finding,) = report.findings
        assert "4" in finding.message and "never returned" in finding.message
        assert "test_simsan" in finding.where  # grant backtrace

    def test_balanced_get_put_is_clean(self):
        sim = Simulator(sanitize=True)
        credits = Container(sim, capacity=10, name="credits")

        def taker():
            yield credits.get(4)
            yield sim.timeout(10)
            credits.put(4)

        sim.process(taker(), name="taker")
        sim.run()
        report = _quiesce_report(sim)
        assert report.ok, report.summary()


# ===================================================================
# zero perturbation: sanitized == unsanitized, event for event
# ===================================================================

class TestZeroPerturbation:
    def _spin_write(self, sanitize):
        tb = build_testbed(n_storage=3, sanitize=sanitize)
        install_spin_targets(tb)
        c = DfsClient(tb)
        c.create("/f", size=64 * 1024)
        data = np.arange(64 * 1024, dtype=np.uint32).view(np.uint8)
        out = c.write_sync("/f", data, protocol="spin")
        assert out.ok
        tb.run(until=tb.sim.now + 200_000)
        return tb

    def test_sanitized_schedule_is_byte_identical(self):
        plain = self._spin_write(sanitize=False)
        sane = self._spin_write(sanitize=True)
        assert sane.sim.events_dispatched == plain.sim.events_dispatched
        assert sane.sim.now == plain.sim.now
        assert (sane.net.switch.rx_packets == plain.net.switch.rx_packets)
        # and the instrumented run observed every one of those events
        report = sane.sanitize_report()
        assert report.ok, report.summary()
        assert report.stats["pops"] == sane.sim.events_dispatched


# ===================================================================
# cross-partition boundary auditor
# ===================================================================

class _Pkt:
    def __init__(self, src, dst, op, msg_id, seq):
        self.src, self.dst, self.op = src, dst, op
        self.msg_id, self.seq = msg_id, seq


def _msgs(window, seq0=0, op="write"):
    # (fire_t, src_rank, src_seq, dst_rank, dst, pkt)
    return [
        (window * 1000.0 + i, rank, seq0 + i, 1 - rank, f"sn{rank}",
         _Pkt("cl0", f"sn{rank}", op, 7, seq0 + i))
        for i in range(3)
        for rank in (0, 1)
    ]


class TestBoundaryAudit:
    def test_identical_traffic_has_no_divergence(self):
        a, b = BoundaryAudit(), BoundaryAudit()
        for w in range(4):
            a.record(w, _msgs(w))
            b.record(w, _msgs(w))
        assert a.messages == b.messages == 24
        assert first_divergence(a, b) is None

    def test_first_divergent_window_and_rank_is_named(self):
        a, b = BoundaryAudit(), BoundaryAudit()
        for w in range(4):
            a.record(w, _msgs(w))
            # window 2: one packet differs in run b (a retransmit seq)
            b.record(w, _msgs(w, op="write" if w != 2 else "rtx"))
        div = first_divergence(a, b)
        assert div is not None
        window, rank, da, db = div
        assert (window, rank) == (2, 0)
        assert da and db and da != db

    def test_missing_traffic_shows_empty_digest(self):
        a, b = BoundaryAudit(), BoundaryAudit()
        a.record(1, _msgs(1))
        div = first_divergence(a, b)
        assert div is not None
        window, rank, da, db = div
        assert window == 1 and da and db == ""
