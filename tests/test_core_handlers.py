"""Unit tests for the Listing-1 handler skeleton itself."""

import numpy as np
import pytest

from repro.core.context import CleanupHandler, ExecutionContext, Handler, HandlerSet
from repro.core.handlers import DROP_COST, DfsPolicy, build_dfs_context
from repro.core.state import DfsState
from repro.params import PsPinParams
from repro.pspin.memory import NicMemory
from repro.simnet import Simulator
from repro.simnet.packet import Packet


def _state(authority=None):
    return DfsState(NicMemory(Simulator(), PsPinParams()), PsPinParams(), authority=authority)


def _ctx(policy=None, state=None):
    return build_dfs_context("t", policy or DfsPolicy(), state or _state())


def test_build_dfs_context_wires_handler_set():
    ctx = _ctx()
    assert ctx.handlers.header is not None
    assert ctx.handlers.payload is not None
    assert ctx.handlers.completion is not None
    assert isinstance(ctx.handlers.cleanup, CleanupHandler)


def test_context_matching_by_op():
    ctx = _ctx()
    w = Packet(src="a", dst="b", op="write", msg_id=1, seq=0, nseq=1)
    r = Packet(src="a", dst="b", op="read", msg_id=1, seq=0, nseq=1)
    assert ctx.matches(w)
    assert not ctx.matches(r)
    ctx2 = build_dfs_context("t2", DfsPolicy(), _state(), match_ops=("write", "read"))
    assert ctx2.matches(r)


def test_payload_cost_is_drop_cost_without_entry():
    """Listing 1: packets of rejected/unknown requests are dropped with
    minimal handler work."""
    ctx = _ctx()
    from repro.core.context import Task

    task = Task(ctx=ctx, flow_id=123, cluster=0)
    pkt = Packet(src="a", dst="b", op="write", msg_id=123, seq=1, nseq=3)
    assert ctx.handlers.payload.cost(task, pkt) is DROP_COST
    assert ctx.handlers.completion.cost(task, pkt) is DROP_COST


def test_payload_cost_is_drop_cost_for_rejected_entry():
    ctx = _ctx()
    from repro.core.context import Task

    state = ctx.state
    task = Task(ctx=ctx, flow_id=5, cluster=0)
    state.alloc_request(5, 99, 0, accept=False, now_ns=0.0)
    pkt = Packet(src="a", dst="b", op="write", msg_id=5, seq=1, nseq=3)
    assert ctx.handlers.payload.cost(task, pkt) is DROP_COST


def test_handler_base_requires_cost():
    h = Handler()
    with pytest.raises(NotImplementedError):
        h.cost(None, None)
    assert h.run(None, None, None) is None or True  # default no-op


def test_default_validate_requires_dfs_header():
    p = DfsPolicy()
    state = _state()
    pkt = Packet(src="a", dst="b", op="write", msg_id=1, seq=0, nseq=1)
    assert not p.validate(state, pkt, 0.0)


def test_default_validate_trusts_without_authority():
    from repro.core.request import DfsHeader, WriteRequestHeader

    p = DfsPolicy()
    state = _state(authority=None)
    pkt = Packet(
        src="a", dst="b", op="write", msg_id=1, seq=0, nseq=1,
        headers={
            "dfs": DfsHeader(1, "write", 1, capability=None),
            "wrh": WriteRequestHeader(addr=0),
        },
    )
    assert p.validate(state, pkt, 0.0)


def test_validate_write_requires_wrh_when_untrusted():
    from repro.core.request import DfsHeader
    from repro.dfs.capability import CapabilityAuthority, Rights

    auth = CapabilityAuthority(key=b"k")
    cap = auth.issue(1, 1, 0, 1 << 20, Rights.RW)
    p = DfsPolicy()
    state = _state(authority=auth)
    pkt = Packet(
        src="a", dst="b", op="write", msg_id=1, seq=0, nseq=1,
        headers={"dfs": DfsHeader(1, "write", 1, capability=cap)},
    )
    assert not p.validate(state, pkt, 0.0)  # no WRH -> reject


def test_handler_set_default_cleanup_injected():
    hs = HandlerSet(header=Handler(), payload=Handler(), completion=Handler())
    assert isinstance(hs.cleanup, CleanupHandler)
    custom = CleanupHandler()
    hs2 = HandlerSet(header=Handler(), payload=Handler(), completion=Handler(),
                     cleanup=custom)
    assert hs2.cleanup is custom


def test_cleanup_handler_frees_and_notifies():
    ctx = _ctx()
    from repro.core.context import Task

    state = ctx.state
    state.alloc_request(7, 42, 0, accept=True, now_ns=0.0)
    task = Task(ctx=ctx, flow_id=7, cluster=0)

    class FakeApi:
        now = 123.0

    list(ctx.handlers.cleanup.run(FakeApi(), task, None) or [])
    assert state.get_request(7) is None
    assert state.requests_cleaned == 1
    events = state.drain_host_events()
    assert events and events[0]["type"] == "write_interrupted"
    assert events[0]["greq_id"] == 42
