"""repro.simlint: rule fixtures, suppressions, CLI, and the tree gate.

Every shipped rule gets at least one true-positive fixture (the hazard
is flagged) and one false-positive fixture (the idiomatic equivalent is
NOT flagged).  The tree gate at the bottom is the PR's contract: the
committed ``src/repro`` lints clean, so any new hazard fails CI with a
file:line diagnostic instead of a debugging session three PRs later.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.simlint import RULES, all_rules, lint_paths, lint_source
from repro.simlint.cli import main as lint_main

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src", "repro")


def rules_found(source, rule_ids=None):
    """Lint a dedented snippet; return the sorted list of rule ids hit."""
    res = lint_source("snippet.py", textwrap.dedent(source), rule_ids=rule_ids)
    return sorted(d.rule for d in res.findings)


def lint(source, rule_ids=None):
    return lint_source("snippet.py", textwrap.dedent(source), rule_ids=rule_ids)


# --------------------------------------------------------------- registry
class TestRegistry:
    def test_all_twelve_rules_registered(self):
        assert sorted(RULES) == [
            "SIM101", "SIM102", "SIM103", "SIM104",
            "SIM201", "SIM202", "SIM203", "SIM301", "SIM401",
            "SIM501", "SIM502", "SIM503",
        ]

    def test_every_rule_has_metadata(self):
        for rule in all_rules():
            assert rule.name, rule.id
            assert rule.rationale, rule.id
            assert rule.severity.value in ("error", "warning")

    def test_syntax_error_is_a_diagnostic_not_a_crash(self):
        res = lint_source("bad.py", "def f(:\n")
        assert [d.rule for d in res.findings] == ["SIM000"]
        assert res.findings[0].line == 1


# ------------------------------------------------------- SIM101 wall clock
class TestWallClock:
    def test_time_time_flagged(self):
        assert "SIM101" in rules_found("""
            import time
            def f():
                return time.time()
        """)

    def test_perf_counter_and_aliases_flagged(self):
        assert rules_found("""
            import time as t
            from time import perf_counter as pc
            def f():
                return t.monotonic() + pc()
        """).count("SIM101") == 2

    def test_datetime_now_flagged(self):
        assert "SIM101" in rules_found("""
            import datetime
            def f():
                return datetime.datetime.now()
        """)

    def test_sim_now_not_flagged(self):
        assert rules_found("""
            def f(sim):
                return sim.now
        """) == []

    def test_unrelated_time_method_not_flagged(self):
        # no `import time` in scope: t.time() is someone else's API
        assert rules_found("""
            def f(t):
                return t.time()
        """) == []

    def test_bare_clock_reference_flagged(self):
        # handing the function itself out smuggles the host clock
        assert "SIM101" in rules_found("""
            import time
            def f(engine):
                engine.tick_source = time.monotonic
        """)

    def test_bare_from_import_reference_flagged(self):
        assert "SIM101" in rules_found("""
            from time import monotonic
            def f(engine):
                engine.tick_source = monotonic
        """)

    def test_call_not_double_counted_as_bare_ref(self):
        assert rules_found("""
            import time
            def f():
                return time.monotonic()
        """).count("SIM101") == 1


# ------------------------------------------------------- SIM102 randomness
class TestUnseededRandom:
    def test_module_level_draw_flagged(self):
        assert "SIM102" in rules_found("""
            import random
            def f():
                return random.randint(0, 5)
        """)

    def test_from_import_flagged(self):
        assert "SIM102" in rules_found("""
            from random import shuffle
        """)

    def test_seeded_stream_not_flagged(self):
        assert rules_found("""
            import random
            def f(seed):
                return random.Random(seed).randint(0, 5)
        """) == []

    def test_numpy_default_rng_not_flagged(self):
        assert rules_found("""
            import numpy as np
            def f(seed):
                return np.random.default_rng(seed)
        """) == []

    def test_os_urandom_flagged(self):
        assert "SIM102" in rules_found("""
            import os
            def f():
                return os.urandom(16)
        """)

    def test_from_os_import_urandom_flagged(self):
        assert "SIM102" in rules_found("""
            from os import urandom
        """)

    def test_unseeded_random_ctor_flagged(self):
        assert "SIM102" in rules_found("""
            import random
            def f():
                return random.Random()
        """)

    def test_unseeded_imported_ctor_flagged(self):
        assert "SIM102" in rules_found("""
            from random import Random
            def f():
                return Random()
        """)

    def test_seeded_imported_ctor_not_flagged(self):
        assert rules_found("""
            from random import Random
            def f(seed):
                return Random(seed)
        """) == []

    def test_os_path_not_flagged(self):
        assert rules_found("""
            import os
            def f(p):
                return os.path.basename(p)
        """) == []


# -------------------------------------------------- SIM103/104 ordering
class TestOrdering:
    def test_iteration_over_set_call_flagged(self):
        assert "SIM103" in rules_found("""
            def f(xs):
                for x in set(xs):
                    print(x)
        """)

    def test_comprehension_over_local_set_flagged(self):
        assert "SIM103" in rules_found("""
            def f(xs):
                pending = {x.name for x in xs}
                return [dispatch(x) for x in pending]
        """)

    def test_sorted_set_not_flagged(self):
        assert rules_found("""
            def f(xs):
                for x in sorted(set(xs)):
                    print(x)
        """) == []

    def test_membership_test_not_flagged(self):
        assert rules_found("""
            def f(xs, y):
                seen = set(xs)
                return y in seen
        """) == []

    def test_id_keyed_dict_flagged(self):
        assert "SIM104" in rules_found("""
            def f(d, obj):
                d[id(obj)] = 1
        """)

    def test_sort_key_id_flagged(self):
        assert "SIM104" in rules_found("""
            def f(objs):
                return sorted(objs, key=id)
        """)

    def test_deterministic_key_not_flagged(self):
        assert rules_found("""
            def f(d, obj):
                d[obj.seq] = 1
                return sorted([obj], key=lambda o: o.seq)
        """) == []


# -------------------------------------------------- SIM201 yield-non-event
class TestYieldNonEvent:
    def test_literal_yield_in_sim_process_flagged(self):
        assert "SIM201" in rules_found("""
            def proc(sim):
                yield sim.timeout(1)
                yield 5
        """)

    def test_bare_yield_in_sim_process_flagged(self):
        assert "SIM201" in rules_found("""
            def proc(sim):
                yield sim.timeout(1)
                yield
        """)

    def test_data_generator_not_flagged(self):
        # plain iterator: yields rows, never a waitable — out of scope
        assert rules_found("""
            def rows():
                yield {"a": 1}
                yield {"a": 2}
        """) == []

    def test_event_variable_yield_not_flagged(self):
        assert rules_found("""
            def proc(sim):
                ev = sim.timeout(3)
                yield ev
        """) == []


# ---------------------------------------------- SIM202 swallowed interrupt
class TestSwallowedInterrupt:
    def test_pass_handler_flagged(self):
        assert "SIM202" in rules_found("""
            def proc(sim):
                while True:
                    try:
                        yield sim.timeout(1)
                    except Interrupt:
                        pass
        """)

    def test_return_handler_not_flagged(self):
        assert rules_found("""
            def proc(sim):
                try:
                    yield sim.timeout(1)
                except Interrupt:
                    return
        """) == []

    def test_cleanup_handler_not_flagged(self):
        assert rules_found("""
            def proc(sim, pool, req):
                try:
                    yield sim.timeout(1)
                except Interrupt:
                    pool.cancel(req)
                    raise
        """) == []

    def test_qualified_interrupt_name_flagged(self):
        assert "SIM202" in rules_found("""
            def proc(sim, engine):
                try:
                    yield sim.timeout(1)
                except engine.Interrupt:
                    pass
        """)


# ------------------------------------------------- SIM203 abandoned claim
class TestAbandonedClaim:
    def test_unreferenced_claim_flagged(self):
        found = rules_found("""
            def proc(sim, pool):
                req = pool.request()
                yield sim.timeout(1)
        """)
        assert "SIM203" in found

    def test_discarded_claim_flagged(self):
        assert "SIM203" in rules_found("""
            def proc(sim, pool):
                pool.request()
                yield sim.timeout(1)
        """)

    def test_yielded_claim_not_flagged(self):
        assert rules_found("""
            def proc(sim, pool):
                req = pool.request()
                yield req
                try:
                    yield sim.timeout(1)
                finally:
                    pool.release(req)
        """) == []

    def test_dict_get_not_flagged(self):
        # dict.get always takes arguments, so it can never match
        assert rules_found("""
            def proc(sim, cfg):
                delay = cfg.get("delay", 1)
                yield sim.timeout(delay)
        """) == []


# ------------------------------------------------ SIM301 leak on interrupt
class TestLeakOnInterrupt:
    CANONICAL = """
        def proc(sim, pool):
            req = pool.request()
            yield req
            try:
                yield sim.timeout(5)
            finally:
                pool.release(req)
    """

    def test_canonical_shape_not_flagged(self):
        assert rules_found(self.CANONICAL) == []

    def test_release_outside_finally_flagged(self):
        found = rules_found("""
            def proc(sim, pool):
                req = pool.request()
                yield req
                yield sim.timeout(5)
                pool.release(req)
        """)
        assert "SIM301" in found

    def test_wait_between_grant_and_try_flagged(self):
        # the _train_cont_hpu / _exec shape PR 5 fixed: the release IS in
        # a finally, but an interrupt during the gap yield still leaks
        found = rules_found("""
            def proc(sim, pool):
                req = pool.request()
                yield req
                yield sim.timeout(1)
                try:
                    yield sim.timeout(5)
                finally:
                    pool.release(req)
        """)
        assert "SIM301" in found

    def test_never_released_flagged(self):
        found = rules_found("""
            def proc(sim, pool):
                req = pool.request()
                yield req
                yield sim.timeout(5)
        """, rule_ids=["SIM301"])
        assert found == ["SIM301"]

    def test_handed_off_claim_not_flagged(self):
        # ownership transferred: the tracker releases it later
        assert rules_found("""
            def proc(sim, pool, tracker):
                req = pool.request()
                yield req
                tracker.adopt(req)
                yield sim.timeout(5)
        """, rule_ids=["SIM301"]) == []

    def test_request_method_release_form_recognised(self):
        assert rules_found("""
            def proc(sim, pool):
                req = pool.request()
                yield req
                try:
                    yield sim.timeout(5)
                finally:
                    req.release()
        """) == []

    def test_conditional_quota_shape_not_flagged(self):
        # the restructured accelerator._exec shape: nested claims, each
        # protected before the next wait
        assert rules_found("""
            def proc(sim, pool, quota):
                qreq = None
                if quota is not None:
                    qreq = quota.request()
                    yield qreq
                try:
                    req = pool.request()
                    yield req
                    try:
                        yield sim.timeout(5)
                    finally:
                        pool.release(req)
                finally:
                    if quota is not None:
                        quota.release(qreq)
        """) == []


# -------------------------------------------- SIM401 uncached metric handle
class TestUncachedMetricHandle:
    def test_lookup_in_sim_process_flagged(self):
        assert "SIM401" in rules_found("""
            def proc(sim, tel):
                yield sim.timeout(1)
                tel.metrics.counter("pkts").inc()
        """)

    def test_lookup_in_loop_flagged(self):
        assert "SIM401" in rules_found("""
            def f(m, items):
                for it in items:
                    m.counter(f"n.{it}").inc()
        """)

    def test_handlecache_builder_not_flagged(self):
        assert rules_found("""
            class Port:
                def __init__(self, name):
                    self._handles = HandleCache(
                        lambda m: (m.counter(f"link.{name}.busy_ns"),)
                    )
        """) == []

    def test_one_shot_lookup_not_flagged(self):
        assert rules_found("""
            def snapshot(m):
                return m.counter("pkts").value
        """) == []


# ------------------------------------- SIM501 unjoined child process (flow)
class TestUnjoinedChildProcess:
    def test_spawn_dropped_on_early_return_flagged(self):
        assert "SIM501" in rules_found("""
            def proc(sim):
                child = sim.process(worker(sim))
                yield sim.timeout(5)
                if sim.now > 100:
                    return
                yield child
        """)

    def test_spawn_never_referenced_flagged(self):
        assert "SIM501" in rules_found("""
            def proc(sim):
                child = sim.process(worker(sim))
                yield sim.timeout(5)
        """)

    def test_yielded_child_not_flagged(self):
        assert rules_found("""
            def proc(sim):
                child = sim.process(worker(sim))
                yield child
        """) == []

    def test_interrupt_in_finally_not_flagged(self):
        assert rules_found("""
            def proc(sim):
                child = sim.process(worker(sim))
                try:
                    yield sim.timeout(5)
                finally:
                    child.interrupt()
        """) == []

    def test_stored_handle_not_flagged(self):
        # handing the child off to the owner is a join we can't follow
        assert rules_found("""
            def proc(self, sim):
                child = sim.process(worker(sim))
                self._children.append(child)
                yield sim.timeout(5)
        """) == []

    def test_plain_generator_exempt(self):
        # no waitable yields -> a data generator, not a sim process
        assert rules_found("""
            def rows(db):
                h = db.process(1)
                yield h + 1
        """) == []


# ---------------------------------------- SIM502 set-order emission (flow)
class TestSetOrderEmission:
    def test_dict_from_set_loop_then_iterated_flagged(self):
        assert "SIM502" in rules_found("""
            def f(names, emit):
                offsets = {}
                for n in set(names):
                    offsets[n] = place(n)
                for n, off in offsets.items():
                    emit(n, off)
        """, rule_ids=["SIM502"])

    def test_dict_comprehension_over_set_flagged(self):
        assert "SIM502" in rules_found("""
            def f(names, emit):
                live = {n for n in names}
                offsets = {n: place(n) for n in live}
                for n in offsets:
                    emit(n)
        """, rule_ids=["SIM502"])

    def test_sorted_emission_not_flagged(self):
        assert rules_found("""
            def f(names, emit):
                offsets = {}
                for n in set(names):
                    offsets[n] = place(n)
                for n in sorted(offsets):
                    emit(n)
        """, rule_ids=["SIM502"]) == []

    def test_sorted_population_not_flagged(self):
        assert rules_found("""
            def f(names, emit):
                offsets = {}
                for n in sorted(set(names)):
                    offsets[n] = place(n)
                for n in offsets:
                    emit(n)
        """, rule_ids=["SIM502"]) == []

    def test_unrelated_dict_not_flagged(self):
        assert rules_found("""
            def f(rows, emit):
                d = {}
                for r in rows:
                    d[r.key] = r
                for k in d:
                    emit(k)
        """, rule_ids=["SIM502"]) == []


# ------------------------------------ SIM503 span close on all paths (flow)
class TestSpanCloseAllPaths:
    def test_early_return_skips_close_flagged(self):
        assert "SIM503" in rules_found("""
            def handle(tel, sim, req):
                s = tel.begin("req", pid="c0", tid="w", t0=sim.now)
                if req.denied:
                    return None
                tel.end(s, sim.now)
                return req
        """)

    def test_close_on_every_path_not_flagged(self):
        assert rules_found("""
            def handle(tel, sim, req):
                s = tel.begin("req", pid="c0", tid="w", t0=sim.now)
                if req.denied:
                    tel.end(s, sim.now)
                    return None
                tel.end(s, sim.now)
                return req
        """) == []

    def test_close_in_finally_not_flagged(self):
        assert rules_found("""
            def handle(tel, sim, req):
                s = tel.begin("req", pid="c0", tid="w", t0=sim.now)
                try:
                    if req.denied:
                        return None
                    return req
                finally:
                    tel.end(s, sim.now)
        """) == []

    def test_handoff_to_callback_not_flagged(self):
        # closure capture keeps the span reachable: completion closes it
        assert rules_found("""
            def handle(tel, sim, ev):
                s = tel.begin("commit", pid="h", tid="c", t0=sim.now)
                ev.add_callback(lambda _e, sp=s: tel.end(sp, sim.now))
                return ev
        """) == []

    def test_span_stored_on_request_not_flagged(self):
        assert rules_found("""
            def handle(tel, sim, req):
                s = tel.begin("req", pid="c0", tid="w", t0=sim.now)
                req.span = s
                return req
        """) == []


# ----------------------------------------------------------- suppressions
class TestSuppressions:
    HAZARD = """
        import time
        def f():
            return time.time(){comment}
    """

    def test_line_suppression_silences_the_rule(self):
        res = lint(self.HAZARD.format(comment="  # simlint: disable=SIM101"))
        assert res.findings == []
        assert [d.rule for d in res.suppressed] == ["SIM101"]
        assert res.suppressed[0].suppressed

    def test_suppressing_a_different_rule_changes_nothing(self):
        res = lint(self.HAZARD.format(comment="  # simlint: disable=SIM401"))
        assert [d.rule for d in res.findings] == ["SIM101"]

    def test_suppression_is_line_scoped(self):
        res = lint("""
            import time
            def f():
                return time.time()  # simlint: disable=SIM101
            def g():
                return time.time()
        """)
        assert [d.rule for d in res.findings] == ["SIM101"]
        assert len(res.suppressed) == 1

    def test_file_wide_suppression(self):
        res = lint("""
            # simlint: disable-file=SIM101 -- wall-clock harness module
            import time
            def f():
                return time.time()
            def g():
                return time.perf_counter()
        """)
        assert res.findings == []
        assert len(res.suppressed) == 2

    def test_disable_all(self):
        res = lint(self.HAZARD.format(comment="  # simlint: disable=all"))
        assert res.findings == []

    def test_marker_inside_string_is_not_a_suppression(self):
        res = lint("""
            import time
            def f():
                s = "# simlint: disable=SIM101"
                return time.time(), s
        """)
        assert [d.rule for d in res.findings] == ["SIM101"]


# ------------------------------------------------------------------- CLI
class TestCli:
    def test_findings_exit_1_with_file_line_diagnostics(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\ndef f():\n    return time.time()\n")
        assert lint_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:3:" in out
        assert "SIM101" in out

    def test_clean_file_exits_0(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("def f(sim):\n    return sim.now\n")
        assert lint_main([str(good)]) == 0
        assert "simlint clean" in capsys.readouterr().out

    def test_json_output_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\ndef f():\n    return random.random()\n")
        assert lint_main([str(bad), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["files_checked"] == 1
        (finding,) = doc["findings"]
        assert finding["rule"] == "SIM102"
        assert finding["line"] == 3
        assert finding["severity"] == "error"

    def test_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\ndef f():\n    return time.time()\n")
        assert lint_main([str(bad), "--rules", "SIM102"]) == 0
        capsys.readouterr()

    def test_unknown_rule_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            lint_main([str(tmp_path), "--rules", "SIM999"])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_empty_rule_set_is_a_usage_error(self, tmp_path, capsys):
        # "--rules ," used to lint with zero rules and exit 0
        for spec in (",", "", " , "):
            with pytest.raises(SystemExit) as exc:
                lint_main([str(tmp_path), "--rules", spec])
            assert exc.value.code == 2
        capsys.readouterr()

    def test_json_output_names_version_and_rule_set(self, tmp_path, capsys):
        from repro.simlint import __version__

        good = tmp_path / "good.py"
        good.write_text("def f(sim):\n    return sim.now\n")
        assert lint_main([str(good), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["simlint_version"] == __version__
        assert doc["rules"] == sorted(RULES)
        assert lint_main(
            [str(good), "--format", "json", "--rules", "SIM102,SIM101"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["rules"] == ["SIM101", "SIM102"]

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_module_entrypoint_wired(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\ndef f():\n    return time.time()\n")
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(bad)],
            capture_output=True, text=True, env=env, cwd=REPO,
        )
        assert proc.returncode == 1
        assert "SIM101" in proc.stdout


# -------------------------------------------------------------- tree gate
class TestTreeGate:
    def test_src_repro_lints_clean(self):
        res = lint_paths([SRC])
        assert res.files_checked > 90
        msgs = "\n".join(d.format() for d in res.findings)
        assert res.findings == [], f"unsuppressed findings:\n{msgs}"

    def test_suppressions_are_the_committed_whitelist(self):
        # the zero baseline is honest: every silenced finding is one of
        # the deliberate harness/miss-path sites, not a blanket mute
        res = lint_paths([SRC])
        by_rule = {}
        for d in res.suppressed:
            by_rule.setdefault(d.rule, set()).add(os.path.basename(d.path))
        assert set(by_rule) == {"SIM101", "SIM401"}
        assert by_rule["SIM101"] == {
            "engine.py", "parallel.py", "runner.py", "perfsnap.py",
            "__main__.py", "runtime.py",
        }
        assert by_rule["SIM401"] == {"accelerator.py"}

    def test_output_is_deterministic(self):
        a = lint_paths([SRC])
        b = lint_paths([SRC])
        assert [d.to_dict() for d in a.suppressed] == [
            d.to_dict() for d in b.suppressed
        ]

    def test_docs_catalogue_every_rule(self):
        doc = open(os.path.join(REPO, "docs", "simlint.md")).read()
        for rule in all_rules():
            assert rule.id in doc, f"{rule.id} missing from docs/simlint.md"
            assert rule.name in doc, f"{rule.name} missing from docs/simlint.md"
