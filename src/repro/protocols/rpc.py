"""RPC write protocol (Fig. 1b, §IV).

The client sends the write request *and the data* to the storage node in
one RPC.  The storage node buffers the data in host memory, validates
the request on a CPU core, copies the buffered data into the storage
target, and responds.  The extra buffering copy is what penalises this
protocol for large writes (Fig. 6): validation happens *after* the data
landed, so zero-copy placement is impossible.
"""

from __future__ import annotations

import numpy as np

from ..core.request import WriteRequestHeader, request_header_bytes
from ..dfs.capability import Rights
from ..dfs.cluster import Testbed
from ..dfs.layout import FileLayout
from ..dfs.nodes import StorageNode
from ..rdma.nic import fresh_greq_id
from ..simnet.engine import Event
from .base import WriteContext, as_uint8, begin_request, wrap_result

__all__ = ["install_rpc_targets", "rpc_write"]


def install_rpc_targets(testbed: Testbed) -> None:
    """Register the CPU-side write handler on every storage node."""
    for node in testbed.storage_nodes:
        node.register_rpc("write", _rpc_write_handler)


def _validate_on_cpu(node: StorageNode, headers: dict) -> bool:
    """The same capability check the sPIN header handler runs, but on a
    3 GHz host core."""
    dfs = headers.get("dfs")
    wrh = headers.get("wrh")
    if dfs is None or wrh is None or dfs.capability is None:
        return False
    return _verify(node, dfs, wrh, headers)


def _verify(node: StorageNode, dfs, wrh, headers) -> bool:
    from ..dfs.capability import CapabilityAuthority  # local to avoid cycle

    authority: CapabilityAuthority = headers.get("authority")
    if authority is None:
        return True
    return authority.verify(
        dfs.capability, Rights.WRITE, wrh.addr, headers.get("write_len", 0), 0.0
    )


def _rpc_write_handler(node: StorageNode, headers: dict, payload: np.ndarray, src: str):
    """Storage-node CPU: validate -> staging copy -> place -> respond."""
    p = node.params.host
    # request validation on the CPU
    tr = headers.get("trace")
    yield from node.cpu.run(p.rpc_validate_cycles / p.cpu_freq_ghz, trace=tr)
    if not _validate_on_cpu(node, headers):
        node.respond(src, headers["greq_id"], "auth", error=True)
        return
    # the buffered write must be copied from the staging buffer into the
    # storage target (the memcpy penalty of §IV-A)
    yield from node.cpu.run(node.cpu.memcpy_ns(int(payload.nbytes)), trace=tr)
    wrh: WriteRequestHeader = headers["wrh"]
    node.memory.write(wrh.addr, payload)
    yield from node.cpu.run(p.cpu_completion_ns, trace=tr)
    node.respond(src, headers["greq_id"], "ok")


def rpc_write(ctx: WriteContext, layout: FileLayout, data, testbed: Testbed) -> Event:
    """Client driver: one RPC carrying headers + inline data."""
    data = as_uint8(data)
    greq = fresh_greq_id()
    dfs = ctx.dfs_header(greq)
    wrh = WriteRequestHeader(addr=layout.primary.addr)
    span, tctx = begin_request(ctx, "rpc", "write", data.nbytes)
    done = ctx.client.nic.post_rpc(
        dst=layout.primary.node,
        headers={
            "rpc": "write",
            "greq_id": greq,
            "dfs": dfs,
            "wrh": wrh,
            "write_len": data.nbytes,
            "authority": testbed.authority,
            "trace": tctx,
        },
        data=data,
        header_bytes=request_header_bytes(dfs, wrh) + 8,
    )
    return wrap_result(ctx.client.sim, done, data.nbytes, "rpc", span=span)
