"""RPC+RDMA write protocol (Fig. 5 left, §IV).

The client first sends a small RPC with the write request; the storage
node CPU validates it and then issues an RDMA **read towards the client**
to pull the data directly into the storage target (zero copy).  The
price is an extra network round trip before the data moves — the exact
overhead the sPIN on-the-fly validation eliminates (Fig. 5 right).
"""

from __future__ import annotations

import numpy as np

from ..core.request import WriteRequestHeader, request_header_bytes
from ..dfs.cluster import Testbed
from ..dfs.layout import FileLayout
from ..dfs.nodes import StorageNode
from ..rdma.nic import fresh_greq_id
from ..simnet.engine import Event
from .base import WriteContext, as_uint8, begin_request, wrap_result
from .rpc import _validate_on_cpu

__all__ = ["install_rpc_rdma_targets", "rpc_rdma_write"]

#: Client-side staging region for the server-initiated RDMA read.
CLIENT_STAGING_ADDR = 0


def install_rpc_rdma_targets(testbed: Testbed) -> None:
    for node in testbed.storage_nodes:
        node.register_rpc("write_rdma", _rpc_rdma_handler)


def _rpc_rdma_handler(node: StorageNode, headers: dict, payload: np.ndarray, src: str):
    p = node.params.host
    tr = headers.get("trace")
    yield from node.cpu.run(p.rpc_validate_cycles / p.cpu_freq_ghz, trace=tr)
    if not _validate_on_cpu(node, headers):
        node.respond(src, headers["greq_id"], "auth", error=True)
        return
    # CPU posts an RDMA read towards the client to fetch the data.
    length = headers["write_len"]
    read_done = node.nic.post_read(src, headers["src_addr"], length)
    res = yield read_done
    # Data streamed into the NIC; place it in the storage target (one
    # PCIe crossing — zero extra host copies).
    yield node.pcie.dma(length, trace=tr)
    wrh: WriteRequestHeader = headers["wrh"]
    node.memory.write(wrh.addr, res.data)
    yield from node.cpu.run(p.cpu_completion_ns, trace=tr)
    node.respond(src, headers["greq_id"], "ok")


def rpc_rdma_write(ctx: WriteContext, layout: FileLayout, data, testbed: Testbed) -> Event:
    """Client driver: stage the data locally, send the request RPC."""
    data = as_uint8(data)
    # The client exposes the data in registered memory for the server's
    # one-sided read (functional staging; no simulated cost: the buffer
    # already exists application-side).
    ctx.client.memory.write(CLIENT_STAGING_ADDR, data)
    greq = fresh_greq_id()
    dfs = ctx.dfs_header(greq)
    wrh = WriteRequestHeader(addr=layout.primary.addr)
    span, tctx = begin_request(ctx, "rpc+rdma", "write", data.nbytes)
    done = ctx.client.nic.post_rpc(
        dst=layout.primary.node,
        headers={
            "rpc": "write_rdma",
            "greq_id": greq,
            "dfs": dfs,
            "wrh": wrh,
            "write_len": data.nbytes,
            "src_addr": CLIENT_STAGING_ADDR,
            "authority": testbed.authority,
            "trace": tctx,
        },
        header_bytes=request_header_bytes(dfs, wrh) + 16,
    )
    return wrap_result(ctx.client.sim, done, data.nbytes, "rpc+rdma", span=span)
