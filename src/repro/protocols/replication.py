"""Replication baselines (§V, Fig. 8).

* **CPU-Ring / CPU-PBT** — the storage-node CPUs broadcast the data
  along a ring / pipelined binary tree: every hop pays NIC→host DMA, a
  host staging copy, and CPU re-injection.  The client pipelines the
  write as a train of chunks ("we report data from pipelined executions
  with optimal chunk size", §V-B); every node acks every chunk, so the
  client completes after k × n_chunks acks.

* **RDMA-Flat** — the client replicates itself with k independent RDMA
  writes (Fig. 8): no storage CPU involvement, no request validation
  (clients are fully trusted, §V-B), but the client's injection
  bandwidth is paid k times — the linear-in-k cost of Fig. 10.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..core.request import ReplicationParams, request_header_bytes
from ..dfs.capability import Rights
from ..dfs.cluster import Testbed
from ..dfs.layout import FileLayout
from ..dfs.nodes import StorageNode
from ..simnet.engine import Event
from .base import WriteContext, as_uint8, begin_request, replication_params_for, wrap_result

__all__ = [
    "install_cpu_replication_targets",
    "cpu_replicated_write",
    "rdma_flat_write",
    "DEFAULT_CHUNK_BYTES",
]

#: Default pipelining chunk; benchmarks sweep around it for the optimum.
DEFAULT_CHUNK_BYTES = 64 * 1024


def install_cpu_replication_targets(testbed: Testbed) -> None:
    for node in testbed.storage_nodes:
        node.register_rpc("repl_write", _repl_write_handler)


def _repl_write_handler(node: StorageNode, headers: dict, payload: np.ndarray, src: str):
    """One pipelined chunk: validate, stage, store, forward, ack."""
    p = node.params.host
    rp: ReplicationParams = headers["rp"]
    greq = headers["greq_id"]
    reply_to = headers["reply_to_client"]
    # validation (per request: only the first chunk pays the full check)
    tr = headers.get("trace")
    if headers["chunk_idx"] == 0:
        yield from node.cpu.run(p.rpc_validate_cycles / p.cpu_freq_ghz, trace=tr)
        authority = headers.get("authority")
        dfs = headers.get("dfs")
        if authority is not None and (
            dfs is None
            or dfs.capability is None
            or not authority.verify(
                dfs.capability, Rights.WRITE, headers["addr"], payload.nbytes, 0.0
            )
        ):
            node.respond(reply_to, greq, "auth", error=True)
            return
    # staging copy out of the RPC buffer into the storage target
    yield from node.cpu.run(node.cpu.memcpy_ns(int(payload.nbytes)), trace=tr)
    node.memory.write(headers["addr"] + headers["chunk_off"], payload)
    # forward to children (CPU posts the sends; data must come back out
    # of host memory across PCIe)
    for child_rank in rp.children_of(rp.virtual_rank):
        coord = rp.coord_for_rank(child_rank)
        fwd_headers = dict(headers)
        fwd_headers["rp"] = replace(rp, virtual_rank=child_rank)
        fwd_headers["addr"] = coord.addr
        yield node.pcie.dma(int(payload.nbytes), trace=tr)  # NIC reads the data back
        node.nic.send_message(
            dst=coord.node,
            op="rpc",
            headers=fwd_headers,
            data=payload,
            header_bytes=64,
            post_overhead=False,  # CPU posting charged below
        )
        yield from node.cpu.run(p.rpc_dispatch_ns / 2, trace=tr)
    # one ack per (node, chunk): unique within the transaction so the
    # client can discard retransmit-induced duplicates
    node.ack(reply_to, greq, dedup=(node.name, "cpu", headers["chunk_idx"]))


def cpu_replicated_write(
    ctx: WriteContext,
    layout: FileLayout,
    data,
    testbed: Testbed,
    chunk_bytes: Optional[int] = None,
) -> Event:
    """CPU-Ring / CPU-PBT driver (strategy taken from the layout)."""
    data = as_uint8(data)
    assert layout.replication is not None
    k = layout.replication.k
    chunk_bytes = chunk_bytes or DEFAULT_CHUNK_BYTES
    chunks = [data[i : i + chunk_bytes] for i in range(0, max(data.nbytes, 1), chunk_bytes)]
    rp = replication_params_for(layout, virtual_rank=0)
    greq, done = ctx.client.nic.open_transaction(expected_acks=k * len(chunks))
    dfs = ctx.dfs_header(greq)
    name = f"cpu-{layout.replication.strategy}"
    span, tctx = begin_request(ctx, name, "write", data.nbytes)
    off = 0
    for idx, chunk in enumerate(chunks):
        ctx.client.nic.send_message(
            dst=layout.primary.node,
            op="rpc",
            headers={
                "rpc": "repl_write",
                "greq_id": greq,
                "dfs": dfs,
                "rp": rp,
                "addr": layout.primary.addr,
                "chunk_off": off,
                "chunk_idx": idx,
                "reply_to_client": ctx.client.name,
                "authority": testbed.authority,
                "trace": tctx,
            },
            data=chunk,
            header_bytes=64,
            post_overhead=(idx == 0),
        )
        off += chunk.nbytes
    return wrap_result(ctx.client.sim, done, data.nbytes, name, span=span)


def rdma_flat_write(ctx: WriteContext, layout: FileLayout, data) -> Event:
    """RDMA-Flat: k independent raw writes from the client (Fig. 8)."""
    data = as_uint8(data)
    assert layout.replication is not None
    sim = ctx.client.sim
    greq, done = ctx.client.nic.open_transaction(expected_acks=len(layout.extents))
    span, tctx = begin_request(ctx, "rdma-flat", "write", data.nbytes)
    for ext in layout.extents:
        ctx.client.nic.post_write(
            dst=ext.node,
            data=data,
            headers={"addr": ext.addr, "reply_to": ctx.client.name, "trace": tctx},
            header_bytes=8,
            greq_id=greq,
            expected_acks=0,  # the shared transaction counts the acks
        )
    return wrap_result(sim, done, data.nbytes, "rdma-flat", span=span)
