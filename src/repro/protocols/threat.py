"""Write drivers for the §IV threat-model spectrum.

``install_threat_targets(testbed, mode)`` installs a
:class:`~repro.core.policies.threat_models.ThreatModelPolicy` on every
storage node; ``threat_write`` issues the matching request:

* ``trusted``    — plain-text ticket in the request header;
* ``capability`` — the default HMAC capability (same wire format as
  :func:`~repro.protocols.spin_write.spin_write`);
* ``packet-mac`` — every packet is individually signed; the MAC rides
  in each packet's headers (+8 B wire overhead per packet) and payload
  handlers verify it before storing.
"""

from __future__ import annotations

from ..core.policies.threat_models import ThreatModelPolicy, sign_packet
from ..core.request import WriteRequestHeader, request_header_bytes
from ..dfs.cluster import Testbed
from ..dfs.layout import FileLayout
from ..rdma.nic import fresh_greq_id
from ..simnet.engine import Event
from ..simnet.packet import Message, segment_message
from .base import WriteContext, as_uint8, wrap_result

__all__ = ["install_threat_targets", "threat_write", "SHARED_SECRET"]

SHARED_SECRET = b"plain-text-ticket"


def install_threat_targets(testbed: Testbed, mode: str) -> None:
    authority = None if mode == "trusted" else testbed.authority
    for node in testbed.storage_nodes:
        node.install_pspin(
            ThreatModelPolicy(mode=mode, shared_secret=SHARED_SECRET),
            authority=authority,
        )


def threat_write(
    ctx: WriteContext,
    layout: FileLayout,
    data,
    mode: str,
    tamper_packet: int | None = None,
) -> Event:
    """Issue a write under the given threat model.

    ``tamper_packet`` (packet-mac mode): corrupt that packet's payload
    in flight to demonstrate per-packet integrity enforcement.
    """
    data = as_uint8(data)
    nic = ctx.client.nic
    sim = ctx.client.sim
    ext = layout.primary
    greq = fresh_greq_id()
    dfs = ctx.dfs_header(greq)
    wrh = WriteRequestHeader(addr=ext.addr)
    base_headers = {
        "dfs": dfs,
        "wrh": wrh,
        "write_len": data.nbytes,
        "greq_id": greq,
    }
    if mode == "trusted":
        base_headers["ticket"] = SHARED_SECRET

    if mode != "packet-mac":
        done = nic.post_write(
            dst=ext.node,
            data=data,
            headers=base_headers,
            header_bytes=request_header_bytes(dfs, wrh),
            greq_id=greq,
            expected_acks=1,
        )
        return wrap_result(sim, done, data.nbytes, f"threat-{mode}")

    # packet-mac: sign every packet individually
    _, done = nic.open_transaction(expected_acks=1, greq_id=greq)
    msg = Message(
        src=nic.name,
        dst=ext.node,
        op="write",
        data=data,
        headers=base_headers,
        header_bytes=request_header_bytes(dfs, wrh) + 8,
    )
    pkts = segment_message(msg, ctx.client.params.net.mtu)

    def sender():
        yield sim.timeout(ctx.client.params.client_post_ns)
        yield sim.timeout(ctx.client.params.nic_tx_ns)
        for i, pkt in enumerate(pkts):
            # the client signs the genuine payload ...
            mac = sign_packet(SHARED_SECRET, pkt.payload)
            if i == tamper_packet and pkt.payload is not None:
                # ... an in-network attacker then flips bits but cannot
                # recompute the MAC without the service key
                tampered = pkt.payload.copy()
                tampered[0] ^= 0xFF
                pkt.payload = tampered
            pkt.headers = {**pkt.headers, "mac": mac}
            pkt.header_bytes = max(pkt.header_bytes, 8)  # MAC on the wire
            yield nic.port.send(pkt)

    sim.process(sender(), name="threat-mac-tx")
    return wrap_result(sim, done, data.nbytes, "threat-packet-mac")
