"""Write protocols: the sPIN data path and every baseline of §IV-§VI."""

from .base import WriteContext, WriteOutcome
from .ec_protocols import inec_write, install_inec_targets
from .hyperloop import hyperloop_write, install_hyperloop_targets
from .logrep import ReplicatedLog, install_log_targets, log_append
from .raw import raw_write
from .recovery import RecoveryReport, degraded_read, rebuild_object
from .replication import (
    DEFAULT_CHUNK_BYTES,
    cpu_replicated_write,
    install_cpu_replication_targets,
    rdma_flat_write,
)
from .rpc import install_rpc_targets, rpc_write
from .rpc_rdma import install_rpc_rdma_targets, rpc_rdma_write
from .spin_write import install_spin_targets, spin_read, spin_write
from .striped import create_striped, read_back_striped, striped_write
from .threat import install_threat_targets, threat_write

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "RecoveryReport",
    "ReplicatedLog",
    "WriteContext",
    "WriteOutcome",
    "cpu_replicated_write",
    "create_striped",
    "degraded_read",
    "read_back_striped",
    "rebuild_object",
    "striped_write",
    "hyperloop_write",
    "inec_write",
    "install_cpu_replication_targets",
    "install_hyperloop_targets",
    "install_inec_targets",
    "install_log_targets",
    "install_rpc_rdma_targets",
    "install_rpc_targets",
    "install_spin_targets",
    "install_threat_targets",
    "log_append",
    "threat_write",
    "raw_write",
    "rdma_flat_write",
    "rpc_rdma_write",
    "rpc_write",
    "spin_read",
    "spin_write",
]
