"""Network-timed erasure-code recovery (§VI-B, §VII).

The paper keeps decoding off the write path: "monitoring services can
check the status of the storage nodes and start the recovery process if
some of them become unreachable".  This module implements that process
over the simulated network, end to end and timed:

1. a *recovery coordinator* (one healthy storage node's CPU) learns the
   failed nodes from the management service;
2. it reads any k surviving chunks over the network (one-sided reads);
3. it decodes the missing chunks (Gauss-Jordan over GF(2^8), charged at
   a CPU decode rate);
4. it writes the rebuilt chunks to replacement extents and updates the
   metadata service.

``degraded_read`` serves a client read while nodes are down, paying the
same read-k-chunks + decode cost inline.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..core.policies.erasure import rs_for
from ..dfs.cluster import Testbed
from ..dfs.layout import Extent, FileLayout
from ..ec.reed_solomon import DecodeError
from ..simnet.engine import Event
from ..simnet.link import gbps_to_ns_per_byte

__all__ = ["rebuild_object", "degraded_read", "RecoveryReport", "DECODE_GBPS"]

#: single-core vectorized GF decode throughput on the coordinator CPU
DECODE_GBPS = 40.0


class RecoveryReport:
    """Outcome of a rebuild."""

    def __init__(self):
        self.t_start = 0.0
        self.t_end = 0.0
        self.bytes_read = 0
        self.bytes_rebuilt = 0
        self.rebuilt_extents: list[Extent] = []

    @property
    def duration_ns(self) -> float:
        return self.t_end - self.t_start

    def rebuild_gbps(self) -> float:
        return self.bytes_rebuilt * 8.0 / self.duration_ns if self.duration_ns else 0.0


def _surviving_chunks(testbed: Testbed, layout: FileLayout, failed: set[str]):
    all_extents = list(layout.extents) + list(layout.parity_extents)
    return [(i, e) for i, e in enumerate(all_extents) if e.node not in failed]


def rebuild_object(
    testbed: Testbed,
    path: str,
    failed: Iterable[str],
    coordinator: Optional[str] = None,
) -> Event:
    """Rebuild an EC object's lost chunks onto healthy nodes.

    Returns an event whose value is a :class:`RecoveryReport`.  The
    metadata service is updated so subsequent reads/writes use the new
    placement.
    """
    failed = set(failed)
    layout = testbed.metadata.lookup(path)
    if layout.resiliency != "ec":
        raise DecodeError(f"{path!r} is not erasure coded")
    rs = rs_for(layout.ec.k, layout.ec.m)
    surviving = _surviving_chunks(testbed, layout, failed)
    if len(surviving) < rs.k:
        raise DecodeError(
            f"need {rs.k} surviving chunks, only {len(surviving)} remain"
        )
    for node in sorted(failed):
        testbed.mgmt.report_failed(node)
    coord_name = coordinator or next(
        n for n in testbed.storage
        if n not in failed and testbed.mgmt.is_healthy(n)
    )
    coord = testbed.node(coord_name)
    sim = testbed.sim

    def run():
        report = RecoveryReport()
        report.t_start = sim.now
        chunk_len = layout.chunk_length()
        # 1. read any k surviving chunks concurrently over the network
        use = surviving[: rs.k]
        reads = []
        for idx, ext in use:
            if ext.node == coord_name:
                # local chunk: no network, just the PCIe fetch
                from types import SimpleNamespace

                local = sim.event()
                data = coord.memory.read(ext.addr, ext.length)
                coord.pcie.dma(
                    ext.length,
                    on_complete=lambda ev=local, d=data: ev.succeed(
                        SimpleNamespace(data=d, ok=True)
                    ),
                )
                reads.append((idx, local))
            else:
                reads.append((idx, coord.nic.post_read(ext.node, ext.addr, ext.length)))
        available = {}
        for idx, ev in reads:
            res = yield ev
            available[idx] = np.asarray(res.data, dtype=np.uint8)
            report.bytes_read += available[idx].nbytes
        # 2. decode the lost chunks on the coordinator's CPU
        all_extents = list(layout.extents) + list(layout.parity_extents)
        missing = [i for i, e in enumerate(all_extents) if e.node in failed]
        yield from coord.cpu.run(chunk_len * rs.k * gbps_to_ns_per_byte(DECODE_GBPS))
        rebuilt = rs.repair(available, missing)
        # 3. write the rebuilt chunks onto healthy replacement nodes
        replacements = [
            n for n in testbed.storage
            if n not in failed and testbed.mgmt.is_healthy(n)
            and n not in {e.node for i, e in enumerate(all_extents) if i not in missing}
        ]
        # the coordinator is a DFS service: it writes with a service
        # capability so the replacement nodes' NICs accept the chunks
        from ..core.request import DfsHeader, WriteRequestHeader, request_header_bytes
        from ..dfs.capability import Rights
        from ..rdma.nic import fresh_greq_id

        service_cap = testbed.authority.issue(
            client_id=0,
            object_id=layout.object_id,
            addr=0,
            length=testbed.params.storage_capacity_bytes,
            rights=Rights.WRITE,
        )
        writes = []
        new_extents = dict()
        for j, idx in enumerate(missing):
            target = replacements[j % len(replacements)] if replacements else coord_name
            new_ext = testbed.metadata.allocate_extent(target, chunk_len)
            new_extents[idx] = new_ext
            report.rebuilt_extents.append(new_ext)
            report.bytes_rebuilt += chunk_len
            greq = fresh_greq_id()
            dfs = DfsHeader(
                greq_id=greq, op="write", client_id=0,
                capability=service_cap, reply_to=coord_name,
            )
            wrh = WriteRequestHeader(addr=new_ext.addr)
            writes.append(
                coord.nic.post_write(
                    target,
                    rebuilt[idx],
                    headers={"dfs": dfs, "wrh": wrh, "write_len": chunk_len},
                    header_bytes=request_header_bytes(dfs, wrh),
                    greq_id=greq,
                )
            )
        for ev in writes:
            res = yield ev
            if not res.ok:
                raise RuntimeError(f"rebuild write rejected: {res.nacks}")
        # 4. update metadata with the new placement
        data_exts = list(layout.extents)
        parity_exts = list(layout.parity_extents)
        for idx, ext in new_extents.items():
            if idx < rs.k:
                data_exts[idx] = ext
            else:
                parity_exts[idx - rs.k] = ext
        new_layout = FileLayout(
            object_id=layout.object_id,
            size=layout.size,
            extents=tuple(data_exts),
            resiliency="ec",
            ec=layout.ec,
            parity_extents=tuple(parity_exts),
        )
        testbed.metadata.update_layout(path, new_layout)
        report.t_end = sim.now
        return report

    proc = sim.process(run(), name=f"rebuild({path})")
    proc._observed = True
    return proc


def degraded_read(
    testbed: Testbed,
    path: str,
    failed: Iterable[str],
    reader: Optional[str] = None,
) -> Event:
    """Serve a read of an EC object while nodes are down: fetch k
    surviving chunks, decode inline, return the object bytes.

    Event value: (data, latency_ns)."""
    failed = set(failed)
    layout = testbed.metadata.lookup(path)
    if layout.resiliency != "ec":
        raise DecodeError(f"{path!r} is not erasure coded")
    rs = rs_for(layout.ec.k, layout.ec.m)
    surviving = _surviving_chunks(testbed, layout, failed)
    if len(surviving) < rs.k:
        raise DecodeError("object unrecoverable")
    reader_node = testbed.clients[0] if reader is None else testbed.node(reader)
    sim = testbed.sim

    def run():
        t0 = sim.now
        reads = [
            (idx, reader_node.nic.post_read(ext.node, ext.addr, ext.length))
            for idx, ext in surviving[: rs.k]
        ]
        available = {}
        for idx, ev in reads:
            res = yield ev
            available[idx] = np.asarray(res.data, dtype=np.uint8)
        # client-side decode cost
        chunk_len = layout.chunk_length()
        yield sim.timeout(chunk_len * rs.k * 8.0 / DECODE_GBPS)
        data = rs.join(rs.decode(available), length=layout.size)
        return data, sim.now - t0

    proc = sim.process(run(), name=f"degraded-read({path})")
    proc._observed = True
    return proc
