"""Replicated-log protocol driver (the §VII extension).

``install_log_targets`` creates a k-way replicated log object and
installs the :class:`~repro.core.policies.logrep.LogAppendPolicy` into
each replica's NIC, registering the log descriptor (base address +
capacity) in NIC state.  ``log_append`` then issues ordered appends:
the primary's NIC assigns the offset atomically and source-routes the
record down the replica ring.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.policies.logrep import LogAppendPolicy
from ..dfs.cluster import Testbed
from ..dfs.layout import FileLayout, ReplicationSpec
from ..simnet.engine import Event
from .base import WriteContext, as_uint8

__all__ = ["ReplicatedLog", "install_log_targets", "log_append"]

_log_ids = itertools.count(1)


@dataclass
class ReplicatedLog:
    """Client-side handle to an installed log."""

    log_id: int
    layout: FileLayout
    capacity: int

    @property
    def primary(self) -> str:
        return self.layout.primary.node

    @property
    def k(self) -> int:
        return len(self.layout.extents)


def install_log_targets(
    testbed: Testbed, path: str, capacity: int, k: int = 3
) -> ReplicatedLog:
    """Create the log object and install append policies on its replicas.

    Reuses a node's existing :class:`LogAppendPolicy` context when one is
    already installed (several logs can share the NIC state).
    """
    layout = testbed.metadata.create(
        path, capacity, replication=ReplicationSpec(k=k, strategy="ring")
    )
    log_id = next(_log_ids)
    for ext in layout.extents:
        node = testbed.node(ext.node)
        policy = None
        if node.accelerator is not None:
            for ctx in node.accelerator.contexts:
                cand = getattr(ctx.handlers.payload, "policy", None)
                if isinstance(cand, LogAppendPolicy):
                    policy = cand
                    break
        if policy is None:
            policy = LogAppendPolicy()
            if node.accelerator is not None:
                # NIC already runs a DFS context: add a second context
                # matching the log_append message class
                node.add_pspin_context(policy, match_ops=("log_append",))
            else:
                node.install_pspin(
                    policy, authority=testbed.authority, match_ops=("log_append",)
                )
        policy.register_log(log_id, ext.addr, capacity)
    return ReplicatedLog(log_id=log_id, layout=layout, capacity=capacity)


def log_append(ctx: WriteContext, log: ReplicatedLog, record) -> Event:
    """Append a record to the replicated log.

    The event's value is an :class:`~repro.rdma.nic.OpResult`; on success
    ``result.info["offset"]`` holds the NIC-assigned log offset, which is
    identical on every replica.
    """
    record = as_uint8(record)
    nic = ctx.client.nic
    ring = tuple({"node": e.node} for e in log.layout.extents[1:])
    greq, done = nic.open_transaction(expected_acks=log.k)
    dfs = ctx.dfs_header(greq)
    nic.send_message(
        dst=log.primary,
        op="log_append",
        headers={
            "dfs": dfs,
            "log_id": log.log_id,
            "write_len": record.nbytes,
            "ring": ring,
            "greq_id": greq,
        },
        data=record,
        header_bytes=96 + 16 * len(ring),
    )
    return done
