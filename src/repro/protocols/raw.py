"""Raw RDMA writes — the paper's speed-of-light reference (§IV).

No DFS policy is enforced: the client issues a single one-sided RDMA
write to the storage node; the NIC DMAs payloads straight to the target
and acks on the last packet.  Anyone holding the rkey could write
anywhere — which is exactly the gap the offloaded policies close.
"""

from __future__ import annotations

from ..dfs.layout import FileLayout
from ..simnet.engine import Event
from .base import WriteContext, as_uint8, begin_request, wrap_result

__all__ = ["raw_write"]


def raw_write(ctx: WriteContext, layout: FileLayout, data) -> Event:
    """One unvalidated RDMA write to the layout's primary extent."""
    data = as_uint8(data)
    ext = layout.primary
    if data.nbytes > ext.length:
        raise ValueError(f"write of {data.nbytes} B exceeds extent {ext.length} B")
    span, tctx = begin_request(ctx, "raw", "write", data.nbytes)
    done = ctx.client.nic.post_write(
        dst=ext.node,
        data=data,
        headers={"addr": ext.addr, "reply_to": ctx.client.name, "trace": tctx},
        header_bytes=8,
        expected_acks=1,
    )
    return wrap_result(ctx.client.sim, done, data.nbytes, "raw", span=span)
