"""Striped writes: one file, many storage nodes in parallel (Fig. 1a).

A striped file's stripes hit ``width`` different storage nodes
round-robin, so a single client write aggregates the ingest bandwidth
of the whole stripe set — the classic parallel-file-system pattern the
DFS layout abstraction exists for.  Each stripe is an independent sPIN
write (optionally ring/pbt-replicated); the client completes when every
stripe (and every replica of every stripe) acked.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from ..core.request import WriteRequestHeader, request_header_bytes
from ..dfs.cluster import Testbed
from ..dfs.layout import ReplicationSpec, StripedLayout, StripeSpec
from ..simnet.engine import Event
from .base import WriteContext, WriteOutcome, as_uint8, replication_params_for

__all__ = ["create_striped", "striped_write"]


def create_striped(
    testbed: Testbed,
    path: str,
    size: int,
    stripe: StripeSpec,
    replication: ReplicationSpec | None = None,
) -> StripedLayout:
    """Allocate one region per stripe column and register the file."""
    md = testbed.metadata
    if md.exists(path):
        from ..dfs.metadata import MetadataError

        raise MetadataError(f"object {path!r} already exists")
    n_stripes = -(-size // stripe.stripe_size)
    per_region = -(-n_stripes // stripe.width) * stripe.stripe_size
    regions = tuple(
        md.create(f"{path}#r{i}", per_region, replication=replication)
        for i in range(stripe.width)
    )
    layout = StripedLayout(
        object_id=regions[0].object_id, size=size, stripe=stripe, regions=regions
    )
    md._objects[path] = layout  # registered under the user-visible path
    return layout


def striped_write(ctx: WriteContext, layout: StripedLayout, data) -> Event:
    """Write the whole file: all stripes issued concurrently."""
    data = as_uint8(data)
    if data.nbytes > layout.size:
        raise ValueError(f"write of {data.nbytes} B exceeds file of {layout.size} B")
    sim = ctx.client.sim
    nic = ctx.client.nic
    ranges = [
        (off, length, region)
        for off, length, region in layout.stripe_ranges()
        if off < data.nbytes
    ]
    k = (
        layout.regions[0].replication.k
        if layout.regions[0].resiliency == "replication"
        else 1
    )
    greq, done = nic.open_transaction(expected_acks=len(ranges) * k)
    dfs = ctx.dfs_header(greq)
    for stripe_idx, (off, length, region_idx) in enumerate(ranges):
        region = layout.regions[region_idx]
        roff = layout.region_offset(stripe_idx)
        chunk = data[off : min(off + length, data.nbytes)]
        if region.resiliency == "replication":
            rp = replication_params_for(region)
            rp = dc_replace(
                rp,
                coords=tuple(
                    dc_replace(c, addr=c.addr + roff) for c in rp.coords
                ),
            )
            wrh = WriteRequestHeader(
                addr=region.primary.addr + roff,
                resiliency="replication",
                replication=rp,
            )
        else:
            wrh = WriteRequestHeader(addr=region.primary.addr + roff)
        nic.send_message(
            dst=region.primary.node,
            op="write",
            headers={"dfs": dfs, "wrh": wrh, "write_len": chunk.nbytes, "greq_id": greq},
            data=chunk,
            header_bytes=request_header_bytes(dfs, wrh),
            post_overhead=(stripe_idx == 0),
        )

    out = sim.event(name="striped-outcome")

    def convert(ev):
        if ev.exception is not None:
            out.fail(ev.exception)
            return
        res = ev.value
        out.succeed(
            WriteOutcome(
                ok=res.ok,
                t_start=res.t_start,
                t_end=res.t_end,
                size=data.nbytes,
                protocol=f"spin-striped-w{layout.stripe.width}",
                greq_id=res.greq_id,
                nacks=list(res.nacks),
                details={"stripes": len(ranges), "k": k},
            )
        )

    done.add_callback(convert)
    return out


def read_back_striped(testbed: Testbed, layout: StripedLayout):
    """Functional read of a striped file's bytes."""
    import numpy as np

    out = np.zeros(layout.size, dtype=np.uint8)
    for stripe_idx, (off, length, region_idx) in enumerate(layout.stripe_ranges()):
        region = layout.regions[region_idx]
        roff = layout.region_offset(stripe_idx)
        node = testbed.node(region.primary.node)
        out[off : off + length] = node.memory.view(region.primary.addr + roff, length)
    return out
