"""Erasure-coding protocols: the INEC-TriEC baseline (§VI-A, Fig. 13 left).

TriEC distributes encoding across storage nodes; INEC accelerates it
with pre-posted in-network EC primitives on conventional RDMA NICs.  The
defining property versus sPIN-TriEC is **per-chunk, host-memory-staged**
operation:

* the client writes chunk j to data node j (a plain RDMA write: the
  chunk lands in *host* memory);
* only when the whole chunk arrived does the NIC EC engine fire: it
  reads the chunk back across PCIe, encodes the m intermediate parities,
  and sends them to the parity nodes;
* a parity node stages the k intermediate chunks in host memory, reads
  them back, XORs, writes the final parity, and acks.

sPIN-TriEC (in :mod:`repro.protocols.spin_write`) does the same algebra
per *packet*, before anything crosses PCIe — that difference is the
whole Fig. 15 story.
"""

from __future__ import annotations

import numpy as np

from ..core.policies.erasure import rs_for
from ..dfs.cluster import Testbed
from ..dfs.layout import FileLayout
from ..dfs.nodes import StorageNode
from ..ec.gf256 import gf_mul_scalar_vec
from ..ec.reed_solomon import pad_to_chunks
from ..simnet.engine import Event
from ..simnet.packet import Packet
from .base import WriteContext, as_uint8, begin_request, wrap_result

__all__ = ["install_inec_targets", "inec_write"]


def install_inec_targets(testbed: Testbed) -> None:
    for node in testbed.storage_nodes:
        _InecEngine(node)


class _InecEngine:
    """Per-node INEC primitive machinery (NIC rx hook + EC engine)."""

    def __init__(self, node: StorageNode):
        self.node = node
        self._rx: dict = {}
        #: parity staging: (block, parity_idx) -> {"chunks": [..], "meta"}
        self._parity: dict = {}
        #: (block, parity_idx) -> greq of blocks already acked, so a
        #: retransmitted contribution re-acks instead of re-aggregating
        self._acked: dict = {}
        #: the vendor EC engine processes one descriptor at a time — the
        #: serialization that sinks INEC's small-block bandwidth
        from ..simnet.resources import Resource

        self.engine = Resource(node.sim, capacity=1, name=f"{node.name}.ec-engine")
        node.nic.rx_hooks.append(self.on_packet)

    def on_packet(self, pkt: Packet) -> bool:
        if pkt.op == "write" and (
            pkt.headers.get("inec") is not None or pkt.msg_id in self._rx
        ):
            self._rx_chunk(pkt)
            return True
        return False

    def _rx_chunk(self, pkt: Packet) -> None:
        if pkt.is_header:
            # a retransmitted header resets reassembly from scratch
            self._rx[pkt.msg_id] = {"meta": pkt.headers["inec"], "chunks": [], "got": 0}
        st = self._rx.get(pkt.msg_id)
        if st is None:
            return
        if pkt.payload is not None:
            st["chunks"].append(pkt.payload)
            st["got"] += pkt.payload_bytes
        if pkt.is_completion:
            self._rx.pop(pkt.msg_id)
            if st["got"] != pkt.payload_offset + pkt.payload_bytes:
                return  # lost payload packet: wait for the retransmit
            data = (
                np.concatenate(st["chunks"])
                if st["chunks"]
                else np.zeros(0, np.uint8)
            )
            meta = st["meta"]
            if meta["role"] == "data":
                self.node.sim.process(self._encode_and_forward(meta, data))
            else:
                self.node.sim.process(self._aggregate(meta, data))

    # ------------------------------------------------------- data node
    def _encode_and_forward(self, meta: dict, chunk: np.ndarray):
        node = self.node
        inec = node.params.inec
        rs = rs_for(meta["k"], meta["m"])
        # chunk lands in host memory first (per-message processing)
        yield node.pcie.dma(chunk.nbytes)
        node.memory.write(meta["addr"], chunk)
        # engine invocation: one descriptor at a time through the
        # firmware engine — fetch, read the chunk back out, encode
        req = self.engine.request()
        yield req
        try:
            yield node.sim.timeout(inec.block_overhead_ns)
            yield node.pcie.dma(chunk.nbytes)
            yield node.sim.timeout(chunk.nbytes * meta["m"] * 8.0 / inec.engine_gbps)
        finally:
            self.engine.release(req)
        for i, (pnode, paddr) in enumerate(meta["parity_coords"]):
            enc = gf_mul_scalar_vec(
                rs.parity_coefficient(i, meta["index"]), chunk
            )
            node.nic.send_message(
                dst=pnode,
                op="write",
                headers={
                    "inec": {
                        "role": "parity",
                        "k": meta["k"],
                        "m": meta["m"],
                        "index": i,
                        "block": meta["block"],
                        "addr": paddr,
                        "client": meta["client"],
                        "greq_id": meta["greq_id"],
                        # which data chunk this contribution came from —
                        # lets the parity node drop duplicate forwards
                        "src_index": meta["index"],
                    }
                },
                data=enc,
                header_bytes=48,
                post_overhead=False,
            )
        # local ack once the systematic chunk is durable
        node.nic.send_control(
            meta["client"],
            "ack",
            {
                "ack_for": meta["greq_id"],
                "node": node.name,
                "dedup": (node.name, "inecd", meta["greq_id"]),
            },
        )

    # ------------------------------------------------------ parity node
    def _aggregate(self, meta: dict, contribution: np.ndarray):
        """One INEC aggregation primitive per arriving intermediate
        chunk: stage it in host memory, then a triggered engine pass
        reads it (and the running accumulator) back over PCIe and XORs
        it in.  k sequential passes per block — versus sPIN-TriEC's
        per-packet accumulator XOR that never leaves the NIC."""
        node = self.node
        inec = node.params.inec
        key = (meta["block"], meta["index"])
        if key in self._acked:
            # block already complete and acked; the retransmit means the
            # client never saw the ack — re-ack, don't re-aggregate
            node.nic.send_control(
                meta["client"],
                "ack",
                {
                    "ack_for": self._acked[key],
                    "node": node.name,
                    "dedup": (node.name, "inecp") + key,
                },
            )
            return
        st = self._parity.get(key)
        if st is None:
            st = self._parity[key] = {
                "acc": np.zeros_like(contribution),
                "seen": set(),
                "count": 0,
            }
        src = meta.get("src_index")
        if src in st["seen"]:
            return  # duplicate forward of an already-aggregated chunk
        st["seen"].add(src)
        # stage the intermediate chunk in host memory
        yield node.pcie.dma(contribution.nbytes)
        # triggered per-chunk engine pass
        req = self.engine.request()
        yield req
        try:
            yield node.sim.timeout(inec.block_overhead_ns)
            # read the staged chunk + accumulator back, write acc out
            yield node.pcie.dma(2 * contribution.nbytes)
            yield node.sim.timeout(contribution.nbytes * 8.0 / inec.engine_gbps)
        finally:
            self.engine.release(req)
        n = contribution.nbytes
        np.bitwise_xor(st["acc"][:n], contribution, out=st["acc"][:n])
        st["count"] += 1
        if st["count"] < meta["k"]:
            return
        self._parity.pop(key)
        self._acked[key] = meta["greq_id"]
        yield node.pcie.dma(n)
        node.memory.write(meta["addr"], st["acc"][:n])
        node.nic.send_control(
            meta["client"],
            "ack",
            {
                "ack_for": meta["greq_id"],
                "node": node.name,
                "dedup": (node.name, "inecp") + key,
            },
        )


def inec_write(ctx: WriteContext, layout: FileLayout, data) -> Event:
    """Client driver: k chunk writes; completes on k + m acks."""
    data = as_uint8(data)
    assert layout.ec is not None
    k, m = layout.ec.k, layout.ec.m
    chunks = pad_to_chunks(data, k)
    nic = ctx.client.nic
    greq, done = nic.open_transaction(expected_acks=k + m)
    parity_coords = [(e.node, e.addr) for e in layout.parity_extents]
    block = layout.object_id * 1_000_003 + greq
    span, tctx = begin_request(ctx, f"inec-triec-rs({k},{m})", "write", data.nbytes)
    for j, (chunk, ext) in enumerate(zip(chunks, layout.extents)):
        nic.send_message(
            dst=ext.node,
            op="write",
            headers={
                "inec": {
                    "role": "data",
                    "k": k,
                    "m": m,
                    "index": j,
                    "block": block,
                    "addr": ext.addr,
                    "parity_coords": parity_coords,
                    "client": ctx.client.name,
                    "greq_id": greq,
                },
                "trace": tctx,
            },
            data=chunk,
            header_bytes=64,
            post_overhead=(j == 0),
        )
    return wrap_result(
        ctx.client.sim, done, data.nbytes, f"inec-triec-rs({k},{m})", span=span
    )
