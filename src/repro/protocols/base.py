"""Shared protocol-driver plumbing.

Every write protocol is an async driver: it configures nothing (server
personalities are installed separately), builds the wire messages, and
returns an :class:`~repro.simnet.engine.Event` whose value is a
:class:`WriteOutcome`.  Latency is measured the way the paper does it:
from issuing the write request to receiving the (last) write response.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.request import DfsHeader, ReplicaCoord, ReplicationParams, request_header_bytes
from ..dfs.capability import Capability
from ..dfs.layout import FileLayout
from ..dfs.nodes import ClientNode
from ..simnet.engine import Event

__all__ = [
    "WriteOutcome",
    "make_dfs_header",
    "replication_params_for",
    "WriteContext",
    "begin_request",
    "wrap_result",
]


@dataclass
class WriteOutcome:
    """Result of one logical write operation."""

    ok: bool
    t_start: float
    t_end: float
    size: int
    protocol: str
    greq_id: int = -1
    nacks: list = field(default_factory=list)
    details: dict = field(default_factory=dict)

    @property
    def latency_ns(self) -> float:
        return self.t_end - self.t_start

    def goodput_gbps(self) -> float:
        return self.size * 8.0 / self.latency_ns if self.latency_ns > 0 else 0.0


@dataclass
class WriteContext:
    """Client identity + ticket bundle passed to protocol drivers."""

    client: ClientNode
    client_id: int
    capability: Optional[Capability]

    def dfs_header(self, greq_id: int, op: str = "write") -> DfsHeader:
        return make_dfs_header(self, greq_id, op)


def make_dfs_header(ctx: WriteContext, greq_id: int, op: str = "write") -> DfsHeader:
    return DfsHeader(
        greq_id=greq_id,
        op=op,  # type: ignore[arg-type]
        client_id=ctx.client_id,
        capability=ctx.capability,
        reply_to=ctx.client.name,
    )


def replication_params_for(layout: FileLayout, virtual_rank: int = 0) -> ReplicationParams:
    """Build the source-routed broadcast description from a layout."""
    assert layout.replication is not None
    coords = tuple(ReplicaCoord(e.node, e.addr) for e in layout.extents[1:])
    return ReplicationParams(
        strategy=layout.replication.strategy,
        virtual_rank=virtual_rank,
        coords=coords,
    )


def as_uint8(data) -> np.ndarray:
    """Coerce bytes-like / array input to a flat uint8 array (zero-copy
    for uint8 arrays and bytes objects)."""
    if isinstance(data, np.ndarray):
        arr = data if data.dtype == np.uint8 else data.astype(np.uint8)
        return arr.ravel()
    if isinstance(data, (bytes, bytearray, memoryview)):
        return np.frombuffer(bytes(data), dtype=np.uint8)
    return np.asarray(data, dtype=np.uint8).ravel()


def begin_request(ctx: WriteContext, protocol: str, op: str, size: int):
    """Open a root telemetry span for one logical DFS request.

    Returns ``(span, trace_context)`` — or ``(None, None)`` when telemetry
    is disabled, so drivers can pass the results straight through to
    message headers and :func:`wrap_result` unconditionally.
    """
    sim = ctx.client.sim
    tel = sim.telemetry
    if not tel.enabled:
        return None, None
    return tel.root(
        f"{protocol} {op} {size}B",
        pid="requests",
        tid=ctx.client.name,
        t0=sim.now,
        args={"protocol": protocol, "op": op, "bytes": size},
    )


def wrap_result(
    sim, done: Event, size: int, protocol: str, span=None
) -> Event:
    """Adapt a NIC completion event (OpResult) into a WriteOutcome event.

    When telemetry is enabled this is also the single choke point for
    per-protocol request metrics: the root ``span`` (from
    :func:`begin_request`) is closed at the outcome's ``t_end`` and the
    request latency lands in the ``protocol.<name>.latency_ns``
    histogram.
    """
    out = sim.event(name=f"outcome({protocol})")

    def convert(ev):
        res = ev.value
        if ev.exception is not None:
            out.fail(ev.exception)
            return
        outcome = WriteOutcome(
            ok=res.ok,
            t_start=res.t_start,
            t_end=res.t_end,
            size=size,
            protocol=protocol,
            greq_id=res.greq_id,
            nacks=list(res.nacks),
        )
        tel = sim.telemetry
        if tel.enabled:
            if span is not None:
                tel.end(span, outcome.t_end)
                span.args["ok"] = outcome.ok
            m = tel.metrics
            m.histogram(f"protocol.{protocol}.latency_ns").observe(outcome.latency_ns)
            m.counter(f"protocol.{protocol}.requests").inc()
            if not outcome.ok:
                m.counter(f"protocol.{protocol}.nacked").inc()
        out.succeed(outcome)

    done.add_callback(convert)
    return out
