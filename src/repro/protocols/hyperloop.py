"""RDMA-HyperLoop replication baseline (§V, Fig. 8; Kim et al. [35]).

HyperLoop chains *pre-posted, triggered* RDMA work-queue elements on the
storage-node NICs: when a data write lands, the NIC's triggered WQE
forwards it to the next node in the ring without CPU involvement.
Because pre-posted WQEs cannot depend on message content, the client
must first **configure** them — remotely writing WQE descriptors
(destination, addresses) into each storage node — before every logical
write.  That configuration round is the overhead that penalises
HyperLoop for small writes and short chains (Fig. 9), and is amortised
for large writes / large k.

Model: per ring node, a ``wqe_config`` control write (landing in host
memory across PCIe, where the NIC fetches descriptors from) that is
acknowledged; then a chunked ring broadcast where each hop
stores-and-forwards at the NIC: DMA to host, WQE trigger, DMA back from
host, retransmit.  The tail node acknowledges the client per chunk.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dfs.cluster import Testbed
from ..dfs.layout import FileLayout
from ..dfs.nodes import StorageNode
from ..simnet.engine import Event
from ..simnet.packet import Packet
from ..telemetry.metrics import HandleCache
from .base import WriteContext, WriteOutcome, as_uint8, begin_request
from .replication import DEFAULT_CHUNK_BYTES

__all__ = ["install_hyperloop_targets", "hyperloop_write"]

#: NIC-side cost to fetch and fire one triggered WQE.
WQE_TRIGGER_NS = 150.0

# This driver closes its own outcome instead of going through
# base.wrap_result, so it owns its request metrics too; the names are
# static, so one module-wide cache covers every testbed registry.
_METRICS = HandleCache(
    lambda m: (
        m.histogram("protocol.rdma-hyperloop.latency_ns"),
        m.counter("protocol.rdma-hyperloop.requests"),
    )
)


def install_hyperloop_targets(testbed: Testbed) -> None:
    for node in testbed.storage_nodes:
        _HyperLoopEngine(node)


class _HyperLoopEngine:
    """Per-node triggered-WQE machinery, hooked into the NIC rx path."""

    def __init__(self, node: StorageNode):
        self.node = node
        self.rings: dict = {}          # ring_id -> descriptor
        self._rx: dict = {}            # msg_id -> chunks
        node.nic.rx_hooks.append(self.on_packet)

    def on_packet(self, pkt: Packet) -> bool:
        if pkt.op == "wqe_config":
            self.node.sim.process(self._configure(pkt))
            return True
        if pkt.op == "write" and (
            pkt.headers.get("hl_ring") is not None or pkt.msg_id in self._rx
        ):
            self._rx_data(pkt)
            return True
        return False

    # ------------------------------------------------------------ config
    def _configure(self, pkt: Packet):
        h = pkt.headers
        # The WQE descriptors are remotely written into host memory; the
        # NIC will fetch them when triggered.
        yield self.node.pcie.dma(64 * h.get("n_wqes", 1))
        self.rings[h["ring"]] = {
            "next_node": h["next_node"],
            "next_addr": h["next_addr"],
            "addr": h["addr"],
            "client": h["client"],
            "greq": h["greq_id"],
            "tail": h["next_node"] is None,
        }
        self.node.nic.send_control(
            pkt.src,
            "ack",
            {
                "ack_for": h["greq_id"],
                "cfg": True,
                "node": self.node.name,
                # reconfiguring the same ring is idempotent, so a
                # retransmitted config simply re-acks
                "dedup": (self.node.name, "hlcfg", h["ring"]),
            },
        )

    # -------------------------------------------------------------- data
    def _rx_data(self, pkt: Packet) -> None:
        if pkt.is_header:
            # a retransmitted header resets reassembly from scratch
            self._rx[pkt.msg_id] = {
                "ring": pkt.headers["hl_ring"],
                "chunks": [],
                "chunk_off": pkt.headers["chunk_off"],
                "greq": pkt.headers.get("greq_id"),
                "got": 0,
            }
        st = self._rx.get(pkt.msg_id)
        if st is None:
            return
        if pkt.payload is not None:
            st["chunks"].append(pkt.payload)
            st["got"] += pkt.payload_bytes
        if pkt.is_completion:
            self._rx.pop(pkt.msg_id)
            if st["got"] != pkt.payload_offset + pkt.payload_bytes:
                return  # lost payload packet: wait for the retransmit
            self.node.sim.process(self._forward(st))

    def _forward(self, st: dict):
        node = self.node
        ring = self.rings[st["ring"]]
        data = (
            np.concatenate(st["chunks"]) if st["chunks"] else np.zeros(0, np.uint8)
        )
        # 1. the chunk lands in host memory (it already streamed through
        #    the NIC; charge the PCIe store)
        yield node.pcie.dma(data.nbytes)
        node.memory.write(ring["addr"] + st["chunk_off"], data)
        # 2. triggered WQE fires
        yield node.sim.timeout(WQE_TRIGGER_NS)
        greq = st.get("greq") or ring["greq"]
        if ring["tail"]:
            node.nic.send_control(
                ring["client"],
                "ack",
                {
                    "ack_for": greq,
                    "node": node.name,
                    "dedup": (node.name, "hl", st["ring"], st["chunk_off"]),
                },
            )
            return
        # 3. the NIC reads the data back out of host memory and forwards
        yield node.pcie.dma(data.nbytes)
        node.nic.send_message(
            dst=ring["next_node"],
            op="write",
            headers={
                "hl_ring": st["ring"],
                "chunk_off": st["chunk_off"],
                "addr": -1,
                "greq_id": greq,
            },
            data=data,
            header_bytes=24,
            post_overhead=False,
        )


def hyperloop_write(
    ctx: WriteContext,
    layout: FileLayout,
    data,
    chunk_bytes: Optional[int] = None,
) -> Event:
    """Client driver: configure the ring's WQEs, then stream chunks."""
    data = as_uint8(data)
    assert layout.replication is not None
    sim = ctx.client.sim
    nic = ctx.client.nic
    extents = list(layout.extents)
    k = len(extents)
    chunk_bytes = chunk_bytes or DEFAULT_CHUNK_BYTES
    n_chunks = max(1, -(-data.nbytes // chunk_bytes))
    ring_id = f"hl-{layout.object_id}-{sim.now}"

    outcome_ev = sim.event(name="hyperloop-outcome")

    def driver():
        t0 = sim.now
        span, tctx = begin_request(ctx, "rdma-hyperloop", "write", data.nbytes)
        # ---- configuration phase: write WQEs to each storage node ----
        cfg_greq, cfg_done = nic.open_transaction(expected_acks=k)
        for i, ext in enumerate(extents):
            nxt = extents[i + 1] if i + 1 < k else None
            nic.send_message(
                dst=ext.node,
                op="wqe_config",
                headers={
                    "ring": ring_id,
                    "greq_id": cfg_greq,
                    "next_node": nxt.node if nxt else None,
                    "next_addr": nxt.addr if nxt else -1,
                    "addr": ext.addr,
                    "client": ctx.client.name,
                    "n_wqes": n_chunks,
                    "trace": tctx,
                },
                header_bytes=48,
                post_overhead=(i == 0),
            )
        cfg_res = yield cfg_done
        if cfg_res is not None and not cfg_res.ok:
            # configuration gave up (e.g. timed out under loss): the
            # write cannot proceed without WQEs in place
            return WriteOutcome(
                ok=False,
                t_start=t0,
                t_end=sim.now,
                size=data.nbytes,
                protocol="rdma-hyperloop",
                greq_id=cfg_greq,
                nacks=list(cfg_res.nacks),
            )
        # ---- data phase: chunked ring broadcast, tail acks ----
        data_greq, data_done = nic.open_transaction(expected_acks=n_chunks)
        off = 0
        for idx in range(n_chunks):
            chunk = data[off : off + chunk_bytes]
            nic.send_message(
                dst=extents[0].node,
                op="write",
                headers={
                    "hl_ring": ring_id,
                    "chunk_off": off,
                    "addr": extents[0].addr + off,
                    "greq_id": data_greq,
                    "trace": tctx,
                },
                data=chunk,
                header_bytes=24,
                post_overhead=(idx == 0),
            )
            off += chunk.nbytes
        data_res = yield data_done
        tel = sim.telemetry
        if tel.enabled:
            # this driver owns its outcome, so it closes its own root
            # span (every wrap_result-based driver gets this for free)
            if span is not None:
                tel.end(span, sim.now)
            latency, requests = _METRICS.get(tel.metrics)
            latency.observe(sim.now - t0)
            requests.inc()
        return WriteOutcome(
            ok=data_res.ok if data_res is not None else True,
            t_start=t0,
            t_end=sim.now,
            size=data.nbytes,
            protocol="rdma-hyperloop",
            greq_id=data_greq,
            nacks=list(data_res.nacks) if data_res is not None else [],
            details={"config_acks": k, "chunks": n_chunks},
        )

    proc = sim.process(driver(), name="hyperloop-write")
    proc.add_callback(
        lambda ev: outcome_ev.fail(ev.exception)
        if ev.exception is not None
        else outcome_ev.succeed(ev.value)
    )
    proc._observed = True
    return outcome_ev
