"""sPIN-offloaded writes (Figs. 1d, 2): the paper's contribution.

One driver covers all three offloaded policies, selected by the layout's
resiliency:

* ``none``        — authenticated plain write (§IV, Fig. 6 "sPIN");
* ``replication`` — sPIN-Ring / sPIN-PBT (§V): a single write to the
  primary; the request header source-routes the broadcast, the NICs
  forward per packet, every replica acks the client (k acks);
* ``ec``          — sPIN-TriEC (§VI): the block is split into k chunks
  written to the data nodes with packets interleaved across nodes
  (§VI-B1); data-node handlers stream intermediate parities to the
  parity nodes, which ack once final parities are durable (k+m acks).

The storage nodes must have a PsPIN context installed — see
:func:`install_spin_targets`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.policies.dispatch import DispatchPolicy
from ..core.request import EcParams, ReplicaCoord, WriteRequestHeader, request_header_bytes
from ..dfs.cluster import Testbed
from ..dfs.layout import FileLayout
from ..ec.reed_solomon import pad_to_chunks
from ..rdma.nic import fresh_greq_id
from ..simnet.engine import Event
from .base import WriteContext, as_uint8, begin_request, replication_params_for, wrap_result

__all__ = ["install_spin_targets", "spin_write", "spin_read"]


def install_spin_targets(
    testbed: Testbed,
    trusted: bool = False,
    n_accumulators: int = 256,
    accumulator_bytes: Optional[int] = None,
) -> None:
    """Install the DFS execution context on every storage node's NIC.

    ``trusted=True`` drops capability checking (the Orion-style threat
    model of §IV) — used only by ablations; the paper's default is the
    untrusted-client model.
    """
    authority = None if trusted else testbed.authority
    acc_bytes = accumulator_bytes or testbed.params.net.mtu
    # The pool lives in the DFS-wide NIC memory region next to the GF
    # table; clamp it so it always fits (§VI-B2/B3).
    from ..ec.gf256 import MUL_TABLE_BYTES

    wide_free = testbed.params.pspin.dfs_wide_state_bytes - MUL_TABLE_BYTES - 8192
    n_accumulators = max(1, min(n_accumulators, wide_free // acc_bytes))
    for node in testbed.storage_nodes:
        node.install_pspin(
            DispatchPolicy(mtu=testbed.params.net.mtu),
            authority=authority,
            n_accumulators=n_accumulators,
            accumulator_bytes=acc_bytes,
            match_ops=("write", "read"),
        )


def spin_write(
    ctx: WriteContext,
    layout: FileLayout,
    data,
    interleave: bool = True,
) -> Event:
    """Issue a write through the sPIN data path; event -> WriteOutcome."""
    data = as_uint8(data)
    sim = ctx.client.sim
    nic = ctx.client.nic

    if layout.resiliency == "replication":
        k = layout.replication.k
        rp = replication_params_for(layout, virtual_rank=0)
        wrh = WriteRequestHeader(
            addr=layout.primary.addr, resiliency="replication", replication=rp
        )
        greq = fresh_greq_id()
        dfs = ctx.dfs_header(greq)
        span, tctx = begin_request(ctx, f"spin-{rp.strategy}", "write", data.nbytes)
        done = nic.post_write(
            dst=layout.primary.node,
            data=data,
            headers={"dfs": dfs, "wrh": wrh, "write_len": data.nbytes, "trace": tctx},
            header_bytes=request_header_bytes(dfs, wrh),
            greq_id=greq,
            expected_acks=k,
        )
        return wrap_result(sim, done, data.nbytes, f"spin-{rp.strategy}", span=span)

    if layout.resiliency == "ec":
        ec_spec = layout.ec
        k, m = ec_spec.k, ec_spec.m
        chunks = pad_to_chunks(data, k)
        parity_coords = tuple(
            ReplicaCoord(e.node, e.addr) for e in layout.parity_extents
        )
        greq, done = nic.open_transaction(expected_acks=k + m)
        dfs = ctx.dfs_header(greq)
        span, tctx = begin_request(ctx, f"spin-triec-rs({k},{m})", "write", data.nbytes)
        for j, (chunk, ext) in enumerate(zip(chunks, layout.extents)):
            wrh = WriteRequestHeader(
                addr=ext.addr,
                resiliency="ec",
                ec=EcParams(
                    k=k,
                    m=m,
                    role="data",
                    index=j,
                    block_id=layout.object_id * 1_000_003 + greq,
                    parity_coords=parity_coords,
                    chunk_bytes=chunk.nbytes,
                ),
            )
            hb = request_header_bytes(dfs, wrh)
            if interleave:
                # Concurrent message transmissions interleave packets at
                # the client egress port (§VI-B1).
                nic.send_message(
                    dst=ext.node,
                    op="write",
                    headers={"dfs": dfs, "wrh": wrh, "write_len": chunk.nbytes, "trace": tctx},
                    data=chunk,
                    header_bytes=hb,
                )
            else:
                # Ablation: chunks injected back to back.
                sim.process(
                    _sequential_send(ctx, ext.node, dfs, wrh, chunk, hb, j, tctx),
                    name="seq-send",
                )
        return wrap_result(sim, done, data.nbytes, f"spin-triec-rs({k},{m})", span=span)

    # plain authenticated write
    wrh = WriteRequestHeader(addr=layout.primary.addr)
    greq = fresh_greq_id()
    dfs = ctx.dfs_header(greq)
    span, tctx = begin_request(ctx, "spin", "write", data.nbytes)
    done = nic.post_write(
        dst=layout.primary.node,
        data=data,
        headers={"dfs": dfs, "wrh": wrh, "write_len": data.nbytes, "trace": tctx},
        header_bytes=request_header_bytes(dfs, wrh),
        greq_id=greq,
        expected_acks=1,
    )
    return wrap_result(sim, done, data.nbytes, "spin", span=span)


def spin_read(
    ctx: WriteContext, layout: FileLayout, addr: int, length: int, replica: int = 0
) -> Event:
    """Authenticated read through the sPIN datapath (Fig. 3 read format).

    A single request packet carries the DFS header + RRH; the storage
    NIC validates READ rights and streams the data back.  ``replica``
    selects which copy serves the read (any replica holds identical
    bytes, so reads fail over or load-balance freely).  The returned
    event's value is an OpResult whose ``data`` holds the bytes.
    """
    from ..core.request import ReadRequestHeader

    nic = ctx.client.nic
    ext = layout.extents[replica]
    if addr + length > ext.length:
        raise ValueError("read range exceeds extent")
    greq, done = nic.open_transaction(expected_acks=1)
    nic._pending[greq].data = np.zeros(length, dtype=np.uint8)
    dfs = ctx.dfs_header(greq, op="read")
    rrh = ReadRequestHeader(addr=ext.addr + addr, length=length)
    nic.send_message(
        dst=ext.node,
        op="read",
        headers={"dfs": dfs, "rrh": rrh, "greq_id": greq},
        header_bytes=request_header_bytes(dfs, rrh=rrh),
    )
    return done


def _sequential_send(ctx: WriteContext, dst, dfs, wrh, chunk, header_bytes, index, tctx=None):
    """Non-interleaved EC transmission: delay chunk j by the full
    serialization time of chunks 0..j-1 (§VI-B1 ablation)."""
    sim = ctx.client.sim
    bw = ctx.client.params.net.bandwidth_gbps
    yield sim.timeout(index * chunk.nbytes * 8.0 / bw)
    ctx.client.nic.send_message(
        dst=dst,
        op="write",
        headers={"dfs": dfs, "wrh": wrh, "write_len": chunk.nbytes, "trace": tctx},
        data=chunk,
        header_bytes=header_bytes,
    )
