"""Workload generators: closed-loop populations and open-loop streams.

``repro.workloads`` grew out of the single-module closed-loop engine
(PR 4) into a package:

* :mod:`repro.workloads.closed` — closed-system load (N clients ×
  bounded outstanding ops, think time) plus the micro-benchmark
  helpers; everything importable from ``repro.workloads`` as before.
* :mod:`repro.workloads.openloop` — open-system load for huge
  populations: aggregated flow generators, Zipf popularity,
  heavy-tailed sizes.
* :mod:`repro.workloads.streams` — the counter-based deterministic
  uniform streams both engines share.
"""

from .closed import (
    ClientLoadStats,
    GoodputResult,
    LoadResult,
    LoadSpec,
    closed_loop_write_load,
    measure_goodput,
    measure_latency_distribution,
    measure_write_latency,
    optimal_chunk_size,
    payload_bytes,
    run_closed_loop,
    sweep,
)
from .openloop import (
    ArrivalSpec,
    OpenLoopResult,
    OpenLoopSpec,
    PopularitySpec,
    SizeSpec,
    WorkloadClass,
    ZipfSampler,
    open_loop_write_load,
    run_open_loop,
    run_open_loop_reference,
    sample_size,
)
from .streams import u01

__all__ = [
    # closed-loop (historic repro.workloads surface)
    "measure_write_latency",
    "GoodputResult",
    "measure_goodput",
    "measure_latency_distribution",
    "LoadSpec",
    "ClientLoadStats",
    "LoadResult",
    "run_closed_loop",
    "closed_loop_write_load",
    "sweep",
    "optimal_chunk_size",
    "payload_bytes",
    # open-loop
    "ArrivalSpec",
    "PopularitySpec",
    "SizeSpec",
    "WorkloadClass",
    "OpenLoopSpec",
    "OpenLoopResult",
    "ZipfSampler",
    "sample_size",
    "run_open_loop",
    "run_open_loop_reference",
    "open_loop_write_load",
    "u01",
]
