"""Open-loop workload engine with aggregated flow generators.

Closed-loop load (:mod:`repro.workloads.closed`) models a *closed*
system: a fixed client population that waits for completions, so
offered load can never exceed what the system serves.  Real DFS front
ends face the opposite regime — millions of independent users whose
requests arrive regardless of how the backend is doing (open loop),
with Zipf-popular objects and heavy-tailed sizes.  This module
simulates such populations at full fidelity **without one coroutine
per user**:

Aggregation model
-----------------
Each virtual client ``c`` owns a deterministic arrival process whose
``k``-th random draw is the pure function ``u01(seed, c, k, tag)``
(:mod:`repro.workloads.streams` — no per-client RNG objects, no hidden
state).  A population of N clients is then driven by **one generator
process per (client-host, class) bucket**: the bucket keeps a binary
heap of ``(next_arrival, client)`` pairs and repeatedly pops the
earliest arrival, sleeps to its absolute timestamp, stamps the request
with the virtual client id, and pushes the client's next arrival.
Scheduling is O(log N) per *request* — idle clients cost one heap slot,
not a parked coroutine — so a million-user population runs at the speed
of its aggregate request rate.

Exactness guarantee
-------------------
Because every draw is keyed by ``(seed, client, draw-counter)``, the
aggregated generator consumes exactly the numbers an explicit
one-coroutine-per-client engine would: :func:`run_open_loop` (heap
merge) and :func:`run_open_loop_reference` (explicit coroutines)
produce **byte-identical request schedules** — and therefore identical
completions — for any spec; ``tests/test_openloop.py`` proves it at
N ∈ {1, 4, 32}.  Both engines sleep with ``timeout_at(t)`` (absolute
time), so no floating-point re-accumulation can skew a wake-up, and
arrival timestamps are continuous draws, so cross-client ties (where
the two engines' heap tie-breaks could differ) occur with probability
zero.

Arrival processes (per client)
------------------------------
* ``poisson`` — exponential gaps at ``rate_hz``;
* ``onoff`` — alternating Pareto-distributed OFF and ON phases with
  Poisson arrivals at ``rate_hz`` inside ON phases; superposing many
  heavy-tailed on/off sources yields the classic self-similar/bursty
  aggregate (Willinger et al.);
* ``burst`` — synchronized fan-in: every ``burst_period_ns`` each
  client joins the burst with probability ``burst_join`` and fires at
  a jittered offset inside it (the incast regime).
"""

from __future__ import annotations

import hashlib
import struct
from bisect import bisect_right
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..simnet.engine import Event
from .streams import (
    TAG_CLASS,
    TAG_GAP,
    TAG_OBJ,
    TAG_SIZE,
    TAG_STATE,
    exp_gap,
    lognormal,
    pareto,
    u01,
)

__all__ = [
    "ArrivalSpec",
    "PopularitySpec",
    "SizeSpec",
    "WorkloadClass",
    "OpenLoopSpec",
    "OpenLoopResult",
    "ZipfSampler",
    "sample_size",
    "run_open_loop",
    "run_open_loop_reference",
    "open_loop_write_load",
]


# ------------------------------------------------------------------ specs
@dataclass(frozen=True)
class ArrivalSpec:
    """Per-client arrival process parameters."""

    kind: str = "poisson"              # poisson | onoff | burst
    #: mean request rate per client in requests per simulated second
    #: (poisson: always; onoff: rate *inside* ON phases)
    rate_hz: float = 100.0
    # --- onoff (self-similar superposition) ---
    on_alpha: float = 1.5              # Pareto tail of ON durations
    on_min_ns: float = 50_000.0        # minimum ON duration
    off_alpha: float = 1.5             # Pareto tail of OFF durations
    off_min_ns: float = 100_000.0      # minimum OFF duration
    # --- burst (synchronized incast) ---
    burst_period_ns: float = 200_000.0
    burst_jitter_ns: float = 20_000.0  # must stay > 0: distinct stamps
    burst_join: float = 0.5            # P(client joins a given burst)

    def validate(self) -> None:
        if self.kind not in ("poisson", "onoff", "burst"):
            raise ValueError(f"unknown arrival kind {self.kind!r}")
        if self.rate_hz <= 0.0:
            raise ValueError("arrival rate_hz must be positive")
        if self.kind == "burst" and self.burst_jitter_ns <= 0.0:
            # zero jitter would stamp whole bursts at one timestamp and
            # void the tie-free exactness guarantee (module docstring)
            raise ValueError("burst_jitter_ns must be > 0")


@dataclass(frozen=True)
class PopularitySpec:
    """Zipf(alpha) popularity over a synthetic namespace of objects.

    Object index equals popularity rank (0 = hottest); ``alpha = 0``
    degenerates to uniform popularity.
    """

    n_objects: int = 256
    alpha: float = 1.0

    def validate(self) -> None:
        if self.n_objects < 1:
            raise ValueError("need at least one object")
        if self.alpha < 0.0:
            raise ValueError("zipf alpha must be >= 0")


@dataclass(frozen=True)
class SizeSpec:
    """Request-size distribution (bytes), clamped and quantized."""

    dist: str = "fixed"                # fixed | lognormal | pareto
    fixed_bytes: int = 8 * 1024
    median_bytes: float = 8 * 1024.0   # lognormal median
    sigma: float = 0.7                 # lognormal shape
    alpha: float = 1.3                 # pareto tail
    min_bytes: int = 1024
    max_bytes: int = 64 * 1024
    quantum: int = 512                 # sizes round down to this grain

    def validate(self) -> None:
        if self.dist not in ("fixed", "lognormal", "pareto"):
            raise ValueError(f"unknown size dist {self.dist!r}")
        if not (0 < self.min_bytes <= self.max_bytes):
            raise ValueError("need 0 < min_bytes <= max_bytes")
        if self.quantum < 1:
            raise ValueError("quantum must be >= 1")


@dataclass(frozen=True)
class WorkloadClass:
    """A sub-population with its own arrival/size behaviour.

    ``fraction`` of the population (assigned per client by a seeded
    class draw) follows this class; unset arrival/size fall back to the
    spec-level defaults.
    """

    name: str
    fraction: float
    arrival: Optional[ArrivalSpec] = None
    size: Optional[SizeSpec] = None


@dataclass(frozen=True)
class OpenLoopSpec:
    """Parameters of one open-loop run."""

    n_users: int = 1000
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    popularity: PopularitySpec = field(default_factory=PopularitySpec)
    size: SizeSpec = field(default_factory=SizeSpec)
    classes: Tuple[WorkloadClass, ...] = ()
    warmup_ns: float = 0.0
    measure_ns: float = 1_000_000.0
    seed: int = 1

    @property
    def horizon_ns(self) -> float:
        return self.warmup_ns + self.measure_ns

    def validate(self) -> None:
        if self.n_users < 1:
            raise ValueError("need at least one user")
        if self.measure_ns <= 0.0:
            raise ValueError("measure_ns must be positive")
        self.arrival.validate()
        self.popularity.validate()
        self.size.validate()
        total = sum(c.fraction for c in self.classes)
        if self.classes and not (0.0 < total <= 1.0 + 1e-9):
            raise ValueError("class fractions must sum into (0, 1]")
        for c in self.classes:
            if c.arrival is not None:
                c.arrival.validate()
            if c.size is not None:
                c.size.validate()


# --------------------------------------------------------------- samplers
class ZipfSampler:
    """Inverse-CDF Zipf(alpha) sampler over ranks ``0..n-1``.

    One uniform per draw; ``bisect`` over the precomputed cumulative
    mass keeps the per-request cost at ~O(log n) python-free work.
    """

    def __init__(self, n_objects: int, alpha: float) -> None:
        self.n_objects = n_objects
        self.alpha = alpha
        weights = [(i + 1) ** (-alpha) for i in range(n_objects)]
        total = sum(weights)
        cum: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w
            cum.append(acc / total)
        cum[-1] = 1.0  # guard float drift: u < 1 always lands in range
        self.cum = cum
        self.mass = [w / total for w in weights]

    def pick(self, u: float) -> int:
        return bisect_right(self.cum, u)


def sample_size(u: float, s: SizeSpec) -> int:
    """One size draw in bytes: distribution -> clamp -> quantize."""
    if s.dist == "fixed":
        return s.fixed_bytes
    if s.dist == "lognormal":
        raw = lognormal(u, s.median_bytes, s.sigma)
    else:  # pareto
        raw = pareto(u, s.alpha, float(s.min_bytes))
    raw = min(max(raw, float(s.min_bytes)), float(s.max_bytes))
    q = int(raw) // s.quantum * s.quantum
    return max(q, s.min_bytes)


# ------------------------------------------------------- arrival steppers
def _make_stepper(
    a: ArrivalSpec, seed: int, horizon_ns: float
) -> Tuple[Any, Callable[..., Tuple[float, Any]]]:
    """Build ``(init_state, step)`` for one arrival class.

    ``step(cid, t_prev, st) -> (t_next, st')`` is a pure function of its
    arguments — the shared core both engines consume, and the reason
    their schedules are byte-identical.  ``t_next`` may exceed the
    horizon, which both engines treat as "this client is done".
    """
    rate = a.rate_hz
    if a.kind == "poisson":
        def step(cid: int, t_prev: float, k: int) -> Tuple[float, int]:
            return t_prev + exp_gap(u01(seed, cid, k, TAG_GAP), rate), k + 1

        return 0, step

    if a.kind == "onoff":
        on_alpha, on_min = a.on_alpha, a.on_min_ns
        off_alpha, off_min = a.off_alpha, a.off_min_ns

        # state: (k, on_end); on_end < 0 means "currently OFF"
        def step(
            cid: int, t_prev: float, st: Tuple[int, float]
        ) -> Tuple[float, Tuple[int, float]]:
            k, on_end = st
            t = t_prev
            while True:
                if on_end < 0.0:  # draw OFF gap, then a fresh ON window
                    t += pareto(u01(seed, cid, k, TAG_STATE), off_alpha, off_min)
                    k += 1
                    on_end = t + pareto(u01(seed, cid, k, TAG_STATE),
                                        on_alpha, on_min)
                    k += 1
                gap = exp_gap(u01(seed, cid, k, TAG_GAP), rate)
                k += 1
                if t + gap <= on_end:
                    return t + gap, (k, on_end)
                t = on_end        # ON phase exhausted without an arrival
                on_end = -1.0
                if t > horizon_ns:
                    return t, (k, on_end)  # past the end: caller stops

        return (0, -1.0), step

    # burst: state is the next burst index to consider
    period, jitter, join = a.burst_period_ns, a.burst_jitter_ns, a.burst_join
    last_burst = int(horizon_ns / period) + 1

    def step(cid: int, t_prev: float, b: int) -> Tuple[float, int]:
        while b <= last_burst:
            if u01(seed, cid, b, TAG_GAP) < join:
                t = b * period + u01(seed, cid, b, TAG_STATE) * jitter
                return t, b + 1
            b += 1
        return float("inf"), b

    return 0, step


def _class_tables(
    spec: OpenLoopSpec,
) -> Tuple[List[str], List[float], List[ArrivalSpec], List[SizeSpec]]:
    """Resolve the class list: ``(names, fractions_cum, arrivals, sizes)``.
    A spec without classes is one implicit class covering everyone."""
    if not spec.classes:
        return ["all"], [1.0], [spec.arrival], [spec.size]
    names, cum, arrivals, sizes = [], [], [], []
    acc = 0.0
    for c in spec.classes:
        acc += c.fraction
        names.append(c.name)
        cum.append(acc)
        arrivals.append(c.arrival or spec.arrival)
        sizes.append(c.size or spec.size)
    cum[-1] = max(cum[-1], 1.0)  # absorb float remainder into the last class
    return names, cum, arrivals, sizes


def _class_of(seed: int, cid: int, cum: List[float]) -> int:
    if len(cum) == 1:
        return 0
    return bisect_right(cum, u01(seed, cid, 0, TAG_CLASS))


# ---------------------------------------------------------------- results
_REQ_PACK = struct.Struct("<dqqqq")


@dataclass
class OpenLoopResult:
    """Statistics of one open-loop run.

    ``ops``/``failures``/``bytes``/``latency`` count operations
    *completing* inside the measurement window (``failures_total``
    counts failed completions anywhere in the run — under a fault
    campaign, timeout nacks often straggle past the window); ``issued`` counts every
    request the generators stamped (the open-loop schedule is
    completion-independent).  ``schedule_digest`` is the SHA-256 of the
    full ``(t, client, req, object, size)`` request stream — two runs
    (or two engines) agree on it iff their schedules are byte-identical.
    """

    spec: OpenLoopSpec
    issued: int
    ops: int
    failures: int
    failures_total: int
    bytes: int
    completed_total: int
    elapsed_ns: float
    latency: dict
    inflight_peak: int
    active_users: int
    schedule_digest: str
    obj_counts: Dict[int, int]
    quiesced: bool
    phase_latency: Optional[Dict[str, dict]] = None
    schedule: Optional[List[tuple]] = None

    @property
    def kops_per_s(self) -> float:
        return self.ops / self.spec.measure_ns * 1e6 if self.spec.measure_ns else 0.0

    @property
    def goodput_gbps(self) -> float:
        return self.bytes * 8.0 / self.spec.measure_ns if self.spec.measure_ns else 0.0

    @property
    def offered_kops_per_s(self) -> float:
        h = self.spec.horizon_ns
        return self.issued / h * 1e6 if h else 0.0


# ---------------------------------------------------------------- engines
class _Run:
    """Shared per-run machinery of both engines: request stamping,
    completion accounting, drain, and the result assembly."""

    def __init__(self, testbed: Any, issue: Callable[[int, int, int, int], Event],
                 spec: OpenLoopSpec, record: bool) -> None:
        spec.validate()
        self.testbed = testbed
        self.issue = issue
        self.spec = spec
        sim = testbed.sim
        self.ksim = getattr(sim, "driver_sim", sim)
        self.t0 = self.ksim.now
        self.t_warm = self.t0 + spec.warmup_ns
        self.t_stop = self.t0 + spec.horizon_ns
        self.zipf = ZipfSampler(spec.popularity.n_objects, spec.popularity.alpha)
        names, cum, arrivals, sizes = _class_tables(spec)
        self.class_names = names
        self.class_cum = cum
        self.class_sizes = sizes
        self.steppers = [
            _make_stepper(a, spec.seed, spec.horizon_ns) for a in arrivals
        ]
        self.reqno = [0] * spec.n_users
        self.issued = 0
        self.ops = 0
        self.failures = 0
        self.failures_total = 0
        self.bytes = 0
        self.completed_total = 0
        self.inflight = 0
        self.inflight_peak = 0
        self.latencies: List[float] = []
        self.obj_counts: Dict[int, int] = {}
        self.digest = hashlib.sha256()
        self.schedule: Optional[List[tuple]] = [] if record else None
        tel = sim.telemetry
        # one resolved handle, sampled on every level change (SIM401)
        self._gauge = (
            tel.metrics.gauge("workload.openloop.inflight") if tel.enabled else None
        )

    # ---------------------------------------------------------- hot path
    def issue_one(self, cid: int, t: float, cls: int) -> None:
        n = self.reqno[cid]
        self.reqno[cid] = n + 1
        u_obj = u01(self.spec.seed, cid, n, TAG_OBJ)
        obj = self.zipf.pick(u_obj)
        u_size = u01(self.spec.seed, cid, n, TAG_SIZE)
        size = sample_size(u_size, self.class_sizes[cls])
        rel_t = t - self.t0
        self.digest.update(_REQ_PACK.pack(rel_t, cid, n, obj, size))
        if self.schedule is not None:
            self.schedule.append((rel_t, cid, n, obj, size))
        self.issued += 1
        self.obj_counts[obj] = self.obj_counts.get(obj, 0) + 1
        self.inflight += 1
        if self.inflight > self.inflight_peak:
            self.inflight_peak = self.inflight
        if self._gauge is not None:
            self._gauge.set(self.ksim.now, float(self.inflight))
        ev = self.issue(cid, n, obj, size)
        ev.add_callback(lambda e, _size=size: self._done(e, _size))

    def _done(self, ev: Event, size: int) -> None:
        self.inflight -= 1
        if self._gauge is not None:
            self._gauge.set(self.ksim.now, float(self.inflight))
        out = ev.value
        ok = getattr(out, "ok", True)
        self.completed_total += 1
        if not ok:
            self.failures_total += 1
        now = self.ksim.now
        if self.t_warm <= now < self.t_stop:
            if not ok:
                self.failures += 1
                return
            self.ops += 1
            self.bytes += size
            lat = getattr(out, "latency_ns", None)
            if lat is not None:
                self.latencies.append(lat)

    # ------------------------------------------------------------- finish
    def finish(self, procs: List) -> OpenLoopResult:
        from ..simnet.trace import summarize

        sim = self.testbed.sim
        done = sim.all_of(procs)
        sim.run_until_event(done)
        # open loop: generators stop at the horizon, but completions may
        # straggle (retransmission backoff under faults) — drain bounded
        drained = self.inflight == 0
        for _ in range(5000):
            if drained:
                break
            self.testbed.run(until=self.ksim.now + 200_000.0)
            drained = self.inflight == 0
        quiesced = drained and all(p.triggered for p in procs)

        phase_latency = None
        tel = sim.telemetry
        if tel.enabled:
            from ..telemetry.anatomy import decompose, phase_summary

            measured = [
                op for op in decompose(tel)
                if op.ok and self.t_warm <= op.t1 < self.t_stop
            ]
            if measured:
                phase_latency = phase_summary(measured)
        return OpenLoopResult(
            spec=self.spec,
            issued=self.issued,
            ops=self.ops,
            failures=self.failures,
            failures_total=self.failures_total,
            bytes=self.bytes,
            completed_total=self.completed_total,
            elapsed_ns=self.ksim.now - self.t0,
            latency=summarize(self.latencies),
            inflight_peak=self.inflight_peak,
            active_users=sum(1 for n in self.reqno if n),
            schedule_digest=self.digest.hexdigest(),
            obj_counts=self.obj_counts,
            quiesced=quiesced,
            phase_latency=phase_latency,
            schedule=self.schedule,
        )


def run_open_loop(
    testbed,
    issue: Callable[[int, int, int, int], Event],
    spec: OpenLoopSpec,
    n_buckets: Optional[int] = None,
    record: bool = False,
) -> OpenLoopResult:
    """Drive an open-loop population with aggregated flow generators.

    ``issue(client, req_index, object_index, size_bytes)`` posts one
    operation and returns its completion event.  One generator process
    runs per (bucket, class) pair — bucket ``b`` owns clients with
    ``cid % n_buckets == b`` (callers map buckets to client hosts), and
    each generator heap-merges its clients' arrival streams.
    """
    run = _Run(testbed, issue, spec, record)
    ksim = run.ksim
    k_buckets = n_buckets or max(len(getattr(testbed, "clients", [])) or 1, 1)
    k_buckets = min(k_buckets, spec.n_users)
    n_classes = len(run.class_names)
    horizon = spec.horizon_ns
    t0 = run.t0

    # per-client arrival state + class, resolved once up front
    cls_of = [0] * spec.n_users if n_classes == 1 else [
        _class_of(spec.seed, cid, run.class_cum) for cid in range(spec.n_users)
    ]
    states: List = [None] * spec.n_users

    # first arrivals, bucketed: clients whose first arrival already lies
    # beyond the horizon consume their draw but never enter a heap
    heaps: Dict[Tuple[int, int], List[Tuple[float, int]]] = {}
    for cid in range(spec.n_users):
        cls = cls_of[cid]
        init, step = run.steppers[cls]
        t, st = step(cid, 0.0, init)
        if t < horizon:
            states[cid] = st
            heaps.setdefault((cid % k_buckets, cls), []).append((t, cid))

    def _generator(heap: List[Tuple[float, int]]) -> Generator:
        heapify(heap)
        while heap:
            t, cid = heappop(heap)
            yield ksim.timeout_at(t0 + t)
            cls = cls_of[cid]
            run.issue_one(cid, t0 + t, cls)
            step = run.steppers[cls][1]
            t2, st2 = step(cid, t, states[cid])
            if t2 < horizon:
                states[cid] = st2
                heappush(heap, (t2, cid))

    procs = [
        ksim.process(_generator(heap), name=f"openloop.b{b}.{run.class_names[c]}")
        for (b, c), heap in sorted(heaps.items())
    ]
    return run.finish(procs)


def run_open_loop_reference(
    testbed,
    issue: Callable[[int, int, int, int], Event],
    spec: OpenLoopSpec,
    record: bool = False,
) -> OpenLoopResult:
    """Explicit one-coroutine-per-client reference engine.

    Consumes exactly the same draw streams as :func:`run_open_loop`;
    exists to prove the aggregation exact (and to show why it is
    needed — N coroutines of engine overhead for the same schedule).
    Keep populations small here.
    """
    run = _Run(testbed, issue, spec, record)
    ksim = run.ksim
    horizon = spec.horizon_ns
    t0 = run.t0

    def _client(cid: int) -> Generator:
        cls = _class_of(spec.seed, cid, run.class_cum)
        init, step = run.steppers[cls]
        t, st = step(cid, 0.0, init)
        while t < horizon:
            yield ksim.timeout_at(t0 + t)
            run.issue_one(cid, t0 + t, cls)
            t, st = step(cid, t, st)

    procs = [
        ksim.process(_client(cid), name=f"openloop.c{cid}")
        for cid in range(spec.n_users)
    ]
    return run.finish(procs)


# ------------------------------------------------------------ DFS driver
def open_loop_write_load(
    testbed,
    spec: OpenLoopSpec,
    protocol: str,
    replication=None,
    ec=None,
    object_bytes: Optional[int] = None,
    pin_top: int = 0,
    pin_node: Optional[str] = None,
    engine: str = "aggregated",
    record: bool = False,
    **write_kw,
) -> Tuple[OpenLoopResult, Dict[str, int]]:
    """Open-loop write load over a synthetic Zipf namespace.

    Creates ``popularity.n_objects`` objects (index = popularity rank),
    optionally pinning the ``pin_top`` hottest onto ``pin_node`` (the
    hot-shard scenario), and drives sampled-size writes from a pool of
    per-host endpoints.  Returns the run result plus the per-storage-node
    request tally (by each object's primary extent).
    """
    from ..dfs.client import DfsClient
    from .closed import payload_bytes

    spec.validate()
    # the largest size any class can draw bounds both the object extent
    # and the shared payload buffer
    size_specs = [c.size or spec.size for c in spec.classes] or [spec.size]
    max_req = max(
        s.fixed_bytes if s.dist == "fixed" else s.max_bytes for s in size_specs
    )
    obj_bytes = object_bytes or max_req
    n_hosts = len(testbed.clients)
    endpoints = [
        DfsClient(testbed, client_index=h, principal=f"open{h}")
        for h in range(n_hosts)
    ]
    md = testbed.metadata
    paths: List[str] = []
    obj_node: List[str] = []
    for i in range(spec.popularity.n_objects):
        path = f"/ol/{i}"
        pin = None
        if pin_node is not None and i < pin_top:
            k = replication.k if replication is not None else 1
            others = [n for n in md.nodes if n != pin_node]
            pin = [pin_node] + others[: k - 1]
        layout = md.create(path, size=obj_bytes, replication=replication,
                           ec=ec, pin_nodes=pin)
        obj_node.append(layout.extents[0].node)
        paths.append(path)
        for ep in endpoints:
            ep.open(path)
    payload = payload_bytes(max_req, seed=spec.seed)

    def issue(cid: int, n: int, obj: int, size: int) -> Event:
        return endpoints[cid % n_hosts].write(
            paths[obj], payload[:size], protocol=protocol, **write_kw
        )

    runner = run_open_loop if engine == "aggregated" else run_open_loop_reference
    if engine not in ("aggregated", "explicit"):
        raise ValueError(f"unknown engine {engine!r}")
    res = runner(testbed, issue, spec, record=record)
    node_counts: Dict[str, int] = {}
    for obj, cnt in res.obj_counts.items():
        node = obj_node[obj]
        node_counts[node] = node_counts.get(node, 0) + cnt
    return res, node_counts
