"""Closed-system workload generators and measurement drivers.

Three measurement styles:

* **latency** — a single isolated write, reported request-to-response
  (Figs. 6, 9 left/center, 10, 15 left);
* **window-based goodput/bandwidth** — keep a window of operations in
  flight back to back and divide bytes by elapsed time (Fig. 9 right,
  Fig. 15 right; §VI-C(b): "common to window-based messaging
  benchmarks");
* **closed-loop load** — N independent clients, each with bounded
  outstanding operations and optional think time, measured over a fixed
  window after warm-up (:func:`run_closed_loop`).  This is the classic
  closed-system model: offered load is set by the client population, not
  an open arrival process, so the system can never be driven past
  saturation into unbounded queues.

The open-system counterpart — arrival processes decoupled from
completions, aggregated over huge client populations — lives in
:mod:`repro.workloads.openloop`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Iterable, List, Optional

import numpy as np

from ..dfs.client import DfsClient
from ..dfs.cluster import Testbed
from ..protocols.base import WriteOutcome
from ..simnet.engine import Event

__all__ = [
    "measure_write_latency",
    "measure_goodput",
    "measure_latency_distribution",
    "GoodputResult",
    "LoadSpec",
    "ClientLoadStats",
    "LoadResult",
    "run_closed_loop",
    "closed_loop_write_load",
    "sweep",
    "optimal_chunk_size",
    "payload_bytes",
]


#: payload cache: (seed, size) -> frozen array.  Million-request load
#: runs used to rebuild a Generator and an array per request; the cache
#: turns repeat payloads into a dict hit.  Bounded so a sweep over many
#: distinct sizes cannot grow it without limit.
_PAYLOAD_CACHE: dict[tuple[int, int], np.ndarray] = {}
_PAYLOAD_CACHE_MAX = 128


def payload_bytes(size: int, seed: int = 0) -> np.ndarray:
    """Deterministic pseudo-random payload (content-checkable).

    Cached by ``(seed, size)`` and returned *read-only*: every caller
    treats payloads as immutable write sources, and the read-only flag
    turns any accidental in-place mutation (which would corrupt every
    later request sharing the buffer) into an immediate ``ValueError``.
    """
    key = (seed, size)
    arr = _PAYLOAD_CACHE.get(key)
    if arr is None:
        arr = np.random.default_rng(seed).integers(0, 256, size=size, dtype=np.uint8)
        arr.setflags(write=False)
        if len(_PAYLOAD_CACHE) >= _PAYLOAD_CACHE_MAX:
            _PAYLOAD_CACHE.clear()
        _PAYLOAD_CACHE[key] = arr
    return arr


def measure_write_latency(
    client: DfsClient,
    path: str,
    size: int,
    protocol: str,
    warmup: int = 1,
    repeats: int = 3,
    **kw,
) -> float:
    """Median latency of isolated writes (first write warms structures)."""
    data = payload_bytes(size)
    samples = []
    for i in range(warmup + repeats):
        out = client.write_sync(path, data, protocol=protocol, **kw)
        if not out.ok:
            raise RuntimeError(f"write failed: {out.nacks}")
        if i >= warmup:
            samples.append(out.latency_ns)
    samples.sort()
    return samples[len(samples) // 2]


@dataclass
class GoodputResult:
    bytes_completed: int
    elapsed_ns: float
    n_ops: int

    @property
    def goodput_gbps(self) -> float:
        return self.bytes_completed * 8.0 / self.elapsed_ns if self.elapsed_ns else 0.0


def measure_goodput(
    testbed: Testbed,
    issue: Callable[[int], Event],
    n_ops: int,
    op_bytes: int,
    window: int = 16,
) -> GoodputResult:
    """Window-based goodput: keep ``window`` operations in flight.

    ``issue(i)`` posts operation ``i`` and returns its completion event.
    Elapsed time runs from the first issue to the last completion.
    """
    sim = testbed.sim
    t0 = sim.now
    in_flight: List[Event] = [issue(i) for i in range(min(window, n_ops))]
    issued = len(in_flight)
    completed = 0
    while completed < n_ops:
        # wait for the oldest op (FIFO window, deterministic)
        ev = in_flight.pop(0)
        out = sim.run_until_event(ev)
        if isinstance(out, WriteOutcome) and not out.ok:
            raise RuntimeError(f"write failed mid-window: {out.nacks}")
        completed += 1
        if issued < n_ops:
            in_flight.append(issue(issued))
            issued += 1
    return GoodputResult(
        bytes_completed=completed * op_bytes,
        elapsed_ns=sim.now - t0,
        n_ops=n_ops,
    )


def measure_latency_distribution(
    testbed: Testbed,
    issue: Callable[[int], Event],
    n_ops: int,
    window: int = 16,
) -> dict:
    """Per-operation latency distribution under load.

    Unlike :func:`measure_goodput` this records every operation's
    latency (from the outcome objects), returning the
    :func:`~repro.simnet.trace.summarize` statistics — useful for tail
    behaviour under contention (p99 vs median).
    """
    from ..simnet.trace import summarize

    sim = testbed.sim
    in_flight: List[Event] = [issue(i) for i in range(min(window, n_ops))]
    issued = len(in_flight)
    latencies: List[float] = []
    while in_flight:
        ev = in_flight.pop(0)
        out = sim.run_until_event(ev)
        lat = getattr(out, "latency_ns", None)
        if lat is None:
            raise TypeError("issue() must yield outcomes with latency_ns")
        if isinstance(out, WriteOutcome) and not out.ok:
            raise RuntimeError(f"operation failed: {out.nacks}")
        latencies.append(lat)
        if issued < n_ops:
            in_flight.append(issue(issued))
            issued += 1
    return summarize(latencies)


# --------------------------------------------------------------------------
# Closed-loop multi-client load engine
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LoadSpec:
    """Parameters of a closed-loop load run.

    Each of ``n_clients`` logical clients keeps up to ``outstanding``
    operations in flight; after each completion it thinks for
    ``think_ns`` (exponentially distributed when ``think_jitter`` is
    set, fixed otherwise) before issuing the next.  Statistics count
    only operations *completing* inside the measurement window
    ``[warmup_ns, warmup_ns + measure_ns)``; everything in flight at the
    window's end is still drained so the run quiesces deterministically.
    """

    n_clients: int = 8
    outstanding: int = 1
    think_ns: float = 0.0
    think_jitter: bool = True
    warmup_ns: float = 50_000.0
    measure_ns: float = 1_000_000.0
    seed: int = 1
    #: tolerate failed operations instead of aborting the run — needed
    #: for fault-injection loads (recovery storms) where some writes
    #: land on crashed replicas; failures inside the measure window are
    #: counted separately and excluded from the latency statistics
    allow_failures: bool = False


@dataclass
class ClientLoadStats:
    """Per-client view of one closed-loop run."""

    client_id: int
    ops: int = 0
    bytes: int = 0
    issued: int = 0
    failures: int = 0
    latencies: List[float] = field(default_factory=list)

    def summary(self, measure_ns: float) -> dict:
        from ..simnet.trace import summarize

        out = summarize(self.latencies)
        out["ops"] = self.ops
        out["issued"] = self.issued
        out["failures"] = self.failures
        out["kops_per_s"] = self.ops / measure_ns * 1e6 if measure_ns else 0.0
        out["goodput_gbps"] = self.bytes * 8.0 / measure_ns if measure_ns else 0.0
        return out


@dataclass
class LoadResult:
    """Aggregate + per-client statistics of a closed-loop run."""

    spec: LoadSpec
    op_bytes: int
    ops: int                      # completions inside the measure window
    bytes: int
    issued: int                   # total issued, incl. warm-up/drain ops
    failures: int                 # failed ops in the measure window
    elapsed_ns: float             # first issue -> full quiesce
    latency: dict                 # summarize() over measured latencies
    per_client: List[dict]
    quiesced: bool
    #: per-phase latency anatomy over the measured operations
    #: (:func:`repro.telemetry.phase_summary` shape) — populated only
    #: when the testbed ran with telemetry enabled, else None
    phase_latency: Optional[Dict[str, dict]] = None

    @property
    def kops_per_s(self) -> float:
        return self.ops / self.spec.measure_ns * 1e6 if self.spec.measure_ns else 0.0

    @property
    def goodput_gbps(self) -> float:
        return self.bytes * 8.0 / self.spec.measure_ns if self.spec.measure_ns else 0.0


def run_closed_loop(
    testbed: Testbed,
    issue: Callable[[int, int], Event],
    spec: LoadSpec,
    op_bytes: int = 0,
) -> LoadResult:
    """Drive a closed-loop multi-client load and collect statistics.

    ``issue(client_id, op_index)`` posts one operation for a client and
    returns its completion event (value must expose ``latency_ns``, as
    :class:`~repro.protocols.base.WriteOutcome` does).  The run is fully
    deterministic for a given ``spec.seed``: each client slot draws its
    think times from its own seeded generator, and the simulator's event
    order does the rest.
    """
    from ..simnet.trace import summarize

    sim = testbed.sim
    # The load workers live with the client hosts on the driver
    # partition: under the partitioned engine their clock reads must
    # come from that kernel (the coordinator facade's ``now`` is only
    # window-exact mid-round).  Serial testbeds: ksim is sim.
    ksim = getattr(sim, "driver_sim", sim)
    t_start = ksim.now
    t_warm = t_start + spec.warmup_ns
    t_stop = t_warm + spec.measure_ns
    stats = [ClientLoadStats(client_id=c) for c in range(spec.n_clients)]
    next_op: List[int] = [0] * spec.n_clients

    def _worker(cid: int, slot: int) -> Generator:
        st = stats[cid]
        rng = np.random.default_rng([spec.seed, cid, slot])
        # Stagger slot start-up so the client population does not issue
        # in lock-step at t=0 (think time doubles as the ramp).
        if spec.think_ns > 0.0:
            d = rng.exponential(spec.think_ns) if spec.think_jitter else (
                spec.think_ns * slot / max(spec.outstanding, 1)
            )
            if d > 0.0:
                yield ksim.timeout(d)
        while ksim.now < t_stop:
            i = next_op[cid]
            next_op[cid] = i + 1
            st.issued += 1
            out = yield issue(cid, i)
            failed = isinstance(out, WriteOutcome) and not out.ok
            if failed and not spec.allow_failures:
                raise RuntimeError(f"client {cid} op {i} failed: {out.nacks}")
            if t_warm <= ksim.now < t_stop:
                if failed:
                    st.failures += 1
                else:
                    st.ops += 1
                    st.bytes += op_bytes
                    lat = getattr(out, "latency_ns", None)
                    if lat is not None:
                        st.latencies.append(lat)
            if spec.think_ns > 0.0:
                d = rng.exponential(spec.think_ns) if spec.think_jitter else spec.think_ns
                if d > 0.0:
                    yield ksim.timeout(d)

    procs = [
        ksim.process(_worker(cid, slot), name=f"load.c{cid}.s{slot}")
        for cid in range(spec.n_clients)
        for slot in range(spec.outstanding)
    ]
    done = sim.all_of(procs)
    sim.run_until_event(done)
    quiesced = all(p.triggered for p in procs)
    all_lat: List[float] = []
    for st in stats:
        all_lat.extend(st.latencies)
    # Latency anatomy of the measured window: with telemetry on, every
    # request left a span tree; decompose the ones that *completed*
    # inside the window (same population the latency stats count).
    phase_latency = None
    tel = sim.telemetry
    if tel.enabled:
        from ..telemetry.anatomy import decompose, phase_summary

        measured = [
            op for op in decompose(tel) if op.ok and t_warm <= op.t1 < t_stop
        ]
        if measured:
            phase_latency = phase_summary(measured)
    return LoadResult(
        spec=spec,
        op_bytes=op_bytes,
        ops=sum(st.ops for st in stats),
        bytes=sum(st.bytes for st in stats),
        issued=sum(st.issued for st in stats),
        failures=sum(st.failures for st in stats),
        elapsed_ns=ksim.now - t_start,
        latency=summarize(all_lat),
        per_client=[st.summary(spec.measure_ns) for st in stats],
        quiesced=quiesced,
        phase_latency=phase_latency,
    )


def closed_loop_write_load(
    testbed: Testbed,
    size: int,
    protocol: str,
    spec: LoadSpec,
    replication=None,
    ec=None,
    **write_kw,
) -> LoadResult:
    """Closed-loop write load: each logical client writes its own file.

    Clients are spread round-robin over the testbed's client hosts, so a
    testbed built with ``n_clients`` hosts gets true multi-endpoint
    traffic; with one host the load multiplexes through a single NIC.
    """
    n_hosts = len(testbed.clients)
    endpoints = [
        DfsClient(testbed, client_index=c % n_hosts, principal=f"load{c}")
        for c in range(spec.n_clients)
    ]
    data = payload_bytes(size, seed=spec.seed)
    paths = []
    for c, cl in enumerate(endpoints):
        path = f"/load/c{c}"
        cl.create(path, size=max(size, 1) * 2, replication=replication, ec=ec)
        paths.append(path)

    def issue(cid: int, i: int) -> Event:
        return endpoints[cid].write(paths[cid], data, protocol=protocol, **write_kw)

    return run_closed_loop(testbed, issue, spec, op_bytes=size)


def sweep(fn: Callable[[int], float], points: Iterable[int]) -> dict[int, float]:
    """Evaluate ``fn`` over a parameter sweep; returns {point: value}."""
    return {p: fn(p) for p in points}


def optimal_chunk_size(
    run: Callable[[int], float],
    candidates: Optional[Iterable[int]] = None,
) -> tuple[int, float]:
    """Pick the pipelining chunk size minimising ``run(chunk)`` —
    the paper reports CPU/HyperLoop strategies "with optimal chunk
    size" (§V-B).  Returns (best_chunk, best_latency)."""
    if candidates is None:
        candidates = [8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10]
    best = None
    for c in candidates:
        lat = run(c)
        if best is None or lat < best[1]:
            best = (c, lat)
    assert best is not None
    return best
