"""Counter-based deterministic random streams for huge populations.

The open-loop engine must hand out i.i.d. draws to up to a million
virtual clients without materialising a million ``numpy`` Generator
objects — and, crucially, the *aggregated* flow generator and the
*explicit* per-client reference implementation must consume exactly the
same numbers so their request schedules are byte-identical
(:mod:`repro.workloads.openloop`).

Both needs are met by a stateless counter-based construction: draw
``k`` of stream ``(seed, client, tag)`` is a pure function of its key,

    ``u = u01(seed, client, k, tag)``

computed with the SplitMix64 finalizer (Steele et al., *Fast Splittable
Pseudorandom Number Generators*, OOPSLA'14) over the mixed key words.
SplitMix64 is a bijective avalanche mix — every output bit depends on
every input bit — so structured keys (sequential client ids, sequential
counters) still yield decorrelated uniforms.  There is no hidden state:
any engine that agrees on the key derivation reproduces the stream in
any order, which is the exactness guarantee the aggregation relies on.

All uniforms land in the *open* interval (0, 1): the transforms below
take logs and reciprocals, and an exact 0.0 or 1.0 must be impossible.
"""

from __future__ import annotations

import math
from statistics import NormalDist

__all__ = [
    "u01",
    "exp_gap",
    "pareto",
    "lognormal",
    "TAG_GAP",
    "TAG_OBJ",
    "TAG_SIZE",
    "TAG_STATE",
    "TAG_CLASS",
]

#: draw-purpose tags: distinct tags give independent streams for the
#: same (seed, client, counter) triple
TAG_GAP = 0x67617000      # inter-arrival gap draws
TAG_OBJ = 0x6F626A00      # object-popularity draws
TAG_SIZE = 0x737A0000     # request-size draws
TAG_STATE = 0x73740000    # on/off state-duration draws
TAG_CLASS = 0x636C0000    # population-class assignment draws

_MASK = (1 << 64) - 1
#: golden-ratio increment of the SplitMix64 sequence
_GAMMA = 0x9E3779B97F4A7C15
_NORM = NormalDist()
_log = math.log
_exp = math.exp


def _mix(z: int) -> int:
    """SplitMix64 finalizer: a 64-bit bijection with full avalanche."""
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK
    return z ^ (z >> 31)


def u01(seed: int, client: int, k: int, tag: int) -> float:
    """Uniform draw in (0, 1) for draw ``k`` of stream ``(seed, client,
    tag)`` — stateless, order-independent, PYTHONHASHSEED-immune."""
    z = _mix((seed * _GAMMA + client) & _MASK)
    z = _mix((z + k * _GAMMA + tag) & _MASK)
    # map to (0, 1): use the top 53 bits, then nudge 0 to the smallest
    # representable draw so log()/reciprocal transforms never see 0
    return ((z >> 11) + 0.5) * (1.0 / (1 << 53))


def exp_gap(u: float, rate_hz: float) -> float:
    """Exponential inter-arrival gap in **nanoseconds** for a Poisson
    process of ``rate_hz`` events per simulated second."""
    return -_log(u) / rate_hz * 1e9


def pareto(u: float, alpha: float, x_min: float) -> float:
    """Pareto(Type I) draw: ``x_min * u^(-1/alpha)`` — the heavy-tailed
    workhorse for object sizes and on/off burst durations."""
    return x_min * u ** (-1.0 / alpha)


def lognormal(u: float, median: float, sigma: float) -> float:
    """Lognormal draw via the inverse normal CDF: ``median *
    exp(sigma * z)`` with ``z = Phi^-1(u)``.  One uniform per draw keeps
    the per-client draw counters trivially aligned between engines."""
    return median * _exp(sigma * _NORM.inv_cdf(u))
