"""GF(2^8) arithmetic, numpy-vectorized.

The paper's sPIN-TriEC handlers encode packet payloads in the Galois
field GF(2^8) using a 256x256-byte multiplication lookup table kept in
NIC memory (§VI-B2: *"it allows us to use 256×256-byte lookup table to
implement fast Galois field multiplication. The table is copied into NIC
memory at DFS-initialization time"*).  We build exactly that table —
``MUL_TABLE`` — plus log/exp tables, and expose vectorized primitives
used by both the RS codec and the on-NIC handler cost model.

Field: GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d),
the conventional choice for storage Reed-Solomon codes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PRIMITIVE_POLY",
    "EXP_TABLE",
    "LOG_TABLE",
    "MUL_TABLE",
    "gf_add",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "gf_mul_scalar_vec",
    "gf_mulvec_accumulate",
    "MUL_TABLE_BYTES",
]

PRIMITIVE_POLY = 0x11D


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    exp[255:510] = exp[:255]  # doubled so exp[a+b] never wraps
    # Full 256x256 product table (the on-NIC table of §VI-B2): 64 KiB.
    a = np.arange(256)
    la = log[a][:, None]
    lb = log[a][None, :]
    mul = exp[(la + lb) % 255].astype(np.uint8)
    mul[0, :] = 0
    mul[:, 0] = 0
    return exp, log, mul


EXP_TABLE, LOG_TABLE, MUL_TABLE = _build_tables()

#: NIC memory footprint of the multiplication table (64 KiB).
MUL_TABLE_BYTES = MUL_TABLE.nbytes


def gf_add(a, b):
    """Addition in GF(2^8) is XOR (works element-wise on arrays)."""
    return np.bitwise_xor(a, b)


def gf_mul(a: int, b: int) -> int:
    """Scalar product a*b in GF(2^8)."""
    return int(MUL_TABLE[a, b])


def gf_pow(a: int, n: int) -> int:
    """a**n in GF(2^8) (n may be any integer; a != 0 for negative n)."""
    if a == 0:
        if n < 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^8)")
        return 1 if n == 0 else 0
    return int(EXP_TABLE[(int(LOG_TABLE[a]) * n) % 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse of ``a``; raises on a == 0."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(2^8)")
    return int(EXP_TABLE[255 - int(LOG_TABLE[a])])


def gf_div(a: int, b: int) -> int:
    """a / b in GF(2^8); raises on b == 0."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return int(EXP_TABLE[(int(LOG_TABLE[a]) - int(LOG_TABLE[b])) % 255])


def gf_mul_scalar_vec(scalar: int, vec: np.ndarray) -> np.ndarray:
    """Element-wise ``scalar * vec`` — one row of the 256x256 table.

    This is the exact per-byte operation the sPIN payload handlers run:
    a table row lookup per payload byte (vectorized here with numpy fancy
    indexing instead of the handler's per-byte loop).
    """
    if vec.dtype != np.uint8:
        raise TypeError(f"GF vectors must be uint8, got {vec.dtype}")
    return MUL_TABLE[scalar][vec]


def gf_mulvec_accumulate(acc: np.ndarray, scalar: int, vec: np.ndarray) -> None:
    """In-place ``acc ^= scalar * vec`` (the parity accumulation step).

    In-place per the HPC guide: no temporaries beyond the table gather.
    """
    if acc.shape != vec.shape:
        raise ValueError(f"shape mismatch: {acc.shape} vs {vec.shape}")
    np.bitwise_xor(acc, MUL_TABLE[scalar][vec], out=acc)
