"""Systematic Reed-Solomon RS(k, m) encode / decode / repair.

This is the data-processing substrate behind the paper's erasure-coding
policy (§VI): data is split into ``k`` chunks and stored with ``m``
parity chunks; any ``m`` chunk losses are recoverable (RS is maximum
distance separable).  The codec also exposes the *incremental* parity
path used by sPIN-TriEC: a data node with chunk ``j`` computes its
intermediate parity contribution ``enc[k+i, j] * chunk_j`` per parity
stream ``i``, and the parity node XOR-accumulates the ``k``
contributions (§VI-B2/B3, Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .gf256 import gf_mul_scalar_vec, gf_mulvec_accumulate
from .matrix import SingularMatrixError, gf_mat_inv, gf_matmul, systematic_encoding_matrix

__all__ = ["RSCode", "pad_to_chunks", "DecodeError"]


class DecodeError(ValueError):
    """Raised when too many chunks are missing to decode."""


@dataclass(frozen=True)
class _Scheme:
    k: int
    m: int


class RSCode:
    """A systematic RS(k, m) code over GF(2^8).

    >>> rs = RSCode(3, 2)
    >>> chunks = rs.split(np.arange(30, dtype=np.uint8))
    >>> encoded = rs.encode(chunks)           # 5 chunks: 3 data + 2 parity
    >>> rs.decode({0: encoded[0], 3: encoded[3], 4: encoded[4]})[1][:3]
    array([10, 11, 12], dtype=uint8)
    """

    def __init__(self, k: int, m: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        if m < 0:
            raise ValueError("m must be >= 0")
        self.k = k
        self.m = m
        self.n = k + m
        self.encoding_matrix = systematic_encoding_matrix(k, m)
        # Parity rows only — what data-node handlers carry (m x k).
        self.parity_matrix = self.encoding_matrix[k:, :]

    # ------------------------------------------------------------- split
    def split(self, data: np.ndarray) -> list[np.ndarray]:
        """Split a buffer into k equal chunks (zero-padding the tail)."""
        return pad_to_chunks(data, self.k)

    # ------------------------------------------------------------ encode
    def encode(self, chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Full encode: k data chunks -> k data + m parity chunks."""
        chunks = self._check_chunks(chunks)
        stacked = np.stack(chunks)  # (k, L)
        parity = gf_matmul(self.parity_matrix, stacked)
        return list(stacked) + [parity[i] for i in range(self.m)]

    def parity_coefficient(self, parity_idx: int, data_idx: int) -> int:
        """enc[k + parity_idx, data_idx] — the per-byte multiplier a data
        node applies when producing an intermediate parity packet."""
        return int(self.parity_matrix[parity_idx, data_idx])

    def intermediate_parity(self, parity_idx: int, data_idx: int, chunk: np.ndarray) -> np.ndarray:
        """Intermediate parity contribution of one data chunk for one
        parity stream (what a sPIN-TriEC data node sends on the wire)."""
        return gf_mul_scalar_vec(self.parity_coefficient(parity_idx, data_idx), chunk)

    @staticmethod
    def accumulate(acc: np.ndarray, contribution: np.ndarray) -> None:
        """XOR a contribution into a parity accumulator (parity-node op)."""
        np.bitwise_xor(acc, contribution, out=acc)

    def parity_from_intermediates(
        self, parity_idx: int, chunks: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Reference final parity computed the TriEC way: per-data-node
        intermediate contributions XOR-folded together (Fig. 14)."""
        chunks = self._check_chunks(chunks)
        acc = np.zeros_like(chunks[0])
        for j, c in enumerate(chunks):
            gf_mulvec_accumulate(acc, self.parity_coefficient(parity_idx, j), c)
        return acc

    # ------------------------------------------------------------ decode
    def decode(self, available: dict[int, np.ndarray]) -> list[np.ndarray]:
        """Recover the k data chunks from any k available encoded chunks.

        ``available`` maps encoded-chunk index (0..k+m-1) to its bytes.
        """
        if len(available) < self.k:
            raise DecodeError(
                f"need at least k={self.k} chunks, got {len(available)}"
            )
        for idx in available:
            if not 0 <= idx < self.n:
                raise DecodeError(f"chunk index {idx} out of range 0..{self.n - 1}")
        lengths = {v.nbytes for v in available.values()}
        if len(lengths) != 1:
            raise DecodeError(f"chunk length mismatch: {sorted(lengths)}")

        # Fast path: all data chunks survived.
        if all(i in available for i in range(self.k)):
            return [np.asarray(available[i], dtype=np.uint8) for i in range(self.k)]

        use = sorted(available)[: self.k]
        sub = self.encoding_matrix[use, :]  # (k, k)
        try:
            inv = gf_mat_inv(sub)
        except SingularMatrixError as e:  # cannot happen for Vandermonde RS
            raise DecodeError(f"singular decode matrix: {e}") from e
        stacked = np.stack([np.asarray(available[i], dtype=np.uint8) for i in use])
        data = gf_matmul(inv, stacked)
        return [data[i] for i in range(self.k)]

    def repair(
        self, available: dict[int, np.ndarray], missing: Sequence[int]
    ) -> dict[int, np.ndarray]:
        """Recompute specific missing encoded chunks (data or parity)."""
        data = self.decode(available)
        full = self.encode(data)
        return {i: full[i] for i in missing}

    def join(self, data_chunks: Sequence[np.ndarray], length: Optional[int] = None) -> np.ndarray:
        """Concatenate data chunks, trimming padding to ``length`` bytes."""
        out = np.concatenate([np.asarray(c, dtype=np.uint8) for c in data_chunks])
        return out if length is None else out[:length]

    # ------------------------------------------------------------- misc
    def _check_chunks(self, chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        if len(chunks) != self.k:
            raise ValueError(f"expected {self.k} chunks, got {len(chunks)}")
        arrs = [np.asarray(c, dtype=np.uint8) for c in chunks]
        if len({a.nbytes for a in arrs}) != 1:
            raise ValueError("all chunks must have equal length")
        return arrs

    @property
    def storage_overhead(self) -> float:
        """Extra storage fraction: m/k (vs k-1 for k-way replication)."""
        return self.m / self.k

    def __repr__(self) -> str:  # pragma: no cover
        return f"RSCode(k={self.k}, m={self.m})"


def pad_to_chunks(data: np.ndarray, k: int) -> list[np.ndarray]:
    """Split ``data`` into k equal uint8 chunks, zero-padding the tail."""
    data = np.asarray(data, dtype=np.uint8).ravel()
    chunk_len = -(-max(data.nbytes, 1) // k)
    padded = np.zeros(chunk_len * k, dtype=np.uint8)
    padded[: data.nbytes] = data
    return [padded[i * chunk_len : (i + 1) * chunk_len] for i in range(k)]
