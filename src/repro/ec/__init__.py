"""Erasure-coding substrate: GF(2^8) and systematic Reed-Solomon."""

from .gf256 import (
    EXP_TABLE,
    LOG_TABLE,
    MUL_TABLE,
    MUL_TABLE_BYTES,
    PRIMITIVE_POLY,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_scalar_vec,
    gf_mulvec_accumulate,
    gf_pow,
)
from .matrix import (
    SingularMatrixError,
    gf_mat_inv,
    gf_matmul,
    systematic_encoding_matrix,
    vandermonde,
)
from .reed_solomon import DecodeError, RSCode, pad_to_chunks

__all__ = [
    "DecodeError",
    "EXP_TABLE",
    "LOG_TABLE",
    "MUL_TABLE",
    "MUL_TABLE_BYTES",
    "PRIMITIVE_POLY",
    "RSCode",
    "SingularMatrixError",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_mat_inv",
    "gf_matmul",
    "gf_mul",
    "gf_mul_scalar_vec",
    "gf_mulvec_accumulate",
    "gf_pow",
    "pad_to_chunks",
    "systematic_encoding_matrix",
    "vandermonde",
]
