"""Matrix algebra over GF(2^8).

Supports the Reed-Solomon codec: matrix products, Gauss-Jordan
inversion, and construction of systematic encoding matrices
(Vandermonde-derived, as in classic storage RS implementations).
"""

from __future__ import annotations

import numpy as np

from .gf256 import EXP_TABLE, LOG_TABLE, gf_inv, gf_mul

__all__ = [
    "gf_matmul",
    "gf_mat_inv",
    "vandermonde",
    "systematic_encoding_matrix",
    "SingularMatrixError",
]


class SingularMatrixError(ValueError):
    """Raised when a GF matrix has no inverse (decode impossible)."""


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^8).

    Vectorized via log/exp: for each output cell we gather
    ``exp[log a + log b]`` and XOR-reduce along the inner axis.  Zeros
    are masked (log 0 is undefined).
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"bad shapes for matmul: {a.shape} x {b.shape}")
    # products[i, k, j] = a[i, k] * b[k, j]
    la = LOG_TABLE[a][:, :, None]          # (m, n, 1)
    lb = LOG_TABLE[b][None, :, :]          # (1, n, p)
    prod = EXP_TABLE[(la + lb) % 255].astype(np.uint8)
    nz = (a[:, :, None] != 0) & (b[None, :, :] != 0)
    prod = np.where(nz, prod, np.uint8(0))
    out = np.bitwise_xor.reduce(prod, axis=1)
    return out.astype(np.uint8)


def gf_mat_inv(m: np.ndarray) -> np.ndarray:
    """Gauss-Jordan inversion over GF(2^8)."""
    m = np.asarray(m, dtype=np.uint8)
    n = m.shape[0]
    if m.shape != (n, n):
        raise ValueError(f"matrix must be square, got {m.shape}")
    # Work in an augmented [m | I] array of ints for simplicity.
    aug = np.concatenate([m.copy(), np.eye(n, dtype=np.uint8)], axis=1)
    for col in range(n):
        # pivot
        pivot = None
        for row in range(col, n):
            if aug[row, col] != 0:
                pivot = row
                break
        if pivot is None:
            raise SingularMatrixError(f"singular at column {col}")
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        # normalise pivot row
        inv = gf_inv(int(aug[col, col]))
        if inv != 1:
            from .gf256 import MUL_TABLE

            aug[col] = MUL_TABLE[inv][aug[col]]
        # eliminate other rows
        for row in range(n):
            if row != col and aug[row, col] != 0:
                factor = int(aug[row, col])
                from .gf256 import MUL_TABLE

                aug[row] ^= MUL_TABLE[factor][aug[col]]
    return aug[:, n:].copy()


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Vandermonde matrix V[i, j] = i**j over GF(2^8).

    Any ``cols`` rows of this matrix are linearly independent as long as
    ``rows <= 256``, which is what makes RS maximum distance separable.
    """
    if rows > 256:
        raise ValueError("GF(2^8) supports at most 256 Vandermonde rows")
    v = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        acc = 1
        for j in range(cols):
            v[i, j] = acc
            acc = gf_mul(acc, i)
    return v


def systematic_encoding_matrix(k: int, m: int) -> np.ndarray:
    """The (k+m) x k systematic RS encoding matrix.

    Built from a (k+m) x k Vandermonde matrix by right-multiplying with
    the inverse of its top k x k block, so the top becomes the identity:
    the first k encoded chunks *are* the data chunks (§VI: "RS codes are
    systematic").  The bottom m rows are the parity coefficients that the
    sPIN data-node handlers apply per byte.
    """
    if k < 1 or m < 0:
        raise ValueError(f"invalid RS({k},{m})")
    if k + m > 256:
        raise ValueError("RS(k, m) over GF(2^8) needs k+m <= 256")
    v = vandermonde(k + m, k)
    top_inv = gf_mat_inv(v[:k, :k])
    enc = gf_matmul(v, top_inv)
    # By construction the top block is the identity.
    assert np.array_equal(enc[:k], np.eye(k, dtype=np.uint8))
    return enc
