"""Analytic models and result checking: Little's-law NIC memory (Fig. 4),
HPU budgets (Fig. 16), the Table III survey, and shape assertions."""

from .budget import handler_budget_ns, hpus_needed, packet_interarrival_ns
from .littles_law import (
    Fig4Point,
    concurrent_writes,
    max_concurrent_writes,
    required_memory_bytes,
)
from .shapes import (
    ShapeError,
    assert_crossover_within,
    assert_faster,
    assert_monotonic,
    assert_ratio_between,
    check,
    crossover_point,
    relative_gap,
)
from .survey import DFS_SURVEY, DfsSurveyEntry, Support, render_table

__all__ = [
    "DFS_SURVEY",
    "DfsSurveyEntry",
    "Fig4Point",
    "ShapeError",
    "Support",
    "assert_crossover_within",
    "assert_faster",
    "assert_monotonic",
    "assert_ratio_between",
    "check",
    "concurrent_writes",
    "crossover_point",
    "handler_budget_ns",
    "hpus_needed",
    "max_concurrent_writes",
    "packet_interarrival_ns",
    "relative_gap",
    "render_table",
    "required_memory_bytes",
]
