"""Fig. 4: worst-case NIC memory for concurrent write state (§III-B2).

Each in-flight write holds a 77-byte descriptor in NIC memory for its
whole duration.  The paper applies Little's law — L = λW — assuming a
constant flow of fixed-size writes arriving at full line rate (handlers
never the bottleneck):

* arrival rate λ = bandwidth / write_size;
* residence time W = time from header arrival to completion ack —
  lower-bounded by the write's own serialization time plus fixed
  processing/flush latency;
* concurrent writes L = λ·W, NIC memory = L × 77 B.

With 6 MiB available for request state, a storage node can track
~82 K concurrent writes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import PsPinParams, SimParams

__all__ = ["required_memory_bytes", "concurrent_writes", "max_concurrent_writes", "Fig4Point"]


@dataclass(frozen=True)
class Fig4Point:
    write_bytes: int
    n_writes: int
    required_bytes: int


def required_memory_bytes(
    n_writes: int, descriptor_bytes: int = 77
) -> int:
    """Worst-case NIC memory to serve ``n_writes`` concurrent writes."""
    if n_writes < 0:
        raise ValueError("n_writes must be >= 0")
    return n_writes * descriptor_bytes


def concurrent_writes(
    write_bytes: int,
    params: SimParams,
    extra_latency_ns: float = 1000.0,
) -> float:
    """Little's-law estimate of writes in flight at full line rate.

    ``extra_latency_ns`` models fixed per-write residence beyond the
    transfer itself (handler chain, PCIe flush, ack turnaround).
    """
    if write_bytes <= 0:
        raise ValueError("write size must be positive")
    bw = params.net.bandwidth_gbps  # Gbit/s == bits/ns
    arrival_rate = bw / (write_bytes * 8.0)  # writes per ns at line rate
    residence = write_bytes * 8.0 / bw + extra_latency_ns
    return arrival_rate * residence


def max_concurrent_writes(pspin: PsPinParams) -> int:
    """The ~82 K figure: usable request memory / descriptor size."""
    usable = (
        pspin.n_clusters * pspin.l1_bytes_per_cluster
        + pspin.l2_bytes
        - pspin.dfs_wide_state_bytes
    )
    return usable // pspin.request_descriptor_bytes
