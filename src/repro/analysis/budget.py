"""Handler cycle budgets and HPU provisioning (Fig. 11 lines, Fig. 16).

To sustain line rate R (Gbit/s) with packets of ``pkt_bytes``, packets
arrive every ``pkt_bytes*8/R`` ns.  With H HPUs, each handler may take up
to ``H × inter-arrival`` ns before the HPU pool becomes the bottleneck
(§VI-C: "with 2 KiB packets and 32 HPUs, each handler should not last
more than ~1310 ns").  Inverting gives the HPU count needed for a given
mean handler duration (Fig. 16 right: RS(6,3) needs ~512 HPUs at
400 Gbit/s).
"""

from __future__ import annotations

import math

__all__ = ["packet_interarrival_ns", "handler_budget_ns", "hpus_needed"]


def packet_interarrival_ns(rate_gbps: float, pkt_bytes: int) -> float:
    """Time between packet arrivals at line rate."""
    if rate_gbps <= 0 or pkt_bytes <= 0:
        raise ValueError("rate and packet size must be positive")
    return pkt_bytes * 8.0 / rate_gbps


def handler_budget_ns(rate_gbps: float, pkt_bytes: int, n_hpus: int) -> float:
    """Max mean handler duration sustaining ``rate_gbps``."""
    if n_hpus <= 0:
        raise ValueError("need at least one HPU")
    return n_hpus * packet_interarrival_ns(rate_gbps, pkt_bytes)


def hpus_needed(rate_gbps: float, pkt_bytes: int, handler_ns: float) -> int:
    """HPUs required so handlers of ``handler_ns`` keep up with line rate."""
    if handler_ns < 0:
        raise ValueError("handler duration must be >= 0")
    if handler_ns == 0:
        return 1
    return max(1, math.ceil(handler_ns / packet_interarrival_ns(rate_gbps, pkt_bytes)))
