"""Table III: survey of DFS characteristics (§VIII).

The paper's related-work table: RDMA support and policy coverage
(client authentication, replication, erasure coding) across 14
production and research distributed file systems.  Kept as a structured
dataset so the benchmark harness can regenerate the table and tests can
check its claims (e.g. no surveyed RDMA-native DFS offloads all three
policies — the gap this paper fills).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Support", "DfsSurveyEntry", "DFS_SURVEY", "render_table"]


class Support(Enum):
    YES = "provided"
    PARTIAL = "partially provided"
    NO = "not provided"

    @property
    def symbol(self) -> str:
        return {"provided": "Y", "partially provided": "~", "not provided": "x"}[self.value]


@dataclass(frozen=True)
class DfsSurveyEntry:
    name: str
    rdma: Support
    auth: Support
    replication: Support
    erasure_coding: Support
    notes: str = ""


# Table III of the paper (Y = provided, ~ = partial, x = not provided).
DFS_SURVEY: tuple[DfsSurveyEntry, ...] = (
    DfsSurveyEntry("Lustre", Support.YES, Support.YES, Support.NO, Support.NO, "RPC+RDMA"),
    DfsSurveyEntry("IBM Spectrum Scale", Support.NO, Support.PARTIAL, Support.PARTIAL, Support.YES, ""),
    DfsSurveyEntry("BeeGFS", Support.YES, Support.YES, Support.PARTIAL, Support.NO, "RDMA compatible"),
    DfsSurveyEntry("Ceph", Support.NO, Support.YES, Support.PARTIAL, Support.YES, ""),
    DfsSurveyEntry("HDFS", Support.PARTIAL, Support.YES, Support.YES, Support.YES, "RPC+RDMA [50]"),
    DfsSurveyEntry("Intel DAOS", Support.PARTIAL, Support.PARTIAL, Support.YES, Support.YES, "RPC+RDMA"),
    DfsSurveyEntry("MadFS", Support.PARTIAL, Support.YES, Support.NO, Support.NO, ""),
    DfsSurveyEntry("WekaIO Matrix", Support.YES, Support.YES, Support.NO, Support.YES, ""),
    DfsSurveyEntry("PanFS", Support.PARTIAL, Support.PARTIAL, Support.NO, Support.YES, "RPC+RDMA"),
    DfsSurveyEntry("OrangeFS", Support.YES, Support.YES, Support.PARTIAL, Support.NO, "RPC+RDMA [54]"),
    DfsSurveyEntry("Gluster", Support.YES, Support.YES, Support.PARTIAL, Support.YES, ""),
    DfsSurveyEntry("Orion", Support.PARTIAL, Support.NO, Support.YES, Support.NO, "Client-based replication."),
    DfsSurveyEntry("Octopus", Support.PARTIAL, Support.YES, Support.NO, Support.NO, "RPC+RDMA"),
    DfsSurveyEntry("FileMR", Support.PARTIAL, Support.YES, Support.YES, Support.NO, ""),
)


def render_table() -> str:
    """Render Table III as fixed-width text."""
    header = f"{'DFS':<22} {'RDMA':<5} {'Aut.':<5} {'Rep.':<5} {'EC':<4} Notes"
    lines = [header, "-" * len(header)]
    for e in DFS_SURVEY:
        lines.append(
            f"{e.name:<22} {e.rdma.symbol:<5} {e.auth.symbol:<5} "
            f"{e.replication.symbol:<5} {e.erasure_coding.symbol:<4} {e.notes}"
        )
    return "\n".join(lines)
