"""Shape assertions for experiment results.

The reproduction targets the *shape* of the paper's results — who wins,
by roughly what factor, where the crossovers fall — not the absolute
nanoseconds of the authors' configuration (DESIGN.md §6).  These helpers
make those claims executable; benchmarks and tests call them, so every
claimed shape is checked on every run.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "ShapeError",
    "check",
    "assert_monotonic",
    "assert_faster",
    "assert_ratio_between",
    "crossover_point",
    "assert_crossover_within",
    "relative_gap",
]


class ShapeError(AssertionError):
    """A qualitative claim from the paper failed to reproduce."""


def check(condition: bool, claim: str) -> None:
    if not condition:
        raise ShapeError(f"shape violated: {claim}")


def assert_monotonic(values: Sequence[float], increasing: bool = True, claim: str = "") -> None:
    ok = all(
        (b >= a) if increasing else (b <= a)
        for a, b in zip(values, values[1:])
    )
    check(ok, claim or f"expected monotonic {'increase' if increasing else 'decrease'}: {values}")


def assert_faster(fast: float, slow: float, claim: str) -> None:
    check(fast < slow, f"{claim} (got fast={fast:.1f} vs slow={slow:.1f})")


def relative_gap(a: float, b: float) -> float:
    """(a - b) / b — how much slower a is than b."""
    return (a - b) / b


def assert_ratio_between(
    numerator: float, denominator: float, lo: float, hi: float, claim: str
) -> None:
    r = numerator / denominator
    check(lo <= r <= hi, f"{claim} (ratio {r:.2f} outside [{lo}, {hi}])")


def crossover_point(
    series_a: Mapping[int, float], series_b: Mapping[int, float]
) -> int | None:
    """First x (sorted) where series_a stops being faster than series_b.

    Returns None if a is faster everywhere (or slower everywhere from
    the start).
    """
    xs = sorted(set(series_a) & set(series_b))
    was_faster = None
    for x in xs:
        faster = series_a[x] < series_b[x]
        if was_faster is True and not faster:
            return x
        if was_faster is None:
            was_faster = faster
            if not faster:
                return xs[0]
    return None


def assert_crossover_within(
    series_a: Mapping[int, float],
    series_b: Mapping[int, float],
    lo: int,
    hi: int,
    claim: str,
) -> int:
    """Assert a beats b for small x and loses for large x, with the
    crossover in [lo, hi].  Returns the crossover x."""
    xs = sorted(set(series_a) & set(series_b))
    check(len(xs) >= 2, f"{claim}: need >= 2 common points")
    check(series_a[xs[0]] < series_b[xs[0]], f"{claim}: a must win at x={xs[0]}")
    check(series_a[xs[-1]] > series_b[xs[-1]], f"{claim}: b must win at x={xs[-1]}")
    x = crossover_point(series_a, series_b)
    check(x is not None and lo <= x <= hi, f"{claim}: crossover {x} outside [{lo}, {hi}]")
    return x  # type: ignore[return-value]
