"""``python -m repro sanitize`` — run workloads under the sanitizer.

Three modes, all exiting 0 only when every run is finding-free:

* default: the scenario matrix (quick variants unless ``--full``)
  through :func:`repro.scenarios.run_scenario` with ``sanitize=True``;
* ``--demo``: one protocol point (replicated spin write), optionally
  under seeded faults — the CI stage runs this with ``--loss``;
* ``--partitions K``: the fixed multi-protocol parallel scenario twice
  under the boundary auditor, then digest comparison — a divergence is
  reported as its first (window, rank) instead of "bytes differ".
"""

from __future__ import annotations

import argparse
from typing import Optional

__all__ = ["main"]


def _run_matrix(args) -> int:
    from ..runner import point_seed
    from ..scenarios import MATRIX_NAMES, get, run_scenario

    failures = 0
    for name in MATRIX_NAMES:
        spec = get(name, quick=not args.full)
        seed = args.seed if args.seed is not None else point_seed(
            "scenario_matrix", {"scenario": spec.name, "quick": not args.full}
        )
        timings: dict = {}
        row = run_scenario(spec, seed=seed, timings=timings, sanitize=True)
        report = timings["sanitizer"]
        status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
        print(f"  {name:<18} {status:<18} "
              f"(events={timings['events']}, quiesced={row['quiesced']}, "
              f"digest={row['schedule_digest']})")
        if not report.ok:
            failures += 1
            print(report.summary())
    if failures:
        print(f"\nsanitize: FAIL — {failures}/{len(MATRIX_NAMES)} scenarios "
              f"reported findings")
        return 1
    print(f"\nsanitize: {len(MATRIX_NAMES)} scenarios clean")
    return 0


def _run_demo(args) -> int:
    import numpy as np

    from ..dfs.client import DfsClient
    from ..dfs.cluster import build_testbed
    from ..dfs.layout import ReplicationSpec
    from ..experiments.common import installer_for
    from ..params import SimParams

    params = SimParams()
    faulty = args.loss > 0 or args.corrupt > 0
    if faulty:
        params = params.with_faults(
            loss_prob=args.loss, corrupt_prob=args.corrupt, seed=args.seed or 0,
            retransmit=True,
        )
    tb = build_testbed(n_storage=8, params=params, telemetry=True,
                       sanitize=True)
    installer = installer_for(args.protocol)
    if installer is not None:
        installer(tb)
    c = DfsClient(tb)
    data = np.random.default_rng(0).integers(0, 256, 64 * 1024, dtype=np.uint8)
    c.create("/san", size=data.nbytes, replication=ReplicationSpec(k=3))
    for _ in range(3):  # very lossy links can exhaust transport retries
        out = c.write_sync("/san", data, protocol=args.protocol)
        if out.ok:
            break
    assert out.ok, out.nacks
    # drain trailing acks, retransmit watchdogs and accelerator message
    # runs (a late duplicate can re-open a run that only closes once the
    # transport re-delivers its header) before the leak sweep
    def busy() -> bool:
        if any(h.nic.pending_count() for h in [tb.clients[0], *tb.storage_nodes]):
            return True
        return any(
            sn.accelerator is not None and sn.accelerator.in_flight_messages
            for sn in tb.storage_nodes
        )

    tb.run(until=tb.sim.now + 200_000)
    deadline = tb.sim.now + 200_000_000
    while faulty and tb.sim.now < deadline and busy():
        tb.run(until=tb.sim.now + 1_000_000)
    report = tb.sanitize_report()
    print(f"demo: {args.protocol} k=3 write "
          f"(loss={args.loss:g}, corrupt={args.corrupt:g}), "
          f"{tb.sim.events_dispatched} events")
    print(report.summary())
    return 0 if report.ok else 1


def _run_partitions(args) -> int:
    import numpy as np

    from . import first_divergence, report_for
    from ..dfs.client import DfsClient
    from ..dfs.cluster import build_testbed
    from ..experiments.common import installer_for

    def one_run():
        tb = build_testbed(n_storage=8, n_clients=2, telemetry=True,
                           partitions=args.partitions, sanitize=True)
        installer = installer_for("spin")
        if installer is not None:
            installer(tb)
        c = DfsClient(tb)
        c.create("/f", size=64 * 1024)
        data = np.random.default_rng(1).integers(0, 256, 64 * 1024,
                                                 dtype=np.uint8)
        for i in range(4):
            assert c.write_sync("/f", data, protocol="spin").ok
        tb.run(until=30_000_000.0)
        return tb.sanitize_report(), tb.sim.audit

    report_a, audit_a = one_run()
    report_b, audit_b = one_run()
    div = first_divergence(audit_a, audit_b)
    print(f"partitioned audit ({args.partitions}-way): "
          f"{audit_a.messages} boundary messages over "
          f"{len(audit_a.digests)} (window, rank) digests per run")
    ok = True
    if div is not None:
        w, r, da, db = div
        print(f"DIVERGENCE at window {w}, rank {r}: "
              f"{da[:16] or '<none>'} vs {db[:16] or '<none>'}")
        ok = False
    else:
        print("runs byte-identical at every (window, rank)")
    for tag, rep in (("run A", report_a), ("run B", report_b)):
        print(f"{tag}: {rep.summary()}")
        ok = ok and rep.ok
    return 0 if ok else 1


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro sanitize",
        description="Run workloads under the repro.simsan runtime "
                    "sanitizer (schedule races, leaks, orphaned spans, "
                    "cross-partition divergence). Exit 0 = clean.")
    ap.add_argument("--demo", action="store_true",
                    help="one replicated protocol write instead of the "
                         "scenario matrix (combine with --loss)")
    ap.add_argument("--protocol", default="spin",
                    help="--demo protocol (default spin)")
    ap.add_argument("--loss", type=float, default=0.0, metavar="P",
                    help="--demo per-packet drop probability")
    ap.add_argument("--corrupt", type=float, default=0.0, metavar="P",
                    help="--demo per-packet corruption probability")
    ap.add_argument("--partitions", type=int, default=0, metavar="K",
                    help="audit the K-way partitioned engine's boundary "
                         "traffic across two runs")
    ap.add_argument("--full", action="store_true",
                    help="full-size scenarios (default: quick variants)")
    ap.add_argument("--seed", type=int, default=None,
                    help="seed override (default: per-point sweep seeds)")
    args = ap.parse_args(argv)

    if args.partitions:
        return _run_partitions(args)
    if args.demo:
        return _run_demo(args)
    return _run_matrix(args)
