"""Finding/report types for the runtime sanitizer.

A :class:`Finding` is one detected violation — a leaked resource claim,
a schedule-order hazard, an orphaned request span.  Findings carry the
simulated time of detection and, for acquisition-tracked kinds, the
Python backtrace of the acquiring call site, so a leak report points at
the code that took the claim rather than at the quiesce sweep that
noticed it.

Kinds are stable strings (tests and CI match on them):

=====================  =====================================================
``schedule-race``      pop order vs a same-fire-time entry from a different
                       coroutine was decided by insertion order alone
``clock-rewind``       an entry was scheduled (or popped) behind the clock
``stale-injection``    a cross-partition boundary message landed behind the
                       destination partition's clock
``leak-resource``      Resource slot still held / waiter still queued at
                       quiesce
``leak-store``         Store getter/putter still blocked at quiesce
``leak-container``     Container units never returned at quiesce
``leak-packet-train``  a coalesced packet train still in flight at quiesce
``leak-greq``          an RDMA logical request still pending at quiesce
``leak-accel``         accelerator messages still in flight at quiesce
``orphan-span``        request span opened but not closed within budget
``boundary-divergence``  cross-partition audit digests diverged
=====================  =====================================================
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

__all__ = ["Finding", "Report"]


@dataclasses.dataclass
class Finding:
    """One sanitizer violation."""

    kind: str
    t: float  # simulated time (ns) at detection
    message: str
    where: str = ""  # acquisition backtrace / origin labels, if tracked

    def format(self) -> str:
        lines = [f"[{self.kind}] t={self.t:.1f}ns {self.message}"]
        if self.where:
            lines += ["    " + ln for ln in self.where.splitlines()]
        return "\n".join(lines)


@dataclasses.dataclass
class Report:
    """All findings of one sanitized run plus detector statistics."""

    findings: list[Finding] = dataclasses.field(default_factory=list)
    stats: dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out

    def kinds(self) -> set[str]:
        return {f.kind for f in self.findings}

    def merge(self, other: "Report") -> "Report":
        self.findings.extend(other.findings)
        for k, v in other.stats.items():
            if isinstance(v, (int, float)) and isinstance(self.stats.get(k), (int, float)):
                self.stats[k] += v
            else:
                self.stats.setdefault(k, v)
        return self

    def summary(self, max_findings: Optional[int] = 20) -> str:
        if self.ok:
            extra = ", ".join(
                f"{k}={v}" for k, v in sorted(self.stats.items())
                if isinstance(v, (int, float))
            )
            return f"simsan clean: 0 findings ({extra})" if extra else "simsan clean: 0 findings"
        shown = self.findings if max_findings is None else self.findings[:max_findings]
        lines = [
            f"simsan: {len(self.findings)} finding(s) "
            f"({', '.join(f'{k}={v}' for k, v in sorted(self.counts().items()))})"
        ]
        lines += [f.format() for f in shown]
        if len(self.findings) > len(shown):
            lines.append(f"... and {len(self.findings) - len(shown)} more")
        return "\n".join(lines)
