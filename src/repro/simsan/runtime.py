"""The runtime sanitizer: instrumented kernel loops + claim tracking.

Attached to a kernel via ``Simulator(sanitize=True)``.  The engine's
hot loops are untouched when the sanitizer is off (``sim.sanitizer is
None`` costs one attribute check per *run call*, not per event); when it
is on, ``run()``/``run_window()``/``run_until_event()`` delegate to the
instrumented loops here, which preserve the serial kernel's semantics
exactly — same clock contract, same exception behaviour, same
self-profile counters — while observing every heap pop.

Detectors (see :mod:`repro.simsan.findings` for the kind strings):

* **schedule races** — every push is attributed to the dispatch context
  that made it (the coroutine being resumed, the event being fired, or
  "driver" for pushes from outside the loop).  A pop whose fire time
  ties the next heap entry, where the two entries come from *different
  coroutines* that scheduled them at *different* simulated times, is
  order-dependent: the tie-break (insertion order) is the only thing
  keeping the schedule stable, and refactoring either coroutine flips
  it.  Fan-out ties pushed in the same instant (broadcast wake-ups,
  synchronized bursts) share a common cause and are not flagged unless
  ``strict_ties`` is set.
* **clock rewinds** — an entry scheduled behind its own push time, or
  popped behind ``now`` (recorded before the kernel's "time went
  backwards" error propagates) — the parallel-engine bug class.
* **resource leaks** — Resource/Store/Container register themselves at
  construction and record acquisition backtraces per claim; ports, NICs
  and accelerators adopt in with their in-flight state.  At
  :meth:`check_quiesce` anything still held is reported with the
  backtrace of the call site that took it.
* **orphaned completions** — request spans opened in telemetry but not
  closed within ``span_budget_ns`` of simulated time.

The sanitizer only observes: it never creates events, never touches
``_seq``, and therefore never perturbs the schedule — a sanitized run
produces byte-identical schedules/digests to an unsanitized one.
"""

from __future__ import annotations

import hashlib
import heapq
import time
import traceback
from typing import Any, Optional

from ..simnet.engine import (
    _DISPATCHED,
    Event,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .findings import Finding, Report

__all__ = ["Sanitizer"]

_DRIVER = ("driver", None)


def _item_label(item: Any) -> str:
    """Deterministic label for a heap item (no ids, no addresses)."""
    if isinstance(item, Process):
        return f"proc:{item.name}"
    if isinstance(item, Timeout):
        return "timeout"
    if isinstance(item, Event):
        return f"event:{item.name or '?'}"
    owner = getattr(item, "__self__", None)
    qn = getattr(item, "__qualname__", None) or type(item).__name__
    if owner is not None:
        oname = getattr(owner, "name", None)
        if isinstance(oname, str) and oname:
            return f"fn:{qn}@{oname}"
    return f"fn:{qn}"


def _callback_label(cb: Any, fallback: str) -> str:
    """Attribute pushes made by a callback to the coroutine it resumes."""
    owner = getattr(cb, "__self__", None)
    if isinstance(owner, Process):
        return f"proc:{owner.name}"
    return fallback


class Sanitizer:
    """Per-simulator runtime sanitizer (see module docstring)."""

    def __init__(
        self,
        sim: Simulator,
        window_ns: float = 100_000.0,
        span_budget_ns: float = 5_000_000.0,
        strict_ties: bool = False,
        max_findings: int = 1000,
    ) -> None:
        self.sim = sim
        self.window_ns = window_ns
        self.span_budget_ns = span_budget_ns
        self.strict_ties = strict_ties
        self.max_findings = max_findings
        self.findings: list[Finding] = []
        #: per-window sha256 digests of the heap-pop order:
        #: list of (window_index, hexdigest)
        self.pop_digests: list[tuple[int, str]] = []
        # push attribution: seq -> (origin label, push sim-time)
        self._origins: dict[int, tuple[str, Optional[float]]] = {}
        # claim backtraces: (kind, key) -> (label, t_acquired, backtrace)
        self._claims: dict[tuple[str, Any], tuple[str, float, str]] = {}
        # FIFO grant ledgers for Containers (puts are unkeyed):
        # id(container) -> list of [amount, t, backtrace]
        self._cont_grants: dict[int, list[list[Any]]] = {}
        # components swept at quiesce: (kind, obj)
        self._adopted: list[tuple[str, Any]] = []
        # origin labels whose same-time coincidence is *designed* (pacing
        # pipelines replaying shared precomputed timestamp arrays)
        self._coincident: set[str] = set()
        self._cur_window = -1
        self._h = hashlib.sha256()
        self._win_pops = 0
        # detector statistics (cheap counters, exposed via report())
        self.pops = 0
        self.ties_seen = 0
        self.ties_cross_origin = 0

    # ------------------------------------------------------------ findings
    def _find(self, kind: str, message: str, where: str = "") -> None:
        if len(self.findings) < self.max_findings:
            self.findings.append(Finding(kind, self.sim.now, message, where))

    def report(self) -> Report:
        self._flush_window()
        return Report(
            findings=list(self.findings),
            stats={
                "pops": self.pops,
                "ties_seen": self.ties_seen,
                "ties_cross_origin": self.ties_cross_origin,
                "windows": len(self.pop_digests),
                "claims_open": len(self._claims),
            },
        )

    # ----------------------------------------------------- claim tracking
    @staticmethod
    def _backtrace(skip: int = 3, depth: int = 6) -> str:
        # skip the sanitizer + hook frames; keep the acquiring call chain
        frames = traceback.extract_stack()[:-skip][-depth:]
        return "\n".join(
            f"{f.filename}:{f.lineno} in {f.name}" for f in frames
        )

    def claim(self, kind: str, key: Any, label: str) -> None:
        """Record an acquisition (backtrace included) under (kind, key)."""
        self._claims[(kind, key)] = (label, self.sim.now, self._backtrace())

    def retire(self, kind: str, key: Any) -> None:
        self._claims.pop((kind, key), None)

    def claim_info(self, kind: str, key: Any) -> tuple[str, float, str]:
        return self._claims.get((kind, key), ("?", -1.0, ""))

    def adopt(self, kind: str, obj: Any) -> None:
        """Register a component whose in-flight state is swept at quiesce."""
        self._adopted.append((kind, obj))

    def declare_coincident(self, *labels: str) -> None:
        """Exempt origin labels from the tie detector.

        For machinery that *derives* its timestamps from one shared
        precomputed array (packet-train replay, paced handler commits):
        same-instant events from these origins coincide by construction,
        and their relative order is pinned by the differential tests, so
        a tie is not insertion-order luck.  Declare at the site that
        engineers the coincidence."""
        self._coincident.update(labels)

    # Container puts carry no key, so grants retire FIFO per container —
    # the report is approximate attribution, exact accounting.
    def container_grant(self, cont: Any, amount: float) -> None:
        self._cont_grants.setdefault(id(cont), []).append(
            [amount, self.sim.now, self._backtrace()]
        )

    def container_put(self, cont: Any, amount: float) -> None:
        grants = self._cont_grants.get(id(cont))
        if not grants:
            return
        left = amount
        while grants and left > 0:
            if grants[0][0] <= left + 1e-9:
                left -= grants[0][0]
                grants.pop(0)
            else:
                grants[0][0] -= left
                left = 0.0

    # -------------------------------------------------- parallel support
    def record_stale_injection(self, fire_t: float, dst: str, now: float) -> None:
        self._find(
            "stale-injection",
            f"boundary message for {dst!r} fires at t={fire_t} "
            f"behind destination clock now={now}",
        )

    # ------------------------------------------------------ kernel loops
    # These mirror Simulator.run/run_window/run_until_event exactly: the
    # clock contracts and exception behaviour must be indistinguishable
    # from the uninstrumented kernel.  Keep in sync with engine.py.
    def run(self, until: Optional[float] = None) -> float:
        sim = self.sim
        if sim._running:
            raise SimulationError("run() called re-entrantly")
        sim._running = True
        wall0 = time.perf_counter()  # simlint: disable=SIM101 -- kernel self-profile
        heap = sim._heap
        pop = heapq.heappop
        step = self._step
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    sim.now = until
                    break
                step(pop(heap))
            else:
                if until is not None:
                    sim.now = max(sim.now, until)
        finally:
            sim._running = False
            sim._wall_s += time.perf_counter() - wall0  # simlint: disable=SIM101 -- kernel self-profile
        return sim.now

    def run_window(self, horizon: float, inclusive: bool = False) -> float:
        sim = self.sim
        if sim._running:
            raise SimulationError("run() called re-entrantly")
        sim._running = True
        wall0 = time.perf_counter()  # simlint: disable=SIM101 -- kernel self-profile
        heap = sim._heap
        pop = heapq.heappop
        step = self._step
        try:
            while heap:
                t0 = heap[0][0]
                if t0 > horizon or (t0 == horizon and not inclusive):
                    break
                step(pop(heap))
        finally:
            sim._running = False
            sim._wall_s += time.perf_counter() - wall0  # simlint: disable=SIM101 -- kernel self-profile
        return sim.now

    def run_until_event(self, ev: Event, limit: Optional[float] = None) -> Any:
        sim = self.sim
        if sim._running:
            raise SimulationError("run() called re-entrantly")
        sim._running = True
        wall0 = time.perf_counter()  # simlint: disable=SIM101 -- kernel self-profile
        heap = sim._heap
        pop = heapq.heappop
        step = self._step
        try:
            while not ev.triggered:
                if not heap:
                    raise SimulationError(
                        f"deadlock: event {ev.name!r} can never fire (heap empty)"
                    )
                if limit is not None and heap[0][0] > limit:
                    raise SimulationError(
                        f"event {ev.name!r} did not fire by t={limit} ns"
                    )
                step(pop(heap))
        finally:
            sim._running = False
            sim._wall_s += time.perf_counter() - wall0  # simlint: disable=SIM101 -- kernel self-profile
        if ev.exception is not None:
            raise ev.exception
        return ev.value

    # ------------------------------------------------------- per-pop step
    def _step(self, entry: tuple) -> None:
        sim = self.sim
        heap = sim._heap
        n = len(heap) + 1  # heap size before this pop
        if n > sim._heap_high_water:
            sim._heap_high_water = n
        t = entry[0]
        seq = entry[1]
        item = entry[2]
        origin = self._origins.pop(seq, _DRIVER)
        olabel, opush_t = origin
        self.pops += 1

        # -- schedule-race detector -----------------------------------
        if opush_t is not None and t < opush_t - 1e-9:
            self._find(
                "clock-rewind",
                f"entry {_item_label(item)} fires at t={t} but was pushed "
                f"by {olabel} at now={opush_t} (scheduled into the past)",
            )
        if heap and heap[0][0] == t:
            self.ties_seen += 1
            nxt = self._origins.get(heap[0][1], _DRIVER)
            if nxt[0] != olabel:
                self.ties_cross_origin += 1
                both_procs = olabel.startswith("proc:") and nxt[0].startswith("proc:")
                # order-dependent = two coroutines *each scheduled ahead
                # of time* (a zero-delay push made at the fire instant is
                # causally ordered after everything already queued there)
                # at different instants, landing on the same fire time.
                independent = (
                    opush_t is not None and opush_t < t - 1e-12
                    and nxt[1] is not None and nxt[1] < t - 1e-12
                    and opush_t != nxt[1]
                    and olabel not in self._coincident
                    and nxt[0] not in self._coincident
                )
                if (both_procs and independent) or self.strict_ties:
                    self._find(
                        "schedule-race",
                        f"pop order at t={t} decided by insertion order: "
                        f"{olabel} (pushed at {opush_t}) vs {nxt[0]} "
                        f"(pushed at {nxt[1]}) scheduled the same fire time "
                        f"independently",
                    )

        # -- per-window pop-order digest ------------------------------
        w = int(t // self.window_ns)
        if w != self._cur_window:
            self._flush_window()
            self._cur_window = w
        self._h.update(f"{t!r}|{olabel}|{_item_label(item)};".encode())
        self._win_pops += 1

        # -- dispatch (mirrors the engine, with push attribution) -----
        if t < sim.now - 1e-9:
            self._find(
                "clock-rewind",
                f"pop {_item_label(item)} at t={t} behind clock now={sim.now}",
            )
            raise SimulationError("time went backwards")
        sim.now = t
        sim.events_dispatched += 1
        dlabel = _item_label(item)
        if isinstance(item, Event):
            callbacks = item.callbacks
            item.callbacks = _DISPATCHED
            if callbacks:
                for cb in callbacks:
                    s0 = sim._seq
                    cb(item)
                    s1 = sim._seq
                    if s1 != s0:
                        org = (_callback_label(cb, dlabel), sim.now)
                        for s in range(s0 + 1, s1 + 1):
                            self._origins[s] = org
            elif item._exc is not None:
                if not isinstance(item, Process) or not item._observed:
                    raise item._exc
        else:
            s0 = sim._seq
            if len(entry) == 3:
                item()
            else:
                item(entry[3])
            s1 = sim._seq
            if s1 != s0:
                org = (_callback_label(item, dlabel), sim.now)
                for s in range(s0 + 1, s1 + 1):
                    self._origins[s] = org

    def _flush_window(self) -> None:
        if self._win_pops:
            self.pop_digests.append((self._cur_window, self._h.hexdigest()))
            self._h = hashlib.sha256()
            self._win_pops = 0

    # --------------------------------------------------------- quiesce
    def check_quiesce(self) -> list[Finding]:
        """Sweep adopted components for anything still held; also runs the
        orphaned-span scan.  Returns the findings this sweep added."""
        before = len(self.findings)
        for kind, obj in self._adopted:
            sweep = getattr(self, f"_sweep_{kind}", None)
            if sweep is not None:
                sweep(obj)
        self.check_orphans()
        return self.findings[before:]

    def check_orphans(self) -> None:
        """Flag request spans opened but never closed within budget."""
        tele = self.sim.telemetry
        if tele is None:
            return
        for span in tele.spans:
            if span.t1 is None and span.cat == "request":
                if self.sim.now - span.t0 > self.span_budget_ns:
                    self._find(
                        "orphan-span",
                        f"request span {span.name!r} opened at t={span.t0} "
                        f"never closed (budget {self.span_budget_ns}ns, "
                        f"now={self.sim.now})",
                    )

    # individual sweeps (dispatched by adopt() kind)
    def _sweep_resource(self, res: Any) -> None:
        for req in res.users:
            label, t, bt = self.claim_info("resource-slot", id(req))
            self._find(
                "leak-resource",
                f"slot on {res.name!r} still held at quiesce "
                f"(acquired t={t})",
                bt,
            )
        for req in res.queue:
            label, t, bt = self.claim_info("resource-wait", id(req))
            self._find(
                "leak-resource",
                f"waiter on {res.name!r} still queued at quiesce "
                f"(queued t={t})",
                bt,
            )

    def _sweep_store(self, store: Any) -> None:
        # blocked getters are the steady state of a quiesced service (an
        # RPC server or egress pump parked on an empty work queue), so
        # only producers that could never hand their item off are leaks
        for ev, _item in store._putters:
            label, t, bt = self.claim_info("store-wait", id(ev))
            self._find(
                "leak-store",
                f"putter on {store.name!r} still blocked at quiesce "
                f"(queued t={t})",
                bt,
            )

    def _sweep_container(self, cont: Any) -> None:
        outstanding = cont.capacity - cont.level
        if outstanding > 1e-9 and not getattr(cont, "sanitize_arena", False):
            grants = self._cont_grants.get(id(cont), [])
            holders = "\n".join(
                f"{amt} unit(s) taken at t={t}:\n{bt}" for amt, t, bt in grants[:5]
            )
            self._find(
                "leak-container",
                f"{outstanding} unit(s) of {cont.name!r} never returned "
                f"at quiesce (level {cont.level}/{cont.capacity})",
                holders,
            )
        for ev, amount in cont._getters:
            label, t, bt = self.claim_info("container-wait", id(ev))
            self._find(
                "leak-container",
                f"getter for {amount} unit(s) of {cont.name!r} still "
                f"blocked at quiesce (queued t={t})",
                bt,
            )

    def _sweep_port(self, port: Any) -> None:
        train = port._train
        if train is not None:
            self._find(
                "leak-packet-train",
                f"port {port.owner_name!r} still has a coalesced "
                f"train of {len(getattr(train, 'pkts', []))} packet(s) in "
                f"flight at quiesce",
            )

    def _sweep_nic(self, nic: Any) -> None:
        for gid in sorted(nic._pending):
            label, t, bt = self.claim_info("greq", (nic.name, gid))
            self._find(
                "leak-greq",
                f"greq {gid} ({label}) on {nic.name!r} still pending at "
                f"quiesce (posted t={t})",
                bt,
            )

    def _sweep_accel(self, accel: Any) -> None:
        inflight = accel.in_flight_messages
        if inflight:
            self._find(
                "leak-accel",
                f"accelerator on {accel.node_name!r} still has "
                f"{inflight} message(s) in flight at quiesce",
            )
        if accel._train is not None:
            self._find(
                "leak-packet-train",
                f"accelerator on {accel.node_name!r} still has a "
                f"paced ingest train at quiesce",
            )
