"""repro.simsan — runtime sanitizer for the simulation kernel.

The dynamic counterpart to :mod:`repro.simlint`: where simlint proves
properties of the *source* (no wall-clock, no unseeded RNG, coroutine
protocol), simsan checks properties of a *run* — schedule-order
hazards, leaked resource claims, orphaned request spans, and
cross-partition boundary divergence.  Opt in per simulator::

    sim = Simulator(sanitize=True)
    ... drive the workload ...
    report = sim.sanitizer.check_quiesce() and sim.sanitizer.report()

or per testbed / scenario (``build_testbed(sanitize=True)``,
``run_scenario(..., sanitize=True)``), or from the CLI::

    python -m repro sanitize            # quick scenario matrix
    python -m repro sanitize --demo     # protocol demo (+ faults)
    python -m repro sanitize --partitions 4   # boundary audit

When off the kernel pays nothing (see docs/simsan.md for the measured
overhead when on).
"""

from .audit import BoundaryAudit, first_divergence
from .findings import Finding, Report
from .runtime import Sanitizer

__all__ = [
    "BoundaryAudit",
    "Finding",
    "Report",
    "Sanitizer",
    "first_divergence",
    "report_for",
]


def report_for(sim) -> Report:
    """Aggregate report for a Simulator or ParallelSimulator.

    For partitioned runs, folds every partition's findings and stats
    into one report (findings keep their own partition-local times).
    """
    sims = getattr(sim, "sims", None)
    if sims is None:
        san = sim.sanitizer
        if san is None:
            raise ValueError("simulator was not built with sanitize=True")
        return san.report()
    out = Report()
    for s in sims:
        if s.sanitizer is not None:
            out.merge(s.sanitizer.report())
    audit = getattr(sim, "audit", None)
    if audit is not None:
        out.stats["boundary_messages_audited"] = audit.messages
        out.stats["boundary_windows"] = len(audit.digests)
    return out
