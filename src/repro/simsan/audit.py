"""Cross-partition determinism auditor.

The partitioned engine's CI gate proves determinism by `cmp`-ing whole
CSVs — useful as a tripwire, useless for debugging: "bytes differ" says
nothing about *where* two runs diverged.  Under ``sanitize=True`` the
coordinator records, for every conservative window, one digest per
source rank over the boundary messages that rank emitted (fire time,
source sequence, destination, and packet identity).  Two audits of the
same workload can then be compared message-digest by message-digest:
:func:`first_divergence` pinpoints the first (window, rank) whose
boundary traffic differs, which is the window to replay.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional

__all__ = ["BoundaryAudit", "first_divergence"]

# boundary-message tuple layout (mirrors repro.simnet.parallel)
_FIRE_T, _SRC_RANK, _SRC_SEQ, _DST_RANK, _DST, _PKT = range(6)


def _pkt_key(pkt: Any) -> str:
    """Deterministic identity of a boundary packet (no object ids)."""
    return "/".join(
        str(getattr(pkt, f, "")) for f in ("src", "dst", "op", "msg_id", "seq")
    )


class BoundaryAudit:
    """Per-(window, src_rank) digests of cross-partition traffic."""

    def __init__(self) -> None:
        #: (window, src_rank) -> hexdigest; windows with no traffic from a
        #: rank have no entry (absence is part of the comparison)
        self.digests: dict[tuple[int, int], str] = {}
        self.messages = 0

    def record(self, window: int, msgs: list) -> None:
        """Digest one round's boundary messages, grouped by source rank."""
        if not msgs:
            return
        self.messages += len(msgs)
        by_rank: dict[int, list] = {}
        for m in msgs:
            by_rank.setdefault(m[_SRC_RANK], []).append(m)
        for rank, group in by_rank.items():
            h = hashlib.sha256()
            for m in sorted(group, key=lambda m: (m[_FIRE_T], m[_SRC_SEQ])):
                h.update(
                    f"{m[_FIRE_T]!r}|{m[_SRC_SEQ]}|{m[_DST_RANK]}|"
                    f"{m[_DST]}|{_pkt_key(m[_PKT])};".encode()
                )
            key = (window, rank)
            if key in self.digests:
                # same (window, rank) can route twice when a round is
                # split; fold into one running digest
                h2 = hashlib.sha256()
                h2.update((self.digests[key] + h.hexdigest()).encode())
                self.digests[key] = h2.hexdigest()
            else:
                self.digests[key] = h.hexdigest()


def first_divergence(
    a: BoundaryAudit, b: BoundaryAudit
) -> Optional[tuple[int, int, str, str]]:
    """First (window, rank) where two audits disagree, or None.

    Returns ``(window, rank, digest_a, digest_b)``; a digest is ``""``
    when that run produced no boundary traffic for the slot.
    """
    keys = sorted(set(a.digests) | set(b.digests))
    for key in keys:
        da = a.digests.get(key, "")
        db = b.digests.get(key, "")
        if da != db:
            return (key[0], key[1], da, db)
    return None
