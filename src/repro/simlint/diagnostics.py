"""Diagnostic records emitted by simlint rules.

A :class:`Diagnostic` is one finding: a rule id, a severity, a file
position, and a human-readable message.  Diagnostics sort by
``(path, line, col, rule)`` so output is stable across runs — the
linter holds itself to the same determinism bar it enforces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break simulation determinism or leak simulated
    resources; ``WARNING`` findings are hazards that need a specific
    (rare) trigger to bite.  Both fail the lint gate — the split only
    affects presentation.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding at one source position."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity = field(compare=False)
    message: str = field(compare=False)
    suppressed: bool = field(default=False, compare=False)

    def format(self) -> str:
        """``file:line:col: RULE severity: message`` (clickable in most
        editors and CI logs)."""
        tag = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity.value}: {self.message}{tag}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "suppressed": self.suppressed,
        }
