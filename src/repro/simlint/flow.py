"""Lightweight per-function control-flow graphs for flow-sensitive rules.

The per-node rules (SIM1xx–SIM4xx) ask "does this expression appear?";
the SIM5xx family asks "is there a *path* to return on which X never
happens?" — child process spawned but never joined, telemetry span
opened but not closed on an early return.  That needs a CFG, but only a
small one: nodes are whole statements (``ast.stmt`` objects), edges are
successor lists, and one :data:`EXIT` sentinel marks function return.

Deliberate approximations, all conservative for may-reach queries:

* **statement granularity** — a statement that merely *mentions* the
  tracked name can be treated as handling it; rules choose their own
  kill predicate, and the coarsest one ("any reference") already
  removes every false positive we care about;
* **exceptions** — every statement in a ``try`` body may jump to every
  handler's entry (we do not model which exceptions each statement can
  raise);
* **finally** — fall-through control routes through ``finalbody``;
  ``return``/``raise`` also enter the innermost ``finalbody`` chain,
  whose last statement therefore carries both successors (after-try
  and EXIT).  This adds a spurious "fall through straight to EXIT"
  path when a try contains an early return — acceptable, since it can
  only create extra paths, never hide one.

Nested function definitions are opaque single statements (their bodies
are separate scopes, consistent with :mod:`repro.simlint.context`).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, List, Optional, Set, Union

from .context import FunctionNode

__all__ = ["EXIT", "CFG", "build_cfg", "reaches_exit_avoiding"]


class _Exit:
    """Unique sentinel for the function's single exit node."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<EXIT>"


EXIT = _Exit()

Node = Union[ast.stmt, _Exit]


class CFG:
    """Successor-map CFG over one function's own statements."""

    def __init__(self, func: FunctionNode):
        self.func = func
        self.succ: Dict[Node, List[Node]] = {}
        self._loop_stack: List[tuple] = []  # (head_for_continue, after_for_break)
        self._finally_stack: List[List[ast.stmt]] = []
        self.entry: Node = self._seq(func.body, EXIT)

    # ------------------------------------------------------------ build
    def _seq(self, stmts: List[ast.stmt], after: Node) -> Node:
        """Wire ``stmts`` in order, flowing into ``after``; return entry."""
        entry: Node = after
        for s in reversed(stmts):
            entry = self._stmt(s, entry)
        return entry

    def _edges(self, s: ast.stmt, *succs: Node) -> ast.stmt:
        out = self.succ.setdefault(s, [])
        for n in succs:
            if n not in out:
                out.append(n)
        return s

    def _exit_through_finally(self) -> Node:
        """Where ``return``/``raise`` really goes: the pending
        ``finally`` bodies innermost-first, then EXIT."""
        target: Node = EXIT
        for body in self._finally_stack:  # outermost..innermost
            target = self._seq(body, target)
        return target

    def _stmt(self, s: ast.stmt, after: Node) -> Node:
        if isinstance(s, (ast.Return, ast.Raise)):
            return self._edges(s, self._exit_through_finally())
        if isinstance(s, ast.Break):
            if self._loop_stack:
                return self._edges(s, self._loop_stack[-1][1])
            return self._edges(s, after)  # malformed code; stay total
        if isinstance(s, ast.Continue):
            if self._loop_stack:
                return self._edges(s, self._loop_stack[-1][0])
            return self._edges(s, after)
        if isinstance(s, ast.If):
            body = self._seq(s.body, after)
            orelse = self._seq(s.orelse, after) if s.orelse else after
            return self._edges(s, body, orelse)
        if isinstance(s, (ast.While, ast.For, ast.AsyncFor)):
            # the loop header is the node; body loops back to it, the
            # else-clause (or fall-through) leaves the loop
            leave = self._seq(s.orelse, after) if s.orelse else after
            self._loop_stack.append((s, after))
            body = self._seq(s.body, s)
            self._loop_stack.pop()
            return self._edges(s, body, leave)
        if isinstance(s, (ast.With, ast.AsyncWith)):
            return self._edges(s, self._seq(s.body, after))
        if isinstance(s, ast.Try):
            join = self._seq(s.finalbody, after) if s.finalbody else after
            if s.finalbody:
                self._finally_stack.append(s.finalbody)
            handlers = [self._seq(h.body, join) for h in s.handlers]
            orelse = self._seq(s.orelse, join) if s.orelse else join
            body = self._seq(s.body, orelse)
            # any try-body statement may transfer to any handler
            for stmt in s.body:
                for node in _own_statements(stmt):
                    self._edges(node, *handlers)
            if s.finalbody:
                self._finally_stack.pop()
            return self._edges(s, body)
        # plain statement (incl. nested FunctionDef/ClassDef, opaque)
        return self._edges(s, after)


def _own_statements(stmt: ast.stmt) -> Iterable[ast.stmt]:
    """``stmt`` plus nested statements, not descending into defs."""
    yield stmt
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(child, ast.stmt):
            yield from _own_statements(child)
        elif isinstance(child, (ast.ExceptHandler,)):
            for s in child.body:
                yield from _own_statements(s)


def build_cfg(func: FunctionNode) -> CFG:
    return CFG(func)


def reaches_exit_avoiding(
    cfg: CFG,
    start: ast.stmt,
    kills: Callable[[ast.stmt], bool],
) -> Optional[List[ast.stmt]]:
    """Is there a path from ``start``'s successors to EXIT on which no
    statement satisfies ``kills``?  Returns the witness path (the
    statements traversed, possibly empty for a straight fall-off) or
    None when every path is killed.  ``start`` itself is exempt, so a
    rule can pass the statement that *creates* the obligation."""
    path: List[ast.stmt] = []
    seen: Set[int] = set()

    def walk(node: Node) -> bool:
        if node is EXIT:
            return True
        if id(node) in seen:
            return False
        seen.add(id(node))
        if kills(node):  # type: ignore[arg-type]
            return False
        path.append(node)  # type: ignore[arg-type]
        for nxt in cfg.succ.get(node, [EXIT]):
            if walk(nxt):
                return True
        path.pop()
        return False

    for nxt in cfg.succ.get(start, [EXIT]):
        if walk(nxt):
            return path
    return None
