"""Rule registry: one :class:`Rule` subclass per rule id.

Rules self-register at import time via the :func:`register` decorator;
:mod:`repro.simlint.rules` imports every rule module so that importing
the package populates :data:`RULES`.  Each rule gets the parsed module
AST plus a :class:`LintContext` and yields diagnostics; the driver
applies suppressions afterwards.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Type

from .diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class LintContext:
    """What a rule knows about the file it is checking."""

    path: str
    source: str

    def diagnostic(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule.id,
            severity=rule.severity,
            message=message,
        )


class Rule:
    """Base class: subclasses set the class attributes and implement
    :meth:`check`."""

    id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    #: one-paragraph rationale, shown by ``lint --list-rules`` and
    #: cross-checked against docs/simlint.md by the test suite
    rationale: str = ""

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Diagnostic]:
        raise NotImplementedError  # pragma: no cover


RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Registered rules in id order (deterministic output order)."""
    return [RULES[k] for k in sorted(RULES)]
