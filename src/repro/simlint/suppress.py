"""``# simlint: disable=RULE`` suppression comments.

Two forms, mirroring the usual linter conventions:

* **line** — a trailing comment on the flagged line silences the named
  rules for that line only::

      t0 = time.perf_counter()  # simlint: disable=SIM101 -- perf harness

  Everything after the rule list is free-form justification.

* **file** — a comment on a line of its own (nothing but the comment)
  silences the named rules for the whole file::

      # simlint: disable-file=SIM101 -- this module IS the wall-clock harness

``disable=all`` / ``disable-file=all`` silence every rule.  Comments are
found with :mod:`tokenize`, so the markers never match inside string
literals.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

_MARKER = re.compile(
    r"#\s*simlint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

_ALL = "all"


@dataclass
class SuppressionIndex:
    """Which rules are silenced on which lines of one file."""

    #: line number -> rule ids silenced on that line ({"all"} = every rule)
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids silenced for the whole file
    file_wide: Set[str] = field(default_factory=set)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        idx = cls()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            # Unparseable source produces its own diagnostic elsewhere;
            # there is nothing to suppress.
            return idx
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _MARKER.search(tok.string)
            if m is None:
                continue
            rules = {r.strip() for r in m.group("rules").split(",") if r.strip()}
            if m.group("scope"):
                idx.file_wide |= rules
            else:
                idx.by_line.setdefault(tok.start[0], set()).update(rules)
        return idx

    def is_suppressed(self, rule: str, line: int) -> bool:
        if _ALL in self.file_wide or rule in self.file_wide:
            return True
        on_line = self.by_line.get(line)
        return on_line is not None and (_ALL in on_line or rule in on_line)

    def rules_mentioned(self) -> FrozenSet[str]:
        """Every rule id named in any suppression (for --show-suppressed
        accounting and docs cross-checks)."""
        out: Set[str] = set(self.file_wide)
        for rules in self.by_line.values():
            out |= rules
        return frozenset(out)
