"""``python -m repro lint`` — the simlint command line.

Exit codes: 0 clean, 1 findings, 2 usage error (argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import RULES, __version__, all_rules, lint_paths


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro lint",
        description="Simulation-aware static analysis: determinism, "
        "coroutine-protocol, resource- and telemetry-hygiene rules "
        "(see docs/simlint.md).",
    )
    ap.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    ap.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )
    ap.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    ap.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by # simlint: disable comments",
    )
    ap.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = ap.parse_args(argv)

    if args.list_rules:
        if args.format == "json":
            doc = [
                {
                    "id": r.id,
                    "name": r.name,
                    "severity": r.severity.value,
                    "rationale": r.rationale,
                }
                for r in all_rules()
            ]
            print(json.dumps(doc, indent=2))
        else:
            for r in all_rules():
                print(f"{r.id}  {r.name}  [{r.severity.value}]")
                print(f"      {r.rationale}")
        return 0

    rule_ids = None
    if args.rules is not None:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rule_ids if r not in RULES]
        if unknown:
            ap.error(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(try --list-rules)"
            )
        if not rule_ids:
            # "--rules ," and "--rules ''" used to lint with ZERO rules
            # and report a clean tree; that silence is a usage error
            ap.error("--rules resolved to an empty rule set (try --list-rules)")

    result = lint_paths(args.paths, rule_ids=rule_ids)

    if args.format == "json":
        doc = {
            "simlint_version": __version__,
            "rules": sorted(rule_ids) if rule_ids is not None else sorted(RULES),
            "files_checked": result.files_checked,
            "findings": [d.to_dict() for d in result.findings],
            "suppressed": [d.to_dict() for d in result.suppressed]
            if args.show_suppressed
            else len(result.suppressed),
        }
        print(json.dumps(doc, indent=2))
        return result.exit_code

    for d in result.findings:
        print(d.format())
    if args.show_suppressed:
        for d in result.suppressed:
            print(d.format())
    n_err = sum(1 for d in result.findings if d.severity.value == "error")
    n_warn = len(result.findings) - n_err
    tail = (
        f"{result.files_checked} files checked: "
        f"{n_err} error(s), {n_warn} warning(s), "
        f"{len(result.suppressed)} suppressed"
    )
    print(tail if result.findings else f"simlint clean — {tail}")
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
