"""SIM301 — resource claims must be interrupt-safe.

The PR-2 bug class: a process acquires a Resource slot
(``req = pool.request(); yield req``), then hits another wait before the
``try/finally`` that releases it.  An interrupt landing in that window
(fault windows, watchdog cancellation) unwinds the generator and the
slot leaks forever — the simulation quiesce check fails hours later
with no pointer back to the acquire site.

The enforced shape is exactly the repo idiom::

    req = pool.request()
    yield req                    # grant
    try:                         # <- immediately: no waits in between
        ...critical section (may wait)...
    finally:
        pool.release(req)

Checked per claim: (a) a release exists (or the claim escapes to
another owner), (b) at least one release sits in a ``finally`` block,
and (c) no yield lies between the grant and that protecting ``try``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from ..context import FunctionNode, analyze_function, iter_functions, iter_scope, scope_body
from ..diagnostics import Diagnostic, Severity
from ..registry import LintContext, Rule, register


@dataclass
class _Claim:
    name: str
    assign: ast.Assign
    grant: Optional[ast.expr]  # the ``yield name`` expression


@register
class LeakOnInterruptRule(Rule):
    id = "SIM301"
    name = "leak-on-interrupt"
    severity = Severity.ERROR
    rationale = (
        "A granted Resource slot is only returned by an explicit "
        "release(); if the process can be interrupted while holding it — "
        "any yield outside the try/finally that releases — the slot "
        "leaks and the cluster quiesce check fails far from the cause. "
        "Enter the protecting try immediately after the grant and "
        "release in its finally."
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for func in iter_functions(tree):
            info = analyze_function(func)
            if not info.is_sim_process:
                continue
            yield from self._check_function(func, ctx)

    # ------------------------------------------------------------------
    def _check_function(
        self, func: FunctionNode, ctx: LintContext
    ) -> Iterable[Diagnostic]:
        nodes = list(scope_body(func))
        claims = self._find_claims(nodes)
        if not claims:
            return
        tries = [n for n in nodes if isinstance(n, ast.Try) and n.finalbody]
        yields = [
            n for n in nodes if isinstance(n, (ast.Yield, ast.YieldFrom))
        ]
        for claim in claims:
            releases = self._find_releases(nodes, claim.name)
            if not releases:
                if self._escapes(nodes, claim):
                    continue  # handed to another owner; their job now
                yield ctx.diagnostic(
                    self, claim.assign,
                    f"claim {claim.name!r} is acquired but never released "
                    f"in this process (and never handed off); the slot "
                    f"leaks on every path",
                )
                continue
            protecting = self._protecting_try(tries, releases)
            if protecting is None:
                yield ctx.diagnostic(
                    self, releases[0],
                    f"release of {claim.name!r} is not in a finally block: "
                    f"an exception or interrupt in the critical section "
                    f"leaks the slot",
                )
                continue
            if claim.grant is None:
                continue  # granted elsewhere (e.g. via all_of); out of scope
            gap = [
                y
                for y in yields
                if claim.grant.lineno < y.lineno < protecting.body[0].lineno
            ]
            if gap:
                yield ctx.diagnostic(
                    self, gap[0],
                    f"wait between the grant of {claim.name!r} "
                    f"(line {claim.grant.lineno}) and the protecting try "
                    f"(line {protecting.lineno}): an interrupt here leaks "
                    f"the slot — enter the try first",
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _find_claims(nodes: List[ast.AST]) -> List[_Claim]:
        claims: List[_Claim] = []
        for n in nodes:
            if not isinstance(n, ast.Assign):
                continue
            v = n.value
            if not (
                isinstance(v, ast.Call)
                and isinstance(v.func, ast.Attribute)
                and v.func.attr == "request"
                and not v.args
                and not v.keywords
            ):
                continue
            for tgt in n.targets:
                if isinstance(tgt, ast.Name):
                    claims.append(_Claim(name=tgt.id, assign=n, grant=None))
        # attach the grant (first ``yield name`` at or after the assign)
        for claim in claims:
            for y in nodes:
                if (
                    isinstance(y, ast.Yield)
                    and isinstance(y.value, ast.Name)
                    and y.value.id == claim.name
                    and y.lineno >= claim.assign.lineno
                ):
                    claim.grant = y
                    break
        return claims

    @staticmethod
    def _find_releases(nodes: List[ast.AST], name: str) -> List[ast.Call]:
        out: List[ast.Call] = []
        for n in nodes:
            if not (isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)):
                continue
            # pool.release(req)
            if n.func.attr == "release" and any(
                isinstance(a, ast.Name) and a.id == name for a in n.args
            ):
                out.append(n)
            # req.release()
            elif (
                n.func.attr == "release"
                and isinstance(n.func.value, ast.Name)
                and n.func.value.id == name
            ):
                out.append(n)
        return out

    @staticmethod
    def _protecting_try(
        tries: List[ast.Try], releases: List[ast.Call]
    ) -> Optional[ast.Try]:
        """The Try whose finalbody subtree contains a release."""
        for t in tries:
            final_nodes: Set[int] = set()
            for stmt in t.finalbody:
                final_nodes.update(id(x) for x in iter_scope(stmt))
            for rel in releases:
                if id(rel) in final_nodes:
                    return t
        return None

    @staticmethod
    def _escapes(nodes: List[ast.AST], claim: _Claim) -> bool:
        """Whether the claim is handed to another owner: passed as a call
        argument, returned, or stored into an attribute/subscript."""
        for n in nodes:
            if isinstance(n, ast.Call):
                for a in list(n.args) + [kw.value for kw in n.keywords]:
                    for sub in ast.walk(a):
                        if isinstance(sub, ast.Name) and sub.id == claim.name:
                            return True
            elif isinstance(n, ast.Return) and n.value is not None:
                for sub in ast.walk(n.value):
                    if isinstance(sub, ast.Name) and sub.id == claim.name:
                        return True
            elif isinstance(n, ast.Assign):
                for tgt in n.targets:
                    if isinstance(tgt, (ast.Attribute, ast.Subscript)):
                        for sub in ast.walk(n.value):
                            if isinstance(sub, ast.Name) and sub.id == claim.name:
                                return True
        return False
