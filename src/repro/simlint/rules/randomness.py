"""SIM102 — unseeded module-level randomness.

``random.random()`` & friends draw from interpreter-global hidden state:
any import-order change, library upgrade, or parallel worker reshuffles
every subsequent draw.  Model code must own its streams explicitly —
``random.Random(seed)`` (the repo's idiom is per-component string seeds,
see ``repro.faults``) or ``numpy.random.default_rng(seed)``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from ..diagnostics import Diagnostic, Severity
from ..registry import LintContext, Rule, register

#: random-module attributes that are fine to touch: explicit-state
#: constructors and state plumbing
_ALLOWED = frozenset({"Random", "SystemRandom", "getstate", "setstate"})


@register
class UnseededRandomRule(Rule):
    id = "SIM102"
    name = "unseeded-random"
    severity = Severity.ERROR
    rationale = (
        "Module-level random.* calls share one hidden global stream, so "
        "draw order depends on everything else that imported random — "
        "including pytest plugins and parallel sweep workers. Construct "
        "an explicit random.Random(seed) (or numpy default_rng) per "
        "component so streams are named and reproducible."
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Diagnostic]:
        random_modules: Set[str] = set()
        np_random_modules: Set[str] = set()
        os_modules: Set[str] = set()
        random_ctors: Set[str] = set()  # local names bound to random.Random
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_modules.add(alias.asname or "random")
                    elif alias.name == "numpy.random":
                        np_random_modules.add(alias.asname or "numpy.random")
                    elif alias.name == "os":
                        os_modules.add(alias.asname or "os")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name == "Random":
                        random_ctors.add(alias.asname or "Random")
                    elif alias.name not in _ALLOWED:
                        yield ctx.diagnostic(
                            self, node,
                            f"'from random import {alias.name}' binds the hidden "
                            f"global stream; use random.Random(seed) instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name == "urandom":
                        yield ctx.diagnostic(
                            self, node,
                            "'from os import urandom' reads kernel entropy, "
                            "which can never be replayed; derive bytes from "
                            "a seeded random.Random instead",
                        )

        for node in ast.walk(tree):
            # Random() with no seed argument captures OS entropy at
            # construction: a named stream, but a different one per run.
            if isinstance(node, ast.Call) and not node.args and not node.keywords:
                f = node.func
                if (isinstance(f, ast.Name) and f.id in random_ctors) or (
                    isinstance(f, ast.Attribute)
                    and f.attr == "Random"
                    and isinstance(f.value, ast.Name)
                    and f.value.id in random_modules
                ):
                    yield ctx.diagnostic(
                        self, node,
                        "random.Random() without a seed snapshots OS "
                        "entropy, so every run gets a different stream; "
                        "pass an explicit per-component seed",
                    )
                    continue
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            recv = node.func.value
            attr = node.func.attr
            if (
                isinstance(recv, ast.Name)
                and recv.id in os_modules
                and attr == "urandom"
            ):
                yield ctx.diagnostic(
                    self, node,
                    "os.urandom() reads kernel entropy, which can never "
                    "be replayed; derive bytes from a seeded "
                    "random.Random instead",
                )
            elif (
                isinstance(recv, ast.Name)
                and recv.id in random_modules
                and attr not in _ALLOWED
            ):
                yield ctx.diagnostic(
                    self, node,
                    f"random.{attr}() uses the hidden module-global stream; "
                    f"draw from an explicit random.Random(seed)",
                )
            elif (
                isinstance(recv, ast.Attribute)
                and recv.attr == "random"
                and isinstance(recv.value, ast.Name)
                and recv.value.id in ("np", "numpy")
                and attr != "default_rng"
                and attr != "Generator"
            ):
                yield ctx.diagnostic(
                    self, node,
                    f"np.random.{attr}() uses numpy's global RNG; "
                    f"use np.random.default_rng(seed)",
                )
