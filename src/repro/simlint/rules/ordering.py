"""SIM103/SIM104 — iteration-order and identity-order hazards.

Python ``set`` iteration order depends on element hashes; for strings
the hash is salted per interpreter run (PYTHONHASHSEED), so iterating a
set of model objects or names into event scheduling reorders events
between runs.  ``id()``-keyed collections are worse: insertion addresses
vary with allocator state.  Normalize with ``sorted(...)`` or keep
insertion-ordered ``dict``/``list`` containers instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from ..context import iter_functions, scope_body
from ..diagnostics import Diagnostic, Severity
from ..registry import LintContext, Rule, register


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # set algebra: s1 | s2, s1 & s2, s1 - s2 of known sets
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _set_locals(func: ast.AST) -> Set[str]:
    """Local names assigned a set expression anywhere in the scope."""
    names: Set[str] = set()
    for node in scope_body(func):  # type: ignore[arg-type]
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    names.add(tgt.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_set_expr(node.value) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


@register
class SetIterationRule(Rule):
    id = "SIM103"
    name = "set-iteration-order"
    severity = Severity.WARNING
    rationale = (
        "Iterating a set (or materializing one with list()/tuple()) feeds "
        "hash order — salted per run for strings — into whatever the loop "
        "does; if that reaches event scheduling or row output, identical "
        "seeds give different traces. Wrap the set in sorted(...) or use "
        "an insertion-ordered dict/list."
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for func in iter_functions(tree):
            set_names = _set_locals(func)
            for node in scope_body(func):
                for it in self._iteration_exprs(node):
                    if _is_set_expr(it) or (
                        isinstance(it, ast.Name) and it.id in set_names
                    ):
                        yield ctx.diagnostic(
                            self, it,
                            "iteration over a set leaks hash order into "
                            "execution; use sorted(...) or an "
                            "insertion-ordered container",
                        )

    @staticmethod
    def _iteration_exprs(node: ast.AST) -> Iterable[ast.expr]:
        if isinstance(node, ast.For):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                yield gen.iter
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            # list(s) / tuple(s) freeze hash order into a sequence
            if node.func.id in ("list", "tuple") and len(node.args) == 1:
                yield node.args[0]


@register
class IdKeyedRule(Rule):
    id = "SIM104"
    name = "id-keyed-collection"
    severity = Severity.ERROR
    rationale = (
        "id() returns an allocation address: keying or sorting model "
        "objects by it makes order (and dict iteration) depend on "
        "allocator state, which differs run to run. Give objects a "
        "deterministic key (sequence number, name) and use that."
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Subscript) and _is_id_call(node.slice):
                yield ctx.diagnostic(
                    self, node,
                    "collection subscripted by id(obj); use a deterministic "
                    "key (sequence number, name) instead",
                )
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and _is_id_call(key):
                        yield ctx.diagnostic(
                            self, key,
                            "dict literal keyed by id(obj); use a "
                            "deterministic key instead",
                        )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg == "key"
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id == "id"
                    ):
                        yield ctx.diagnostic(
                            self, kw.value,
                            "sort/order key=id ranks objects by allocation "
                            "address; use a deterministic key instead",
                        )


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )
