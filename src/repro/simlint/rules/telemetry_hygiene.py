"""SIM401 — metric handles must be cached, not resolved per event.

``registry.counter(f"link.{name}.busy_ns")`` does an f-string build plus
a dict lookup; done per packet it dominates the telemetry-enabled
profile (PR 3 measured it).  Components resolve their instruments once
through :class:`repro.telemetry.metrics.HandleCache` and pay one
identity comparison per event instead.  The rule flags registry lookups
(``.counter(...)``/``.gauge(...)``/``.histogram(...)``) on per-event
paths: inside sim-process generators and inside loops.  Lookups inside
``lambda``s and non-generator helpers (the HandleCache builders
themselves) are exempt by construction.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..context import analyze_function, iter_functions
from ..diagnostics import Diagnostic, Severity
from ..registry import LintContext, Rule, register

_LOOKUPS = frozenset({"counter", "gauge", "histogram"})


@register
class UncachedMetricHandleRule(Rule):
    id = "SIM401"
    name = "uncached-metric-handle"
    severity = Severity.WARNING
    rationale = (
        "Resolving a metric by name rebuilds the f-string and re-does the "
        "registry lookup on every event; at millions of events per run "
        "this is the dominant telemetry cost. Resolve instruments once "
        "in a HandleCache builder and reuse the handles per event."
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for func in iter_functions(tree):
            in_generator = analyze_function(func).is_generator
            for stmt in func.body:
                yield from self._walk(stmt, ctx, in_generator, in_loop=False)

    def _walk(
        self, node: ast.AST, ctx: LintContext, in_generator: bool, in_loop: bool
    ) -> Iterable[Diagnostic]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # separate scope: nested defs are visited on their own,
            # lambda bodies (HandleCache builders) run outside the hot path
        if (
            (in_generator or in_loop)
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _LOOKUPS
            and node.args
        ):
            where = "a loop" if in_loop else "a sim process"
            yield ctx.diagnostic(
                self, node,
                f"metric handle .{node.func.attr}(...) resolved inside "
                f"{where} (per event); resolve once via HandleCache and "
                f"reuse the handle",
            )
        descend_in_loop = in_loop or isinstance(node, (ast.For, ast.While))
        for child in ast.iter_child_nodes(node):
            yield from self._walk(child, ctx, in_generator, descend_in_loop)
