"""SIM201/SIM202/SIM203 — coroutine-protocol conformance.

Simulation processes are generators driven by the kernel
(:class:`repro.simnet.engine.Process`): every ``yield`` must hand the
kernel an :class:`Event`, interrupts must stop or clean up the process,
and a constructed claim must actually be awaited.  These rules encode
the process contract the engine enforces at runtime (with a crash, much
later) as compile-time findings.

A function is only checked when it *looks like* a sim process — at
least one of its yields is a waitable-constructor call (``sim.timeout``,
``.request()``, ``.get()``, …).  Plain data generators are never
flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..context import (
    CLEANUP_METHODS,
    analyze_function,
    call_method,
    handler_catches,
    iter_functions,
    iter_scope,
    scope_body,
)
from ..diagnostics import Diagnostic, Severity
from ..registry import LintContext, Rule, register

#: yield operands that can never be kernel events
_NON_EVENT_NODES = (
    ast.Constant,
    ast.List,
    ast.Tuple,
    ast.Dict,
    ast.Set,
    ast.JoinedStr,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
    ast.BinOp,
    ast.UnaryOp,
    ast.Compare,
    ast.BoolOp,
)


@register
class YieldNonEventRule(Rule):
    id = "SIM201"
    name = "yield-non-event"
    severity = Severity.ERROR
    rationale = (
        "The kernel fails a process that yields anything but an Event "
        "('yielded non-event'), but only when that yield is reached at "
        "runtime — possibly deep into a long sweep. A sim process that "
        "yields a literal, a bare yield, or an arithmetic expression is "
        "statically wrong; yield a Timeout/Event or return the value."
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for func in iter_functions(tree):
            info = analyze_function(func)
            if not info.is_sim_process:
                continue
            for y in info.yields:
                if isinstance(y, ast.YieldFrom):
                    continue  # delegation: the inner generator is checked itself
                v = y.value
                if v is None:
                    yield ctx.diagnostic(
                        self, y,
                        f"bare yield in sim process {func.name!r} hands the "
                        f"kernel None, which fails the process at runtime",
                    )
                elif isinstance(v, _NON_EVENT_NODES):
                    yield ctx.diagnostic(
                        self, y,
                        f"sim process {func.name!r} yields a non-event "
                        f"{type(v).__name__}; the kernel only accepts Events "
                        f"(timeout/request/get/...)",
                    )


@register
class SwallowedInterruptRule(Rule):
    id = "SIM202"
    name = "swallowed-interrupt"
    severity = Severity.ERROR
    rationale = (
        "Interrupt is how the kernel cancels a process (fault windows, "
        "watchdogs). A handler that catches it and just carries on — no "
        "re-raise, no return/break, no cancel/release cleanup — revives a "
        "process its interrupter believes dead, the exact shape behind "
        "the PR-2 resource leaks."
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if not handler_catches(handler, "Interrupt"):
                    continue
                if self._handler_is_swallowing(handler):
                    yield ctx.diagnostic(
                        self, handler,
                        "except Interrupt neither re-raises, returns/breaks, "
                        "nor cancels/releases anything: the interrupt is "
                        "swallowed and the process keeps running",
                    )

    @staticmethod
    def _handler_is_swallowing(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            for node in iter_scope(stmt):
                if isinstance(node, (ast.Raise, ast.Return, ast.Break)):
                    return False
                if call_method(node) in CLEANUP_METHODS:
                    return False
        return True


@register
class AbandonedClaimRule(Rule):
    id = "SIM203"
    name = "abandoned-claim"
    severity = Severity.WARNING
    rationale = (
        "resource.request() / store.get() enqueue a claim the moment they "
        "are called; a claim that is never yielded, cancelled, or even "
        "referenced again still occupies a slot (or steals an item) "
        "forever once granted. Either yield it or cancel it."
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for func in iter_functions(tree):
            info = analyze_function(func)
            if not info.is_sim_process:
                continue
            for stmt in scope_body(func):
                claim = self._claim_call(stmt)
                if claim is None:
                    continue
                if isinstance(stmt, ast.Expr):
                    yield ctx.diagnostic(
                        self, stmt,
                        f"claim {self._describe(claim)} discarded immediately: "
                        f"it occupies a slot once granted but nothing can "
                        f"ever yield or cancel it",
                    )
                elif isinstance(stmt, ast.Assign):
                    names = [
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    ]
                    if names and not self._referenced_after(func, stmt, set(names)):
                        yield ctx.diagnostic(
                            self, stmt,
                            f"claim {self._describe(claim)} assigned to "
                            f"{', '.join(repr(n) for n in names)} but never "
                            f"yielded, cancelled, or referenced again",
                        )

    @staticmethod
    def _claim_call(stmt: ast.AST) -> "ast.Call | None":
        """The call node if ``stmt`` is ``[name =] X.request()`` or a
        zero-argument ``X.get()`` (Store.get; dict.get always takes
        arguments, so it never matches)."""
        if isinstance(stmt, (ast.Expr, ast.Assign)):
            v = stmt.value
            if isinstance(v, ast.Call) and isinstance(v.func, ast.Attribute):
                if v.args or v.keywords:
                    return None
                if v.func.attr in ("request", "get"):
                    return v
        return None

    @staticmethod
    def _describe(call: ast.Call) -> str:
        assert isinstance(call.func, ast.Attribute)
        return f".{call.func.attr}()"

    @staticmethod
    def _referenced_after(
        func: ast.AST, assign: ast.Assign, names: Set[str]
    ) -> bool:
        lineno = assign.lineno
        loads: List[str] = []
        for node in scope_body(func):  # type: ignore[arg-type]
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.lineno > lineno
            ):
                loads.append(node.id)
        return any(n in loads for n in names)
