"""SIM101 — wall-clock time sources in simulation code.

Simulated time is ``sim.now``; the host's clock must never influence
model behaviour, or two runs of the same seed diverge.  The only
legitimate wall-clock sites are the harnesses that *measure the
simulator itself* (``simnet/engine.py`` self-profile, ``runner.py``
sweep timing, ``perfsnap.py``) — those carry explicit suppressions.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set

from ..context import dotted_name
from ..diagnostics import Diagnostic, Severity
from ..registry import LintContext, Rule, register

#: time-module functions that read the host clock
_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: datetime constructors that read the host clock
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


@register
class WallClockRule(Rule):
    id = "SIM101"
    name = "wall-clock-call"
    severity = Severity.ERROR
    rationale = (
        "A wall-clock read (time.time, time.perf_counter, datetime.now, ...) "
        "reachable from model code makes event timing depend on the host "
        "machine, so identical seeds stop producing byte-identical rows. "
        "Use sim.now for simulated time; suppress only at harness sites "
        "that deliberately measure the simulator's own wall-clock cost."
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Diagnostic]:
        # Track aliases: ``import time as t`` and ``from time import
        # perf_counter [as pc]`` both reach the host clock.
        time_modules: Set[str] = set()
        datetime_modules: Set[str] = set()
        clock_names: Dict[str, str] = {}  # local name -> original func
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_modules.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        datetime_modules.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FUNCS:
                            clock_names[alias.asname or alias.name] = alias.name

        # A *bare* reference (``timer = time.monotonic``, or passing the
        # function as a tick source) smuggles the host clock just as
        # surely as calling it — flag those too, but not the ``func`` of
        # a Call we already report.
        call_funcs = {
            id(node.func) for node in ast.walk(tree) if isinstance(node, ast.Call)
        }
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and id(node) not in call_funcs:
                d = dotted_name(node)
                parts = d.split(".") if d else []
                if (
                    len(parts) == 2
                    and parts[0] in time_modules
                    and parts[1] in _TIME_FUNCS
                ):
                    yield ctx.diagnostic(
                        self, node,
                        f"bare reference to {d} hands out the host clock; "
                        f"pass a sim.now-based tick source instead",
                    )
                continue
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in call_funcs
                and node.id in clock_names
            ):
                yield ctx.diagnostic(
                    self, node,
                    f"bare reference to time.{clock_names[node.id]} hands "
                    f"out the host clock; pass a sim.now-based tick "
                    f"source instead",
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                orig = clock_names.get(func.id)
                if orig is not None:
                    yield ctx.diagnostic(
                        self, node,
                        f"wall-clock call time.{orig}() in simulation code; "
                        f"use sim.now (simulated nanoseconds) instead",
                    )
                continue
            d = dotted_name(func)
            if d is None:
                continue
            parts = d.split(".")
            if len(parts) == 2 and parts[0] in time_modules and parts[1] in _TIME_FUNCS:
                yield ctx.diagnostic(
                    self, node,
                    f"wall-clock call {d}() in simulation code; "
                    f"use sim.now (simulated nanoseconds) instead",
                )
            elif (
                parts[-1] in _DATETIME_FUNCS
                and len(parts) >= 2
                and (parts[0] in datetime_modules or parts[-2] in ("datetime", "date"))
            ):
                yield ctx.diagnostic(
                    self, node,
                    f"wall-clock call {d}() in simulation code; "
                    f"derive timestamps from sim.now instead",
                )
