"""SIM501/SIM502/SIM503 — flow-sensitive (CFG-based) rules.

Unlike the per-node rules, these ask about *paths*: an obligation is
created at one statement (spawn a child process, open a span, launder a
set into an ordered container) and must be discharged on **every** path
to function exit.  The path search runs over the per-function CFG from
:mod:`repro.simlint.flow`; a statement that merely references the
tracked name discharges the obligation (maximally conservative — we
would rather miss a leak than flag a hand-off we cannot follow).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from ..context import (
    FunctionNode,
    analyze_function,
    iter_functions,
    iter_scope,
    scope_body,
)
from ..diagnostics import Diagnostic, Severity
from ..flow import build_cfg, reaches_exit_avoiding
from ..registry import LintContext, Rule, register


def _references(stmt: ast.stmt, name: str) -> bool:
    """Whether ``stmt`` mentions ``name`` at all — including inside
    nested lambdas and defs, which capture it (a closure hand-off keeps
    the object reachable, so it discharges the obligation)."""
    for node in ast.walk(stmt):
        if isinstance(node, ast.Name) and node.id == name:
            return True
    return False


def _assigned_name(stmt: ast.stmt) -> Optional[str]:
    if (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    ):
        return stmt.targets[0].id
    return None


@register
class UnjoinedChildProcessRule(Rule):
    id = "SIM501"
    name = "unjoined-child-process"
    severity = Severity.ERROR
    rationale = (
        "A sim process that spawns a child with sim.process(...) and then "
        "returns on some path without awaiting, interrupting, or handing "
        "the child off leaves it running against torn-down state — the "
        "PR 9 teardown-hang class. Yield the child (or its completion "
        "event), interrupt it, or store the handle where the owner can."
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for func in iter_functions(tree):
            info = analyze_function(func)
            if not info.is_sim_process:
                continue
            cfg = None
            for stmt in _statements(func):
                name = _assigned_name(stmt)
                if name is None or not _is_process_spawn(stmt.value):
                    continue
                if cfg is None:
                    cfg = build_cfg(func)
                witness = reaches_exit_avoiding(
                    cfg, stmt, lambda s, n=name: _references(s, n)
                )
                if witness is not None:
                    yield ctx.diagnostic(
                        self, stmt,
                        f"child process '{name}' spawned here is never "
                        f"awaited, interrupted, or handed off on at least "
                        f"one path to return",
                    )


def _statements(func: FunctionNode) -> Iterable[ast.stmt]:
    """Every statement in the function's own scope."""
    for stmt in func.body:
        for node in iter_scope(stmt):
            if isinstance(node, ast.stmt):
                yield node


def _is_process_spawn(node: Optional[ast.expr]) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "process"
    )


# --------------------------------------------------------------- SIM502
def _is_set_valued(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_valued(node.left, set_names) or _is_set_valued(
            node.right, set_names
        )
    return False


def _iterates(expr: ast.expr, name: str) -> bool:
    """Whether ``expr`` iterates local ``name`` (directly or via
    ``name.items()/keys()/values()``) without a sorted(...) wrapper."""
    if isinstance(expr, ast.Name):
        return expr.id == name
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("items", "keys", "values")
        and isinstance(expr.func.value, ast.Name)
    ):
        return expr.func.value.id == name
    return False


@register
class SetOrderEmissionRule(Rule):
    id = "SIM502"
    name = "set-order-emission"
    severity = Severity.ERROR
    rationale = (
        "A dict or list populated by iterating a set inherits hash order "
        "— salted per interpreter run — as its insertion order; iterating "
        "it later emits that order into rows, schedules, or digests even "
        "though the second loop looks innocent. Sort at the population "
        "site (or at emission) so the laundered order never escapes."
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for func in iter_functions(tree):
            set_names: Set[str] = set()
            for stmt in _statements(func):
                name = _assigned_name(stmt)
                if name and _is_set_valued(stmt.value, set_names):
                    set_names.add(name)
            taints = list(self._taint_sites(func, set_names))
            if not taints:
                continue
            cfg = build_cfg(func)
            for taint_stmt, container in taints:
                hit = self._emission_after(cfg, func, taint_stmt, container)
                if hit is not None:
                    yield ctx.diagnostic(
                        self, hit,
                        f"'{container}' was populated in set-iteration "
                        f"order (line {taint_stmt.lineno}) and is iterated "
                        f"here in emission order; wrap one end in "
                        f"sorted(...)",
                    )

    @staticmethod
    def _taint_sites(
        func: FunctionNode, set_names: Set[str]
    ) -> Iterable[Tuple[ast.stmt, str]]:
        """(statement, container-name) pairs where a dict/list's
        insertion order is taken from a set's iteration order."""
        for stmt in _statements(func):
            # d = {k: ... for k in some_set} / d = [f(k) for k in some_set]
            name = _assigned_name(stmt)
            if name and isinstance(stmt.value, (ast.DictComp, ast.ListComp)):
                if any(
                    _is_set_valued(g.iter, set_names)
                    for g in stmt.value.generators
                ):
                    yield stmt, name
            # d = dict.fromkeys(some_set)
            if (
                name
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "fromkeys"
                and stmt.value.args
                and _is_set_valued(stmt.value.args[0], set_names)
            ):
                yield stmt, name
            # for k in some_set: d[k] = ... / d.append(...)
            if isinstance(stmt, ast.For) and _is_set_valued(
                stmt.iter, set_names
            ):
                for filled in _containers_filled(stmt):
                    yield stmt, filled

    @staticmethod
    def _emission_after(
        cfg, func: FunctionNode, taint: ast.stmt, container: str
    ) -> Optional[ast.AST]:
        """First statement reachable from ``taint`` that iterates the
        container unsorted; None if the order never escapes."""
        hit: List[ast.AST] = []

        def kills(stmt: ast.stmt) -> bool:
            if stmt is taint:
                return False
            for node in iter_scope(stmt):
                if isinstance(node, ast.For) and _iterates(node.iter, container):
                    hit.append(node.iter)
                    return True
                if isinstance(
                    node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
                ) and any(_iterates(g.iter, container) for g in node.generators):
                    hit.append(node)
                    return True
                # a reassignment resets the container's order
                if (
                    isinstance(node, ast.Name)
                    and node.id == container
                    and isinstance(node.ctx, ast.Store)
                ):
                    return True
            return False

        reaches_exit_avoiding(cfg, taint, kills)
        return hit[0] if hit else None


def _containers_filled(loop: ast.For) -> Iterable[str]:
    """Names of dict/list locals written positionally inside ``loop``."""
    out: Set[str] = set()
    for node in iter_scope(loop):
        # d[k] = v
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if (
                    isinstance(tgt, ast.Subscript)
                    and isinstance(tgt.value, ast.Name)
                    and isinstance(tgt.ctx, ast.Store)
                ):
                    out.add(tgt.value.id)
        # l.append(v) / l.extend(v) / d.setdefault(k, v)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("append", "extend", "setdefault")
            and isinstance(node.func.value, ast.Name)
        ):
            out.add(node.func.value.id)
    return sorted(out)


# --------------------------------------------------------------- SIM503
@register
class SpanCloseAllPathsRule(Rule):
    id = "SIM503"
    name = "span-close-on-all-paths"
    severity = Severity.ERROR
    rationale = (
        "A telemetry span opened with begin(...) and not closed on every "
        "path to return stays pending forever: latency percentiles lose "
        "the request, and the sanitizer's orphan detector fires at "
        "quiesce. Close it in a finally, use the span() context manager, "
        "or hand the span off to the completion path explicitly."
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for func in iter_functions(tree):
            cfg = None
            for stmt in _statements(func):
                name = _assigned_name(stmt)
                if name is None or not _is_span_open(stmt.value):
                    continue
                if cfg is None:
                    cfg = build_cfg(func)
                witness = reaches_exit_avoiding(
                    cfg, stmt, lambda s, n=name: _references(s, n)
                )
                if witness is not None:
                    yield ctx.diagnostic(
                        self, stmt,
                        f"span '{name}' opened here is not closed (or "
                        f"handed off) on at least one path to return",
                    )


def _is_span_open(node: Optional[ast.expr]) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "begin"
        and not any(isinstance(a, ast.Starred) for a in node.args)
    )
