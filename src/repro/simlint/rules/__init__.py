"""Rule modules; importing this package registers every rule.

Rule id map (one module per bug family):

* ``wallclock``          — SIM101 wall-clock-call
* ``randomness``         — SIM102 unseeded-random
* ``ordering``           — SIM103 set-iteration-order, SIM104 id-keyed-collection
* ``coroutine``          — SIM201 yield-non-event, SIM202 swallowed-interrupt,
  SIM203 abandoned-claim
* ``resource_hygiene``   — SIM301 leak-on-interrupt
* ``telemetry_hygiene``  — SIM401 uncached-metric-handle
* ``flow_rules``         — SIM501 unjoined-child-process,
  SIM502 set-order-emission, SIM503 span-close-on-all-paths
  (CFG-based; see :mod:`repro.simlint.flow`)
"""

from . import (  # noqa: F401  (imported for their registration side effect)
    coroutine,
    flow_rules,
    ordering,
    randomness,
    resource_hygiene,
    telemetry_hygiene,
    wallclock,
)
