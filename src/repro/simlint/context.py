"""Shared AST analysis helpers for simlint rules.

The rules share a small vocabulary:

* a **scope** is a function body traversed without descending into
  nested ``def``/``lambda`` (their yields and locals belong to the inner
  function, not to the process being checked);
* a **waitable constructor** is a call that produces a kernel
  :class:`~repro.simnet.engine.Event` — ``sim.timeout(...)``,
  ``resource.request()``, ``store.get()``, ``pcie.dma(...)``, …;
* a **sim process** is a generator function at least one of whose own
  yields is (or was assigned from) a waitable constructor.  Plain data
  generators (row iterators, token streams) never match, so coroutine
  rules stay quiet on them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: method names whose call results are kernel events a process waits on
WAITABLE_METHODS = frozenset(
    {
        "timeout",
        "timeout_at",
        "event",
        "request",
        "process",
        "all_of",
        "any_of",
        "dma",
        "get",
        "put",
        "send",
        "transfer",
    }
)

#: attribute names that read as "this cleans a claim up"
CLEANUP_METHODS = frozenset(
    {"release", "cancel", "put", "succeed", "fail", "interrupt", "close"}
)


def iter_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Yield ``node`` and descendants, not descending into nested
    functions or lambdas (their bodies are separate scopes)."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield from iter_scope(child)


def scope_body(func: FunctionNode) -> Iterator[ast.AST]:
    """All nodes in ``func``'s own body (the function node excluded)."""
    for stmt in func.body:
        yield from iter_scope(stmt)


def iter_functions(tree: ast.AST) -> Iterator[FunctionNode]:
    """Every function definition in the module, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_method(node: ast.AST) -> Optional[str]:
    """The attribute name of a method call (``x.y.request()`` -> ``request``)."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def is_waitable_call(node: ast.AST) -> bool:
    """Whether ``node`` is a call that plausibly constructs a kernel event."""
    return call_method(node) in WAITABLE_METHODS


@dataclass
class FunctionInfo:
    """Per-function facts shared by the coroutine/resource rules."""

    node: FunctionNode
    yields: List[ast.expr] = field(default_factory=list)  # Yield / YieldFrom
    #: local names assigned from waitable-constructor calls
    waitable_names: Set[str] = field(default_factory=set)
    is_sim_process: bool = False

    @property
    def is_generator(self) -> bool:
        return bool(self.yields)


def analyze_function(func: FunctionNode) -> FunctionInfo:
    info = FunctionInfo(node=func)
    for node in scope_body(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            info.yields.append(node)
        elif isinstance(node, ast.Assign) and is_waitable_call(node.value):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    info.waitable_names.add(tgt.id)
    for y in info.yields:
        v = y.value
        if v is None:
            continue
        if is_waitable_call(v):
            info.is_sim_process = True
            break
        if isinstance(v, ast.Name) and v.id in info.waitable_names:
            info.is_sim_process = True
            break
    return info


def names_loaded(nodes: Iterator[ast.AST]) -> Set[str]:
    """All Name ids read (Load context) across ``nodes``."""
    out: Set[str] = set()
    for node in nodes:
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            out.add(node.id)
    return out


def handler_catches(handler: ast.ExceptHandler, exc_name: str) -> bool:
    """Whether an ``except`` clause names ``exc_name`` (directly, via an
    attribute like ``engine.Interrupt``, or inside a tuple)."""

    def matches(t: Optional[ast.expr]) -> bool:
        if t is None:
            return False
        if isinstance(t, ast.Tuple):
            return any(matches(e) for e in t.elts)
        d = dotted_name(t)
        return d is not None and d.split(".")[-1] == exc_name

    return matches(handler.type)
