"""repro.simlint — simulation-aware static analysis.

The reproduction's credibility rests on deterministic discrete-event
simulation: identical seeds must give byte-identical rows.  PRs 2–4
each hand-fixed bugs a machine could have caught (leak-on-interrupt in
``simnet/resources.py``, per-event metric lookups, cross-testbed id
leaks).  This package enforces those invariants statically, in the
spirit of the sPIN/PsPIN constrained handler execution model: the
process-generator and resource protocols are *checked*, not trusted.

Usage::

    PYTHONPATH=src python -m repro lint src/repro          # human output
    PYTHONPATH=src python -m repro lint --format json ...  # machine output
    PYTHONPATH=src python -m repro lint --list-rules

Findings are suppressed per line with ``# simlint: disable=SIM101`` or
per file with ``# simlint: disable-file=SIM101`` (see
:mod:`repro.simlint.suppress`); the committed tree lints clean, and the
CI gate keeps it that way.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from . import rules  # noqa: F401  (populates the registry)
from .diagnostics import Diagnostic, Severity
from .registry import RULES, LintContext, Rule, all_rules
from .suppress import SuppressionIndex

#: bumped whenever a rule is added or a message/severity changes, so
#: archived --format json output is diffable across tool versions
__version__ = "0.2.0"

__all__ = [
    "__version__",
    "Diagnostic",
    "Severity",
    "Rule",
    "RULES",
    "all_rules",
    "lint_source",
    "lint_paths",
    "LintResult",
]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def lint_source(
    path: str,
    source: str,
    rule_ids: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint one already-read source file."""
    res = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        res.findings.append(
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="SIM000",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
            )
        )
        return res
    suppressions = SuppressionIndex.from_source(source)
    ctx = LintContext(path=path, source=source)
    active = all_rules() if rule_ids is None else [RULES[r] for r in rule_ids]
    for rule in active:
        for diag in rule.check(tree, ctx):
            if suppressions.is_suppressed(diag.rule, diag.line):
                res.suppressed.append(
                    Diagnostic(
                        path=diag.path,
                        line=diag.line,
                        col=diag.col,
                        rule=diag.rule,
                        severity=diag.severity,
                        message=diag.message,
                        suppressed=True,
                    )
                )
            else:
                res.findings.append(diag)
    res.findings.sort()
    res.suppressed.sort()
    return res


def _iter_py_files(paths: Iterable[str]) -> List[str]:
    out: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for f in sorted(files):
                    if f.endswith(".py"):
                        out.append(os.path.join(root, f))
        elif p.endswith(".py"):
            out.append(p)
    return sorted(dict.fromkeys(out))


def lint_paths(
    paths: Sequence[str],
    rule_ids: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint files and directory trees; deterministic file order."""
    total = LintResult()
    for fp in _iter_py_files(paths):
        with open(fp, "r", encoding="utf-8") as fh:
            source = fh.read()
        one = lint_source(fp, source, rule_ids=rule_ids)
        total.findings.extend(one.findings)
        total.suppressed.extend(one.suppressed)
        total.files_checked += one.files_checked
    total.findings.sort()
    total.suppressed.sort()
    return total
