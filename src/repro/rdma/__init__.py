"""RDMA substrate: NIC model, one-sided verbs, HyperLoop triggered WQEs."""

from .nic import OpResult, PendingOp, RdmaNic, fresh_greq_id

__all__ = ["OpResult", "PendingOp", "RdmaNic", "fresh_greq_id"]
