"""The RDMA NIC model: one-sided writes/reads, RPC delivery, acks.

This is the baseline transport every protocol builds on (Fig. 1b/1c).
A :class:`RdmaNic` terminates the node's network port and implements:

* **initiator side** — ``post_write`` / ``post_read`` / ``post_rpc``:
  segment a message, charge the client posting overhead (WQE build +
  doorbell), stream packets, and complete when the expected number of
  acknowledgments (or the read/RPC response) arrives;
* **target side** — dispatch received packets: one-sided writes DMA
  payloads into the host memory target (acking on the last packet,
  *without* waiting for the PCIe flush — the RDMA persistence gap of
  §III-B1), read requests stream data back, RPC sends are DMA'd up and
  handed to the host's command queue.

A :class:`~repro.pspin.accelerator.PsPinAccelerator` can be attached, in
which case matching packets are diverted into it *before* the host path
(Fig. 1d); everything else behaves like a plain RDMA NIC.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..params import SimParams
from ..simnet.engine import Event, Interrupt, Simulator
from ..simnet.link import Port
from ..simnet.packet import (
    Message,
    Packet,
    PacketTrain,
    as_payload,
    fresh_msg_id,
    register_id_reset,
    segment_message,
)
from ..telemetry.metrics import HandleCache

__all__ = ["RdmaNic", "OpResult", "PendingOp"]

_greq_ids = itertools.count(1)


def fresh_greq_id() -> int:
    return next(_greq_ids)


def _reset_greq_ids() -> None:
    global _greq_ids
    _greq_ids = itertools.count(1)


# greq ids restart with every simulation (see packet.reset_id_state)
register_id_reset(_reset_greq_ids)


@dataclass
class OpResult:
    """Outcome of a posted operation."""

    ok: bool
    t_start: float
    t_end: float
    greq_id: int
    nacks: list = field(default_factory=list)
    data: Optional[np.ndarray] = None
    #: merged headers of received acks (e.g. the assigned log offset)
    info: dict = field(default_factory=dict)  # for reads / RPC responses

    @property
    def latency_ns(self) -> float:
        return self.t_end - self.t_start


@dataclass
class PendingOp:
    event: Event
    t_start: float
    greq_id: int
    expected_acks: int = 1
    acks: int = 0
    nacks: list = field(default_factory=list)
    data: Optional[np.ndarray] = None
    info: dict = field(default_factory=dict)
    # -- reliability layer (used when FaultParams.retransmit is on) ----
    #: wire messages of this op, kept for end-to-end retransmission
    messages: list = field(default_factory=list)
    #: transmission attempts so far (1 = the original send)
    attempts: int = 1
    #: dedup keys of acks already counted (duplicate acks are dropped)
    ack_keys: set = field(default_factory=set)
    #: the per-op retransmission-timer Process, interrupted on completion
    watchdog: Optional[object] = None
    #: last time an ack/progress for this op was observed
    last_progress: float = 0.0
    #: request trace context (for retransmit-backoff telemetry spans)
    trace: Optional[object] = None


class RdmaNic:
    """One node's NIC.  ``host`` duck-type:

    * ``host.memory`` — :class:`~repro.hostsim.memory.MemoryTarget` or None
    * ``host.pcie``   — :class:`~repro.hostsim.pcie.Pcie` or None
    * ``host.on_rpc(headers, payload, src)`` — optional RPC delivery hook
    """

    def __init__(self, sim: Simulator, params: SimParams, host, name: str):
        self.sim = sim
        self.params = params
        self.host = host
        self.name = name
        # process/event names formatted once, not per message (hot path)
        self._pname_tx = f"{name}.tx"
        self._pname_rtx = f"{name}.rtx"
        self._pname_read = f"{name}.read"
        self._handles = HandleCache(
            lambda m: (
                m.counter(f"nic.{name}.tx_messages"),
                m.counter(f"nic.{name}.tx_bytes"),
                m.counter(f"nic.{name}.retransmits"),
                m.counter(f"nic.{name}.timeouts"),
            )
        )
        self.port: Optional[Port] = None  # wired by the network builder
        self.accelerator = None  # optional PsPinAccelerator
        self._pending: Dict[int, PendingOp] = {}
        #: per-incoming-message receive state (DMA offsets, reply routes)
        self._rx_writes: Dict[object, object] = {}
        #: hooks for protocol extensions (e.g. HyperLoop preposted WQEs)
        self.rx_hooks: list[Callable[[Packet], bool]] = []
        #: writes already committed + acked: msg_id -> (reply_to, greq);
        #: bounded memo so retransmitted completions re-ack, never re-DMA
        self._done_writes: Dict[int, tuple] = {}
        # stats
        self.rx_packets = 0
        self.tx_messages = 0
        self.acks_sent = 0
        self.retransmits = 0
        self.timeouts = 0
        self.dup_acks = 0
        self.dup_completions = 0
        self.incomplete_drops = 0
        self.rx_dropped = 0
        san = sim.sanitizer
        if san is not None:
            san.adopt("nic", self)

    def _track_pending(self, gid: int, label: str) -> None:
        """Sanitizer hook: record who posted this logical request (the
        acquisition backtrace makes a leaked greq report actionable)."""
        san = self.sim.sanitizer
        if san is not None:
            san.claim("greq", (self.name, gid), label)

    # ------------------------------------------------------------ wiring
    def attach_port(self, port: Port) -> None:
        self.port = port

    def attach_accelerator(self, accel) -> None:
        self.accelerator = accel

    # =================================================== initiator side
    def post_write(
        self,
        dst: str,
        data,
        headers: dict,
        header_bytes: int = 8,
        expected_acks: int = 1,
        greq_id: Optional[int] = None,
        op: str = "write",
        post_overhead: bool = True,
    ) -> Event:
        """Post a (one-sided) write; the event's value is an OpResult.

        ``headers`` must let the target place the data: either a raw
        ``{"addr": n}`` or DFS headers (``dfs``/``wrh`` objects).
        """
        gid = fresh_greq_id() if greq_id is None else greq_id
        headers = dict(headers)
        headers.setdefault("greq_id", gid)
        msg = Message(
            src=self.name,
            dst=dst,
            op=op,
            data=as_payload(data) if data is not None else None,
            headers=headers,
            header_bytes=header_bytes,
        )
        existing = self._pending.get(gid)
        if existing is not None:
            # Part of a multi-message transaction opened via
            # open_transaction(): reuse its pending op and event.
            done = existing.event
        else:
            done = self.sim.event(name="write")
            self._pending[gid] = PendingOp(
                event=done, t_start=self.sim.now, greq_id=gid, expected_acks=expected_acks
            )
            self._track_pending(gid, op)
        self.sim.process(self._tx_message(msg, post_overhead), name=self._pname_tx)
        self._track_for_retry(gid, msg)
        return done

    def post_read(self, dst: str, addr: int, length: int, headers: Optional[dict] = None) -> Event:
        """One-sided read: request goes out, target NIC streams data back."""
        gid = fresh_greq_id()
        h = dict(headers or {})
        h.update({"greq_id": gid, "addr": addr, "length": length, "reply_to": self.name})
        msg = Message(src=self.name, dst=dst, op="read_req", headers=h, header_bytes=24)
        done = self.sim.event(name="read")
        op = PendingOp(event=done, t_start=self.sim.now, greq_id=gid)
        op.data = np.zeros(length, dtype=np.uint8)
        op.acks = 0  # bytes received accumulate in op
        self._pending[gid] = op
        self._track_pending(gid, "read")
        self.sim.process(self._tx_message(msg, True), name=self._pname_tx)
        self._track_for_retry(gid, msg)
        return done

    def post_rpc(
        self,
        dst: str,
        headers: dict,
        data=None,
        header_bytes: int = 32,
        post_overhead: bool = True,
    ) -> Event:
        """Two-sided send: delivered to the target host's RPC queue; the
        event completes when an ``rpc_resp`` for it returns."""
        gid = fresh_greq_id()
        h = dict(headers)
        h.update({"greq_id": gid, "reply_to": self.name})
        msg = Message(
            src=self.name,
            dst=dst,
            op="rpc",
            data=as_payload(data) if data is not None else None,
            headers=h,
            header_bytes=header_bytes,
        )
        done = self.sim.event(name="rpc")
        self._pending[gid] = PendingOp(event=done, t_start=self.sim.now, greq_id=gid)
        self._track_pending(gid, "rpc")
        self.sim.process(self._tx_message(msg, post_overhead), name=self._pname_tx)
        self._track_for_retry(gid, msg)
        return done

    def open_transaction(self, expected_acks: int, greq_id: Optional[int] = None) -> tuple[int, Event]:
        """Create a pending operation that completes after
        ``expected_acks`` acknowledgments referencing ``greq_id`` arrive.

        Used by multi-message operations (chunked CPU replication,
        erasure-coded block writes) where several wire messages share one
        logical request id.
        """
        gid = fresh_greq_id() if greq_id is None else greq_id
        done = self.sim.event(name="txn")
        self._pending[gid] = PendingOp(
            event=done, t_start=self.sim.now, greq_id=gid, expected_acks=expected_acks
        )
        self._track_pending(gid, "txn")
        return gid, done

    def send_message(
        self,
        dst: str,
        op: str,
        headers: dict,
        data=None,
        header_bytes: int = 8,
        post_overhead: bool = True,
    ) -> None:
        """Fire-and-forget message send (no pending op is created)."""
        msg = Message(
            src=self.name,
            dst=dst,
            op=op,
            data=as_payload(data) if data is not None else None,
            headers=dict(headers),
            header_bytes=header_bytes,
        )
        self.sim.process(self._tx_message(msg, post_overhead), name=self._pname_tx)
        gid = self._greq_of(msg.headers)
        if gid is not None and gid in self._pending:
            # Part of a tracked transaction (open_transaction): the
            # message joins the op's retransmission set.
            self._track_for_retry(gid, msg)

    def send_raw(self, pkt: Packet) -> Event:
        """NIC-level packet emission (used by the accelerator and by
        protocol machinery like HyperLoop's triggered WQEs)."""
        assert self.port is not None, f"{self.name} not attached to a network"
        return self.port.send(pkt)

    def send_control(self, dst: str, op: str, headers: dict, trace=None) -> Event:
        pkt = Packet(
            src=self.name,
            dst=dst,
            op=op,
            msg_id=fresh_msg_id(),
            seq=0,
            nseq=1,
            headers=headers,
            header_bytes=16,
            trace=trace,
        )
        return self.send_raw(pkt)

    # ------------------------------------------------ reliability layer
    @staticmethod
    def _greq_of(headers: dict) -> Optional[int]:
        """Best-effort extraction of the logical request id a message
        belongs to (plain, DFS, or INEC header shapes)."""
        dfs = headers.get("dfs")
        if dfs is not None:
            return getattr(dfs, "greq_id", None)
        gid = headers.get("greq_id")
        if gid is not None:
            return gid
        inec = headers.get("inec")
        if isinstance(inec, dict):
            return inec.get("greq_id")
        return None

    def _track_for_retry(self, gid: int, msg: Message) -> None:
        """Register ``msg`` for end-to-end retransmission of op ``gid``
        and arm the per-op watchdog (when the reliability layer is on).

        Retransmitting the stored :class:`Message` re-segments it with
        the SAME msg_id, so targets can suppress duplicates.
        """
        fp = self.params.faults
        # arm on ``retransmit`` alone: a node crash produces no wire
        # faults (``active`` stays False so packet-train coalescing is
        # untouched) yet still needs the watchdog to turn a silently
        # dropped op into a bounded-time nack
        if not fp.retransmit:
            return
        pending = self._pending.get(gid)
        if pending is None or pending.event.triggered:
            return
        pending.messages.append(msg)
        pending.last_progress = self.sim.now
        if pending.trace is None:
            pending.trace = msg.headers.get("trace")
        if pending.watchdog is None:
            wd = self.sim.process(self._watchdog(gid), name=f"{self.name}.rto({gid})")
            wd._observed = True
            pending.watchdog = wd

    def _watchdog(self, gid: int):
        """Per-op retransmission timer: capped exponential backoff,
        bounded retransmit budget, interrupted via Process.interrupt when
        the op completes."""
        fp = self.params.faults
        sim = self.sim
        rto = fp.rto_ns
        try:
            while True:
                yield sim.timeout(rto)
                pending = self._pending.get(gid)
                if pending is None or pending.event.triggered:
                    return
                if sim.now - pending.last_progress < rto:
                    # acks arrived recently: the op is making progress,
                    # hold fire for another interval
                    continue
                if pending.attempts > fp.max_retransmits:
                    self.timeouts += 1
                    tel = sim.telemetry
                    if tel.enabled:
                        self._handles.get(tel.metrics)[3].inc()
                        self._backoff_span(tel, pending, gid, gave_up=True)
                    pending.nacks.append(
                        {"reason": "timeout", "ack_for": gid, "attempts": pending.attempts}
                    )
                    # detach first so _complete does not interrupt *us*
                    pending.watchdog = None
                    self._complete(gid, ok=False)
                    return
                pending.attempts += 1
                n = len(pending.messages)
                self.retransmits += n
                tel = sim.telemetry
                if tel.enabled:
                    self._handles.get(tel.metrics)[2].inc(n)
                    self._backoff_span(tel, pending, gid, gave_up=False)
                for msg in pending.messages:
                    sim.process(self._tx_message(msg, False), name=self._pname_rtx)
                pending.last_progress = sim.now
                rto = min(rto * fp.rto_backoff, fp.rto_max_ns)
        except Interrupt:
            return

    def _backoff_span(self, tel, pending: PendingOp, gid: int, gave_up: bool) -> None:
        """Record the stalled window ``[last_progress, now)`` that the
        retransmission timer just sat out as a ``retransmit``-phase span.

        The phase is attributed at the *lowest* anatomy priority (see
        :mod:`repro.telemetry.anatomy`): backoff only claims time in
        which no other stage of the request made progress, which is
        exactly the latency the fault added.
        """
        now = self.sim.now
        if now <= pending.last_progress:
            return
        tel.span(
            ("rto gave-up" if gave_up else f"rto backoff x{pending.attempts}"),
            pid="net",
            tid=self.name,
            t0=pending.last_progress,
            t1=now,
            cat="retransmit",
            trace=pending.trace,
            args={"greq_id": gid, "attempts": pending.attempts},
            phase="retransmit",
        )

    def _tx_message(self, msg: Message, post_overhead: bool):
        sim = self.sim
        t0 = sim.now
        if post_overhead:
            # WQE construction + doorbell on the initiating host.
            yield sim.timeout(self.params.client_post_ns)
        # NIC tx pipeline latency (once per message; packets then stream
        # at line rate through the fixed-depth pipeline).
        yield sim.timeout(self.params.nic_tx_ns)
        t_submit = sim.now
        self.tx_messages += 1
        pkts = segment_message(msg, self.params.net.mtu)
        train = self.port.try_send_train(pkts) if len(pkts) >= 2 else None
        if train is not None:
            # One wakeup for the whole burst; if cross-traffic aborted
            # the train mid-stream, resume the per-packet loop exactly
            # where the wire left off.
            yield train.ev
            for pkt in pkts[train.cut :]:
                yield self.port.send(pkt)
        else:
            for pkt in pkts:
                yield self.port.send(pkt)
        tel = sim.telemetry
        if tel.enabled:
            nbytes = msg.data.nbytes if msg.data is not None else 0
            trace = msg.headers.get("trace")
            # Submission overhead (WQE build + doorbell + tx pipeline)
            # is its own anatomy phase; the enclosing tx span is tagged
            # host_queue, so whatever the wire spans don't carve out of
            # it (egress-queue wait, inter-packet gaps) is attributed to
            # host-side queueing.
            tel.span(
                f"post {msg.op}",
                pid="net",
                tid=self.name,
                t0=t0,
                t1=t_submit,
                cat="net",
                trace=trace,
                args={"dst": msg.dst},
                phase="submit",
            )
            tel.span(
                f"tx {msg.op} {nbytes}B",
                pid="net",
                tid=self.name,
                t0=t0,
                t1=sim.now,
                cat="net",
                trace=trace,
                args={"bytes": nbytes, "packets": len(pkts), "dst": msg.dst},
                phase="host_queue",
            )
            h = self._handles.get(tel.metrics)
            h[0].inc()
            h[1].inc(nbytes)

    # ==================================================== target side
    def receive(self, pkt: Packet) -> None:
        """Network delivery entry point (called by the link layer)."""
        if pkt.corrupted:
            # failed CRC: drop at the NIC, initiator will retransmit
            self.rx_dropped += 1
            return
        faults = self.sim.faults
        if faults is not None and faults.node_is_down(self.name):
            faults.count_node_drop(self.name)
            return
        self.rx_packets += 1
        # rx pipeline latency, then dispatch (closure-free scheduling)
        self.sim._call_soon1(self._dispatch, pkt, delay=self.params.nic_rx_ns)

    def receive_train(self, st: PacketTrain) -> None:
        """Coalesced delivery: the train's packets arrive at their
        precomputed times.  No corruption / node-down checks — trains
        only form when ``sim.faults is None``, so neither can occur."""
        self.sim._call_soon1(self._dispatch_train, st, delay=self.params.nic_rx_ns)

    def _dispatch_train(self, st: PacketTrain) -> None:
        if st.cut == 0:
            return  # fully cut before first arrival; packets re-sent
        ingest_train = getattr(self.accelerator, "ingest_train", None)
        if not self.rx_hooks and ingest_train is not None and ingest_train(st, self):
            return  # the accelerator paces the whole train itself
        # Fallback stepper: one event per packet at the exact per-packet
        # dispatch times (arrival + rx pipeline latency); still cheaper
        # than the fully general path (no port/receive events upstream).
        sim = self.sim
        nic_rx = self.params.nic_rx_ns
        self.rx_packets += 1
        self._dispatch(st.pkts[0])
        for j in range(1, len(st.pkts)):
            sim._call_at1(self._rx_train_step, (st, j), st.arr[j] + nic_rx)

    def _rx_train_step(self, arg) -> None:
        st, j = arg
        if j >= st.cut:
            return  # cut upstream; the re-sent packet arrives normally
        self.rx_packets += 1
        self._dispatch(st.pkts[j])

    def _dispatch(self, pkt: Packet) -> None:
        for hook in self.rx_hooks:
            if hook(pkt):
                return
        if self.accelerator is not None and self.accelerator.ingest(pkt):
            return
        op = pkt.op
        if op == "write":
            self._rx_write(pkt)
        elif op == "read_req":
            self.sim.process(self._serve_read(pkt), name=self._pname_read)
        elif op == "read_resp":
            self._rx_read_resp(pkt)
        elif op == "rpc":
            self._rx_rpc(pkt)
        elif op in ("ack", "nack", "rpc_resp"):
            self._rx_ack(pkt)
        else:
            raise ValueError(f"{self.name}: unknown packet op {op!r}")

    # -------------------------------------------------------- raw writes
    def _write_addr(self, pkt: Packet) -> int:
        wrh = pkt.headers.get("wrh")
        if wrh is not None:
            return wrh.addr
        return pkt.headers["addr"]

    def _rx_write(self, pkt: Packet) -> None:
        done = self._done_writes.get(pkt.msg_id)
        if done is not None:
            # Retransmission of a write we already committed and acked:
            # never re-DMA; re-ack on the completion packet in case the
            # original ack was the packet that got lost.
            if pkt.is_completion:
                reply, greq = done
                self.dup_completions += 1
                self.acks_sent += 1
                self.send_control(
                    reply,
                    "ack",
                    {
                        "ack_for": greq,
                        "node": self.name,
                        "dedup": (self.name, "w", pkt.msg_id),
                    },
                    trace=pkt.trace,
                )
            return
        if pkt.is_header:
            dfs = pkt.headers.get("dfs")
            self._rx_writes[pkt.msg_id] = {
                "addr": self._write_addr(pkt),
                "reply": (
                    dfs.reply_to
                    if dfs is not None
                    else pkt.headers.get("reply_to", pkt.src)
                )
                or pkt.src,
                "greq": dfs.greq_id if dfs is not None else pkt.headers.get("greq_id"),
                "got": 0,
            }
        st = self._rx_writes.get(pkt.msg_id)
        if st is None:
            return  # header lost/cleaned: drop silently
        if pkt.payload is not None:
            st["got"] += pkt.payload.nbytes
            if self.host.memory is not None:
                payload = pkt.payload
                addr = st["addr"] + pkt.payload_offset
                if self.host.pcie is not None:
                    self.host.pcie.dma(
                        payload.nbytes,
                        on_complete=lambda a=addr, p=payload: self.host.memory.write(a, p),
                        trace=pkt.trace,
                    )
                else:
                    self.host.memory.write(addr, payload)
        if pkt.is_completion:
            self._rx_writes.pop(pkt.msg_id, None)
            if st["got"] != pkt.payload_offset + pkt.payload_bytes:
                # middle packets were lost: never ack a short delivery;
                # drop the state and let the initiator retransmit
                self.incomplete_drops += 1
                return
            self._remember_done(pkt.msg_id, (st["reply"], st["greq"]))
            # RDMA semantics: ack once the last packet is received; the
            # data may still sit in PCIe buffers (§III-B1).
            self.acks_sent += 1
            self.send_control(
                st["reply"],
                "ack",
                {
                    "ack_for": st["greq"],
                    "node": self.name,
                    "dedup": (self.name, "w", pkt.msg_id),
                },
                trace=pkt.trace,
            )

    def _remember_done(self, msg_id: int, val: tuple) -> None:
        if len(self._done_writes) >= 4096:
            self._done_writes.pop(next(iter(self._done_writes)))
        self._done_writes[msg_id] = val

    # --------------------------------------------------------- reads
    def _serve_read(self, pkt: Packet):
        sim = self.sim
        addr, length = pkt.headers["addr"], pkt.headers["length"]
        reply_to = pkt.headers.get("reply_to", pkt.src)
        greq = pkt.headers["greq_id"]
        # DMA the data from host memory into the NIC (PCIe read).
        if self.host.pcie is not None:
            yield self.host.pcie.dma(length, trace=pkt.trace)
        data = (
            self.host.memory.read(addr, length)
            if self.host.memory is not None
            else np.zeros(length, dtype=np.uint8)
        )
        msg = Message(
            src=self.name,
            dst=reply_to,
            op="read_resp",
            data=data,
            headers={"greq_id": greq, "offset": 0, "trace": pkt.trace},
            header_bytes=16,
        )
        yield sim.timeout(self.params.nic_tx_ns)
        pkts = segment_message(msg, self.params.net.mtu)
        train = self.port.try_send_train(pkts) if len(pkts) >= 2 else None
        if train is not None:
            yield train.ev
            for p in pkts[train.cut :]:
                yield self.port.send(p)
        else:
            for p in pkts:
                yield self.port.send(p)

    def _rx_read_resp(self, pkt: Packet) -> None:
        key = (pkt.msg_id, "rgreq")
        if pkt.is_header:
            self._rx_writes[key] = {"greq": pkt.headers["greq_id"], "got": 0}
        st = self._rx_writes.get(key)
        if st is None:
            return
        pending = self._pending.get(st["greq"])
        if pending is None:
            # op already completed (e.g. via a duplicate response stream)
            if pkt.is_completion:
                self._rx_writes.pop(key, None)
            return
        if pkt.payload is not None:
            st["got"] += pkt.payload.nbytes
            off = pkt.payload_offset
            pending.data[off : off + pkt.payload.nbytes] = pkt.payload
            pending.last_progress = self.sim.now
        if pkt.is_completion:
            self._rx_writes.pop(key, None)
            if st["got"] != pkt.payload_offset + pkt.payload_bytes:
                self.incomplete_drops += 1
                return
            self._complete(st["greq"], ok=True)

    # ----------------------------------------------------------- rpc
    def _rx_rpc(self, pkt: Packet) -> None:
        key = (pkt.msg_id, "rpc")
        if pkt.is_header:
            self._rx_writes[key] = {
                "headers": pkt.headers,
                "chunks": [],
                "src": pkt.src,
                "got": 0,
            }
        st = self._rx_writes.get(key)
        if st is None:
            return
        if pkt.payload is not None:
            st["chunks"].append(pkt.payload)
            st["got"] += pkt.payload.nbytes
        if pkt.is_completion:
            self._rx_writes.pop(key)
            if st["got"] != pkt.payload_offset + pkt.payload_bytes:
                self.incomplete_drops += 1
                return
            payload = (
                np.concatenate(st["chunks"]) if st["chunks"] else np.zeros(0, np.uint8)
            )
            # The command (and inline data) crosses PCIe into host memory
            # before the CPU can see it.
            def deliver():
                self.host.on_rpc(st["headers"], payload, st["src"])

            if self.host.pcie is not None:
                self.host.pcie.dma(payload.nbytes + 64, on_complete=deliver, trace=pkt.trace)
            else:
                deliver()

    # ----------------------------------------------------------- acks
    def _rx_ack(self, pkt: Packet) -> None:
        greq = pkt.headers.get("ack_for") or pkt.headers.get("greq_id")
        pending = self._pending.get(greq)
        if pending is None:
            return
        if pkt.op == "nack":
            pending.nacks.append(pkt.headers)
            self._complete(greq, ok=False)
            return
        if pkt.op == "rpc_resp":
            pending.data = pkt.headers.get("result")
            self._complete(greq, ok=not pkt.headers.get("error", False))
            return
        key = pkt.headers.get("dedup")
        if key is not None:
            if key in pending.ack_keys:
                # a retransmission made the target re-ack: count it as
                # progress but never towards completion
                self.dup_acks += 1
                pending.last_progress = self.sim.now
                return
            pending.ack_keys.add(key)
        pending.acks += 1
        pending.last_progress = self.sim.now
        pending.info.update(
            {k: v for k, v in pkt.headers.items() if k not in ("ack_for", "node", "dedup")}
        )
        if pending.acks >= pending.expected_acks:
            self._complete(greq, ok=True)

    def _complete(self, greq: int, ok: bool) -> None:
        pending = self._pending.pop(greq, None)
        if pending is None:
            return
        san = self.sim.sanitizer
        if san is not None:
            san.retire("greq", (self.name, greq))
        if pending.event.triggered:
            return
        wd = pending.watchdog
        if wd is not None and wd.is_alive:
            pending.watchdog = None
            wd.interrupt("completed")
        res = OpResult(
            ok=ok,
            t_start=pending.t_start,
            t_end=self.sim.now + self.params.client_completion_ns,
            greq_id=greq,
            nacks=pending.nacks,
            data=pending.data,
            info=pending.info,
        )
        # Completion is visible to the application after the CQ poll.
        self.sim._call_soon1(
            pending.event.succeed, res, delay=self.params.client_completion_ns
        )

    # ------------------------------------------------------------ misc
    def pending_count(self) -> int:
        return len(self._pending)
