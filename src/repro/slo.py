"""Per-scenario SLO reports and phase-level latency-regression tracking.

``python -m repro slo`` runs a fixed-seed scenario suite — one isolated
write per protocol (clean and under seeded packet loss) plus a
closed-loop load run — and, for every scenario, decomposes each request
into latency phases (:mod:`repro.telemetry.anatomy`), checks two
invariants, and evaluates declarative latency budgets:

* **exactness** — per operation the phase times must sum to the
  end-to-end latency within :data:`SUM_TOLERANCE_NS` (1 ns); any defect
  means a span is mis-tagged or double-counted and fails the run;
* **budgets** — each scenario carries an :class:`SloSpec` of
  ``"<phase>.<stat>"`` ceilings (e.g. ``end_to_end.p99``); a scenario
  with a blown budget reports ``slo: FAIL``.

Regression tracking mirrors ``repro perf``'s snapshot workflow, but on
*simulated* time, so it is machine-independent and deterministic:

* ``--out BENCH_slo.json`` / ``--update`` snapshot the per-phase
  percentiles;
* ``--check [BENCH_slo.json]`` re-runs the suite and fails (exit 1) if
  any tracked phase statistic grew beyond the noise band
  ``base * (1 + rtol) + atol`` — the band absorbs legitimate small
  timing shifts from model changes while catching real latency
  regressions phase-by-phase (a +30% ``dma`` tail is flagged even when
  the end-to-end p50 barely moves).

The suite is the SLO companion of the experiment sweeps: the same
budgets drive the ``slo_ok`` columns of ``throughput_sweep`` and the
anatomy columns of ``fig09_latency``.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "SUM_TOLERANCE_NS",
    "SloSpec",
    "SloReport",
    "Scenario",
    "SCENARIOS",
    "evaluate",
    "run_scenario",
    "run_suite",
    "snapshot",
    "compare_snapshots",
    "main",
]

#: per-operation decomposition defect ceiling: phases must sum to the
#: end-to-end latency within this (float rounding is orders below it)
SUM_TOLERANCE_NS = 1.0

#: phase statistics tracked in snapshots and regression-checked
TRACKED_STATS = ("p50", "p99", "p999")


# ------------------------------------------------------------------ specs
@dataclass(frozen=True)
class SloSpec:
    """Declarative latency budgets for one scenario.

    ``budgets`` maps ``"<phase>.<stat>"`` keys — any phase from
    :data:`repro.telemetry.PHASES` plus ``end_to_end``, any stat from
    :func:`repro.simnet.trace.summarize` — to ceilings in nanoseconds.
    """

    budgets: Dict[str, float] = field(default_factory=dict)

    def items(self) -> List[Tuple[str, str, float]]:
        out = []
        for key, ns in sorted(self.budgets.items()):
            phase, _, stat = key.rpartition(".")
            out.append((phase, stat, ns))
        return out


@dataclass
class SloReport:
    """Outcome of one scenario: anatomy stats + budget verdicts."""

    scenario: str
    n_ops: int
    phases: Dict[str, Dict[str, Optional[float]]]
    max_sum_error_ns: float
    #: (budget key, measured ns, budget ns, within budget)
    checks: List[Tuple[str, Optional[float], float, bool]]

    @property
    def slo_ok(self) -> bool:
        return all(ok for _, _, _, ok in self.checks)

    @property
    def anatomy_ok(self) -> bool:
        return self.max_sum_error_ns <= SUM_TOLERANCE_NS

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_ops": self.n_ops,
            "max_sum_error_ns": self.max_sum_error_ns,
            "slo_ok": self.slo_ok,
            "phases": {
                phase: {s: stats.get(s) for s in TRACKED_STATS}
                for phase, stats in self.phases.items()
            },
        }


def evaluate(spec: SloSpec, phases: Dict[str, Dict[str, Optional[float]]],
             scenario: str, n_ops: int, max_sum_error_ns: float) -> SloReport:
    """Check per-phase statistics against a budget spec."""
    checks: List[Tuple[str, Optional[float], float, bool]] = []
    for phase, stat, budget in spec.items():
        got = phases.get(phase, {}).get(stat)
        # a missing statistic (too few samples for the tail) cannot
        # violate a ceiling — it is reported as None and passes
        checks.append((f"{phase}.{stat}", got, budget, got is None or got <= budget))
    return SloReport(
        scenario=scenario,
        n_ops=n_ops,
        phases=phases,
        max_sum_error_ns=max_sum_error_ns,
        checks=checks,
    )


# -------------------------------------------------------------- scenarios
@dataclass(frozen=True)
class Scenario:
    """One fixed-seed measurement scenario of the SLO suite."""

    name: str
    protocol: str
    size: int = 64 * 1024
    replication: Optional[int] = None
    ec: Optional[Tuple[int, int]] = None
    #: seeded per-packet loss probability (0 = clean run)
    loss: float = 0.0
    repeats: int = 3
    load: bool = False            # closed-loop load run instead of isolated writes
    openloop: bool = False        # open-loop aggregated-generator run
    write_kw: Tuple[Tuple[str, object], ...] = ()
    slo: SloSpec = field(default_factory=SloSpec)


def _e2e_slo(p50_ns: float, p99_ns: Optional[float] = None) -> SloSpec:
    return SloSpec(budgets={
        "end_to_end.p50": p50_ns,
        "end_to_end.p99": p99_ns if p99_ns is not None else p50_ns,
    })


#: Every write protocol, clean and under seeded loss, plus a closed-loop
#: load run.  Budgets are ~2x the calibrated-default measurements, so
#: they flag gross model regressions while tolerating retuning; the
#: fine-grained tracking is the snapshot comparison, not the budgets.
SCENARIOS: Tuple[Scenario, ...] = (
    Scenario("raw_64k", "raw", slo=_e2e_slo(8_000)),
    Scenario("spin_r3_64k", "spin", replication=3, slo=_e2e_slo(15_000)),
    Scenario("rpc_64k", "rpc", slo=_e2e_slo(20_000)),
    Scenario("rpc_rdma_64k", "rpc+rdma", slo=_e2e_slo(20_000)),
    Scenario("cpu_r3_64k", "cpu", replication=3,
             write_kw=(("chunk_bytes", 32 * 1024),), slo=_e2e_slo(35_000)),
    Scenario("rdma_flat_r3_64k", "rdma-flat", replication=3, slo=_e2e_slo(15_000)),
    Scenario("hyperloop_r3_64k", "rdma-hyperloop", replication=3,
             write_kw=(("chunk_bytes", 32 * 1024),), slo=_e2e_slo(30_000)),
    Scenario("inec_ec32_64k", "inec", ec=(3, 2), slo=_e2e_slo(50_000)),
    # seeded loss: the same writes with the reliability layer active.
    # retransmit-phase time is budgeted explicitly: RTO stalls must stay
    # bounded, and on a clean run the phase must be (and is) zero.
    Scenario("spin_r3_64k_lossy", "spin", replication=3, loss=2e-3,
             slo=SloSpec(budgets={"end_to_end.p99": 500_000,
                                  "retransmit.p99": 450_000})),
    Scenario("raw_64k_lossy", "raw", loss=2e-3,
             slo=SloSpec(budgets={"end_to_end.p99": 500_000,
                                  "retransmit.p99": 450_000})),
    Scenario("rdma_flat_r3_64k_lossy", "rdma-flat", replication=3, loss=2e-3,
             slo=SloSpec(budgets={"end_to_end.p99": 500_000,
                                  "retransmit.p99": 450_000})),
    # closed-loop load: anatomy under contention (queueing shows up in
    # host_queue/other, not in the compute phases)
    Scenario("load_spin_8k", "spin", size=8 * 1024, load=True,
             slo=SloSpec(budgets={"end_to_end.p50": 8_000,
                                  "end_to_end.p99": 12_000})),
    # open-loop load: a 2000-user Zipf population through the aggregated
    # flow generators — arrivals don't wait for completions, so queueing
    # here reflects offered load, not the closed-loop ceiling
    Scenario("openloop_spin_8k", "spin", size=8 * 1024, openloop=True,
             slo=SloSpec(budgets={"end_to_end.p50": 8_000,
                                  "end_to_end.p99": 12_000})),
)

#: the subset exercised by ``--quick`` (CI smoke)
QUICK_NAMES = ("raw_64k", "spin_r3_64k", "rpc_64k", "spin_r3_64k_lossy",
               "load_spin_8k")

#: seed for fault-injection streams and payloads (fixed: the whole
#: suite must be deterministic for snapshot comparison)
SEED = 2


def _ops_for(tel, protocol: str) -> Tuple[List, float]:
    """Decomposed write ops of ``protocol`` + the worst sum defect.

    Request roots carry strategy-qualified protocol labels
    (``spin-ring``, ``inec-triec-rs(3,2)``), so match on the base name
    as a prefix; each scenario runs in its own testbed, so only its own
    writes are in the sink.
    """
    from .telemetry.anatomy import decompose

    base = protocol.split("-")[0].split("+")[0]
    ops = [
        op for op in decompose(tel)
        if op.op == "write" and op.ok and op.protocol.startswith(base)
    ]
    max_err = max((abs(op.sum_error_ns) for op in ops), default=0.0)
    return ops, max_err


def run_scenario(sc: Scenario) -> SloReport:
    """Run one scenario with telemetry on; decompose and evaluate."""
    from .dfs.client import DfsClient
    from .dfs.cluster import build_testbed
    from .dfs.layout import EcSpec, ReplicationSpec
    from .experiments.common import installer_for
    from .params import SimParams
    from .telemetry.anatomy import phase_summary
    from .workloads import LoadSpec, closed_loop_write_load, payload_bytes

    params = SimParams()
    if sc.loss > 0.0:
        params = params.with_faults(seed=SEED, loss_prob=sc.loss, retransmit=True)
    tb = build_testbed(n_storage=6, params=params, telemetry=True)
    installer = installer_for(sc.protocol)
    if installer is not None:
        installer(tb)

    if sc.load:
        spec = LoadSpec(n_clients=8, outstanding=2, think_ns=2_000.0,
                        warmup_ns=50_000.0, measure_ns=300_000.0, seed=SEED)
        res = closed_loop_write_load(tb, sc.size, sc.protocol, spec)
        if not res.quiesced:
            raise RuntimeError(f"{sc.name}: load run did not quiesce")
        _, max_err = _ops_for(tb.telemetry, sc.protocol)
        assert res.phase_latency is not None
        return evaluate(sc.slo, res.phase_latency, sc.name, res.ops, max_err)

    if sc.openloop:
        from .workloads.openloop import (
            ArrivalSpec,
            OpenLoopSpec,
            PopularitySpec,
            SizeSpec,
            open_loop_write_load,
        )

        ospec = OpenLoopSpec(
            n_users=2000,
            arrival=ArrivalSpec(kind="poisson", rate_hz=50.0),
            popularity=PopularitySpec(n_objects=256, alpha=1.0),
            size=SizeSpec(dist="fixed", fixed_bytes=sc.size),
            warmup_ns=500_000.0,
            measure_ns=2_000_000.0,
            seed=SEED,
        )
        ores, _nodes = open_loop_write_load(tb, ospec, sc.protocol)
        if not ores.quiesced:
            raise RuntimeError(f"{sc.name}: open-loop run did not quiesce")
        _, max_err = _ops_for(tb.telemetry, sc.protocol)
        assert ores.phase_latency is not None
        return evaluate(sc.slo, ores.phase_latency, sc.name, ores.ops, max_err)

    client = DfsClient(tb)
    create_kw: dict = {}
    if sc.replication:
        create_kw["replication"] = ReplicationSpec(k=sc.replication)
    if sc.ec:
        create_kw["ec"] = EcSpec(k=sc.ec[0], m=sc.ec[1])
    client.create("/slo", size=max(sc.size, 1) * 2, **create_kw)
    data = payload_bytes(sc.size, seed=SEED)
    kw = dict(sc.write_kw)
    for _ in range(sc.repeats):
        # transport retransmits are bounded; under heavy loss an op can
        # give up — retry like an application (still deterministic)
        for _attempt in range(3):
            out = client.write_sync("/slo", data, protocol=sc.protocol, **kw)
            if out.ok:
                break
        if not out.ok:
            raise RuntimeError(f"{sc.name}: write failed: {out.nacks}")
    # drain trailing acks / parity traffic / retransmission watchdogs so
    # every child span of the last request is closed
    deadline = tb.sim.now + 100_000_000
    tb.run(until=tb.sim.now + 200_000)
    while sc.loss > 0.0 and tb.sim.now < deadline and any(
        h.nic.pending_count() for h in [tb.clients[0], *tb.storage_nodes]
    ):
        tb.run(until=tb.sim.now + 1_000_000)

    ops, max_err = _ops_for(tb.telemetry, sc.protocol)
    if len(ops) < sc.repeats:
        raise RuntimeError(f"{sc.name}: expected >= {sc.repeats} ops, got {len(ops)}")
    return evaluate(sc.slo, phase_summary(ops), sc.name, len(ops), max_err)


def run_suite(quick: bool = False) -> List[SloReport]:
    names = set(QUICK_NAMES) if quick else None
    return [
        run_scenario(sc) for sc in SCENARIOS if names is None or sc.name in names
    ]


# -------------------------------------------------------------- snapshots
def snapshot(reports: List[SloReport]) -> Dict[str, object]:
    return {
        "seed": SEED,
        "scenarios": {r.scenario: r.to_dict() for r in reports},
    }


def compare_snapshots(snap: Dict[str, object], base: Dict[str, object],
                      rtol: float = 0.10, atol_ns: float = 200.0) -> List[str]:
    """Phase-level regression check of ``snap`` against ``base``.

    A tracked statistic regresses when it exceeds the noise band
    ``base * (1 + rtol) + atol_ns``.  Missing scenarios and newly
    violated budgets are failures too; improvements never are.
    Returns human-readable failure strings (empty = pass).
    """
    failures: List[str] = []
    base_sc = base.get("scenarios", {})
    snap_sc = snap.get("scenarios", {})
    for name, bdata in sorted(base_sc.items()):
        sdata = snap_sc.get(name)
        if sdata is None:
            failures.append(f"{name}: scenario missing from this run")
            continue
        if not sdata["slo_ok"]:
            failures.append(f"{name}: SLO budget violated")
        for phase, bstats in sorted(bdata.get("phases", {}).items()):
            sstats = sdata.get("phases", {}).get(phase, {})
            for stat in TRACKED_STATS:
                want, got = bstats.get(stat), sstats.get(stat)
                if want is None or got is None:
                    continue
                ceil = want * (1.0 + rtol) + atol_ns
                if got > ceil:
                    failures.append(
                        f"{name}: {phase}.{stat} {got:,.0f} ns > "
                        f"baseline {want:,.0f} ns + noise band "
                        f"(+{rtol:.0%}, +{atol_ns:.0f} ns)"
                    )
    return failures


# -------------------------------------------------------------------- CLI
def _render(reports: List[SloReport]) -> str:
    lines = []
    head = (f"{'scenario':<22} {'ops':>4} {'e2e p50':>10} {'e2e p99':>10} "
            f"{'sum err':>8}  {'slo':<4} checks")
    lines.append(head)
    lines.append("-" * len(head))
    for r in reports:
        e2e = r.phases.get("end_to_end", {})
        failed = [k for k, _, _, ok in r.checks if not ok]

        def fmt(v: Optional[float]) -> str:
            return f"{v:,.0f}" if v is not None else "-"

        lines.append(
            f"{r.scenario:<22} {r.n_ops:>4} {fmt(e2e.get('p50')):>10} "
            f"{fmt(e2e.get('p99')):>10} {r.max_sum_error_ns:>8.2g}  "
            f"{'ok' if r.slo_ok else 'FAIL':<4} "
            + (", ".join(failed) if failed else f"{len(r.checks)} budgets")
        )
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro slo",
        description="Run the fixed-seed SLO scenario suite: per-phase "
                    "latency decomposition, budget checks, and snapshot "
                    "regression tracking (see docs/observability.md).",
    )
    ap.add_argument("--out", metavar="PATH",
                    help="write the snapshot as JSON")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the committed BENCH_slo.json baseline")
    ap.add_argument("--check", nargs="?", const="BENCH_slo.json", metavar="PATH",
                    help="compare against a baseline snapshot "
                         "(default BENCH_slo.json); exit 1 on regression")
    ap.add_argument("--quick", action="store_true",
                    help="run the CI smoke subset of scenarios")
    ap.add_argument("--rtol", type=float, default=0.10, metavar="FRAC",
                    help="relative noise band for --check (default 0.10)")
    ap.add_argument("--atol", type=float, default=200.0, metavar="NS",
                    help="absolute noise band in ns for --check (default 200)")
    args = ap.parse_args(argv)

    reports = run_suite(quick=args.quick)
    print(_render(reports))

    bad_anatomy = [r for r in reports if not r.anatomy_ok]
    if bad_anatomy:
        print("\nDECOMPOSITION DEFECT (phases must sum to end-to-end "
              f"within {SUM_TOLERANCE_NS} ns):")
        for r in bad_anatomy:
            print(f"  - {r.scenario}: sum error {r.max_sum_error_ns:.3g} ns")
        return 1

    snap = snapshot(reports)
    out_path = args.out or ("BENCH_slo.json" if args.update else None)
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nsnapshot written to {out_path}")

    if args.check:
        with open(args.check) as fh:
            base = json.load(fh)
        failures = compare_snapshots(snap, base, rtol=args.rtol, atol_ns=args.atol)
        if failures:
            print("\nSLO REGRESSION:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print(f"\nslo check vs {args.check} passed "
              f"(noise band +{args.rtol:.0%} / +{args.atol:.0f} ns per phase stat)")
        return 0

    blown = [r for r in reports if not r.slo_ok]
    if blown:
        print("\nSLO BUDGET VIOLATION:")
        for r in blown:
            for key, got, budget, ok in r.checks:
                if not ok:
                    print(f"  - {r.scenario}: {key} {got:,.0f} ns > "
                          f"budget {budget:,.0f} ns")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
