"""Fig. 10: write latency vs replication factor (4 KiB and 512 KiB).

Claims (§V-B3): for small writes RDMA-Flat is lowest at any k; for large
writes the client injection cost makes RDMA-Flat grow linearly with k;
sPIN strategies are the least sensitive to k; PBT beats Ring for small
writes at large k (tree depth log k vs k).
"""

from __future__ import annotations

from typing import Optional

from ..analysis import shapes
from ..dfs.layout import ReplicationSpec
from ..params import SimParams
from ..workloads import optimal_chunk_size
from .common import KiB, measure_latency, render_rows, size_label

ID = "fig10"
TITLE = "Fig. 10 — write latency vs replication factor (ns)"
CLAIMS = [
    "4 KiB: RDMA-Flat lowest for any k",
    "512 KiB: RDMA-Flat grows ~linearly with k",
    "sPIN latency is much less sensitive to k than RDMA-Flat",
    "PBT beats Ring for small writes at large k",
]

KS = [2, 3, 4, 6, 8]
QUICK_KS = [2, 4, 8]
SIZES = [4 * KiB, 512 * KiB]
STRATS = ["rdma-flat", "cpu-ring", "rdma-hyperloop", "spin-ring", "spin-pbt"]


def _one(col: str, size: int, k: int, params, quick: bool) -> float:
    proto = {"rdma-flat": "rdma-flat", "cpu-ring": "cpu",
             "rdma-hyperloop": "rdma-hyperloop",
             "spin-ring": "spin", "spin-pbt": "spin"}[col]
    strategy = "pbt" if col.endswith("pbt") else "ring"
    repl = ReplicationSpec(k=k, strategy=strategy)
    if proto in ("cpu", "rdma-hyperloop") and size > 16 * KiB and not quick:
        _, lat = optimal_chunk_size(
            lambda c: measure_latency(proto, size, params=params, replication=repl,
                                      repeats=1, chunk_bytes=c),
            [32 * KiB, 64 * KiB, 128 * KiB],
        )
        return lat
    kw = {"chunk_bytes": min(size, 64 * KiB)} if proto in ("cpu", "rdma-hyperloop") else {}
    return measure_latency(proto, size, params=params, replication=repl, repeats=1, **kw)


def points(quick: bool = False) -> list[dict]:
    ks = QUICK_KS if quick else KS
    return [
        {"size": size, "k": k, "quick": quick}
        for size in SIZES
        for k in ks
    ]


def run_point(point: dict, params: Optional[SimParams] = None) -> dict:
    size, k = point["size"], point["k"]
    row: dict = {"size": size, "size_label": size_label(size), "k": k}
    for col in STRATS:
        row[col] = _one(col, size, k, params, point["quick"])
    return row


def run(params: Optional[SimParams] = None, quick: bool = False,
        jobs: int = 1, cache: bool = False, cache_dir: Optional[str] = None) -> list[dict]:
    from ..runner import run_sweep

    return run_sweep(ID, points(quick), params=params, jobs=jobs,
                     cache=cache, cache_dir_override=cache_dir)


def check(rows: list[dict]) -> None:
    for size in SIZES:
        sub = {r["k"]: r for r in rows if r["size"] == size}
        ks = sorted(sub)
        if size <= 4 * KiB:
            for k in ks:
                best = min(sub[k][c] for c in STRATS)
                shapes.check(
                    sub[k]["rdma-flat"] <= best * 1.001,
                    f"4KiB: RDMA-Flat lowest at k={k}",
                )
            # PBT beats Ring at the largest k for small writes
            shapes.assert_faster(
                sub[ks[-1]]["spin-pbt"], sub[ks[-1]]["spin-ring"],
                f"4KiB: PBT < Ring at k={ks[-1]}",
            )
        else:
            flat_growth = sub[ks[-1]]["rdma-flat"] / sub[ks[0]]["rdma-flat"]
            spin_growth = sub[ks[-1]]["spin-ring"] / sub[ks[0]]["spin-ring"]
            expected = ks[-1] / ks[0]
            shapes.check(
                flat_growth > 0.7 * expected,
                f"512KiB: RDMA-Flat grows ~linearly in k (x{flat_growth:.2f} for k x{expected})",
            )
            shapes.check(
                spin_growth < flat_growth / 2,
                f"512KiB: sPIN much less k-sensitive (spin x{spin_growth:.2f} vs flat x{flat_growth:.2f})",
            )
            shapes.assert_faster(
                sub[ks[-1]]["spin-ring"], sub[ks[-1]]["rdma-flat"],
                "512KiB: sPIN-Ring beats RDMA-Flat at large k",
            )


def render(rows: list[dict]) -> str:
    return render_rows(rows, ["size_label", "k", *STRATS], TITLE)
