"""Table III: DFS characteristics survey (§VIII)."""

from __future__ import annotations

from typing import Optional

from ..analysis import DFS_SURVEY, Support, shapes
from ..analysis.survey import render_table
from ..params import SimParams

ID = "table3"
TITLE = "Table III — DFS characteristics survey"
CLAIMS = [
    "14 systems surveyed",
    "no surveyed system fully provides RDMA together with all three policies",
]


def run(params: Optional[SimParams] = None, quick: bool = False) -> list[dict]:
    return [
        {
            "dfs": e.name,
            "rdma": e.rdma.symbol,
            "auth": e.auth.symbol,
            "replication": e.replication.symbol,
            "ec": e.erasure_coding.symbol,
            "notes": e.notes,
        }
        for e in DFS_SURVEY
    ]


def check(rows: list[dict]) -> None:
    shapes.check(len(rows) == 14, "14 systems surveyed")
    # the gap the paper fills: nobody has full RDMA + auth + repl + EC
    full = [
        e.name
        for e in DFS_SURVEY
        if e.rdma == Support.YES
        and e.auth == Support.YES
        and e.replication == Support.YES
        and e.erasure_coding == Support.YES
    ]
    shapes.check(not full, f"no fully-RDMA DFS offloads all policies (found {full})")


def render(rows: list[dict]) -> str:
    return render_table()
