"""Fig. 9 (right): goodput sustained by one network-accelerated storage
node, per write size and offloaded replication strategy.

Claims (§V-B2): small single-packet writes are handler-limited (each
packet triggers all three handlers); sPIN-Ring approaches line rate from
~8 KiB; sPIN-PBT sustains about half the bandwidth because every
incoming packet produces two outgoing ones.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import shapes
from ..dfs.layout import ReplicationSpec
from ..params import SimParams
from ..workloads import measure_goodput, payload_bytes
from .common import KiB, fresh_client, render_rows, size_label

ID = "fig09_goodput"
TITLE = "Fig. 9 R — single-node goodput (Gbit/s)"
CLAIMS = [
    "goodput grows with write size (per-write handler costs amortize)",
    "sPIN-Ring reaches >=85% of achievable line rate for large writes",
    "sPIN-PBT sustains about half of sPIN-Ring's goodput",
]

SIZES = [1 * KiB, 2 * KiB, 4 * KiB, 8 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 512 * KiB]
QUICK_SIZES = [1 * KiB, 8 * KiB, 64 * KiB, 512 * KiB]


def _goodput(strategy: str, size: int, params: Optional[SimParams], n_ops: int, window: int) -> float:
    # k=3 so the PBT primary really fans out to two children (with k=2
    # ring and pbt are the same unary tree, §V-B1).
    tb, client = fresh_client("spin", params)
    client.create(
        "/bench", size=max(size, 1), replication=ReplicationSpec(k=3, strategy=strategy)
    )
    data = payload_bytes(size)

    def issue(i: int):
        return client.write("/bench", data, protocol="spin")

    res = measure_goodput(tb, issue, n_ops=n_ops, op_bytes=size, window=window)
    return res.goodput_gbps


def points(quick: bool = False) -> list[dict]:
    sizes = QUICK_SIZES if quick else SIZES
    pts = []
    for size in sizes:
        if size <= 16 * KiB:
            # small writes need a deep window to fill the pipe
            n_ops, window = (96 if quick else 192), 128
        elif size <= 64 * KiB:
            n_ops, window = 48, 48
        else:
            n_ops, window = 16, 16
        pts.append({"size": size, "n_ops": n_ops, "window": window})
    return pts


def run_point(point: dict, params: Optional[SimParams] = None) -> dict:
    size, n_ops, window = point["size"], point["n_ops"], point["window"]
    return {
        "size": size,
        "size_label": size_label(size),
        "spin-ring": _goodput("ring", size, params, n_ops, window),
        "spin-pbt": _goodput("pbt", size, params, n_ops, window),
    }


def run(params: Optional[SimParams] = None, quick: bool = False,
        jobs: int = 1, cache: bool = False, cache_dir: Optional[str] = None) -> list[dict]:
    from ..runner import run_sweep

    return run_sweep(ID, points(quick), params=params, jobs=jobs,
                     cache=cache, cache_dir_override=cache_dir)


def achievable_line_rate(params: Optional[SimParams] = None) -> float:
    """Goodput ceiling: line rate minus per-packet header overhead."""
    p = params or SimParams()
    mtu = p.net.mtu
    return p.net.bandwidth_gbps * mtu / (mtu + 64)


def check(rows: list[dict]) -> None:
    ring = {r["size"]: r["spin-ring"] for r in rows}
    pbt = {r["size"]: r["spin-pbt"] for r in rows}
    sizes = sorted(ring)
    vals = [ring[s] for s in sizes]
    shapes.check(
        all(b >= a * 0.92 for a, b in zip(vals, vals[1:])),
        f"ring goodput grows with size (within window-depth noise): {vals}",
    )
    line = achievable_line_rate()
    shapes.check(
        ring[sizes[-1]] >= 0.85 * line,
        f"sPIN-Ring near line rate at {size_label(sizes[-1])} "
        f"({ring[sizes[-1]]:.0f} vs achievable {line:.0f} Gbit/s)",
    )
    big = sizes[-1]
    shapes.assert_ratio_between(
        pbt[big], ring[big], 0.35, 0.65,
        "sPIN-PBT sustains about half of ring goodput (2x egress amplification)",
    )


def render(rows: list[dict]) -> str:
    return render_rows(rows, ["size_label", "spin-ring", "spin-pbt"], TITLE)
