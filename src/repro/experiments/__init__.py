"""Experiment registry: one module per paper table/figure.

Run from the command line::

    python -m repro.experiments list
    python -m repro.experiments fig06
    python -m repro.experiments all --quick
"""

from __future__ import annotations

from types import ModuleType

from . import (
    fig04_nic_memory,
    fig06_auth_latency,
    fig07_pspin_overheads,
    fig09_goodput,
    fig09_replication_latency,
    fig10_replication_factor,
    fig11_table1_handler_stats,
    fig15_ec_bandwidth,
    fig15_ec_latency,
    fig16_hpu_budget,
    fig16_table2_ec_handlers,
    loss_sweep,
    recovery_storm,
    scenario_matrix,
    table3_survey,
    throughput_sweep,
)

REGISTRY: dict[str, ModuleType] = {
    m.ID: m
    for m in (
        fig04_nic_memory,
        fig06_auth_latency,
        fig07_pspin_overheads,
        fig09_replication_latency,
        fig09_goodput,
        fig10_replication_factor,
        fig11_table1_handler_stats,
        fig15_ec_latency,
        fig15_ec_bandwidth,
        fig16_table2_ec_handlers,
        fig16_hpu_budget,
        loss_sweep,
        recovery_storm,
        scenario_matrix,
        table3_survey,
        throughput_sweep,
    )
}

__all__ = ["REGISTRY"]
