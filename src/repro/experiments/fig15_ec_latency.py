"""Fig. 15 (left): erasure-coded write (encoding) latency,
sPIN-TriEC vs INEC-TriEC.

Per the paper (§VI-C(a)), the comparison runs on a 100 Gbit/s network
(the INEC paper's testbed speed).  INEC-TriEC operates per chunk through
host memory; sPIN-TriEC encodes per packet on the NIC, giving up to 2x
lower latency.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import shapes
from ..dfs.layout import EcSpec
from ..params import SimParams
from .common import KiB, measure_latency, render_rows, size_label

ID = "fig15_latency"
TITLE = "Fig. 15 L — encoding (write) latency at 100 Gbit/s (ns)"
CLAIMS = [
    "sPIN-TriEC has lower write latency than INEC-TriEC at every block size",
    "the advantage reaches ~2x (paper: up to 2x)",
]

SIZES = [16 * KiB, 64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB]
QUICK_SIZES = [16 * KiB, 64 * KiB, 512 * KiB]
SCHEMES = [(3, 2), (6, 3)]


def _params(params: Optional[SimParams]) -> SimParams:
    return (params or SimParams()).scaled_network(100.0)


def points(quick: bool = False) -> list[dict]:
    sizes = QUICK_SIZES if quick else SIZES
    return [
        {"k": k, "m": m, "size": size}
        for k, m in SCHEMES
        for size in sizes
    ]


def run_point(point: dict, params: Optional[SimParams] = None) -> dict:
    # the 100 Gbit/s scaling is applied per point so pool workers see it too
    p = _params(params)
    k, m, size = point["k"], point["m"], point["size"]
    ec = EcSpec(k=k, m=m)
    spin = measure_latency("spin", size, params=p, ec=ec, repeats=1)
    inec = measure_latency("inec", size, params=p, ec=ec, repeats=1)
    return {
        "scheme": f"RS({k},{m})",
        "size": size,
        "size_label": size_label(size),
        "spin-triec": spin,
        "inec-triec": inec,
        "speedup": inec / spin,
    }


def run(params: Optional[SimParams] = None, quick: bool = False,
        jobs: int = 1, cache: bool = False, cache_dir: Optional[str] = None) -> list[dict]:
    from ..runner import run_sweep

    return run_sweep(ID, points(quick), params=params, jobs=jobs,
                     cache=cache, cache_dir_override=cache_dir)


def check(rows: list[dict]) -> None:
    for r in rows:
        if r["size"] >= 64 * KiB:
            shapes.assert_faster(
                r["spin-triec"], r["inec-triec"],
                f"sPIN-TriEC faster at {r['scheme']} {r['size_label']}",
            )
        else:
            # At the smallest blocks a chunk is only a few packets, so
            # the 16.7-23 us encode loop (Table II) pipelines over very
            # few HPUs and sits on the critical path; sPIN must at least
            # stay in the same ballpark (deviation note in EXPERIMENTS.md).
            shapes.check(
                r["speedup"] >= 0.65,
                f"sPIN-TriEC competitive at {r['scheme']} {r['size_label']} "
                f"(got {r['speedup']:.2f}x)",
            )
    for scheme in sorted({r["scheme"] for r in rows}):
        best = max(r["speedup"] for r in rows if r["scheme"] == scheme)
        shapes.check(
            1.6 <= best <= 3.2,
            f"{scheme}: peak sPIN-TriEC advantage ~2x (got {best:.2f}x)",
        )
        # the advantage grows with block size (streaming vs staging)
        sub = sorted((r["size"], r["speedup"]) for r in rows if r["scheme"] == scheme)
        shapes.check(sub[-1][1] > sub[0][1], f"{scheme}: advantage grows with size")


def render(rows: list[dict]) -> str:
    return render_rows(
        rows, ["scheme", "size_label", "spin-triec", "inec-triec", "speedup"], TITLE
    )
