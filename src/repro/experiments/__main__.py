"""CLI for the experiment suite: ``python -m repro.experiments <id>``."""

from __future__ import annotations

import argparse
import sys
import time

from . import REGISTRY


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    ap.add_argument("experiment", help="experiment id, 'list', or 'all'")
    ap.add_argument("--quick", action="store_true", help="reduced sweeps")
    ap.add_argument("--no-check", action="store_true", help="skip shape checks")
    ap.add_argument("--csv", metavar="PATH",
                    help="also write the raw rows as CSV (one file per "
                         "experiment; PATH gets an -<id> suffix for 'all')")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="run sweep points over N worker processes "
                         "(deterministic: rows match --jobs 1 exactly)")
    ap.add_argument("--no-cache", action="store_true",
                    help="recompute every point, ignoring the result cache")
    ap.add_argument("--cache-dir", metavar="DIR",
                    help="result cache location (default: $REPRO_CACHE_DIR "
                         "or .repro_cache)")
    ap.add_argument("--partitions", type=int, default=1, metavar="K",
                    help="run each simulation on the K-way partitioned "
                         "engine (experiments that support it; rows are "
                         "byte-identical to the serial engine)")
    args = ap.parse_args(argv)

    if args.experiment == "list":
        for eid, mod in REGISTRY.items():
            print(f"{eid:16s} {mod.TITLE}")
        return 0

    ids = list(REGISTRY) if args.experiment == "all" else [args.experiment]
    status = 0
    for eid in ids:
        mod = REGISTRY.get(eid)
        if mod is None:
            print(f"unknown experiment {eid!r}; try 'list'", file=sys.stderr)
            return 2
        # elapsed-time reporting for the human running the sweep; the
        # monotonic clock is immune to NTP steps mid-experiment
        t0 = time.perf_counter()  # simlint: disable=SIM101 -- harness elapsed time
        if hasattr(mod, "run_point"):
            kw = {}
            if args.partitions > 1:
                import inspect

                if "partitions" in inspect.signature(mod.run).parameters:
                    kw["partitions"] = args.partitions
                else:
                    print(f"[{eid}: --partitions not supported; running serial]",
                          file=sys.stderr)
            rows = mod.run(quick=args.quick, jobs=args.jobs,
                           cache=not args.no_cache, cache_dir=args.cache_dir,
                           **kw)
            from .. import runner

            note = f" ({runner.LAST_STATS.summary()})"
        else:
            rows = mod.run(quick=args.quick)
            note = ""
        print(mod.render(rows))
        elapsed = time.perf_counter() - t0  # simlint: disable=SIM101 -- harness elapsed time
        print(f"[{eid}: {len(rows)} rows in {elapsed:.1f}s{note}]")
        if args.csv:
            path = args.csv
            if len(ids) > 1:
                stem, dot, ext = path.rpartition(".")
                path = f"{stem}-{eid}.{ext}" if dot else f"{path}-{eid}"
            _write_csv(path, rows)
            print(f"[{eid}: rows written to {path}]")
        if not args.no_check:
            try:
                mod.check(rows)
                print(f"[{eid}: all shape checks passed]")
            except AssertionError as e:
                print(f"[{eid}: SHAPE CHECK FAILED: {e}]", file=sys.stderr)
                status = 1
        print()
    return status


def _write_csv(path: str, rows: list[dict]) -> None:
    import csv

    cols: list[str] = []
    for r in rows:
        for k in r:
            if k not in cols:
                cols.append(k)
    with open(path, "w", newline="") as fh:
        w = csv.DictWriter(fh, fieldnames=cols)
        w.writeheader()
        w.writerows(rows)


if __name__ == "__main__":
    raise SystemExit(main())
