"""Fig. 6: write latency under request authentication, by protocol.

Protocols (§IV): Raw (speed of light, no policy), sPIN (on-NIC
validation), RPC (data inline, buffered + validated on CPU), RPC+RDMA
(validation RPC, then server-initiated RDMA read).

Paper claims reproduced: sPIN costs up to ~27 % over raw for small
writes and approaches raw for large ones; RPC pays an extra memcpy that
dominates at large sizes; RPC+RDMA pays an extra round trip that
dominates at small sizes.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import shapes
from ..params import SimParams
from .common import KiB, MiB, measure_latency, render_rows, size_label

ID = "fig06"
TITLE = "Fig. 6 — write latency, authentication-only policies"
CLAIMS = [
    "sPIN adds <= ~35% over raw writes at small sizes (paper: up to 27%)",
    "sPIN approaches raw latency for large writes (<5% at 1 MiB)",
    "RPC is penalized by the buffering memcpy at large writes",
    "RPC+RDMA is penalized by the extra round trip at small writes",
]

SIZES = [1 * KiB, 2 * KiB, 4 * KiB, 8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB,
         128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB]
QUICK_SIZES = [1 * KiB, 16 * KiB, 128 * KiB, 1 * MiB]
PROTOCOLS = ["raw", "spin", "rpc", "rpc+rdma"]


def points(quick: bool = False) -> list[dict]:
    sizes = QUICK_SIZES if quick else SIZES
    return [{"size": size, "repeats": 1 if quick else 3} for size in sizes]


def run_point(point: dict, params: Optional[SimParams] = None) -> dict:
    size = point["size"]
    row: dict = {"size": size, "size_label": size_label(size)}
    for proto in PROTOCOLS:
        row[proto] = measure_latency(proto, size, params=params,
                                     repeats=point["repeats"])
    return row


def run(params: Optional[SimParams] = None, quick: bool = False,
        jobs: int = 1, cache: bool = False, cache_dir: Optional[str] = None) -> list[dict]:
    from ..runner import run_sweep

    return run_sweep(ID, points(quick), params=params, jobs=jobs,
                     cache=cache, cache_dir_override=cache_dir)


def check(rows: list[dict]) -> None:
    by_size = {r["size"]: r for r in rows}
    sizes = sorted(by_size)
    small, large = by_size[sizes[0]], by_size[sizes[-1]]

    shapes.assert_ratio_between(
        small["spin"], small["raw"], 1.05, 1.40,
        "sPIN overhead over raw at the smallest size (paper: up to 27%)",
    )
    shapes.assert_ratio_between(
        large["spin"], large["raw"], 1.0, 1.05,
        "sPIN approaches raw latency for large writes",
    )
    # overhead shrinks with size
    gaps = [shapes.relative_gap(by_size[s]["spin"], by_size[s]["raw"]) for s in sizes]
    shapes.check(gaps[-1] < gaps[0] / 3, "sPIN/raw gap shrinks with write size")

    # RPC loses to RPC+RDMA for large writes (memcpy vs zero copy) ...
    shapes.assert_faster(large["rpc+rdma"], large["rpc"], "RPC memcpy penalty at large writes")
    # ... and wins for small ones (no extra round trip).
    shapes.assert_faster(small["rpc"], small["rpc+rdma"], "RPC+RDMA RTT penalty at small writes")
    # sPIN beats both CPU-side protocols everywhere.
    for s in sizes:
        shapes.assert_faster(by_size[s]["spin"], by_size[s]["rpc"], f"sPIN < RPC at {s}")
        shapes.assert_faster(
            by_size[s]["spin"], by_size[s]["rpc+rdma"], f"sPIN < RPC+RDMA at {s}"
        )
    # raw is the speed-of-light floor.
    for s in sizes:
        for proto in ("spin", "rpc", "rpc+rdma"):
            shapes.check(
                by_size[s][proto] >= by_size[s]["raw"] * 0.999,
                f"raw is the floor at {s} for {proto}",
            )


def render(rows: list[dict]) -> str:
    disp = [
        {
            "size": r["size_label"],
            **{p: r[p] for p in PROTOCOLS},
            "spin/raw": r["spin"] / r["raw"],
        }
        for r in rows
    ]
    return render_rows(disp, ["size", *PROTOCOLS, "spin/raw"], TITLE + " (ns)")
