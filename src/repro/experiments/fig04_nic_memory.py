"""Fig. 4: worst-case NIC memory vs number of concurrent writes.

Little's-law analysis (§III-B2): required memory = concurrent writes ×
77 B, with the horizontal 6 MiB line marking the NIC memory available
for request state (≈82 K concurrent writes).  We also cross-check the
descriptor accounting against the simulator's own ``NicMemory``.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import littles_law, shapes
from ..params import SimParams
from .common import KiB, MiB, render_rows, size_label

ID = "fig04"
TITLE = "Fig. 4 — worst-case NIC memory vs concurrent writes"
CLAIMS = [
    "required memory is linear in the number of concurrent writes (77 B each)",
    "6 MiB of NIC memory serve ~82 K concurrent writes",
    "larger writes need fewer descriptors at a fixed line rate",
]

N_WRITES = [1 << i for i in range(8, 21)]  # 256 .. 1M concurrent writes
WRITE_SIZES = [512, 2 * KiB, 8 * KiB, 64 * KiB, 1 * MiB]


def run(params: Optional[SimParams] = None, quick: bool = False) -> list[dict]:
    params = params or SimParams()
    rows: list[dict] = []
    for n in N_WRITES:
        rows.append(
            {
                "series": "required-memory",
                "n_writes": n,
                "bytes": littles_law.required_memory_bytes(
                    n, params.pspin.request_descriptor_bytes
                ),
            }
        )
    for size in WRITE_SIZES:
        rows.append(
            {
                "series": "line-rate-concurrency",
                "write_size": size_label(size),
                "concurrent_writes": littles_law.concurrent_writes(size, params),
            }
        )
    rows.append(
        {
            "series": "capacity",
            "available_bytes": 6 * MiB,
            "max_concurrent": littles_law.max_concurrent_writes(params.pspin),
        }
    )
    return rows


def check(rows: list[dict]) -> None:
    mem = {r["n_writes"]: r["bytes"] for r in rows if r["series"] == "required-memory"}
    ns = sorted(mem)
    shapes.assert_monotonic([mem[n] for n in ns], claim="memory grows with writes")
    # exact linearity at 77 B per descriptor
    for n in ns:
        shapes.check(mem[n] == 77 * n, f"descriptor accounting: {n} writes -> {mem[n]} B")
    cap = next(r for r in rows if r["series"] == "capacity")
    shapes.check(
        80_000 <= cap["max_concurrent"] <= 85_000,
        f"~82 K concurrent writes (got {cap['max_concurrent']})",
    )
    conc = [
        r["concurrent_writes"] for r in rows if r["series"] == "line-rate-concurrency"
    ]
    shapes.assert_monotonic(conc, increasing=False, claim="larger writes -> fewer in flight")


def render(rows: list[dict]) -> str:
    mem = [r for r in rows if r["series"] == "required-memory"]
    conc = [r for r in rows if r["series"] == "line-rate-concurrency"]
    cap = next(r for r in rows if r["series"] == "capacity")
    out = [
        render_rows(mem, ["n_writes", "bytes"], TITLE),
        "",
        render_rows(conc, ["write_size", "concurrent_writes"], "Concurrency at line rate"),
        "",
        f"NIC memory for request state: {cap['available_bytes']} B "
        f"-> max {cap['max_concurrent']} concurrent writes (paper: ~82 K)",
    ]
    return "\n".join(out)
