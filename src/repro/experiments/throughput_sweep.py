"""Closed-loop multi-client throughput sweep.

Drives the :func:`~repro.workloads.run_closed_loop` load engine over a
growing client population for the sPIN and RPC write paths.  A closed
system self-limits: every client keeps a bounded number of operations
outstanding, so aggregate throughput rises with population until the
bottleneck resource (accelerator pipeline vs. host RPC cores) saturates
and further clients only add queueing latency.

Claims: aggregate throughput scales with the client population before
saturation; the sPIN data path sustains higher aggregate throughput
than host RPC at every population; tail latency (p99) grows with load.

Each row also reports the *latency anatomy* of the measured window —
per-phase p99s from :mod:`repro.telemetry.anatomy` — plus an ``slo_ok``
verdict against the per-protocol budgets in :data:`SLOS`, so a sweep
doubles as a per-scenario SLO report (queueing shows up in
``host_queue``/``other``, not in the compute phases).
"""

from __future__ import annotations

from typing import Optional

from ..analysis import shapes
from ..dfs.cluster import build_testbed
from ..params import SimParams
from ..slo import SloSpec, evaluate
from ..workloads import LoadSpec, closed_loop_write_load
from .common import KiB, engine_neutral, installer_for, render_rows, size_label

ID = "throughput_sweep"
TITLE = "Closed-loop throughput vs. client population (8 KiB writes)"
CLAIMS = [
    "aggregate throughput rises with the client population until saturation",
    "sPIN sustains higher aggregate throughput than host RPC",
    "p99 latency grows with offered load",
]

PROTOCOLS = ("spin", "rpc")
CLIENTS = (1, 2, 4, 8, 16)
QUICK_CLIENTS = (1, 4, 8)
SIZE = 8 * KiB

#: per-protocol latency budgets, evaluated per row; they must hold at
#: every population (i.e. through saturation queueing at 16 clients)
SLOS = {
    "spin": SloSpec(budgets={"end_to_end.p50": 8_000,
                             "end_to_end.p99": 15_000}),
    "rpc": SloSpec(budgets={"end_to_end.p50": 10_000,
                            "end_to_end.p99": 20_000}),
}


def points(quick: bool = False, partitions: int = 1) -> list[dict]:
    populations = QUICK_CLIENTS if quick else CLIENTS
    pts = [
        {
            "protocol": proto,
            "n_clients": n,
            "size": SIZE,
            "measure_ns": 300_000.0 if quick else 1_000_000.0,
        }
        for proto in PROTOCOLS
        for n in populations
    ]
    if partitions > 1:
        # only in the key when partitioned, so existing caches (and
        # their seeds, derived from the point) stay valid for the
        # default serial run — rows are identical either way, which
        # test_experiment_partitions_differential proves
        for p in pts:
            p["partitions"] = partitions
    return pts


def run_point(point: dict, params: Optional[SimParams] = None) -> dict:
    from ..runner import point_seed

    proto, n = point["protocol"], point["n_clients"]
    # telemetry on: spans only observe (timestamps are byte-identical
    # either way), and they buy the row its latency anatomy below
    tb = build_testbed(n_storage=4, n_clients=min(n, 4), params=params,
                       telemetry=True,
                       partitions=point.get("partitions", 1))
    installer = installer_for(proto)
    if installer is not None:
        installer(tb)
    spec = LoadSpec(
        n_clients=n,
        outstanding=2,
        think_ns=2_000.0,
        warmup_ns=50_000.0,
        measure_ns=point["measure_ns"],
        seed=point_seed(ID, engine_neutral(point)),
    )
    res = closed_loop_write_load(tb, point["size"], proto, spec)
    phases = res.phase_latency or {}

    def p99(phase: str) -> float:
        return (phases.get(phase) or {}).get("p99") or 0.0

    report = evaluate(SLOS[proto], phases, scenario=f"{proto}/n{n}",
                      n_ops=res.ops, max_sum_error_ns=0.0)
    return {
        "protocol": proto,
        "n_clients": n,
        "size_label": size_label(point["size"]),
        "ops": res.ops,
        "kops_per_s": res.kops_per_s,
        "goodput_gbps": res.goodput_gbps,
        "p50_ns": res.latency["p50"],
        "p99_ns": res.latency["p99"],
        "queue_p99_ns": p99("host_queue") + p99("other"),
        "wire_p99_ns": p99("wire"),
        "compute_p99_ns": p99("hpu") + p99("cpu"),
        "dma_p99_ns": p99("dma"),
        "slo_ok": report.slo_ok,
        "quiesced": res.quiesced,
    }


def run(params: Optional[SimParams] = None, quick: bool = False,
        jobs: int = 1, cache: bool = False, cache_dir: Optional[str] = None,
        partitions: int = 1) -> list[dict]:
    from ..runner import run_sweep

    return run_sweep(ID, points(quick, partitions=partitions), params=params,
                     jobs=jobs, cache=cache, cache_dir_override=cache_dir)


def check(rows: list[dict]) -> None:
    for proto in PROTOCOLS:
        sub = sorted((r for r in rows if r["protocol"] == proto),
                     key=lambda r: r["n_clients"])
        shapes.check(all(r["quiesced"] for r in sub), f"{proto}: load quiesces")
        shapes.check(all(r["slo_ok"] for r in sub),
                     f"{proto}: per-phase latency budgets hold at every population")
        lo, hi = sub[0], sub[-1]
        shapes.check(
            hi["kops_per_s"] > lo["kops_per_s"] * 1.5,
            f"{proto}: throughput scales with client population "
            f"({lo['kops_per_s']:.0f} -> {hi['kops_per_s']:.0f} kops/s)",
        )
        shapes.check(
            hi["p99_ns"] >= lo["p99_ns"],
            f"{proto}: tail latency grows with load",
        )
    by_n: dict[int, dict[str, dict]] = {}
    for r in rows:
        by_n.setdefault(r["n_clients"], {})[r["protocol"]] = r
    for n, d in sorted(by_n.items()):
        if "spin" in d and "rpc" in d:
            shapes.check(
                d["spin"]["kops_per_s"] > d["rpc"]["kops_per_s"],
                f"n={n}: sPIN throughput beats host RPC",
            )


def render(rows: list[dict]) -> str:
    cols = ["protocol", "n_clients", "size_label", "ops",
            "kops_per_s", "goodput_gbps", "p50_ns", "p99_ns",
            "queue_p99_ns", "wire_p99_ns", "compute_p99_ns", "slo_ok"]
    return render_rows(rows, cols, TITLE)
