"""Fig. 7: packet-processing overheads in PsPIN (2 KiB packets).

The fixed pipeline stages the paper reports: 32 cycles to copy the
packet into the NIC packet buffer, 2 cycles of hardware scheduling, 43
cycles into cluster L1, 1 ns HPU dispatch, and a 200-cycle request-
validation handler.  We report both the analytic stage costs from the
parameters and a measured end-to-end traversal of the simulated
accelerator to confirm they compose.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis import shapes
from ..params import SimParams
from .common import render_rows

ID = "fig07"
TITLE = "Fig. 7 — PsPIN per-packet overheads (2 KiB packet)"
CLAIMS = [
    "packet buffer copy: 32 cycles",
    "hardware scheduler: 2 cycles",
    "L1 copy: 43 cycles",
    "HPU dispatch: 1 ns",
    "auth handler: ~200 cycles (validation core of the 211-cycle HH)",
]

PKT_BYTES = 2048


def run(params: Optional[SimParams] = None, quick: bool = False) -> list[dict]:
    params = params or SimParams()
    p = params.pspin
    stages = [
        ("pkt-buffer-copy", -(-PKT_BYTES // p.pkt_buffer_bytes_per_cycle) / p.freq_ghz),
        ("scheduler", p.sched_cycles / p.freq_ghz),
        ("l1-copy", -(-PKT_BYTES // p.l1_copy_bytes_per_cycle) / p.freq_ghz),
        ("hpu-dispatch", p.hpu_dispatch_ns),
    ]
    from ..pspin.isa import header_handler_cost

    hh = header_handler_cost()
    stages.append(("auth-handler", hh.compute_ns(p.freq_ghz)))
    rows = [{"stage": name, "ns": ns} for name, ns in stages]
    rows.append({"stage": "TOTAL", "ns": sum(ns for _, ns in stages)})
    rows.append({"stage": "measured-pipeline", "ns": _measure_pipeline(params)})
    return rows


def _measure_pipeline(params: SimParams) -> float:
    """Drive one full-MTU single-packet write through a real accelerator
    instance and report ingest -> completion-handler-end time."""
    from ..core.handlers import DfsPolicy, build_dfs_context
    from ..core.request import DfsHeader, WriteRequestHeader
    from ..core.state import DfsState
    from ..pspin.accelerator import PsPinAccelerator
    from ..pspin.memory import NicMemory
    from ..simnet.engine import Simulator
    from ..simnet.packet import Packet

    sim = Simulator()

    done = {}

    def send_fn(pkt):
        ev = sim.event()
        ev.succeed(None)
        if pkt.op == "ack":
            done["t"] = sim.now
        return ev

    def dma_fn(addr, payload):
        ev = sim.event()
        ev.succeed(None)
        return ev

    accel = PsPinAccelerator(sim, params.pspin, "probe", send_fn, dma_fn)
    nicmem = NicMemory(sim, params.pspin)
    state = DfsState(nicmem, params.pspin, authority=None)
    accel.install(build_dfs_context("probe", DfsPolicy(), state))
    wrh = WriteRequestHeader(addr=0)
    dfs = DfsHeader(greq_id=1, op="write", client_id=1, capability=None, reply_to="c")
    pkt = Packet(
        src="c",
        dst="probe",
        op="write",
        msg_id=1,
        seq=0,
        nseq=1,
        payload=np.zeros(PKT_BYTES - 64, dtype=np.uint8),
        headers={"dfs": dfs, "wrh": wrh},
        header_bytes=64,
    )
    assert accel.ingest(pkt)
    sim.run(until=1e6)
    return done["t"]


def check(rows: list[dict]) -> None:
    by = {r["stage"]: r["ns"] for r in rows}
    shapes.check(abs(by["pkt-buffer-copy"] - 32.0) < 1e-9, "buffer copy = 32 cycles")
    shapes.check(abs(by["scheduler"] - 2.0) < 1e-9, "scheduler = 2 cycles")
    shapes.check(abs(by["l1-copy"] - 43.0) < 1e-9, "L1 copy = 43 cycles")
    shapes.check(abs(by["hpu-dispatch"] - 1.0) < 1e-9, "dispatch = 1 ns")
    shapes.check(195 <= by["auth-handler"] <= 225, "auth handler ~200-211 cycles")
    # The measured traversal covers the full HH+PH+CH chain, so it must
    # exceed the single-handler total but stay the same order.
    shapes.check(
        by["TOTAL"] < by["measured-pipeline"] < 4 * by["TOTAL"],
        f"measured pipeline {by['measured-pipeline']:.0f} ns consistent with stages",
    )


def render(rows: list[dict]) -> str:
    return render_rows(rows, ["stage", "ns"], TITLE)
