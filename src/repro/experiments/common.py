"""Shared experiment plumbing.

Each experiment module exposes:

* ``ID``/``TITLE``/``CLAIMS`` — identification + the paper's qualitative
  claims it reproduces;
* ``run(params=None, quick=False) -> rows`` — list of dict rows;
* ``check(rows)`` — raises :class:`~repro.analysis.shapes.ShapeError`
  when a claimed shape fails;
* ``render(rows) -> str`` — fixed-width table for humans.

``measure_latency`` builds a fresh, isolated testbed per data point so
sweep points never share queue state.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from ..dfs.client import DfsClient
from ..dfs.cluster import Testbed, build_testbed
from ..dfs.layout import EcSpec, ReplicationSpec
from ..params import SimParams
from ..workloads import measure_write_latency

__all__ = [
    "KiB",
    "MiB",
    "fresh_client",
    "engine_neutral",
    "installer_for",
    "measure_anatomy",
    "measure_latency",
    "render_rows",
    "size_label",
]

KiB = 1024
MiB = 1024 * 1024


def engine_neutral(point: dict) -> dict:
    """The point minus engine-selection keys (``partitions``): the seed
    must depend only on *what* is simulated, never on which engine runs
    it — partitioned rows have to match serial rows byte-for-byte."""
    return {k: v for k, v in point.items() if k != "partitions"}


def installer_for(protocol: str) -> Optional[Callable[[Testbed], None]]:
    """Target-personality installer for a protocol name (None when the
    protocol needs no storage-side setup).  Shared by experiments and
    the ``python -m repro`` CLI."""
    # local imports keep experiments importable without cycles
    from ..protocols import (
        install_cpu_replication_targets,
        install_hyperloop_targets,
        install_inec_targets,
        install_rpc_rdma_targets,
        install_rpc_targets,
        install_spin_targets,
    )

    return {
        "spin": install_spin_targets,
        "raw": None,
        "rpc": install_rpc_targets,
        "rpc+rdma": install_rpc_rdma_targets,
        "cpu": install_cpu_replication_targets,
        "rdma-flat": None,
        "rdma-hyperloop": install_hyperloop_targets,
        "inec": install_inec_targets,
    }[protocol]


# retained alias for older call sites
_installer_for = installer_for


def fresh_client(
    protocol: str,
    params: Optional[SimParams] = None,
    n_storage: int = 10,
    telemetry: bool = False,
) -> tuple[Testbed, DfsClient]:
    """A new testbed configured for ``protocol`` plus a client."""
    tb = build_testbed(n_storage=n_storage, params=params, telemetry=telemetry)
    installer = installer_for(protocol)
    if installer is not None:
        installer(tb)
    return tb, DfsClient(tb)


def measure_latency(
    protocol: str,
    size: int,
    params: Optional[SimParams] = None,
    replication: Optional[ReplicationSpec] = None,
    ec: Optional[EcSpec] = None,
    repeats: int = 3,
    **write_kw,
) -> float:
    """Median isolated-write latency on a fresh testbed."""
    tb, client = fresh_client(protocol, params)
    client.create("/bench", size=max(size, 1) * 2, replication=replication, ec=ec)
    return measure_write_latency(
        client, "/bench", size, protocol, repeats=repeats, **write_kw
    )


def measure_anatomy(
    protocol: str,
    size: int,
    params: Optional[SimParams] = None,
    replication: Optional[ReplicationSpec] = None,
    ec: Optional[EcSpec] = None,
    **write_kw,
):
    """Phase decomposition of one warmed isolated write.

    Runs a warm-up write plus one measured write on a fresh telemetry-on
    testbed and returns the measured write's
    :class:`~repro.telemetry.anatomy.OpAnatomy` — the per-phase latency
    columns experiments attach next to their headline numbers.
    """
    from ..telemetry.anatomy import decompose
    from ..workloads import payload_bytes

    tb, client = fresh_client(protocol, params, telemetry=True)
    client.create("/bench", size=max(size, 1) * 2, replication=replication, ec=ec)
    data = payload_bytes(size)
    for _ in range(2):  # first write warms structures, second is measured
        out = client.write_sync("/bench", data, protocol=protocol, **write_kw)
        if not out.ok:
            raise RuntimeError(f"write failed: {out.nacks}")
    # let trailing acks / commits close their spans
    tb.run(until=tb.sim.now + 200_000)
    ops = [op for op in decompose(tb.telemetry) if op.op == "write" and op.ok]
    return ops[-1]


def size_label(nbytes: int) -> str:
    if nbytes >= MiB and nbytes % MiB == 0:
        return f"{nbytes // MiB}MiB"
    if nbytes >= KiB and nbytes % KiB == 0:
        return f"{nbytes // KiB}KiB"
    return f"{nbytes}B"


def render_rows(rows: Sequence[dict], columns: Iterable[str], title: str = "") -> str:
    """Fixed-width text table from dict rows."""
    cols = list(columns)
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c) for c in cols}
    out = []
    if title:
        out.append(title)
    out.append("  ".join(c.ljust(widths[c]) for c in cols))
    out.append("  ".join("-" * widths[c] for c in cols))
    for r in rows:
        out.append("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in cols))
    return "\n".join(out)


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.1f}"
    return str(v)
