"""Fig. 9 (left/center): replicated-write latency across strategies.

Strategies (§V-B): CPU-Ring, CPU-PBT, RDMA-Flat, RDMA-HyperLoop,
sPIN-Ring, sPIN-PBT; replication factors k=2 and k=4; write sizes
1 KiB – 1 MiB.  CPU and HyperLoop runs are pipelined with the optimal
chunk size, as in the paper.

Claims: RDMA-Flat wins for small writes; sPIN wins past a crossover in
the tens of KiB (paper: 16 KiB); sPIN achieves ~2x over the best
alternative for large writes; CPU strategies are penalized by host
memory traffic; HyperLoop is penalized by WQE configuration, amortized
at large sizes.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import shapes
from ..dfs.layout import ReplicationSpec
from ..params import SimParams
from ..workloads import optimal_chunk_size
from .common import KiB, MiB, measure_anatomy, measure_latency, render_rows, size_label

ID = "fig09_latency"
TITLE = "Fig. 9 L/C — replicated write latency (ns)"
CLAIMS = [
    "RDMA-Flat has the lowest latency for small writes",
    "sPIN strategies win beyond a crossover in the tens of KiB",
    "sPIN is ~1.5-2.5x faster than the best alternative for large writes",
    "CPU-based strategies pay host-memory round trips on every hop",
    "ring == pbt for k=2 (single child)",
]

SIZES = [1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB]
QUICK_SIZES = [1 * KiB, 16 * KiB, 256 * KiB]
CHUNK_CANDIDATES = [16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB]


def _strategies(k: int) -> list[tuple[str, str, dict]]:
    """(column, protocol, extra kwargs) per strategy."""
    out = [
        ("cpu-ring", "cpu", {"strategy": "ring"}),
        ("cpu-pbt", "cpu", {"strategy": "pbt"}),
        ("rdma-flat", "rdma-flat", {}),
        ("rdma-hyperloop", "rdma-hyperloop", {}),
        ("spin-ring", "spin", {"strategy": "ring"}),
        ("spin-pbt", "spin", {"strategy": "pbt"}),
    ]
    return out


def _latency(col: str, proto: str, extra: dict, size: int, k: int, params, repeats: int) -> float:
    strategy = extra.get("strategy", "ring")
    repl = ReplicationSpec(k=k, strategy=strategy)

    if proto in ("cpu", "rdma-hyperloop") and size > 16 * KiB:
        # pipelined with optimal chunk size (§V-B)
        def run_chunk(chunk: int) -> float:
            return measure_latency(
                proto, size, params=params, replication=repl,
                repeats=1, chunk_bytes=chunk,
            )

        cands = [c for c in CHUNK_CANDIDATES if c <= max(size, CHUNK_CANDIDATES[0])]
        _, lat = optimal_chunk_size(run_chunk, cands)
        return lat
    kw = {"chunk_bytes": size} if proto in ("cpu", "rdma-hyperloop") else {}
    return measure_latency(proto, size, params=params, replication=repl, repeats=repeats, **kw)


def points(quick: bool = False, ks=(2, 4)) -> list[dict]:
    sizes = QUICK_SIZES if quick else SIZES
    return [
        {"k": k, "size": size, "repeats": 1 if quick else 2}
        for k in ks
        for size in sizes
    ]


def run_point(point: dict, params: Optional[SimParams] = None) -> dict:
    k, size = point["k"], point["size"]
    row: dict = {"k": k, "size": size, "size_label": size_label(size)}
    for col, proto, extra in _strategies(k):
        row[col] = _latency(col, proto, extra, size, k, params, point["repeats"])
    # latency anatomy of the headline strategy: where the sPIN-Ring
    # write's time goes, phase by phase (sums to its end-to-end latency
    # — anatomy_ok asserts the decomposition is exact)
    an = measure_anatomy(
        "spin", size, params=params, replication=ReplicationSpec(k=k, strategy="ring")
    )
    row["spin_wire_ns"] = an.phases["wire"]
    row["spin_hpu_ns"] = an.phases["hpu"]
    row["spin_dma_ns"] = an.phases["dma"]
    row["spin_other_ns"] = an.phases["other"]
    row["anatomy_ok"] = abs(an.sum_error_ns) <= 1.0
    return row


def run(params: Optional[SimParams] = None, quick: bool = False, ks=(2, 4),
        jobs: int = 1, cache: bool = False, cache_dir: Optional[str] = None) -> list[dict]:
    from ..runner import run_sweep

    return run_sweep(ID, points(quick, ks), params=params, jobs=jobs,
                     cache=cache, cache_dir_override=cache_dir)


def check(rows: list[dict]) -> None:
    shapes.check(all(r["anatomy_ok"] for r in rows),
                 "sPIN-Ring phase decomposition sums to end-to-end latency")
    for k in sorted({r["k"] for r in rows}):
        sub = {r["size"]: r for r in rows if r["k"] == k}
        sizes = sorted(sub)
        small, large = sub[sizes[0]], sub[sizes[-1]]
        spin_cols = ["spin-ring", "spin-pbt"]
        others = ["cpu-ring", "cpu-pbt", "rdma-flat", "rdma-hyperloop"]

        # RDMA-Flat fastest at the smallest size
        best_small = min(small[c] for c in spin_cols + others)
        shapes.check(
            small["rdma-flat"] <= best_small * 1.001,
            f"k={k}: RDMA-Flat wins at {size_label(sizes[0])}",
        )
        # sPIN wins at the largest size
        best_spin = min(large[c] for c in spin_cols)
        best_other = min(large[c] for c in others)
        shapes.assert_faster(best_spin, best_other, f"k={k}: sPIN wins at 1 MiB")
        shapes.assert_ratio_between(
            best_other, best_spin, 1.3, 4.0,
            f"k={k}: large-write sPIN advantage ~2x (paper: 2x/2.16x)",
        )
        # crossover against RDMA-Flat in the tens-of-KiB range
        flat = {s: sub[s]["rdma-flat"] for s in sizes}
        ring = {s: sub[s]["spin-ring"] for s in sizes}
        shapes.assert_crossover_within(
            flat, ring, 4 * KiB, 512 * KiB,
            f"k={k}: RDMA-Flat/sPIN-Ring crossover (paper: 16 KiB)",
        )
        # CPU strategies slowest among pipelines at large sizes
        shapes.check(
            min(large["cpu-ring"], large["cpu-pbt"]) > best_spin,
            f"k={k}: CPU replication pays host-memory costs",
        )
        if k == 2:
            for s in sizes:
                shapes.assert_ratio_between(
                    sub[s]["spin-pbt"], sub[s]["spin-ring"], 0.9, 1.1,
                    f"k=2: ring == pbt at {size_label(s)} (single child)",
                )


def render(rows: list[dict]) -> str:
    cols = ["k", "size_label", "cpu-ring", "cpu-pbt", "rdma-flat",
            "rdma-hyperloop", "spin-ring", "spin-pbt",
            "spin_wire_ns", "spin_hpu_ns", "spin_dma_ns", "spin_other_ns"]
    return render_rows(rows, cols, TITLE)
