"""Loss sweep: write completion and latency under injected packet loss.

Not a paper figure — a robustness experiment over the fault-injection
layer (:mod:`repro.faults`).  The paper's protocols assume a lossless
fabric; here every link drops packets i.i.d. with probability ``p`` and
the client NIC's end-to-end retransmission layer (timeout + capped
exponential backoff) recovers.  Claims checked:

* at every swept loss rate every write completes (bounded retries
  suffice up to ``p = 1e-2``);
* with loss enabled, recovery actually happened (drops > 0 over the
  sweep) and median latency is never *below* the lossless baseline;
* the same seed reproduces the same drop count (determinism).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis import shapes
from ..dfs.client import DfsClient
from ..dfs.cluster import build_testbed
from ..params import SimParams
from .common import KiB, installer_for, render_rows

ID = "loss"
TITLE = "Loss sweep — 64 KiB writes under injected packet loss"
CLAIMS = [
    "all writes complete under loss up to 1e-2 (bounded retransmits suffice)",
    "packets are actually dropped over the sweep (faults are live)",
    "lossy latency is never below the lossless baseline",
    "identical seed => identical drop counts (deterministic injection)",
]

LOSS_RATES = [0.0, 1e-4, 1e-3, 1e-2]
PROTOCOLS = ["raw", "spin", "rpc"]
#: chosen so that drops occur even in the short --quick sweep
SEED = 1
SIZE = 64 * KiB
REPEATS = 4
QUICK_REPEATS = 1


def _measure(protocol: str, loss: float, repeats: int,
             base: Optional[SimParams], seed: int = SEED) -> dict:
    params = base or SimParams()
    if loss > 0:
        params = params.with_faults(loss_prob=loss, seed=seed, retransmit=True)
    tb = build_testbed(n_storage=8, params=params)
    installer = installer_for(protocol)
    if installer is not None:
        installer(tb)
    client = DfsClient(tb)
    client.create("/bench", size=SIZE * 2)
    data = np.random.default_rng(3).integers(0, 256, SIZE, dtype=np.uint8)
    lats, completed = [], 0
    for _ in range(repeats):
        out = client.write_sync("/bench", data, protocol=protocol)
        if out.ok:
            completed += 1
            lats.append(out.latency_ns)
        tb.run(until=tb.sim.now + 2_000_000)
    nics = [tb.clients[0].nic, *(n.nic for n in tb.storage_nodes)]
    return {
        "completed": completed,
        "latency": float(np.median(lats)) if lats else float("nan"),
        "retransmits": sum(n.retransmits for n in nics),
        "drops": tb.faults.drops if tb.faults is not None else 0,
        "pending": sum(n.pending_count() for n in nics),
    }


def points(quick: bool = False) -> list[dict]:
    repeats = QUICK_REPEATS if quick else REPEATS
    return [{"loss": loss, "repeats": repeats, "seed": SEED}
            for loss in LOSS_RATES]


def run_point(point: dict, params: Optional[SimParams] = None) -> dict:
    loss, repeats, seed = point["loss"], point["repeats"], point["seed"]
    row: dict = {"loss": loss, "repeats": repeats}
    for proto in PROTOCOLS:
        pt = _measure(proto, loss, repeats, params, seed=seed)
        row[proto] = pt["latency"]
        row[f"{proto}_completed"] = pt["completed"]
        row[f"{proto}_retransmits"] = pt["retransmits"]
        row[f"{proto}_drops"] = pt["drops"]
        row[f"{proto}_pending"] = pt["pending"]
    # determinism probe: repeat one point with the same seed
    if loss > 0:
        again = _measure("raw", loss, repeats, params, seed=seed)
        row["raw_drops_again"] = again["drops"]
    return row


def run(params: Optional[SimParams] = None, quick: bool = False,
        jobs: int = 1, cache: bool = False, cache_dir: Optional[str] = None) -> list[dict]:
    from ..runner import run_sweep

    return run_sweep(ID, points(quick), params=params, jobs=jobs,
                     cache=cache, cache_dir_override=cache_dir)


def check(rows: list[dict]) -> None:
    total_drops = 0
    for r in rows:
        for proto in PROTOCOLS:
            shapes.check(
                r[f"{proto}_completed"] == r["repeats"],
                f"every {proto} write completes at loss={r['loss']:g}",
            )
            shapes.check(
                r[f"{proto}_pending"] == 0,
                f"no leaked pending ops for {proto} at loss={r['loss']:g}",
            )
            total_drops += r[f"{proto}_drops"]
        if r["loss"] > 0:
            shapes.check(
                r["raw_drops_again"] == r["raw_drops"],
                f"same seed => same drops at loss={r['loss']:g}",
            )
    shapes.check(total_drops > 0, "the sweep actually dropped packets")
    base = {p: rows[0][p] for p in PROTOCOLS}
    for r in rows[1:]:
        for proto in PROTOCOLS:
            shapes.check(
                r[proto] >= base[proto] * 0.999,
                f"lossless is the latency floor for {proto} at loss={r['loss']:g}",
            )


def render(rows: list[dict]) -> str:
    disp = [
        {
            "loss": f"{r['loss']:g}",
            **{p: r[p] for p in PROTOCOLS},
            "drops": sum(r[f"{p}_drops"] for p in PROTOCOLS),
            "retx": sum(r[f"{p}_retransmits"] for p in PROTOCOLS),
        }
        for r in rows
    ]
    return render_rows(disp, ["loss", *PROTOCOLS, "drops", "retx"],
                       TITLE + " (median ns)")
