"""Scenario matrix: the open-loop workload regimes, swept as one table.

The SC'22 evaluation drives its NIC data path with a handful of
closed-loop clients; real DFS front ends see open-loop traffic from
enormous populations with Zipf-popular objects and heavy-tailed sizes.
This experiment sweeps the built-in scenario matrix
(:mod:`repro.scenarios.builtin`) — hot-shard skew, synchronized incast,
self-similar on/off background, and the hot shard under seeded loss
with SLO budgets — through :mod:`repro.runner`, one deterministic row
per scenario.

Shape claims checked per row:

* the aggregated generator's schedule digest is reproducible (CI runs
  the mini-matrix twice and compares CSVs byte-for-byte);
* ``hot_shard`` actually concentrates a majority of requests on the
  pinned node while ``uniform_onoff`` stays spread out;
* ``incast`` drives a far higher peak in-flight backlog than the
  Poisson scenarios at comparable issue counts;
* every scenario quiesces and any SLO budgets hold.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import shapes
from ..params import SimParams
from .common import render_rows

ID = "scenario_matrix"
TITLE = "Open-loop scenario matrix (aggregated flow generators)"
CLAIMS = [
    "hot_shard pins the majority of requests onto one storage node",
    "incast bursts drive a deep synchronized in-flight backlog",
    "uniform on/off background traffic stays spread across nodes",
    "every scenario's schedule is deterministic at a fixed seed",
]

COLUMNS = (
    "scenario", "protocol", "n_users", "issued", "ops", "failures",
    "kops_s", "p50_ns", "p99_ns", "hot_node", "hot_share",
    "peak_inflight", "slo_ok", "quiesced", "schedule_digest",
)


def points(quick: bool = False) -> list[dict]:
    from ..scenarios import MATRIX_NAMES, QUICK_NAMES

    names = QUICK_NAMES if quick else MATRIX_NAMES
    return [{"scenario": name, "quick": quick} for name in names]


def run_point(point: dict, params: Optional[SimParams] = None) -> dict:
    from ..runner import point_seed
    from ..scenarios import get, run_scenario

    spec = get(point["scenario"], quick=point.get("quick", False))
    seed = point_seed(ID, point)
    return run_scenario(spec, seed=seed, params_base=params)


def run(params: Optional[SimParams] = None, quick: bool = False,
        jobs: int = 1, cache: bool = False,
        cache_dir: Optional[str] = None) -> list[dict]:
    from ..runner import run_sweep

    return run_sweep(ID, points(quick), params=params, jobs=jobs,
                     cache=cache, cache_dir_override=cache_dir)


def check(rows: list[dict]) -> None:
    by_name = {r["scenario"]: r for r in rows}
    for r in rows:
        name = r["scenario"]
        shapes.check(r["quiesced"], f"{name}: run did not quiesce")
        shapes.check(r["issued"] > 0, f"{name}: no requests issued")
        shapes.check(r["ops"] > 0, f"{name}: no completions in window")
        shapes.check(bool(r["schedule_digest"]), f"{name}: empty digest")
        shapes.check(
            r["slo_ok"],
            f"{name}: SLO budgets violated ({r['slo_failed'] or '-'})",
        )

    hot = by_name.get("hot_shard")
    if hot is not None:
        shapes.check(
            hot["hot_share"] >= 0.5,
            f"hot_shard: pinned node took {hot['hot_share']:.0%} < 50% "
            "of requests",
        )
        shapes.check(
            hot["hot_node"] == "sn0",
            f"hot_shard: hottest node is {hot['hot_node']}, expected sn0",
        )
    uni = by_name.get("uniform_onoff")
    if uni is not None:
        # 8 nodes, uniform popularity: no node should dominate
        shapes.check(
            uni["hot_share"] <= 0.35,
            f"uniform_onoff: a node took {uni['hot_share']:.0%} of requests",
        )
    inc = by_name.get("incast")
    if inc is not None:
        poisson_peaks = [
            r["peak_inflight"] for r in rows
            if r["scenario"] in ("hot_shard", "uniform_onoff")
        ]
        if poisson_peaks:
            shapes.check(
                inc["peak_inflight"] >= 3 * max(poisson_peaks),
                f"incast peak inflight {inc['peak_inflight']} not >> "
                f"poisson peaks {poisson_peaks}",
            )


def render(rows: list[dict]) -> str:
    return render_rows(rows, COLUMNS, title=TITLE)
