"""Fig. 16 (left) + Table II: EC handler running times.

Table II (paper), per 2 KiB packet:

=========  =====  ======  =====  ====  ======  ====  =====  ====  =====
type        HH ns   PH ns  CH ns  HH i    PH i  CH i  HHipc  PHipc CHipc
=========  =====  ======  =====  ====  ======  ====  =====  ====  =====
RS(3,2)      215   16681    105   120   11672    35   0.56   0.7   0.33
RS(6,3)      215   23018     82   120   16028    35   0.56   0.7   0.43
=========  =====  ======  =====  ====  ======  ====  =====  ====  =====

The payload handler is dominated by the GF(2^8) encode loop: 5
instructions per byte for RS(3,2) and 7 for RS(6,3) (§VI-C(c)).
Outliers in Fig. 16 come from the shorter first/last packets; we filter
to full-MTU packets for the Table II comparison, as the paper's
dominant population.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import shapes
from ..dfs.layout import EcSpec
from ..params import SimParams
from ..workloads import payload_bytes
from .common import KiB, fresh_client, render_rows

ID = "fig16_table2"
TITLE = "Fig. 16 L / Table II — EC data-node handler statistics (full-MTU packets)"
CLAIMS = [
    "RS(3,2) PH ~11672 instructions (5/byte), RS(6,3) ~16028 (7/byte)",
    "PH durations ~16.7 us and ~23 us at IPC ~0.7",
    "EC payload handlers exceed the 32-HPU 400 Gbit/s budget (~1310 ns)",
]

SCHEMES = [(3, 2), (6, 3)]
WRITE_BYTES = 256 * KiB


def run(params: Optional[SimParams] = None, quick: bool = False) -> list[dict]:
    rows = []
    for k, m in SCHEMES:
        tb, client = fresh_client("spin", params)
        client.create("/bench", size=WRITE_BYTES, ec=EcSpec(k=k, m=m))
        data = payload_bytes(WRITE_BYTES)
        n = 2 if quick else 4
        for _ in range(n):
            out = client.write_sync("/bench", data, protocol="spin")
            assert out.ok
        layout = client.open("/bench")
        freq = tb.params.pspin.freq_ghz
        # aggregate over the data nodes (they run the encode loop)
        durs, instrs = [], []
        mtu = tb.params.net.mtu
        full_instr_min = 5 * (mtu - 256)  # filter: full-ish payload packets
        for ext in layout.extents:
            st = tb.node(ext.node).accelerator.stats["payload:dfs"]
            for d, i in zip(st.durations_ns, st.instructions):
                if i >= full_instr_min:
                    durs.append(d)
                    instrs.append(i)
        hh = tb.node(layout.primary.node).accelerator.stats["header:dfs"]
        ch = tb.node(layout.primary.node).accelerator.stats["completion:dfs"]
        mean_d = sum(durs) / len(durs)
        mean_i = sum(instrs) / len(instrs)
        rows.append(
            {
                "scheme": f"RS({k},{m})",
                "HH_ns": hh.mean_duration(),
                "PH_ns": mean_d,
                "CH_ns": ch.mean_duration(),
                "HH_instr": hh.mean_instructions(),
                "PH_instr": mean_i,
                "CH_instr": ch.mean_instructions(),
                "PH_ipc": mean_i / (mean_d * freq),
                "n_ph": len(durs),
            }
        )
    return rows


def check(rows: list[dict]) -> None:
    by = {r["scheme"]: r for r in rows}
    rs32, rs63 = by["RS(3,2)"], by["RS(6,3)"]
    # instruction counts: exact for full-MTU packets
    shapes.assert_ratio_between(rs32["PH_instr"], 11672, 0.97, 1.03,
                                "RS(3,2) PH ~11672 instructions")
    shapes.assert_ratio_between(rs63["PH_instr"], 16028, 0.97, 1.03,
                                "RS(6,3) PH ~16028 instructions")
    # durations within tolerance of Table II
    shapes.assert_ratio_between(rs32["PH_ns"], 16681, 0.8, 1.35, "RS(3,2) PH ~16.7 us")
    shapes.assert_ratio_between(rs63["PH_ns"], 23018, 0.8, 1.35, "RS(6,3) PH ~23 us")
    for r in rows:
        shapes.check(0.55 <= r["PH_ipc"] <= 0.75, f"{r['scheme']} PH IPC ~0.7 (got {r['PH_ipc']:.2f})")
        shapes.assert_ratio_between(r["HH_ns"], 215, 0.9, 1.1, f"{r['scheme']} HH ~215 ns")
        shapes.check(abs(r["CH_instr"] - 35) < 1, f"{r['scheme']} CH = 35 instructions")
        # these handlers cannot sustain line rate on 32 HPUs (§VI-C)
        budget_400g = 32 * 2048 * 8 / 400.0
        shapes.check(r["PH_ns"] > budget_400g, f"{r['scheme']} PH exceeds 400G budget")


def render(rows: list[dict]) -> str:
    cols = ["scheme", "HH_ns", "PH_ns", "CH_ns", "HH_instr", "PH_instr", "CH_instr", "PH_ipc", "n_ph"]
    return render_rows(rows, cols, TITLE)
