"""Fig. 16 (right): HPUs needed to sustain line rate vs handler duration.

For 2 KiB packets, a packet arrives every 40.96 ns at 400 Gbit/s
(81.92 ns at 200 Gbit/s); a handler lasting D ns needs ceil(D / 40.96)
HPUs.  The paper reads off that RS(6,3) (~23 us payload handlers) needs
~512 HPUs at 400 Gbit/s — PsPIN's modular clusters can be scaled out to
reach that.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import budget, shapes
from ..params import SimParams
from .common import render_rows

ID = "fig16_budget"
TITLE = "Fig. 16 R — HPUs needed vs mean handler duration (2 KiB packets)"
CLAIMS = [
    "HPUs needed grow linearly with handler duration",
    "RS(6,3) payload handlers (~23 us) need ~512 HPUs at 400 Gbit/s",
    "halving the line rate halves the HPU requirement",
]

DURATIONS_NS = [100, 500, 1000, 2000, 4000, 8000, 16681, 23018, 32000]
PKT = 2048


def run(params: Optional[SimParams] = None, quick: bool = False) -> list[dict]:
    rows = []
    for d in DURATIONS_NS:
        rows.append(
            {
                "handler_ns": d,
                "hpus_400g": budget.hpus_needed(400.0, PKT, d),
                "hpus_200g": budget.hpus_needed(200.0, PKT, d),
            }
        )
    return rows


def check(rows: list[dict]) -> None:
    h400 = [r["hpus_400g"] for r in rows]
    shapes.assert_monotonic(h400, claim="HPUs grow with handler duration")
    rs63 = next(r for r in rows if r["handler_ns"] == 23018)
    shapes.check(
        450 <= rs63["hpus_400g"] <= 640,
        f"RS(6,3) needs ~512 HPUs at 400G (got {rs63['hpus_400g']})",
    )
    for r in rows:
        if r["handler_ns"] >= 1000:
            shapes.assert_ratio_between(
                r["hpus_400g"], r["hpus_200g"], 1.8, 2.2,
                "double line rate -> double HPUs",
            )
    # the default 32-HPU configuration sustains 400G only for handlers
    # under ~1311 ns (§VI-C)
    b = budget.handler_budget_ns(400.0, PKT, 32)
    shapes.check(1300 <= b <= 1320, f"32-HPU budget ~1310 ns (got {b:.0f})")


def render(rows: list[dict]) -> str:
    return render_rows(rows, ["handler_ns", "hpus_400g", "hpus_200g"], TITLE)
