"""Recovery storm: kill a rack mid-load, measure the blast radius.

The paper's §VII leaves recovery to "monitoring services"; this
experiment exercises the full control loop we built around that hook:
64 storage nodes report heartbeats to the metadata node over the
simulated network, a whole failure domain (8 nodes) loses power in the
middle of a closed-loop foreground write load, the sweep declares the
nodes dead after three missed beats, and the re-replicator restores
every lost extent with bounded-concurrency repair writes through the
same data plane the foreground clients are using.

Per protocol the row reports the failure-detection delay, the time to
full redundancy (TTR), how many foreground operations failed against
dead replicas (the NIC reliability layer turns them into bounded-time
timeout nacks), and the foreground p99 before vs. during the storm —
with the exact per-phase anatomy of the measured window, feeding the
SLO pipeline.  The repair schedule is digested into the row, so the
fixed-seed CI run proves byte-identical recovery end to end.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Optional

import numpy as np

from ..analysis import shapes
from ..dfs.cluster import build_testbed
from ..dfs.layout import FileLayout, ReplicationSpec
from ..dfs.monitor import MonitorConfig, install_monitor
from ..dfs.replicator import ReplicatorConfig, ReReplicator
from ..params import SimParams
from ..workloads import LoadSpec, closed_loop_write_load, payload_bytes
from .common import KiB, MiB, installer_for, render_rows

ID = "recovery_storm"
TITLE = "Recovery storm: 8 of 64 nodes lost mid-load (replication k=3)"
CLAIMS = [
    "heartbeat monitoring detects every lost node within the miss budget",
    "re-replication restores full redundancy through the live data plane",
    "foreground ops against dead replicas fail in bounded time; survivors keep flowing",
    "the recovery schedule is deterministic at a fixed seed",
]

N_STORAGE = 64
N_DOMAINS = 8
#: the victims: one whole failure domain (a rack power loss)
KILL_DOMAIN = 3
N_KILL = N_STORAGE // N_DOMAINS
K = 3
PROTOCOLS = ("spin", "rpc")
BG_SIZE = 16 * KiB
FG_SIZE = 8 * KiB

HEARTBEAT_NS = 50_000.0
MISS_THRESHOLD = 3


def victims() -> list[str]:
    return [f"sn{i}" for i in range(N_STORAGE)
            if i // N_DOMAINS == KILL_DOMAIN]


def points(quick: bool = False, partitions: int = 1) -> list[dict]:
    pts = [
        {
            "protocol": proto,
            "n_bg": 16 if quick else 48,
            "n_clients": 6 if quick else 12,
            "measure_ns": 500_000.0 if quick else 1_200_000.0,
            "kill_offset_ns": 100_000.0 if quick else 150_000.0,
        }
        for proto in PROTOCOLS
    ]
    if partitions > 1:
        # engine selection rides in the point (so cached partitioned
        # rows key separately) but never reaches the seed — rows must be
        # byte-identical to the serial engine's
        for p in pts:
            p["partitions"] = partitions
    return pts


def run_point(point: dict, params: Optional[SimParams] = None) -> dict:
    from ..runner import point_seed
    from ..simnet.trace import summarize
    from ..telemetry.anatomy import decompose, phase_summary
    from .common import engine_neutral

    proto = point["protocol"]
    k = point.get("partitions", 1)
    seed = point_seed(ID, engine_neutral(point))
    # small per-node capacity keeps capability lengths tight; the
    # reliability layer (retransmit on, zero wire loss) is what turns a
    # write against a crashed node into a bounded-time timeout nack
    base = params or SimParams()
    p = dataclasses.replace(base, storage_capacity_bytes=4 * MiB).with_faults(
        retransmit=True, rto_ns=30_000.0, rto_max_ns=120_000.0,
        max_retransmits=3, seed=seed,
    )
    tb = build_testbed(
        n_storage=N_STORAGE,
        n_clients=4,
        params=p,
        telemetry=True,
        placement="domain",
        failure_domains={f"sn{i}": i // N_DOMAINS for i in range(N_STORAGE)},
        partitions=k,
    )
    installer = installer_for(proto)
    if installer is not None:
        installer(tb)

    # background namespace: the repair workload (written once, then
    # static — so post-recovery replicas must be byte-identical)
    from ..dfs.client import DfsClient

    bg = DfsClient(tb, client_index=0, principal="bgload")
    bg_data = payload_bytes(BG_SIZE, seed=seed)
    bg_paths = []
    for i in range(point["n_bg"]):
        path = f"/bg/{i}"
        bg.create(path, size=BG_SIZE, replication=ReplicationSpec(k=K))
        out = bg.write_sync(path, bg_data, protocol=proto)
        if not out.ok:
            raise RuntimeError(f"bg write failed: {out.nacks}")
        bg_paths.append(path)

    mon = install_monitor(
        tb, config=MonitorConfig(interval_ns=HEARTBEAT_NS,
                                 miss_threshold=MISS_THRESHOLD)
    )
    repl = ReReplicator(tb, ReplicatorConfig(max_inflight=4), monitor=mon)

    doomed = victims()
    spec = LoadSpec(
        n_clients=point["n_clients"],
        outstanding=2,
        think_ns=2_000.0,
        warmup_ns=100_000.0,
        measure_ns=point["measure_ns"],
        seed=seed,
        allow_failures=True,
    )
    t_load0 = tb.sim.now
    t_kill = t_load0 + spec.warmup_ns + point["kill_offset_ns"]

    if k > 1:
        # a crash is partition-local state: schedule each victim's
        # fail() on the partition that owns the node
        for v in doomed:
            tb.sim.call_at(t_kill, tb.node(v).fail, rank=tb.sim.rank_of(v))
    else:
        def killer():
            yield tb.sim.timeout(t_kill - tb.sim.now)
            for v in doomed:
                tb.node(v).fail()

        tb.sim.process(killer(), name="rack-killer")
    res = closed_loop_write_load(
        tb, FG_SIZE, proto, spec, replication=ReplicationSpec(k=K)
    )

    # drain: let detection and re-replication finish (bounded loop)
    quiesced = False
    for _ in range(400):
        all_dead = all(mon.is_dead(v) for v in doomed)
        if all_dead and repl.pending() == 0:
            quiesced = True
            break
        tb.run(until=tb.sim.now + HEARTBEAT_NS)

    detect_ns = (
        max(mon.dead[v] for v in doomed) - t_kill
        if all(v in mon.dead for v in doomed)
        else float("inf")
    )
    ttr_ns = repl.last_done_t - t_kill if repl.schedule else float("inf")

    # redundancy + allocator audit
    md = tb.metadata
    dead_refs = 0
    for _path, lay in md.objects():
        if isinstance(lay, FileLayout):
            for e in list(lay.extents) + list(lay.parity_extents):
                if e.node in doomed:
                    dead_refs += 1
    alloc_ok = md.allocated_bytes() == md.live_layout_bytes()

    # byte audit: the static background files must have k identical
    # replicas again (only the sPIN path replicates to every extent;
    # host RPC commits the primary only, so there is nothing to compare)
    bytes_checked = 0
    bytes_ok = True
    if proto == "spin":
        for path in bg_paths:
            lay = md.lookup(path)
            for e in lay.extents:
                got = tb.node(e.node).memory.read(e.addr, BG_SIZE)
                bytes_checked += 1
                if not np.array_equal(got, bg_data):
                    bytes_ok = False

    # foreground anatomy: client writes only (traces start at the
    # protocol layer; repair writes and heartbeats carry no trace)
    fg = [op for op in decompose(tb.telemetry) if op.t0 >= t_load0 and op.ok]
    pre = [op for op in fg if op.t1 < t_kill]
    storm = [op for op in fg if op.t1 >= t_kill]
    phases = phase_summary(fg) if fg else {}

    def p99(phase: str) -> float:
        return (phases.get(phase) or {}).get("p99") or 0.0

    max_sum_err = max((abs(op.sum_error_ns) for op in fg), default=0.0)
    digest = hashlib.sha256(
        repr([dataclasses.astuple(r) for r in repl.schedule]).encode()
    ).hexdigest()[:16]

    return {
        "protocol": proto,
        "n_storage": N_STORAGE,
        "n_killed": len(doomed),
        "detected": sum(1 for v in doomed if v in mon.dead),
        "detect_ns": detect_ns,
        "ttr_ns": ttr_ns,
        "repairs": len(repl.schedule),
        "repair_bytes": repl.bytes_repaired,
        "peak_inflight": repl.peak_inflight,
        "failed_repairs": len(repl.failed_repairs),
        "fg_ops": res.ops,
        "fg_failures": res.failures,
        "fg_p99_pre_ns": summarize([o.end_to_end_ns for o in pre])["p99"] or 0.0,
        "fg_p99_storm_ns": summarize([o.end_to_end_ns for o in storm])["p99"] or 0.0,
        "wire_p99_ns": p99("wire"),
        "compute_p99_ns": p99("hpu") + p99("cpu"),
        "dma_p99_ns": p99("dma"),
        "max_sum_error_ns": max_sum_err,
        "dead_refs": dead_refs,
        "alloc_ok": alloc_ok,
        "bytes_checked": bytes_checked,
        "bytes_ok": bytes_ok,
        "schedule_digest": digest,
        "quiesced": quiesced and res.quiesced,
    }


def run(params: Optional[SimParams] = None, quick: bool = False,
        jobs: int = 1, cache: bool = False, cache_dir: Optional[str] = None,
        partitions: int = 1) -> list[dict]:
    from ..runner import run_sweep

    return run_sweep(ID, points(quick, partitions=partitions), params=params,
                     jobs=jobs, cache=cache, cache_dir_override=cache_dir)


def check(rows: list[dict]) -> None:
    for r in rows:
        proto = r["protocol"]
        shapes.check(r["quiesced"], f"{proto}: storm quiesces")
        shapes.check(
            r["detected"] == r["n_killed"],
            f"{proto}: all {r['n_killed']} lost nodes detected",
        )
        shapes.check(
            0.0 < r["detect_ns"] <= (MISS_THRESHOLD + 2) * HEARTBEAT_NS,
            f"{proto}: detection within the miss budget "
            f"({r['detect_ns']:.0f} ns)",
        )
        shapes.check(
            r["repairs"] > 0 and r["failed_repairs"] == 0,
            f"{proto}: re-replication ran clean ({r['repairs']} repairs)",
        )
        shapes.check(
            r["dead_refs"] == 0,
            f"{proto}: no live layout references a dead node",
        )
        shapes.check(r["alloc_ok"],
                     f"{proto}: allocator matches live layouts exactly")
        shapes.check(
            r["ttr_ns"] > 0.0 and r["ttr_ns"] < float("inf"),
            f"{proto}: full redundancy restored ({r['ttr_ns']:.0f} ns after the kill)",
        )
        shapes.check(
            r["fg_failures"] > 0,
            f"{proto}: the storm was visible to foreground clients "
            f"({r['fg_failures']} failed ops)",
        )
        shapes.check(
            r["fg_ops"] > 0,
            f"{proto}: surviving foreground traffic kept completing",
        )
        shapes.check(
            r["max_sum_error_ns"] <= 1.0,
            f"{proto}: anatomy decomposition is exact",
        )
        if proto == "spin":
            shapes.check(
                r["bytes_checked"] > 0 and r["bytes_ok"],
                "spin: repaired replicas are byte-identical to the payload",
            )


def render(rows: list[dict]) -> str:
    cols = ["protocol", "n_killed", "detected", "detect_ns", "ttr_ns",
            "repairs", "repair_bytes", "fg_ops", "fg_failures",
            "fg_p99_pre_ns", "fg_p99_storm_ns", "dead_refs",
            "schedule_digest", "quiesced"]
    return render_rows(rows, cols, TITLE)
