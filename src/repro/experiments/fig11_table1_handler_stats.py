"""Fig. 11 + Table I: handler running times for replicated writes.

Measured on the primary storage node under a sustained stream of
512 KiB writes (the regime of the goodput experiment) for three
configurations: plain writes (k=1), sPIN-Ring k=4 and sPIN-PBT k=4.

Table I (paper):

===========  =====  =====  =====  ====  ====  ====  =====  =====  =====
type          HH ns  PH ns  CH ns  HH i  PH i  CH i  HHipc  PHipc  CHipc
===========  =====  =====  =====  ====  ====  ====  =====  =====  =====
k=1            211     92    107   120    55    66   0.57   0.60   0.62
k=4, Ring      212    193    146   120   105    65   0.57   0.54   0.44
k=4, PBT       214   2106   1487   120   130    82   0.56   0.06   0.06
===========  =====  =====  =====  ====  ====  ====  =====  =====  =====

Instruction counts are exact inputs of the cost model; durations for
k=1 are near-exact; the ring/PBT payload-handler stretch must *emerge*
from egress contention, so those get wide tolerances.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import shapes
from ..dfs.layout import ReplicationSpec
from ..params import SimParams
from ..workloads import measure_goodput, payload_bytes
from .common import KiB, fresh_client, render_rows

ID = "fig11_table1"
TITLE = "Fig. 11 / Table I — replication handler statistics"
CLAIMS = [
    "HH ~211 ns / 120 instructions for all strategies",
    "plain-write PH ~92 ns / 55 instructions",
    "ring PH ~193 ns / 105 instructions (one forward per packet)",
    "PBT PH inflates to ~2 us with IPC ~0.06 (egress back-pressure)",
    "k=1 and ring PHs fit the 400 Gbit/s cycle budget; PBT does not",
]

CONFIGS = [("k=1", 1, "ring"), ("k=4,Ring", 4, "ring"), ("k=4,PBT", 4, "pbt")]
WRITE_BYTES = 512 * KiB


def run(params: Optional[SimParams] = None, quick: bool = False) -> list[dict]:
    rows = []
    n_ops = 6 if quick else 16
    for label, k, strategy in CONFIGS:
        tb, client = fresh_client("spin", params)
        repl = ReplicationSpec(k=k, strategy=strategy) if k > 1 else None
        client.create("/bench", size=WRITE_BYTES, replication=repl)
        data = payload_bytes(WRITE_BYTES)
        measure_goodput(
            tb,
            lambda i: client.write("/bench", data, protocol="spin"),
            n_ops=n_ops,
            op_bytes=WRITE_BYTES,
            window=8,
        )
        primary = tb.node(client.open("/bench").primary.node)
        accel = primary.accelerator
        freq = tb.params.pspin.freq_ghz
        row: dict = {"type": label}
        for htype, col in [("header", "HH"), ("payload", "PH"), ("completion", "CH")]:
            st = accel.stats[f"{htype}:dfs"]
            row[f"{col}_ns"] = st.mean_duration()
            row[f"{col}_instr"] = st.mean_instructions()
            row[f"{col}_ipc"] = st.mean_ipc(freq)
        # Fig. 11 shows *distributions*; record the PH spread too
        from ..simnet.trace import summarize

        ph = summarize(accel.stats["payload:dfs"].durations_ns)
        row["PH_p50"] = ph["median"]
        row["PH_p99"] = ph["p99"]
        rows.append(row)
    return rows


def check(rows: list[dict]) -> None:
    by = {r["type"]: r for r in rows}
    k1, ring, pbt = by["k=1"], by["k=4,Ring"], by["k=4,PBT"]
    # exact instruction counts (cost-model inputs)
    shapes.check(abs(k1["HH_instr"] - 120) < 1, "HH = 120 instructions")
    shapes.check(abs(k1["PH_instr"] - 55) < 1, "k=1 PH = 55 instructions")
    shapes.check(abs(ring["PH_instr"] - 105) < 1, "ring PH = 105 instructions")
    shapes.check(abs(pbt["PH_instr"] - 130) < 1, "pbt PH = 130 instructions")
    # calibrated durations
    shapes.assert_ratio_between(k1["HH_ns"], 211, 0.95, 1.05, "HH ~211 ns")
    shapes.assert_ratio_between(k1["PH_ns"], 92, 0.9, 1.15, "k=1 PH ~92 ns")
    shapes.assert_ratio_between(ring["PH_ns"], 193, 0.7, 1.6, "ring PH ~193 ns")
    # emergent PBT collapse
    shapes.check(pbt["PH_ns"] > 3 * ring["PH_ns"], "PBT PH >> ring PH (egress stalls)")
    shapes.check(pbt["PH_ipc"] < 0.25, f"PBT PH IPC collapses (got {pbt['PH_ipc']:.2f})")
    shapes.check(ring["PH_ipc"] > 0.4, "ring PH IPC stays healthy")
    # cycle budget at 400 Gbit/s, 2 KiB packets, 32 HPUs: ~1310 ns/handler
    budget = 32 * 2048 * 8 / 400.0
    shapes.check(ring["PH_ns"] < budget, "ring PH within 400G budget")
    shapes.check(k1["PH_ns"] < budget, "k=1 PH within 400G budget")
    shapes.check(pbt["PH_ns"] > budget / 2, "PBT PH pressures the budget")


def render(rows: list[dict]) -> str:
    cols = ["type", "HH_ns", "PH_ns", "PH_p50", "PH_p99", "CH_ns",
            "HH_instr", "PH_instr", "CH_instr", "HH_ipc", "PH_ipc", "CH_ipc"]
    disp = [{c: (round(r[c], 2) if isinstance(r[c], float) else r[c]) for c in cols} for r in rows]
    return render_rows(disp, cols, TITLE)
