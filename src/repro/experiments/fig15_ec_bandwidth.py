"""Fig. 15 (right): encoding bandwidth, sPIN-TriEC vs INEC-TriEC.

Methodology from the INEC paper (window-based):
``bandwidth = size of generated data / elapsed time`` where generated
data counts the full encoded output (k+m chunks per block).

Claims (§VI-C(b)): sPIN-TriEC is up to ~29x better at 1 KiB blocks
(INEC's per-block setup dominates) and ~3.3x at 512 KiB; sPIN bandwidth
is roughly block-size independent but shows a ~12% drop at large sizes
from NIC-memory contention.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import shapes
from ..dfs.layout import EcSpec
from ..params import SimParams
from ..workloads import measure_goodput, payload_bytes
from .common import KiB, fresh_client, render_rows, size_label

ID = "fig15_bandwidth"
TITLE = "Fig. 15 R — encoding bandwidth at 100 Gbit/s (Gbit/s of generated data)"
CLAIMS = [
    "sPIN-TriEC bandwidth is far above INEC-TriEC at small blocks (paper: 29x at 1 KiB)",
    "the advantage shrinks but persists at 512 KiB (paper: 3.3x)",
    "sPIN bandwidth is roughly size-independent, with a modest drop at large blocks",
]

SIZES = [1 * KiB, 8 * KiB, 64 * KiB, 512 * KiB]
SCHEMES = [(3, 2), (6, 3)]


def _bandwidth(protocol: str, size: int, k: int, m: int, params: SimParams, n_ops: int, window: int) -> float:
    tb, client = fresh_client(protocol, params)
    client.create("/bench", size=max(size, k), ec=EcSpec(k=k, m=m))
    data = payload_bytes(size)

    def issue(i: int):
        return client.write("/bench", data, protocol=protocol)

    res = measure_goodput(tb, issue, n_ops=n_ops, op_bytes=size, window=window)
    generated = res.bytes_completed * (k + m) / k
    return generated * 8.0 / res.elapsed_ns


def points(quick: bool = False) -> list[dict]:
    sizes = SIZES if not quick else [1 * KiB, 512 * KiB]
    return [
        {
            "k": k,
            "m": m,
            "size": size,
            "n_ops": 12 if size >= 256 * KiB else 128,
            "window": 96 if size <= 8 * KiB else 8,
        }
        for k, m in SCHEMES
        for size in sizes
    ]


def run_point(point: dict, params: Optional[SimParams] = None) -> dict:
    # The 100 Gbit/s scaling happens here, not in run(): run_sweep hands
    # workers (and the cache key) the caller's raw params.
    p = (params or SimParams()).scaled_network(100.0)
    k, m, size = point["k"], point["m"], point["size"]
    n_ops, window = point["n_ops"], point["window"]
    spin = _bandwidth("spin", size, k, m, p, n_ops, window)
    inec = _bandwidth("inec", size, k, m, p, n_ops, window)
    return {
        "scheme": f"RS({k},{m})",
        "size": size,
        "size_label": size_label(size),
        "spin-triec": spin,
        "inec-triec": inec,
        "ratio": spin / inec,
    }


def run(params: Optional[SimParams] = None, quick: bool = False,
        jobs: int = 1, cache: bool = False, cache_dir: Optional[str] = None) -> list[dict]:
    from ..runner import run_sweep

    return run_sweep(ID, points(quick), params=params, jobs=jobs,
                     cache=cache, cache_dir_override=cache_dir)


def check(rows: list[dict]) -> None:
    for k, m in SCHEMES:
        sub = {r["size"]: r for r in rows if r["scheme"] == f"RS({k},{m})"}
        sizes = sorted(sub)
        small, large = sub[sizes[0]], sub[sizes[-1]]
        shapes.check(
            10.0 <= small["ratio"] <= 70.0,
            f"RS({k},{m}): order-of-magnitude sPIN advantage at small blocks "
            f"(paper: 29x; got {small['ratio']:.1f}x)",
        )
        shapes.check(
            1.4 <= large["ratio"] <= 6.0,
            f"RS({k},{m}): advantage persists at 512 KiB (paper: 3.3x; got {large['ratio']:.1f}x)",
        )
        shapes.check(
            small["ratio"] > large["ratio"],
            f"RS({k},{m}): INEC amortizes its per-block overhead with size",
        )
        # sPIN bandwidth varies far less with block size than INEC's
        # (deviation note: our per-packet fixed handler cost makes small
        # blocks cheaper to ship but costlier per byte, see EXPERIMENTS.md)
        spins = [sub[s]["spin-triec"] for s in sizes]
        inecs = [sub[s]["inec-triec"] for s in sizes]
        spin_spread = max(spins) / min(spins)
        inec_spread = max(inecs) / min(inecs)
        shapes.check(
            spin_spread < inec_spread / 3,
            f"RS({k},{m}): sPIN bandwidth far flatter than INEC "
            f"(spread {spin_spread:.1f}x vs {inec_spread:.1f}x)",
        )


def render(rows: list[dict]) -> str:
    return render_rows(
        rows, ["scheme", "size_label", "spin-triec", "inec-triec", "ratio"], TITLE
    )
