"""The PsPIN on-NIC packet processor (transaction-level model).

Per-packet pipeline, timed per Fig. 7 (2 KiB packet):

1. copy into the NIC packet buffer        — 32 cycles (64 B/cycle)
2. hardware scheduler picks a cluster     — 2 cycles
3. copy into the cluster's L1             — 43 cycles (≈48 B/cycle)
4. dispatch onto an idle HPU              — 1 ns
5. handler execution                      — cost model + waits

Handler ordering per message follows sPIN's contract (§II-B1, §III-B):
the header handler (HH) runs on the first packet and *completes* before
any payload handler (PH) of the same message starts; PHs run on every
packet, concurrently across HPUs; the completion handler (CH) runs once
all packets are processed.  Handlers of one message run in one cluster
(their shared state lives in that cluster's L1).

Two emergent effects the model must produce (not hard-code):

* **egress stalls** — handlers that forward packets block until the NIC
  egress port transmits them; under PBT replication each incoming packet
  begets two outgoing ones, the port saturates, and PH occupancy
  stretches to ~2 µs with IPC ~0.06 (Table I);
* **L1 contention** — memory-intensive handlers (the GF encode loop) see
  a CPI penalty growing with concurrently active HPUs in their cluster,
  producing the ~12 % EC throughput drop at high utilisation (§VI-C(b)).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from ..params import PsPinParams

if TYPE_CHECKING:  # pragma: no cover — avoids a core<->pspin import cycle
    from ..core.context import ExecutionContext
from ..simnet.engine import Event, Simulator
from ..simnet.packet import Packet
from ..simnet.resources import Resource

__all__ = ["PsPinAccelerator", "HandlerApi", "HandlerStats"]


@dataclass
class HandlerStats:
    """Per-handler-type measurements (drives Tables I/II, Figs. 11/16)."""

    durations_ns: List[float] = field(default_factory=list)
    instructions: List[int] = field(default_factory=list)

    def record(self, duration_ns: float, instructions: int) -> None:
        self.durations_ns.append(duration_ns)
        self.instructions.append(instructions)

    @property
    def n(self) -> int:
        return len(self.durations_ns)

    def mean_duration(self) -> float:
        return sum(self.durations_ns) / self.n if self.n else 0.0

    def mean_instructions(self) -> float:
        return sum(self.instructions) / self.n if self.n else 0.0

    def mean_ipc(self, freq_ghz: float) -> float:
        """IPC as the paper reports it: instructions / (duration * freq)."""
        d = self.mean_duration()
        return self.mean_instructions() / (d * freq_ghz) if d > 0 else 0.0


class _Cluster:
    def __init__(self, sim: Simulator, idx: int, params: PsPinParams):
        self.idx = idx
        self.hpus = Resource(sim, params.hpus_per_cluster, name=f"cluster{idx}.hpus")
        self.active = 0  # handlers currently in their compute phase


class _MessageRun:
    """Book-keeping for one in-flight message's handler executions."""

    __slots__ = (
        "msg_id",
        "ctx",
        "cluster",
        "task",
        "hh_done",
        "phs_done",
        "expected",
        "ph_seqs",
        "completion_seen",
        "dma_events",
        "last_activity",
        "finished",
        "trace",
    )

    def __init__(self, sim: Simulator, msg_id: int, ctx: "ExecutionContext", cluster: int):
        from ..core.context import Task  # deferred: core imports pspin.isa

        self.msg_id = msg_id
        self.ctx = ctx
        self.cluster = cluster
        self.task = Task(ctx=ctx, flow_id=msg_id, cluster=cluster)
        self.hh_done: Event = sim.event(name=f"hh_done({msg_id})")
        self.phs_done: Event = sim.event(name=f"phs_done({msg_id})")
        self.expected: Optional[int] = None
        #: distinct packet seqs whose payload handler finished — a set,
        #: not a counter: under retransmission, duplicate packets must
        #: not stand in for a seq that never arrived
        self.ph_seqs: set = set()
        self.completion_seen = False
        self.dma_events: List[Event] = []
        self.last_activity = 0.0
        self.finished = False
        self.trace = None  # request TraceContext (telemetry)


class HandlerApi:
    """What a running handler may do (the sPIN device API)."""

    def __init__(self, accel: "PsPinAccelerator", run: _MessageRun):
        self._accel = accel
        self._run = run

    @property
    def now(self) -> float:
        return self._accel.sim.now

    @property
    def sim(self) -> Simulator:
        return self._accel.sim

    def send(self, pkt: Packet) -> Event:
        """Forward a packet out of the NIC.

        The returned event fires when the egress command queue *accepts*
        the packet.  While egress keeps up with the handler's output the
        wait is ~0; when handlers amplify traffic (PBT: two packets out
        per packet in) the queue saturates and handlers stall here —
        the back-pressure behind Table I's PBT numbers.
        """
        self._accel.forwarded_packets += 1
        return self._accel._egress.put(pkt)

    def send_control(self, dst: str, op: str, headers: dict, msg_id: Optional[int] = None) -> Event:
        """Emit a small control packet (ack / nack)."""
        from ..simnet.packet import fresh_msg_id

        pkt = Packet(
            src=self._accel.node_name,
            dst=dst,
            op=op,
            msg_id=fresh_msg_id() if msg_id is None else msg_id,
            seq=0,
            nseq=1,
            payload=None,
            headers=headers,
            header_bytes=16,
            trace=self._run.trace,
        )
        return self._accel._egress.put(pkt)

    def dma_write(self, addr: int, payload: np.ndarray) -> Event:
        """Write payload bytes to the host storage target via PCIe.

        Non-blocking: returns the flush event.  The data is visible in
        host memory only when the event fires — exactly the persistence
        subtlety of §III-B1.  The event is tracked in the message run so
        the completion handler can wait for all flushes before acking.
        """
        ev = self._accel.dma_fn(addr, payload)
        self._run.dma_events.append(ev)
        tel = self._accel.sim.telemetry
        if tel.enabled:
            # The host-commit span covers issue -> durability (PCIe
            # crossing plus, for NVMe backends, the flash program).
            span = tel.begin(
                f"commit {int(payload.nbytes)}B",
                pid=f"host:{self._accel.node_name}",
                tid="commit",
                t0=self._accel.sim.now,
                cat="host",
                trace=self._run.trace,
                args={"addr": addr, "bytes": int(payload.nbytes)},
            )
            sim = self._accel.sim
            ev.add_callback(lambda _e, s=span: tel.end(s, sim.now))
        return ev

    def dma_timing(self, nbytes: int) -> Event:
        """Charge a PCIe crossing of ``nbytes`` with no functional write
        (used by the CPU-fallback aggregation path, §VI-B3)."""
        ev = self._accel.dma_fn(None, nbytes)
        self._run.dma_events.append(ev)
        return ev

    def host_write(self, addr: int, payload: np.ndarray) -> None:
        """Functional write performed by the host CPU (data already in
        host memory; no PCIe charge)."""
        self._accel.host_write_fn(addr, payload)

    def all_dma_flushed(self) -> Event:
        """Event firing when every DMA issued for this message is durable."""
        sim = self._accel.sim
        pending = [e for e in self._run.dma_events if not e.triggered]
        if not pending:
            ev = sim.event()
            ev.succeed(None)
            return ev
        return sim.all_of(pending)

    def compute(self, cycles: float) -> Event:
        """Charge extra compute cycles (rare; costs normally come from
        Handler.cost)."""
        return self._accel.sim.timeout(cycles * self._accel.params.cycle_ns)

    def host_exec(self, duration_ns: float) -> Event:
        """Run work on the host CPU (the CPU-fallback path of §VI-B3).

        Returns an event firing when a host core has executed
        ``duration_ns`` of work on the accelerator's behalf.
        """
        fn = self._accel.host_exec_fn
        if fn is None:
            return self._accel.sim.timeout(duration_ns)
        return fn(duration_ns)

    def host_read(self, addr: int, length: int):
        """Functional read of the storage target (the timing of the PCIe
        fetch must be charged separately via :meth:`dma_timing`)."""
        return self._accel.host_read_fn(addr, length)


class PsPinAccelerator:
    """One storage-node NIC's PsPIN engine."""

    def __init__(
        self,
        sim: Simulator,
        params: PsPinParams,
        node_name: str,
        send_fn: Callable[[Packet], Event],
        dma_fn: Callable[[Optional[int], object], Event],
        host_exec_fn: Optional[Callable[[float], Event]] = None,
        host_write_fn: Optional[Callable[[int, np.ndarray], None]] = None,
        host_read_fn: Optional[Callable[[int, int], np.ndarray]] = None,
    ):
        self.sim = sim
        self.params = params
        self.node_name = node_name
        self.send_fn = send_fn
        self.dma_fn = dma_fn
        self.host_exec_fn = host_exec_fn
        self.host_write_fn = host_write_fn or (lambda addr, payload: None)
        self.host_read_fn = host_read_fn or (
            lambda addr, length: np.zeros(length, dtype=np.uint8)
        )
        # Handler sends go through a shallow egress command queue drained
        # at line rate: handlers block only while the queue is full —
        # negligible for ring forwarding (1 out per 1 in), dominant for
        # PBT (2 out per 1 in), which is what collapses PBT PH IPC.
        from ..simnet.resources import Store

        self._egress: Store = Store(
            sim, capacity=params.egress_credits, name=f"{node_name}.accel-egress"
        )
        sim.process(self._egress_pump(), name=f"{node_name}.accel-egress")
        self.clusters = [_Cluster(sim, i, params) for i in range(params.n_clusters)]
        self.contexts: List[ExecutionContext] = []
        self._runs: Dict[int, _MessageRun] = {}
        self._next_cluster = 0
        self.stats: Dict[str, HandlerStats] = defaultdict(HandlerStats)
        #: (htype, ctx_name) -> HandlerStats — avoids rebuilding the
        #: "htype:ctx" key string on every handler execution
        self._stats_memo: Dict[tuple, HandlerStats] = {}
        from ..telemetry.metrics import HandleCache

        self._handles = HandleCache(
            lambda m: {
                "busy": m.counter(f"pspin.{node_name}.hpu_busy_ns"),
                "ingested": m.counter(f"pspin.{node_name}.packets_ingested"),
                "queued": m.gauge(f"pspin.{node_name}.ingress_queued"),
                "nacks": m.counter(f"pspin.{node_name}.overload_nacks"),
                "active": [
                    m.gauge(f"pspin.{node_name}.cluster{i}.active")
                    for i in range(params.n_clusters)
                ],
                # per-htype instruments materialize on first use so an
                # htype that never runs (e.g. cleanup) creates nothing
                "inv": {},
                "lat": {},
            }
        )
        # counters
        self.packets_processed = 0
        self.packets_dropped = 0
        self.packets_steered = 0
        self._overloaded: set[int] = set()
        self._admitted: set[int] = set()
        self.forwarded_packets = 0
        self.nacks_sent = 0
        self._queued = 0
        self._cleanup_proc = None

    def _egress_pump(self):
        """Drain the handler egress queue at line rate (one in-flight
        transmission at a time, like a DMA engine feeding the wire)."""
        while True:
            pkt = yield self._egress.get()
            yield self.send_fn(pkt)

    # ----------------------------------------------------------- contexts
    def install(self, ctx: ExecutionContext) -> None:
        """Install a persistent execution context (user-level, §III-C)."""
        self.contexts.append(ctx)
        if ctx.hpu_quota is not None:
            ctx._quota_sem = Resource(
                self.sim,
                min(ctx.hpu_quota, self.params.n_hpus),
                name=f"{self.node_name}.quota.{ctx.name}",
            )
        if self._cleanup_proc is None and ctx.handlers.cleanup is not None:
            self._cleanup_proc = self.sim.process(
                self._cleanup_sweeper(), name=f"{self.node_name}.cleanup"
            )

    def match(self, pkt: Packet) -> Optional[ExecutionContext]:
        for ctx in self.contexts:
            if ctx.matches(pkt):
                return ctx
        return None

    # ------------------------------------------------------------- ingest
    def ingest(self, pkt: Packet) -> bool:
        """Offer a packet to the accelerator.

        Returns False when no context matches (the packet then takes the
        NIC's default path).  When a context matches but the accelerator
        cannot keep up (ingress queue full, §III-C), the *message* is
        denied: the header packet is NACK'd so the client retries later,
        and its remaining packets are dropped — matching the paper's
        handling of resource exhaustion (§III-B2).
        """
        ctx = self.match(pkt)
        if ctx is None:
            return False
        # Admission control is per *message* (§III-C): the decision is
        # taken on the header packet; later packets of an admitted
        # message are always processed, later packets of a denied
        # message are always dropped.
        if pkt.msg_id in self._overloaded:
            self.packets_steered += 1
            if pkt.is_completion:
                self._overloaded.discard(pkt.msg_id)
            return True
        # NOTE: retransmitted packets of a live message are deliberately
        # re-run, not dropped — forwarding policies (replication, EC,
        # log) must regenerate child streams so a downstream node that
        # lost a forwarded packet can fill its gap.  Handlers are
        # idempotent (same-address DMA, policy-level duplicate memos),
        # so re-execution only costs HPU cycles, like real retransmits.
        if (
            pkt.msg_id not in self._admitted
            and self._queued >= self.params.ingress_queue_packets
            and pkt.is_header
        ):
            self.packets_steered += 1
            if not pkt.is_completion:
                self._overloaded.add(pkt.msg_id)
            dfs = pkt.headers.get("dfs")
            reply = (dfs.reply_to if dfs is not None else None) or pkt.src
            greq = dfs.greq_id if dfs is not None else pkt.headers.get("greq_id")
            self.nacks_sent += 1
            tel = self.sim.telemetry
            if tel.enabled:
                self._handles.get(tel.metrics)["nacks"].inc()
            self.send_fn(
                Packet(
                    src=self.node_name,
                    dst=reply,
                    op="nack",
                    msg_id=pkt.msg_id,
                    seq=0,
                    nseq=1,
                    headers={"ack_for": greq, "reason": "overload"},
                    header_bytes=16,
                )
            )
            return True
        if pkt.is_header and not pkt.is_completion:
            self._admitted.add(pkt.msg_id)
        if pkt.is_completion:
            self._admitted.discard(pkt.msg_id)
        self._queued += 1
        tel = self.sim.telemetry
        if tel.enabled:
            h = self._handles.get(tel.metrics)
            h["ingested"].inc()
            h["queued"].set(self.sim.now, self._queued)
        self.sim.process(self._pipeline(ctx, pkt))
        return True

    # ------------------------------------------------------------ pipeline
    def _pipeline(self, ctx: ExecutionContext, pkt: Packet):
        sim = self.sim
        p = self.params
        cyc = p.cycle_ns
        # 1+2. packet buffer copy, then the hardware scheduler pick —
        # strictly sequential with nothing observable in between, so one
        # fused timeout covers both stages (same timestamps, one event).
        yield sim.timeout(
            (-(-pkt.size // p.pkt_buffer_bytes_per_cycle) + p.sched_cycles) * cyc
        )
        run = self._runs.get(pkt.msg_id)
        if run is None:
            # Any packet may open the run: handler-forwarded streams can
            # arrive slightly reordered (concurrent payload handlers race
            # for the upstream egress queue), so a payload packet may beat
            # its header here.  Its pipeline simply parks on ``hh_done``
            # until the header handler has run.
            cluster = self._next_cluster
            self._next_cluster = (self._next_cluster + 1) % p.n_clusters
            run = _MessageRun(sim, pkt.msg_id, ctx, cluster)
            self._runs[pkt.msg_id] = run
        if run.trace is None and pkt.trace is not None:
            run.trace = pkt.trace
        run.expected = pkt.nseq
        run.last_activity = sim.now
        # Packet-level parallelism (§II-B1): payload packets of one
        # message spread over ALL clusters' HPUs (the Fig. 16 budget
        # model assumes every HPU shares a message's packets); the
        # message's request state lives in its home cluster's L1.
        exec_cluster = self._next_cluster
        self._next_cluster = (self._next_cluster + 1) % p.n_clusters
        # 3. copy into cluster L1
        yield sim.timeout(-(-pkt.size // p.l1_copy_bytes_per_cycle) * cyc)
        self._queued -= 1
        self.packets_processed += 1

        if pkt.is_header:
            yield from self._exec(run, "header", pkt, run.cluster)
            if not run.hh_done.triggered:
                run.hh_done.succeed(None)
        elif not run.hh_done.triggered:
            yield run.hh_done

        if run.finished:
            self.packets_dropped += 1
            return

        if pkt.is_completion:
            run.completion_seen = True

        yield from self._exec(run, "payload", pkt, exec_cluster)
        run.ph_seqs.add(pkt.seq)
        run.last_activity = sim.now
        if (
            run.completion_seen
            and run.expected is not None
            and len(run.ph_seqs) >= run.expected
            and not run.phs_done.triggered
        ):
            run.phs_done.succeed(None)

        if pkt.is_completion:
            if not run.phs_done.triggered:
                yield run.phs_done
            if run.finished:
                # the cleanup sweeper gave up on this message while we
                # were parked on phs_done
                self.packets_dropped += 1
                return
            yield from self._exec(run, "completion", pkt, run.cluster)
            self._finish(run)

    def _exec(self, run: _MessageRun, htype: str, pkt: Packet, cluster_idx: Optional[int] = None):
        """Run one handler on an HPU of the given (or home) cluster."""
        sim = self.sim
        p = self.params
        handler = getattr(run.ctx.handlers, htype)
        cluster = self.clusters[run.cluster if cluster_idx is None else cluster_idx]
        quota = run.ctx._quota_sem
        qreq = None
        if quota is not None:
            # per-tenant HPU quota (§VII cloud QoS): a context may not
            # occupy more than its share of the HPU pool
            qreq = quota.request()
            yield qreq
        req = cluster.hpus.request()
        yield req
        yield sim.timeout(p.hpu_dispatch_ns)
        t0 = sim.now
        tel = sim.telemetry
        cluster.active += 1
        if tel.enabled:
            self._handles.get(tel.metrics)["active"][cluster.idx].set(
                sim.now, cluster.active
            )
        try:
            cost = handler.cost(run.task, pkt)
            contention = 1.0 + p.l1_contention_per_hpu * max(0, cluster.active - 1)
            yield sim.timeout(cost.compute_ns(p.freq_ghz, contention))
            gen = handler.run(HandlerApi(self, run), run.task, pkt)
            if gen is not None:
                yield from gen
        finally:
            cluster.active -= 1
            cluster.hpus.release(req)
            if quota is not None:
                quota.release(qreq)
        self._record_stats(htype, run.ctx.name, sim.now - t0, cost.instructions)
        if tel.enabled:
            dur = sim.now - t0
            tel.span(
                f"{htype}:{run.ctx.name} m{run.msg_id}",
                pid=f"pspin:{self.node_name}",
                tid=f"cluster{cluster.idx}",
                t0=t0,
                t1=sim.now,
                cat="hpu",
                trace=run.trace,
                args={"instructions": cost.instructions, "handler": htype},
            )
            h = self._handles.get(tel.metrics)
            h["busy"].inc(dur)
            inv = h["inv"].get(htype)
            if inv is None:
                m = tel.metrics
                inv = h["inv"][htype] = m.counter(
                    f"pspin.{self.node_name}.handler.{htype}.invocations"
                )
                h["lat"][htype] = m.histogram(
                    f"pspin.{self.node_name}.handler.{htype}.latency_ns"
                )
            inv.inc()
            h["lat"][htype].observe(dur)
            h["active"][cluster.idx].set(sim.now, cluster.active)

    def _finish(self, run: _MessageRun) -> None:
        run.finished = True
        self._runs.pop(run.msg_id, None)

    # ------------------------------------------------------------- cleanup
    def _cleanup_sweeper(self):
        """Fire cleanup handlers for messages inactive beyond the
        timeout (§VII: clients failing mid-write leave dangling state)."""
        sim = self.sim
        period = self.params.cleanup_timeout_ns / 2
        while True:
            yield sim.timeout(period)
            deadline = sim.now - self.params.cleanup_timeout_ns
            stale = [
                run
                for run in self._runs.values()
                if run.last_activity <= deadline and not run.finished
            ]
            for run in stale:
                yield from self._exec_cleanup(run)

    def _exec_cleanup(self, run: _MessageRun):
        handler = run.ctx.handlers.cleanup
        if handler is None:
            self._finish(run)
            return
        sim = self.sim
        cluster = self.clusters[run.cluster]
        req = cluster.hpus.request()
        yield req
        t0 = sim.now
        try:
            cost = handler.cost(run.task, None)
            yield sim.timeout(cost.compute_ns(self.params.freq_ghz))
            gen = handler.run(HandlerApi(self, run), run.task, None)
            if gen is not None:
                yield from gen
        finally:
            cluster.hpus.release(req)
        self._record_stats("cleanup", run.ctx.name, sim.now - t0, cost.instructions)
        # Release every pipeline parked on this run's gates, or packets
        # that arrived before the sweep stay blocked forever.
        if not run.hh_done.triggered:
            run.hh_done.succeed(None)
        if not run.phs_done.triggered:
            run.phs_done.succeed(None)
        self._finish(run)

    # --------------------------------------------------------------- stats
    def _record_stats(
        self, htype: str, ctx_name: str, duration_ns: float, instructions: int
    ) -> None:
        key = (htype, ctx_name)
        st = self._stats_memo.get(key)
        if st is None:
            st = self._stats_memo[key] = self.stats[f"{htype}:{ctx_name}"]
        st.record(duration_ns, instructions)

    def stats_for(self, htype: str, ctx_name: str) -> HandlerStats:
        return self.stats[f"{htype}:{ctx_name}"]

    def hpu_utilisation(self) -> float:
        return sum(c.hpus.utilisation() for c in self.clusters) / len(self.clusters)

    @property
    def in_flight_messages(self) -> int:
        return len(self._runs)
