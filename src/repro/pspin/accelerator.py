"""The PsPIN on-NIC packet processor (transaction-level model).

Per-packet pipeline, timed per Fig. 7 (2 KiB packet):

1. copy into the NIC packet buffer        — 32 cycles (64 B/cycle)
2. hardware scheduler picks a cluster     — 2 cycles
3. copy into the cluster's L1             — 43 cycles (≈48 B/cycle)
4. dispatch onto an idle HPU              — 1 ns
5. handler execution                      — cost model + waits

Handler ordering per message follows sPIN's contract (§II-B1, §III-B):
the header handler (HH) runs on the first packet and *completes* before
any payload handler (PH) of the same message starts; PHs run on every
packet, concurrently across HPUs; the completion handler (CH) runs once
all packets are processed.  Handlers of one message run in one cluster
(their shared state lives in that cluster's L1).

Two emergent effects the model must produce (not hard-code):

* **egress stalls** — handlers that forward packets block until the NIC
  egress port transmits them; under PBT replication each incoming packet
  begets two outgoing ones, the port saturates, and PH occupancy
  stretches to ~2 µs with IPC ~0.06 (Table I);
* **L1 contention** — memory-intensive handlers (the GF encode loop) see
  a CPI penalty growing with concurrently active HPUs in their cluster,
  producing the ~12 % EC throughput drop at high utilisation (§VI-C(b)).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from ..params import PsPinParams

if TYPE_CHECKING:  # pragma: no cover — avoids a core<->pspin import cycle
    from ..core.context import ExecutionContext
from ..simnet.engine import Event, SimulationError, Simulator
from ..simnet.packet import Packet
from ..simnet.resources import Resource

__all__ = ["PsPinAccelerator", "HandlerApi", "HandlerStats"]


@dataclass
class HandlerStats:
    """Per-handler-type measurements (drives Tables I/II, Figs. 11/16)."""

    durations_ns: List[float] = field(default_factory=list)
    instructions: List[int] = field(default_factory=list)

    def record(self, duration_ns: float, instructions: int) -> None:
        self.durations_ns.append(duration_ns)
        self.instructions.append(instructions)

    @property
    def n(self) -> int:
        return len(self.durations_ns)

    def mean_duration(self) -> float:
        return sum(self.durations_ns) / self.n if self.n else 0.0

    def mean_instructions(self) -> float:
        return sum(self.instructions) / self.n if self.n else 0.0

    def mean_ipc(self, freq_ghz: float) -> float:
        """IPC as the paper reports it: instructions / (duration * freq)."""
        d = self.mean_duration()
        return self.mean_instructions() / (d * freq_ghz) if d > 0 else 0.0


class _Cluster:
    def __init__(self, sim: Simulator, idx: int, params: PsPinParams):
        self.idx = idx
        self.hpus = Resource(sim, params.hpus_per_cluster, name=f"cluster{idx}.hpus")
        self.active = 0  # handlers currently in their compute phase


class _MessageRun:
    """Book-keeping for one in-flight message's handler executions."""

    __slots__ = (
        "msg_id",
        "ctx",
        "cluster",
        "task",
        "hh_done",
        "phs_done",
        "expected",
        "ph_seqs",
        "completion_seen",
        "dma_events",
        "last_activity",
        "finished",
        "trace",
        "api",
    )

    def __init__(self, sim: Simulator, msg_id: int, ctx: "ExecutionContext", cluster: int):
        from ..core.context import Task  # deferred: core imports pspin.isa

        self.msg_id = msg_id
        self.ctx = ctx
        self.cluster = cluster
        self.task = Task(ctx=ctx, flow_id=msg_id, cluster=cluster)
        self.hh_done: Event = sim.event(name=f"hh_done({msg_id})")
        self.phs_done: Event = sim.event(name=f"phs_done({msg_id})")
        self.expected: Optional[int] = None
        #: distinct packet seqs whose payload handler finished — a set,
        #: not a counter: under retransmission, duplicate packets must
        #: not stand in for a seq that never arrived
        self.ph_seqs: set = set()
        self.completion_seen = False
        self.dma_events: List[Event] = []
        self.last_activity = 0.0
        self.finished = False
        self.trace = None  # request TraceContext (telemetry)
        self.api = None  # memoized HandlerApi (one per run is enough)


class _AccelTrain:
    """Pacing state for one coalesced train inside the accelerator.

    The per-packet pipeline of an uncontended, straight-line message is a
    closed form: F1 (packet buffer + scheduler) and F2 (L1 copy) depend
    only on packet size; payload handlers gate on the header handler's
    completion and their dispatch/compute times follow from it.  The
    ``agenda`` holds ``(time, index, rank)`` entries for every per-packet
    effect; ranks order same-instant effects of one packet:

    0 ``in``   NIC rx + ingest accounting        (arrival + nic_rx)
    1 ``f1``   run bookkeeping + cluster pick    (F1 end)
    2 ``s2``   leaves the ingress queue          (F2 end)
    3 ``gate`` completion_seen flips             (hh resume point; completion only)
    4 ``act``  HPU dispatch done, compute begins (t0)
    5 ``done`` handler completes: DMA + stats    (e)

    Pure-state entries are applied lazily (the driver only wakes at
    ``done`` times, where real side effects — DMA posts — must run at the
    exact simulated instant).  ``stage[j]`` records how far packet ``j``
    got, so an interrupt can materialize each packet back into the real
    per-packet pipeline at precisely the right point.
    """

    __slots__ = (
        "wire", "ctx", "nic", "pkts", "msg_id", "run",
        "t_in", "f1", "s2", "cl", "g", "t0", "e", "cost",
        "agenda", "ptr", "stage", "built", "dead",
    )

    def __init__(self, wire, ctx, nic, t_in, f1, s2):
        self.wire = wire          # the wire-level PacketTrain (carries cut)
        self.ctx = ctx
        self.nic = nic
        self.pkts = wire.pkts
        self.msg_id = self.pkts[0].msg_id
        self.run: Optional[_MessageRun] = None
        self.t_in = t_in          # NIC dispatch time, per packet
        self.f1 = f1              # packet buffer + scheduler done
        self.s2 = s2              # L1 copy done
        n = len(self.pkts)
        self.cl = [0] * n         # exec cluster (filled at 'f1')
        self.g: Optional[list] = None    # HPU grant time (part B)
        self.t0: Optional[list] = None   # compute start
        self.e: Optional[list] = None    # handler end
        self.cost: Optional[list] = None
        self.agenda: list = []
        self.ptr = 0
        self.stage = [0] * n      # 0 none,1 in,2 f1,3 s2,4 gate,5 act,6 done
        self.built = False        # part B (g/t0/e) computed at hh time
        self.dead = False


class HandlerApi:
    """What a running handler may do (the sPIN device API)."""

    #: logical time override used when a paced train replays a handler
    #: after the fact — the handler must still see its true finish time
    _vnow: Optional[float] = None

    def __init__(self, accel: "PsPinAccelerator", run: _MessageRun):
        self._accel = accel
        self._run = run

    @property
    def now(self) -> float:
        v = self._vnow
        return self._accel.sim.now if v is None else v

    @property
    def sim(self) -> Simulator:
        return self._accel.sim

    def send(self, pkt: Packet) -> Event:
        """Forward a packet out of the NIC.

        The returned event fires when the egress command queue *accepts*
        the packet.  While egress keeps up with the handler's output the
        wait is ~0; when handlers amplify traffic (PBT: two packets out
        per packet in) the queue saturates and handlers stall here —
        the back-pressure behind Table I's PBT numbers.
        """
        self._accel.forwarded_packets += 1
        return self._accel._egress.put(pkt)

    def send_control(self, dst: str, op: str, headers: dict, msg_id: Optional[int] = None) -> Event:
        """Emit a small control packet (ack / nack)."""
        from ..simnet.packet import fresh_msg_id

        pkt = Packet(
            src=self._accel.node_name,
            dst=dst,
            op=op,
            msg_id=fresh_msg_id() if msg_id is None else msg_id,
            seq=0,
            nseq=1,
            payload=None,
            headers=headers,
            header_bytes=16,
            trace=self._run.trace,
        )
        return self._accel._egress.put(pkt)

    def dma_write(self, addr: int, payload: np.ndarray) -> Event:
        """Write payload bytes to the host storage target via PCIe.

        Non-blocking: returns the flush event.  The data is visible in
        host memory only when the event fires — exactly the persistence
        subtlety of §III-B1.  The event is tracked in the message run so
        the completion handler can wait for all flushes before acking.
        """
        ev = self._accel.dma_fn(addr, payload)
        self._run.dma_events.append(ev)
        tel = self._accel.sim.telemetry
        if tel.enabled:
            # The host-commit span covers issue -> durability (PCIe
            # crossing plus, for NVMe backends, the flash program).
            span = tel.begin(
                f"commit {int(payload.nbytes)}B",
                pid=f"host:{self._accel.node_name}",
                tid="commit",
                t0=self._accel.sim.now,
                cat="host",
                trace=self._run.trace,
                args={"addr": addr, "bytes": int(payload.nbytes)},
                phase="dma",
            )
            sim = self._accel.sim
            ev.add_callback(lambda _e, s=span: tel.end(s, sim.now))
        return ev

    def dma_timing(self, nbytes: int) -> Event:
        """Charge a PCIe crossing of ``nbytes`` with no functional write
        (used by the CPU-fallback aggregation path, §VI-B3)."""
        ev = self._accel.dma_fn(None, nbytes)
        self._run.dma_events.append(ev)
        return ev

    def host_write(self, addr: int, payload: np.ndarray) -> None:
        """Functional write performed by the host CPU (data already in
        host memory; no PCIe charge)."""
        self._accel.host_write_fn(addr, payload)

    def all_dma_flushed(self) -> Event:
        """Event firing when every DMA issued for this message is durable."""
        sim = self._accel.sim
        pending = [e for e in self._run.dma_events if not e.triggered]
        if not pending:
            ev = sim.event()
            ev.succeed(None)
            return ev
        return sim.all_of(pending)

    def compute(self, cycles: float) -> Event:
        """Charge extra compute cycles (rare; costs normally come from
        Handler.cost)."""
        return self._accel.sim.timeout(cycles * self._accel.params.cycle_ns)

    def host_exec(self, duration_ns: float) -> Event:
        """Run work on the host CPU (the CPU-fallback path of §VI-B3).

        Returns an event firing when a host core has executed
        ``duration_ns`` of work on the accelerator's behalf.
        """
        fn = self._accel.host_exec_fn
        if fn is None:
            return self._accel.sim.timeout(duration_ns)
        return fn(duration_ns)

    def host_read(self, addr: int, length: int):
        """Functional read of the storage target (the timing of the PCIe
        fetch must be charged separately via :meth:`dma_timing`)."""
        return self._accel.host_read_fn(addr, length)


class PsPinAccelerator:
    """One storage-node NIC's PsPIN engine."""

    def __init__(
        self,
        sim: Simulator,
        params: PsPinParams,
        node_name: str,
        send_fn: Callable[[Packet], Event],
        dma_fn: Callable[[Optional[int], object], Event],
        host_exec_fn: Optional[Callable[[float], Event]] = None,
        host_write_fn: Optional[Callable[[int, np.ndarray], None]] = None,
        host_read_fn: Optional[Callable[[int, int], np.ndarray]] = None,
    ):
        self.sim = sim
        self.params = params
        self.node_name = node_name
        self.send_fn = send_fn
        self.dma_fn = dma_fn
        self.host_exec_fn = host_exec_fn
        self.host_write_fn = host_write_fn or (lambda addr, payload: None)
        self.host_read_fn = host_read_fn or (
            lambda addr, length: np.zeros(length, dtype=np.uint8)
        )
        # Handler sends go through a shallow egress command queue drained
        # at line rate: handlers block only while the queue is full —
        # negligible for ring forwarding (1 out per 1 in), dominant for
        # PBT (2 out per 1 in), which is what collapses PBT PH IPC.
        from ..simnet.resources import Store

        self._egress: Store = Store(
            sim, capacity=params.egress_credits, name=f"{node_name}.accel-egress"
        )
        sim.process(self._egress_pump(), name=f"{node_name}.accel-egress")
        self.clusters = [_Cluster(sim, i, params) for i in range(params.n_clusters)]
        self.contexts: List[ExecutionContext] = []
        self._runs: Dict[int, _MessageRun] = {}
        self._next_cluster = 0
        self.stats: Dict[str, HandlerStats] = defaultdict(HandlerStats)
        #: (htype, ctx_name) -> HandlerStats — avoids rebuilding the
        #: "htype:ctx" key string on every handler execution
        self._stats_memo: Dict[tuple, HandlerStats] = {}
        from ..telemetry.metrics import HandleCache

        self._handles = HandleCache(
            lambda m: {
                "busy": m.counter(f"pspin.{node_name}.hpu_busy_ns"),
                "ingested": m.counter(f"pspin.{node_name}.packets_ingested"),
                "queued": m.gauge(f"pspin.{node_name}.ingress_queued"),
                "nacks": m.counter(f"pspin.{node_name}.overload_nacks"),
                "active": [
                    m.gauge(f"pspin.{node_name}.cluster{i}.active")
                    for i in range(params.n_clusters)
                ],
                # per-htype instruments materialize on first use so an
                # htype that never runs (e.g. cleanup) creates nothing
                "inv": {},
                "lat": {},
            }
        )
        # counters
        self.packets_processed = 0
        self.packets_dropped = 0
        self.packets_steered = 0
        self._overloaded: set[int] = set()
        self._admitted: set[int] = set()
        self.forwarded_packets = 0
        self.nacks_sent = 0
        self._queued = 0
        self._cleanup_proc = None
        #: active paced packet train, if any (see ingest_train)
        self._train: Optional[_AccelTrain] = None
        #: issue time of the handler currently being replayed by a train
        #: commit — threaded to the host DMA channel so late replays post
        #: with their true times (None outside commits)
        self._commit_t: Optional[float] = None
        #: set by the owning node when its storage backend completes DMA
        #: timelessly (plain memory write) — allows the train driver to
        #: batch all handler commits into one wake-up
        self.dma_lazy_ok = False
        san = sim.sanitizer
        if san is not None:
            san.adopt("accel", self)
            # the train fast path replays per-packet/per-handler times
            # from one precomputed array: its driver and continuation
            # coroutines coincide with the paced schedule by design; the
            # per-packet pipeline and the egress pump both tick on the
            # same line-rate wire clock, so their same-instant meetings
            # are engineered too
            san.declare_coincident(
                f"proc:{node_name}.train",
                f"proc:{node_name}.accel-egress",
                "proc:_train_driver",
                "proc:_train_cont_exec",
                "proc:_train_cont_hpu",
                "proc:_pipeline",
            )

    def _egress_pump(self):
        """Drain the handler egress queue at line rate (one in-flight
        transmission at a time, like a DMA engine feeding the wire)."""
        while True:
            pkt = yield self._egress.get()
            yield self.send_fn(pkt)

    # ----------------------------------------------------------- contexts
    def install(self, ctx: ExecutionContext) -> None:
        """Install a persistent execution context (user-level, §III-C)."""
        self.contexts.append(ctx)
        if ctx.hpu_quota is not None:
            ctx._quota_sem = Resource(
                self.sim,
                min(ctx.hpu_quota, self.params.n_hpus),
                name=f"{self.node_name}.quota.{ctx.name}",
            )
        if self._cleanup_proc is None and ctx.handlers.cleanup is not None:
            self._cleanup_proc = self.sim.process(
                self._cleanup_sweeper(), name=f"{self.node_name}.cleanup"
            )

    def match(self, pkt: Packet) -> Optional[ExecutionContext]:
        for ctx in self.contexts:
            if ctx.matches(pkt):
                return ctx
        return None

    # ------------------------------------------------------------- ingest
    def ingest(self, pkt: Packet) -> bool:
        """Offer a packet to the accelerator.

        Returns False when no context matches (the packet then takes the
        NIC's default path).  When a context matches but the accelerator
        cannot keep up (ingress queue full, §III-C), the *message* is
        denied: the header packet is NACK'd so the client retries later,
        and its remaining packets are dropped — matching the paper's
        handling of resource exhaustion (§III-B2).
        """
        ctx = self.match(pkt)
        if ctx is None:
            return False
        if self._train is not None and pkt is not self._train.pkts[0]:
            # Any competing packet entering the engine invalidates the
            # paced train's precomputed schedule (queue depths, cluster
            # round-robin, HPU occupancy): de-coalesce first so this
            # packet sees exactly the per-packet state.
            self._train_interrupt()
        # Admission control is per *message* (§III-C): the decision is
        # taken on the header packet; later packets of an admitted
        # message are always processed, later packets of a denied
        # message are always dropped.
        if pkt.msg_id in self._overloaded:
            self.packets_steered += 1
            if pkt.is_completion:
                self._overloaded.discard(pkt.msg_id)
            return True
        # NOTE: retransmitted packets of a live message are deliberately
        # re-run, not dropped — forwarding policies (replication, EC,
        # log) must regenerate child streams so a downstream node that
        # lost a forwarded packet can fill its gap.  Handlers are
        # idempotent (same-address DMA, policy-level duplicate memos),
        # so re-execution only costs HPU cycles, like real retransmits.
        if (
            pkt.msg_id not in self._admitted
            and self._queued >= self.params.ingress_queue_packets
            and pkt.is_header
        ):
            self.packets_steered += 1
            if not pkt.is_completion:
                self._overloaded.add(pkt.msg_id)
            dfs = pkt.headers.get("dfs")
            reply = (dfs.reply_to if dfs is not None else None) or pkt.src
            greq = dfs.greq_id if dfs is not None else pkt.headers.get("greq_id")
            self.nacks_sent += 1
            tel = self.sim.telemetry
            if tel.enabled:
                self._handles.get(tel.metrics)["nacks"].inc()
            self.send_fn(
                Packet(
                    src=self.node_name,
                    dst=reply,
                    op="nack",
                    msg_id=pkt.msg_id,
                    seq=0,
                    nseq=1,
                    headers={"ack_for": greq, "reason": "overload"},
                    header_bytes=16,
                )
            )
            return True
        if pkt.is_header and not pkt.is_completion:
            self._admitted.add(pkt.msg_id)
        if pkt.is_completion:
            self._admitted.discard(pkt.msg_id)
        self._queued += 1
        tel = self.sim.telemetry
        if tel.enabled:
            h = self._handles.get(tel.metrics)
            h["ingested"].inc()
            h["queued"].set(self.sim.now, self._queued)
        self.sim.process(self._pipeline(ctx, pkt))
        return True

    # ------------------------------------------------------------ pipeline
    def _pipeline(self, ctx: ExecutionContext, pkt: Packet):
        sim = self.sim
        p = self.params
        cyc = p.cycle_ns
        # 1+2. packet buffer copy, then the hardware scheduler pick —
        # strictly sequential with nothing observable in between, so one
        # fused timeout covers both stages (same timestamps, one event).
        yield sim.timeout(
            (-(-pkt.size // p.pkt_buffer_bytes_per_cycle) + p.sched_cycles) * cyc
        )
        run, exec_cluster = self._pipeline_front(ctx, pkt)
        # 3. copy into cluster L1
        yield sim.timeout(-(-pkt.size // p.l1_copy_bytes_per_cycle) * cyc)
        if self._train is not None and pkt is self._train.pkts[0]:
            # The lead packet of a paced train runs the real pipeline:
            # apply agenda effects due by now (arrivals of later train
            # packets) first, so the shared ingress-queue state mutates
            # in exactly the per-packet order.
            self._train_catchup(self._train)
        self._queued -= 1
        self.packets_processed += 1
        yield from self._pipeline_exec(run, pkt, exec_cluster)

    def _pipeline_front(self, ctx: ExecutionContext, pkt: Packet):
        """Post-F1 bookkeeping: run lookup/creation and the scheduler's
        cluster picks.  Split out so the packet-train fast path can apply
        it lazily (and the de-coalescing path can replay it exactly)."""
        sim = self.sim
        p = self.params
        run = self._runs.get(pkt.msg_id)
        if run is None:
            # Any packet may open the run: handler-forwarded streams can
            # arrive slightly reordered (concurrent payload handlers race
            # for the upstream egress queue), so a payload packet may beat
            # its header here.  Its pipeline simply parks on ``hh_done``
            # until the header handler has run.
            cluster = self._next_cluster
            self._next_cluster = (self._next_cluster + 1) % p.n_clusters
            run = _MessageRun(sim, pkt.msg_id, ctx, cluster)
            self._runs[pkt.msg_id] = run
        if run.trace is None and pkt.trace is not None:
            run.trace = pkt.trace
        run.expected = pkt.nseq
        run.last_activity = sim.now
        # Packet-level parallelism (§II-B1): payload packets of one
        # message spread over ALL clusters' HPUs (the Fig. 16 budget
        # model assumes every HPU shares a message's packets); the
        # message's request state lives in its home cluster's L1.
        exec_cluster = self._next_cluster
        self._next_cluster = (self._next_cluster + 1) % p.n_clusters
        return run, exec_cluster

    def _pipeline_exec(self, run: _MessageRun, pkt: Packet, exec_cluster: int):
        """Handler-ordering stage of the pipeline (post L1 copy)."""
        if pkt.is_header:
            yield from self._exec(run, "header", pkt, run.cluster)
            if not run.hh_done.triggered:
                run.hh_done.succeed(None)
            at = self._train
            if at is not None and pkt is at.pkts[0]:
                # Hand the lead packet's payload handler to the train
                # driver: pacing it through the same agenda keeps every
                # shared mutation (DMA posts, cluster gauges, counters)
                # in exact per-packet order.  This runs synchronously
                # after the succeed above, so the driver (parked on
                # hh_done) sees stage/cluster recorded when it builds.
                at.cl[0] = exec_cluster
                at.stage[0] = 3
                return
        elif not run.hh_done.triggered:
            yield run.hh_done

        if run.finished:
            self.packets_dropped += 1
            return

        if pkt.is_completion:
            run.completion_seen = True

        yield from self._exec(run, "payload", pkt, exec_cluster)
        run.ph_seqs.add(pkt.seq)
        run.last_activity = self.sim.now
        if (
            run.completion_seen
            and run.expected is not None
            and len(run.ph_seqs) >= run.expected
            and not run.phs_done.triggered
        ):
            run.phs_done.succeed(None)

        if pkt.is_completion:
            if not run.phs_done.triggered:
                yield run.phs_done
            if run.finished:
                # the cleanup sweeper gave up on this message while we
                # were parked on phs_done
                self.packets_dropped += 1
                return
            yield from self._exec(run, "completion", pkt, run.cluster)
            self._finish(run)

    def _exec(self, run: _MessageRun, htype: str, pkt: Packet, cluster_idx: Optional[int] = None):
        """Run one handler on an HPU of the given (or home) cluster."""
        sim = self.sim
        p = self.params
        handler = getattr(run.ctx.handlers, htype)
        cluster = self.clusters[run.cluster if cluster_idx is None else cluster_idx]
        quota = run.ctx._quota_sem
        qreq = None
        if quota is not None:
            # per-tenant HPU quota (§VII cloud QoS): a context may not
            # occupy more than its share of the HPU pool
            qreq = quota.request()
            yield qreq
        # Each claim enters its protecting try before the next wait, so
        # an interrupt landing at any yield unwinds exactly what is held
        # (SIM301); the success path schedules identical events.
        try:
            req = cluster.hpus.request()
            yield req
            try:
                yield sim.timeout(p.hpu_dispatch_ns)
                t0 = sim.now
                tel = sim.telemetry
                cluster.active += 1
                if tel.enabled:
                    self._handles.get(tel.metrics)["active"][cluster.idx].set(
                        sim.now, cluster.active
                    )
                try:
                    cost = handler.cost(run.task, pkt)
                    contention = 1.0 + p.l1_contention_per_hpu * max(0, cluster.active - 1)
                    yield sim.timeout(cost.compute_ns(p.freq_ghz, contention))
                    gen = handler.run(HandlerApi(self, run), run.task, pkt)
                    if gen is not None:
                        yield from gen
                finally:
                    cluster.active -= 1
            finally:
                cluster.hpus.release(req)
        finally:
            if quota is not None:
                quota.release(qreq)
        self._record_stats(htype, run.ctx.name, sim.now - t0, cost.instructions)
        if tel.enabled:
            dur = sim.now - t0
            tel.span(
                f"{htype}:{run.ctx.name} m{run.msg_id}",
                pid=f"pspin:{self.node_name}",
                tid=f"cluster{cluster.idx}",
                t0=t0,
                t1=sim.now,
                cat="hpu",
                trace=run.trace,
                args={"instructions": cost.instructions, "handler": htype},
                phase="hpu",
            )
            h = self._handles.get(tel.metrics)
            h["busy"].inc(dur)
            inv = h["inv"].get(htype)
            if inv is None:
                m = tel.metrics
                # miss path runs once per handler type; the handle is
                # cached in the HandleCache dict itself
                inv = h["inv"][htype] = m.counter(  # simlint: disable=SIM401
                    f"pspin.{self.node_name}.handler.{htype}.invocations"
                )
                h["lat"][htype] = m.histogram(  # simlint: disable=SIM401
                    f"pspin.{self.node_name}.handler.{htype}.latency_ns"
                )
            inv.inc()
            h["lat"][htype].observe(dur)
            h["active"][cluster.idx].set(sim.now, cluster.active)

    # ------------------------------------------------- packet-train pacing
    #
    # A coalesced train reaching an IDLE accelerator whose effective
    # payload policy is straight-line (never yields, non-memory-intensive
    # cost) has a fully closed-form pipeline: the header packet runs the
    # real pipeline, and every other packet's per-stage times are
    # precomputed.  One driver process wakes once per handler completion
    # (where DMA posts must happen at the exact instant) and applies all
    # pure-state effects lazily — instead of ~7 heap events per packet.
    # Any competing traffic tears the train down, materializing each
    # packet back into the real pipeline at its exact current stage.

    def ingest_train(self, wt, nic) -> bool:
        """Offer a whole coalesced train; True when the accelerator paces
        it itself, False to fall back to per-packet dispatch."""
        if self._train is not None:
            # A second burst is competing traffic for the engine either
            # way: de-coalesce the active train, then let this one take
            # the (now exact) per-packet path.
            self._train_interrupt()
            return False
        pkts = wt.pkts
        n = len(pkts)
        pkt0 = pkts[0]
        if n < 2 or wt.cut < n:
            return False
        ctx = self.match(pkt0)
        if ctx is None:
            return False
        if (
            not pkt0.is_header
            or pkt0.is_completion
            or pkt0.nseq != n
            or not pkts[-1].is_completion
            or self._queued != 0
            or self._runs
            or ctx._quota_sem is not None
            or pkt0.msg_id in self._overloaded
            or pkt0.msg_id in self._admitted
        ):
            return False
        # Cheap pre-filter on the payload policy: forwarding policies
        # (replication, EC) stall on egress / contend on L1 and can never
        # be paced — skip the part-A churn for them.  The authoritative
        # check (via the header handler's scratch) re-runs at build time.
        ph = ctx.handlers.payload
        pol = getattr(ph, "policy", None)
        if pol is None:
            return False
        pick = getattr(pol, "_pick", None)
        eff = pick(pkt0) if pick is not None else pol
        if not getattr(eff, "straightline", False):
            return False
        sim = self.sim
        p = self.params
        cyc = p.cycle_ns
        pbc = p.pkt_buffer_bytes_per_cycle
        l1c = p.l1_copy_bytes_per_cycle
        sched = p.sched_cycles
        nic_rx = nic.params.nic_rx_ns
        # Same float expressions as the per-packet path — bit-identical.
        sizes = [p.size for p in pkts]
        t_in = [a + nic_rx for a in wt.arr]
        f1 = [
            t_in[j] + (-(-sizes[j] // pbc) + sched) * cyc for j in range(n)
        ]
        s2 = [f1[j] + -(-sizes[j] // l1c) * cyc for j in range(n)]
        at = _AccelTrain(wt, ctx, nic, t_in, f1, s2)
        agenda = []
        for j in range(1, n):
            agenda.append((t_in[j], j, 0))
            agenda.append((f1[j], j, 1))
            agenda.append((s2[j], j, 2))
        agenda.sort()
        at.agenda = agenda
        # The header packet takes the REAL pipeline (its handler opens
        # the request entry, resolves the policy, acks or nacks).
        nic.rx_packets += 1
        self.ingest(pkt0)
        self._train = at
        sim.process(self._train_driver(at), name=f"{self.node_name}.train")
        return True

    def _train_driver(self, at: _AccelTrain):
        sim = self.sim
        if at.f1[0] > sim.now:
            yield sim.timeout_at(at.f1[0])
        if at.dead:
            return
        run = self._runs.get(at.msg_id)
        if run is None:
            # The header's own F1 timeout shares this timestamp but was
            # pushed after our wake-up; one zero-delay hop lands past it.
            yield sim.timeout(0.0)
            if at.dead:
                return
            run = self._runs.get(at.msg_id)
            if run is None:
                self._train_teardown(at)
                return
        at.run = run
        if not run.hh_done.triggered:
            yield run.hh_done
            if at.dead:
                return
        self._train_catchup(at)
        if run.finished or not self._train_build_exec(at):
            self._train_teardown(at)
            return
        if not sim.telemetry.enabled and self.dma_lazy_ok:
            # Batched commits: with telemetry off and a timeless storage
            # backend, nothing observes the interval between a handler's
            # true finish time and the train's end — every commit can be
            # replayed at the final wake-up with its recorded timestamps
            # (DMA posts carry their true issue times via ``_commit_t``).
            # An interrupt still lands exactly: teardown's catch-up
            # replays everything due and materializes the rest live.
            t_last = max(at.e)
            if t_last > sim.now:
                yield sim.timeout_at(t_last)
                if at.dead:
                    return
            self._train_catchup(at)
        else:
            # One wake per distinct handler-completion time: DMA posts
            # (and phs_done) must happen at those exact instants;
            # everything else on the agenda is pure state and applies
            # lazily at the wakes.
            for t in sorted(set(at.e)):
                if t > sim.now:
                    yield sim.timeout_at(t)
                    if at.dead:
                        return
                self._train_catchup(at)
        self._train = None
        if at.wire.cut < len(at.pkts):
            # The wire cut trailing packets: they re-arrive individually
            # and their own pipelines (completion included) take over.
            return
        # Completion tail — mirrors the slow-path completion pipeline
        # resuming from its phs_done park.
        pkt = at.pkts[-1]
        if not run.phs_done.triggered:
            yield run.phs_done
        if run.finished:
            self.packets_dropped += 1
            return
        yield from self._exec(run, "completion", pkt, run.cluster)
        self._finish(run)

    def _train_build_exec(self, at: _AccelTrain) -> bool:
        """Part B: the HPU grant/dispatch/compute schedule, computable
        once the header handler has finished (its end gates every payload
        handler).  False when pacing would not be faithful — the caller
        then de-coalesces."""
        run = at.run
        sim = self.sim
        p = self.params
        hh_t = sim.now
        handler = run.ctx.handlers.payload
        entry = run.task.mem.get_request(run.task.flow_id)
        if entry is not None and getattr(entry, "accept", False):
            # Authoritative straight-line check: the policy the header
            # handler actually resolved for this request.
            eff = entry.scratch.get("policy", getattr(handler, "policy", None))
            if not getattr(eff, "straightline", False):
                return False
        # else: rejected/unopened request — payload handlers take the
        # zero-yield drop path, which is trivially straight-line.
        pkts = at.pkts
        n = len(pkts)
        freq = p.freq_ghz
        disp = p.hpu_dispatch_ns
        s2 = at.s2
        g = [0.0] * n
        t0 = [0.0] * n
        e = [0.0] * n
        cost = [None] * n
        for j in range(n):
            c = handler.cost(run.task, pkts[j])
            if c.mem_intensive:
                return False
            # The lead packet's payload handler resumed synchronously at
            # the header's end; later packets gate on max(L1 copy, hh).
            gj = s2[j] if j > 0 and s2[j] > hh_t else hh_t
            g[j] = gj
            t0[j] = gj + disp
            e[j] = t0[j] + c.compute_ns(freq, 1.0)
            cost[j] = c
        # Every paced window must find a free HPU instantly, or the slow
        # path would have queued and the schedule lies.  Sweep per-cluster
        # concurrency over the [g, e) windows (predicting not-yet-applied
        # round-robin picks — exact while the train owns the engine).
        # Nothing else runs on the HPUs while the train is paced (the
        # header already released; the completion handler starts later),
        # so the full per-cluster pool is available.
        ncl = p.n_clusters
        nc = self._next_cluster
        pred = list(at.cl)
        for j in range(1, n):
            if at.stage[j] < 2:
                pred[j] = nc
                nc = (nc + 1) % ncl
        windows: Dict[int, list] = defaultdict(list)
        for j in range(n):
            windows[pred[j]].append((g[j], 0, 1))   # acquire before release
            windows[pred[j]].append((e[j], 1, -1))  # at equal times
        cap = p.hpus_per_cluster
        for evs in windows.values():
            evs.sort()
            cur = 0
            for _t, _k, d in evs:
                cur += d
                if cur > cap:
                    return False
        rest = at.agenda[at.ptr:]
        for j in range(n):
            if pkts[j].is_completion:
                rest.append((g[j], j, 3))
            rest.append((t0[j], j, 4))
            rest.append((e[j], j, 5))
        rest.sort()
        at.agenda = rest
        at.ptr = 0
        at.g = g
        at.t0 = t0
        at.e = e
        at.cost = cost
        at.built = True
        return True

    def _train_catchup(self, at: _AccelTrain) -> None:
        """Apply every agenda entry due by now, in order, skipping
        packets the wire cut (they never reached this NIC).

        The rank dispatch is inlined in the loop body: applies are the
        hottest per-packet work left on the fast path (six entries per
        paced packet), and a call per entry costs as much as the entry.
        """
        agenda = at.agenda
        now = self.sim.now
        i = at.ptr
        n = len(agenda)
        wire = at.wire
        pkts = at.pkts
        stage = at.stage
        tel = self.sim.telemetry
        while i < n and agenda[i][0] <= now:
            t, j, rank = agenda[i]
            i += 1
            if j >= wire.cut:
                continue
            if rank == 0:  # NIC rx + accelerator ingest accounting
                at.nic.rx_packets += 1
                pkt = pkts[j]
                if pkt.is_completion:
                    self._admitted.discard(pkt.msg_id)
                self._queued += 1
                if tel.enabled:
                    h = self._handles.get(tel.metrics)
                    h["ingested"].inc()
                    h["queued"].set(t, self._queued)
                stage[j] = 1
            elif rank == 1:  # F1 done: run bookkeeping + exec-cluster pick
                run = at.run
                run.expected = pkts[j].nseq
                run.last_activity = t
                at.cl[j] = self._next_cluster
                self._next_cluster = (self._next_cluster + 1) % self.params.n_clusters
                stage[j] = 2
            elif rank == 2:  # L1 copy done: leaves the ingress queue
                self._queued -= 1
                self.packets_processed += 1
                stage[j] = 3
            elif rank == 3:  # hh-resume point of the completion packet
                at.run.completion_seen = True
                stage[j] = 4
            elif rank == 4:  # dispatch done: compute begins
                cluster = self.clusters[at.cl[j]]
                cluster.active += 1
                if tel.enabled:
                    self._handles.get(tel.metrics)["active"][cluster.idx].set(
                        t, cluster.active
                    )
                stage[j] = 5
            else:  # rank 5: handler completes at exactly ``t == at.e[j]``
                cluster = self.clusters[at.cl[j]]
                cluster.hpus._busy_time += at.e[j] - at.g[j]
                self._train_ph_commit(
                    at.run, pkts[j], cluster, at.cost[j], at.t0[j], at.e[j]
                )
                stage[j] = 6
        at.ptr = i

    def _train_ph_commit(
        self,
        run: _MessageRun,
        pkt: Packet,
        cluster: _Cluster,
        cost,
        t0: float,
        t1: float,
    ) -> None:
        """Effects + statistics of one paced payload handler finishing at
        ``t1`` (== sim.now, or an earlier instant when the driver batches
        commits) — the straight-line mirror of ``_exec``'s tail plus the
        pipeline's post-payload bookkeeping."""
        api = run.api
        if api is None:
            api = run.api = HandlerApi(self, run)
        api._vnow = t1
        self._commit_t = t1
        try:
            gen = run.ctx.handlers.payload.run(api, run.task, pkt)
            if gen is not None:
                for _ in gen:
                    raise SimulationError(
                        f"straightline payload policy of {run.ctx.name!r} yielded"
                    )
        finally:
            self._commit_t = None
            api._vnow = None
        cluster.active -= 1
        self._record_stats("payload", run.ctx.name, t1 - t0, cost.instructions)
        tel = self.sim.telemetry
        if tel.enabled:
            dur = t1 - t0
            tel.span(
                f"payload:{run.ctx.name} m{run.msg_id}",
                pid=f"pspin:{self.node_name}",
                tid=f"cluster{cluster.idx}",
                t0=t0,
                t1=t1,
                cat="hpu",
                trace=run.trace,
                args={"instructions": cost.instructions, "handler": "payload"},
                phase="hpu",
            )
            h = self._handles.get(tel.metrics)
            h["busy"].inc(dur)
            inv = h["inv"].get("payload")
            if inv is None:
                m = tel.metrics
                # one-time miss path, cached in the HandleCache dict
                inv = h["inv"]["payload"] = m.counter(  # simlint: disable=SIM401
                    f"pspin.{self.node_name}.handler.payload.invocations"
                )
                h["lat"]["payload"] = m.histogram(  # simlint: disable=SIM401
                    f"pspin.{self.node_name}.handler.payload.latency_ns"
                )
            inv.inc()
            h["lat"]["payload"].observe(dur)
            h["active"][cluster.idx].set(t1, cluster.active)
        run.ph_seqs.add(pkt.seq)
        run.last_activity = t1
        if (
            run.completion_seen
            and run.expected is not None
            and len(run.ph_seqs) >= run.expected
            and not run.phs_done.triggered
        ):
            run.phs_done.succeed(None)

    # ------------------------------------------- de-coalescing (interrupt)
    def _train_interrupt(self) -> None:
        at = self._train
        assert at is not None
        self._train_teardown(at)

    def _train_teardown(self, at: _AccelTrain) -> None:
        """Stop pacing NOW: apply everything due, then hand each not-yet-
        finished packet back to the real per-packet pipeline at exactly
        the stage it nominally reached."""
        if self._train is at:
            self._train = None
        at.dead = True
        if at.run is None:
            at.run = self._runs.get(at.msg_id)
        self._train_catchup(at)
        self._train_materialize(at)

    def _train_materialize(self, at: _AccelTrain) -> None:
        sim = self.sim
        n = len(at.pkts)
        for j in range(n):
            stage = at.stage[j]
            if j == 0:
                if stage == 3:
                    # The lead packet's pipeline handed its payload off
                    # to the (now dead) driver; resume it.
                    if at.built:
                        sim.process(self._train_cont_hpu(at, 0, stage))
                    else:
                        sim.process(self._train_cont_pkt0(at))
                # stage 0: its real pipeline never reached the hand-off
                # point and carries on by itself; >= 4 only with built.
                elif stage in (4, 5):
                    sim.process(self._train_cont_hpu(at, 0, stage))
                continue
            if j >= at.wire.cut:
                continue  # never reached this NIC; re-sent the slow way
            if stage >= 6:
                if j == n - 1 and at.run is not None and not at.run.finished:
                    # The completion packet's payload handler committed
                    # during catch-up (its end time can precede other
                    # packets' — the short tail packet copies and computes
                    # fastest), so no per-packet pipeline remains to run
                    # the completion handler once phs_done fires; without
                    # a successor the run leaks until the cleanup sweeper
                    # and the initiator never sees an ack.
                    sim.process(self._train_cont_completion(at))
                continue
            if stage == 0:
                sim._call_at1(self._train_ingest_late, (at, j), at.t_in[j])
            elif stage == 1:
                sim.process(self._train_cont_f1(at, j))
            elif stage == 2:
                sim.process(self._train_cont_s2(at, j))
            elif stage == 3 and not at.built:
                sim.process(self._train_cont_exec(at, j))
            else:
                # Part B built: the HPU is nominally held since g[j].
                sim.process(self._train_cont_hpu(at, j, stage))

    def _train_ingest_late(self, arg) -> None:
        at, j = arg
        if j >= at.wire.cut:
            return
        at.nic.rx_packets += 1
        self.ingest(at.pkts[j])

    def _train_cont_pkt0(self, at: _AccelTrain):
        """Resume the lead packet's payload after a pre-build interrupt
        — the tail of ``_pipeline_exec`` its pipeline skipped."""
        run = at.run
        pkt = at.pkts[0]
        if run.finished:
            self.packets_dropped += 1
            return
        yield from self._exec(run, "payload", pkt, at.cl[0])
        run.ph_seqs.add(pkt.seq)
        run.last_activity = self.sim.now
        if (
            run.completion_seen
            and run.expected is not None
            and len(run.ph_seqs) >= run.expected
            and not run.phs_done.triggered
        ):
            run.phs_done.succeed(None)

    def _train_cont_f1(self, at: _AccelTrain, j: int):
        """Materialize a packet still in its F1 (buffer+scheduler) stage."""
        sim = self.sim
        pkt = at.pkts[j]
        if at.f1[j] > sim.now:
            yield sim.timeout_at(at.f1[j])
        run, exec_cluster = self._pipeline_front(at.ctx, pkt)
        yield sim.timeout_at(at.s2[j])
        self._queued -= 1
        self.packets_processed += 1
        yield from self._pipeline_exec(run, pkt, exec_cluster)

    def _train_cont_s2(self, at: _AccelTrain, j: int):
        """Materialize a packet mid L1 copy (front already applied)."""
        sim = self.sim
        pkt = at.pkts[j]
        if at.s2[j] > sim.now:
            yield sim.timeout_at(at.s2[j])
        self._queued -= 1
        self.packets_processed += 1
        yield from self._pipeline_exec(at.run, pkt, at.cl[j])

    def _train_cont_exec(self, at: _AccelTrain, j: int):
        """Materialize a packet past its L1 copy, before the header
        handler finished (it parks on hh_done like the slow path)."""
        yield from self._pipeline_exec(at.run, at.pkts[j], at.cl[j])

    def _train_cont_hpu(self, at: _AccelTrain, j: int, stage: int):
        """Materialize a packet whose HPU window [g, e) already opened:
        re-acquire a real HPU (guaranteed free — the build-time sweep
        reserved it), backfill its occupancy, and finish on schedule."""
        sim = self.sim
        run = at.run
        pkt = at.pkts[j]
        cluster = self.clusters[at.cl[j]]
        req = cluster.hpus.request()
        yield req
        try:
            cluster.hpus._busy_time += sim.now - at.g[j]
            if stage < 5:
                if at.t0[j] > sim.now:
                    yield sim.timeout_at(at.t0[j])
                cluster.active += 1
                tel = sim.telemetry
                if tel.enabled:
                    self._handles.get(tel.metrics)["active"][cluster.idx].set(
                        sim.now, cluster.active
                    )
            if at.e[j] > sim.now:
                yield sim.timeout_at(at.e[j])
            self._train_ph_commit(run, pkt, cluster, at.cost[j], at.t0[j], at.e[j])
        finally:
            cluster.hpus.release(req)
        if pkt.is_completion:
            if not run.phs_done.triggered:
                yield run.phs_done
            if run.finished:
                self.packets_dropped += 1
                return
            yield from self._exec(run, "completion", pkt, run.cluster)
            self._finish(run)

    def _train_cont_completion(self, at: _AccelTrain):
        """The driver's completion tail, reparented after a teardown that
        found the completion packet already committed."""
        run = at.run
        if not run.phs_done.triggered:
            yield run.phs_done
        if run.finished:
            self.packets_dropped += 1
            return
        yield from self._exec(run, "completion", at.pkts[-1], run.cluster)
        self._finish(run)

    def _finish(self, run: _MessageRun) -> None:
        run.finished = True
        self._runs.pop(run.msg_id, None)

    # ------------------------------------------------------------- cleanup
    def _cleanup_sweeper(self):
        """Fire cleanup handlers for messages inactive beyond the
        timeout (§VII: clients failing mid-write leave dangling state)."""
        sim = self.sim
        period = self.params.cleanup_timeout_ns / 2
        while True:
            yield sim.timeout(period)
            deadline = sim.now - self.params.cleanup_timeout_ns
            stale = [
                run
                for run in self._runs.values()
                if run.last_activity <= deadline and not run.finished
            ]
            for run in stale:
                yield from self._exec_cleanup(run)

    def _exec_cleanup(self, run: _MessageRun):
        handler = run.ctx.handlers.cleanup
        if handler is None:
            self._finish(run)
            return
        sim = self.sim
        cluster = self.clusters[run.cluster]
        req = cluster.hpus.request()
        yield req
        t0 = sim.now
        try:
            cost = handler.cost(run.task, None)
            yield sim.timeout(cost.compute_ns(self.params.freq_ghz))
            gen = handler.run(HandlerApi(self, run), run.task, None)
            if gen is not None:
                yield from gen
        finally:
            cluster.hpus.release(req)
        self._record_stats("cleanup", run.ctx.name, sim.now - t0, cost.instructions)
        # Release every pipeline parked on this run's gates, or packets
        # that arrived before the sweep stay blocked forever.
        if not run.hh_done.triggered:
            run.hh_done.succeed(None)
        if not run.phs_done.triggered:
            run.phs_done.succeed(None)
        self._finish(run)

    # --------------------------------------------------------------- stats
    def _record_stats(
        self, htype: str, ctx_name: str, duration_ns: float, instructions: int
    ) -> None:
        key = (htype, ctx_name)
        st = self._stats_memo.get(key)
        if st is None:
            st = self._stats_memo[key] = self.stats[f"{htype}:{ctx_name}"]
        st.record(duration_ns, instructions)

    def stats_for(self, htype: str, ctx_name: str) -> HandlerStats:
        return self.stats[f"{htype}:{ctx_name}"]

    def hpu_utilisation(self) -> float:
        return sum(c.hpus.utilisation() for c in self.clusters) / len(self.clusters)

    @property
    def in_flight_messages(self) -> int:
        return len(self._runs)
