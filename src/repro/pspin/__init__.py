"""PsPIN SmartNIC model: accelerator, NIC memory, handler cost model."""

from .accelerator import HandlerApi, HandlerStats, PsPinAccelerator
from .isa import (
    AUTH_HANDLER_CYCLES,
    CPI_CONTROL,
    CPI_LOOP,
    HandlerCost,
    cleanup_handler_cost,
    completion_handler_cost,
    ec_completion_cost,
    ec_data_payload_cost,
    ec_fixed_instructions,
    ec_instructions_per_byte,
    ec_parity_payload_cost,
    forward_payload_cost,
    header_handler_cost,
    payload_handler_cost,
)
from .memory import Allocation, NicMemory

__all__ = [
    "AUTH_HANDLER_CYCLES",
    "Allocation",
    "CPI_CONTROL",
    "CPI_LOOP",
    "HandlerApi",
    "HandlerCost",
    "HandlerStats",
    "NicMemory",
    "PsPinAccelerator",
    "cleanup_handler_cost",
    "completion_handler_cost",
    "ec_completion_cost",
    "ec_data_payload_cost",
    "ec_fixed_instructions",
    "ec_instructions_per_byte",
    "ec_parity_payload_cost",
    "forward_payload_cost",
    "header_handler_cost",
    "payload_handler_cost",
]
