"""Handler instruction-cost model, calibrated to the paper.

PsPIN handlers are compiled RISC-V (riscv32, -O3 -flto, §III-D); we
reproduce their *cost structure* from the published measurements:

Table I (replication handlers, per-handler instruction counts):

======================  ====  ====  ====
type                     HH    PH    CH
======================  ====  ====  ====
k=1 (plain write)        120    55    66
k=4 ring                 120   105    65
k=4 pbt                  120   130    82
======================  ====  ====  ====

Table II (EC payload handlers): RS(3,2) 11 672 instructions per 2 KiB
packet (≈5 instr/byte, §VI-C(c)), RS(6,3) 16 028 (≈7 instr/byte), both
at IPC ≈ 0.7; completion handlers 35 instructions.

Durations in the tables are *measured under load*: compute time
(instructions × CPI) plus stalls waiting on the egress port (which is
what collapses the k=4 PBT payload-handler IPC to 0.06).  Here we only
encode the compute part — CPI for control-dominated handlers ≈ 1.72
(IPC ≈ 0.58) and for the dense GF loop ≈ 1.43 (IPC = 0.7) — and let the
simulator produce the stall component.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "HandlerCost",
    "CPI_CONTROL",
    "CPI_LOOP",
    "AUTH_HANDLER_CYCLES",
    "header_handler_cost",
    "payload_handler_cost",
    "completion_handler_cost",
    "forward_payload_cost",
    "ec_data_payload_cost",
    "ec_parity_payload_cost",
    "ec_completion_cost",
    "cleanup_handler_cost",
    "ec_instructions_per_byte",
    "ec_fixed_instructions",
]

#: CPI of control-dominated handlers (branches, header parsing).
#: Table I: HH 120 instr / 211 ns @1 GHz -> 1.758; PH(k=1) 55/92 -> 1.67;
#: CH 66/107 -> 1.62.  We keep the per-class values.
CPI_HH = 1.758
CPI_PH = 1.672
CPI_CH = 1.621
CPI_CONTROL = 1.72  # generic fallback
#: CPI of the byte-wise GF(2^8) encode loop (Table II, IPC 0.7).
CPI_LOOP = 1.429

#: Fig. 7: "The DFS handler that validates client requests takes 200
#: cycles."  The 120-instruction HH of Table I spends most of them here.
AUTH_HANDLER_CYCLES = 200


@dataclass(frozen=True)
class HandlerCost:
    """Compute cost of one handler invocation."""

    instructions: int
    cpi: float
    #: memory-intensive handlers suffer L1-contention CPI penalties
    mem_intensive: bool = False

    def compute_cycles(self) -> float:
        return self.instructions * self.cpi

    def compute_ns(self, freq_ghz: float, contention_factor: float = 1.0) -> float:
        scale = contention_factor if self.mem_intensive else 1.0
        return self.instructions * self.cpi * scale / freq_ghz


# ----------------------------------------------------------- replication/auth
def header_handler_cost() -> HandlerCost:
    """HH: request validation (capability check) + req_table setup.

    120 instructions at CPI 1.758 = 211 cycles — consistent with Fig. 7's
    200-cycle validation plus bookkeeping.
    """
    return HandlerCost(instructions=120, cpi=CPI_HH)


def payload_handler_cost() -> HandlerCost:
    """PH for a plain (k=1) write: DMA descriptor to host, accounting."""
    return HandlerCost(instructions=55, cpi=CPI_PH)


def forward_payload_cost(n_children: int) -> HandlerCost:
    """PH that also forwards to ``n_children`` replicas (Table I:
    105 instr for ring = +50 over plain; pbt 130 = +25 per extra child)."""
    if n_children <= 0:
        return payload_handler_cost()
    return HandlerCost(instructions=55 + 25 * (n_children + 1), cpi=CPI_PH)


def completion_handler_cost(n_children: int = 0) -> HandlerCost:
    """CH: finalize request, send the client/upstream ack.

    Table I: 66 instr plain, 65 ring, 82 pbt — constant-ish; pbt tracks
    two children's completion.
    """
    instr = 66 if n_children <= 1 else 66 + 8 * n_children
    return HandlerCost(instructions=instr, cpi=CPI_CH)


# ----------------------------------------------------------------- erasure
#: Instructions per payload byte of the GF encode loop: one table-row
#: gather + XOR-accumulate + load/store per parity stream: 2m + 1.
def ec_instructions_per_byte(m: int) -> int:
    return 2 * m + 1


#: Loop prologue/bookkeeping, calibrated to Table II's totals:
#: RS(3,2): 11 672 - 5*2048 = 1432;  RS(6,3): 16 028 - 7*2048 = 1692.
_EC_FIXED = {2: 1432, 3: 1692}


def ec_fixed_instructions(m: int) -> int:
    return _EC_FIXED.get(m, 560 * m + 312)


def ec_data_payload_cost(m: int, payload_bytes: int) -> HandlerCost:
    """PH on a data node: encode the payload into m intermediate parity
    packets (scanning every byte, §VI-B2)."""
    instr = ec_instructions_per_byte(m) * payload_bytes + ec_fixed_instructions(m)
    return HandlerCost(instructions=instr, cpi=CPI_LOOP, mem_intensive=True)


def ec_parity_payload_cost(payload_bytes: int) -> HandlerCost:
    """PH on a parity node: XOR the packet into its accumulator
    (1 load + 1 xor + 1 store per 4-byte word ≈ 0.75 instr/byte)."""
    instr = (3 * payload_bytes) // 4 + 160
    return HandlerCost(instructions=instr, cpi=CPI_LOOP, mem_intensive=True)


def ec_completion_cost() -> HandlerCost:
    """CH for EC streams (Table II: 35 instructions)."""
    return HandlerCost(instructions=35, cpi=3.0)


def cleanup_handler_cost() -> HandlerCost:
    """Cleanup handler for abandoned requests (§VII)."""
    return HandlerCost(instructions=90, cpi=CPI_CONTROL)
