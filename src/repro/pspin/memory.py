"""NIC memory accounting: per-cluster L1 scratchpads + shared L2.

§III-B2: PsPIN has four 1 MiB single-cycle L1 memories (one per compute
cluster) and a 4 MiB off-cluster L2.  Client request descriptors (77 B)
live in the L1 of the handling cluster and *swap out* to L2 when L1 is
full; 2 MiB of L2 are reserved for DFS-wide state (e.g. the 64 KiB
GF(2^8) table), leaving 6 MiB for request state — about 82 K concurrent
writes.  When neither tier has room the request is denied and the client
retries later.

Allocation is non-blocking: callers get an :class:`Allocation` or
``None`` (NACK).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from ..params import PsPinParams
from ..simnet.engine import Simulator
from ..simnet.resources import Container

__all__ = ["Allocation", "NicMemory"]


@dataclass
class Allocation:
    """A granted slice of NIC memory."""

    nbytes: int
    tier: Literal["l1", "l2", "wide"]
    cluster: int  # -1 for l2/wide
    freed: bool = False


class NicMemory:
    """Capacity accounting for L1/L2 NIC memories."""

    def __init__(self, sim: Simulator, params: PsPinParams, name: str = "nicmem"):
        self.sim = sim
        self.params = params
        self.name = name
        self.l1 = [
            Container(sim, params.l1_bytes_per_cluster, name=f"{name}.l1[{c}]")
            for c in range(params.n_clusters)
        ]
        usable_l2 = params.l2_bytes - params.dfs_wide_state_bytes
        if usable_l2 <= 0:
            raise ValueError("dfs_wide_state_bytes exceeds L2 capacity")
        self.l2 = Container(sim, usable_l2, name=f"{name}.l2")
        self.wide = Container(
            sim, params.dfs_wide_state_bytes, name=f"{name}.wide"
        )
        # DFS-wide state lives for the whole run by design (§VI-B2):
        # tell the sanitizer its outstanding units are not a leak
        self.wide.sanitize_arena = True
        self.denials = 0
        self.l2_spills = 0

    # ------------------------------------------------------------ request
    def alloc(self, cluster: int, nbytes: int) -> Optional[Allocation]:
        """Allocate request state, preferring the cluster's L1, spilling
        to L2, NACKing when both are full."""
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        if self.l1[cluster].try_get(nbytes):
            return Allocation(nbytes, "l1", cluster)
        if self.l2.try_get(nbytes):
            self.l2_spills += 1
            return Allocation(nbytes, "l2", -1)
        self.denials += 1
        return None

    def alloc_wide(self, nbytes: int) -> Optional[Allocation]:
        """Allocate DFS-wide state (installed at DFS-init time, §VI-B2)."""
        if self.wide.try_get(nbytes):
            return Allocation(nbytes, "wide", -1)
        self.denials += 1
        return None

    def free(self, alloc: Allocation) -> None:
        if alloc.freed:
            raise ValueError("double free of NIC memory allocation")
        alloc.freed = True
        if alloc.tier == "l1":
            self.l1[alloc.cluster].put(alloc.nbytes)
        elif alloc.tier == "l2":
            self.l2.put(alloc.nbytes)
        else:
            self.wide.put(alloc.nbytes)

    # -------------------------------------------------------------- stats
    @property
    def request_capacity_bytes(self) -> int:
        """Total bytes available for request state (the paper's 6 MiB)."""
        return (
            self.params.n_clusters * self.params.l1_bytes_per_cluster
            + self.params.l2_bytes
            - self.params.dfs_wide_state_bytes
        )

    def max_concurrent_requests(self, descriptor_bytes: Optional[int] = None) -> int:
        """§III-B2: ~82 K concurrent writes with 77-byte descriptors."""
        d = descriptor_bytes or self.params.request_descriptor_bytes
        return self.request_capacity_bytes // d

    def in_use_bytes(self) -> int:
        used = sum(c.capacity - c.level for c in self.l1)
        used += self.l2.capacity - self.l2.level
        return int(used)

    def peak_in_use_bytes(self) -> int:
        peak = sum(c.capacity - c.min_level for c in self.l1)
        peak += self.l2.capacity - self.l2.min_level
        return int(peak)
