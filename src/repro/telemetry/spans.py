"""Span-based request tracing.

One :class:`Telemetry` instance hangs off every
:class:`~repro.simnet.engine.Simulator` as ``sim.telemetry`` (disabled
by default), so every component — links, switches, NICs, the PsPIN
accelerator, the host models — can reach the same sink without plumbing
an extra constructor argument through the stack.

The model is deliberately small, shaped after OpenTelemetry / Chrome
``trace_event`` slices:

* a **span** is a named ``[t0, t1)`` interval on a *track* — a
  ``(pid, tid)`` pair such as ``("pspin:sn0", "cluster2")`` — optionally
  linked into a request tree via ``trace_id``/``parent_id``;
* a **trace context** is the tiny ``(trace_id, span_id)`` tuple carried
  on :class:`~repro.simnet.packet.Packet` objects so spans emitted deep
  in the stack (handler executions, PCIe commits, ack serialization)
  attach to the originating DFS request;
* a **phase** is an optional latency-anatomy label (``"wire"``,
  ``"hpu"``, ``"dma"``, ``"retransmit"``, ...) consumed by
  :mod:`repro.telemetry.anatomy` to decompose a request's end-to-end
  latency into non-overlapping stages.  See ``docs/observability.md``
  for the taxonomy.

Zero-overhead-when-disabled contract: every instrumentation site guards
with ``if tel.enabled:`` — a disabled simulation pays one attribute load
and one branch per site, nothing else (enforced by
``benchmarks/bench_simulator_perf.py::test_telemetry_disabled_overhead``).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = ["TraceContext", "Span", "Telemetry"]


class TraceContext:
    """The wire-carried link between a packet and its request span."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int):
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceContext trace={self.trace_id} span={self.span_id}>"


class Span:
    """A named interval on a ``(pid, tid)`` track."""

    __slots__ = (
        "name", "cat", "pid", "tid", "t0", "t1",
        "span_id", "trace_id", "parent_id", "args", "phase",
    )

    def __init__(
        self,
        name: str,
        cat: str,
        pid: str,
        tid: str,
        t0: float,
        span_id: int,
        trace_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
        phase: Optional[str] = None,
    ):
        self.name = name
        self.cat = cat
        self.pid = pid
        self.tid = tid
        self.t0 = t0
        self.t1: Optional[float] = None
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.args = args
        self.phase = phase

    @property
    def duration_ns(self) -> float:
        return (self.t1 if self.t1 is not None else self.t0) - self.t0

    def context(self) -> TraceContext:
        """A trace context naming this span as the parent."""
        return TraceContext(self.trace_id if self.trace_id is not None else self.span_id,
                            self.span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name!r} [{self.pid}/{self.tid}] "
            f"t0={self.t0} dur={self.duration_ns}>"
        )


class Telemetry:
    """Per-simulation observability sink: spans + a metrics registry.

    ``enabled`` is the single master switch; flipping it mid-run is
    legal (components re-check it at every instrumentation site).
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # ------------------------------------------------------------- spans
    def begin(
        self,
        name: str,
        pid: str,
        tid: str,
        t0: float,
        cat: str = "span",
        trace: Optional[TraceContext] = None,
        args: Optional[Dict[str, Any]] = None,
        phase: Optional[str] = None,
    ) -> Span:
        """Open a span; close it later with :meth:`end`."""
        span = Span(
            name, cat, pid, tid, t0,
            span_id=next(self._span_ids),
            trace_id=trace.trace_id if trace is not None else None,
            parent_id=trace.span_id if trace is not None else None,
            args=args,
            phase=phase,
        )
        self.spans.append(span)
        return span

    @staticmethod
    def end(span: Span, t1: float) -> Span:
        span.t1 = t1
        return span

    def span(
        self,
        name: str,
        pid: str,
        tid: str,
        t0: float,
        t1: float,
        cat: str = "span",
        trace: Optional[TraceContext] = None,
        args: Optional[Dict[str, Any]] = None,
        phase: Optional[str] = None,
    ) -> Span:
        """Record an already-finished span."""
        s = self.begin(name, pid, tid, t0, cat=cat, trace=trace, args=args,
                       phase=phase)
        s.t1 = t1
        return s

    def root(
        self,
        name: str,
        pid: str,
        tid: str,
        t0: float,
        cat: str = "request",
        args: Optional[Dict[str, Any]] = None,
    ) -> Tuple[Span, TraceContext]:
        """Open a root span for a new request; returns the span plus the
        trace context to stamp onto the request's packets."""
        trace_id = next(self._trace_ids)
        span = Span(
            name, cat, pid, tid, t0,
            span_id=next(self._span_ids),
            trace_id=trace_id,
            parent_id=None,
            args=args,
        )
        self.spans.append(span)
        return span, TraceContext(trace_id, span.span_id)

    # ----------------------------------------------------------- queries
    def finished_spans(self) -> List[Span]:
        return [s for s in self.spans if s.t1 is not None]

    def spans_by_cat(self, cat: str) -> List[Span]:
        return [s for s in self.spans if s.cat == cat]

    def spans_for_trace(self, trace_id: int) -> List[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def reset(self) -> None:
        """Drop recorded data (the enabled flag is left untouched)."""
        self.spans.clear()
        self.metrics = MetricsRegistry()
