"""Merge per-partition telemetry sinks into one stream.

The partitioned engine (:mod:`repro.simnet.parallel`) gives every
partition its own :class:`~repro.telemetry.spans.Telemetry` so the hot
instrumentation path stays lock-free and identical to the serial
kernel.  Trace/span id streams are offset per partition at construction
time (rank ``r`` allocates ``1 + r * 10**9, ...``), so ids never
collide and merging is pure concatenation — no re-numbering pass.

:func:`merge_telemetry` produces a plain :class:`Telemetry` snapshot:

* **spans** — concatenated and sorted by ``(t0, t1, pid, tid, name)``,
  restoring the single global timeline exporters expect;
* **counters** — summed by name (partition slices of one logical
  component, e.g. the distributed star switch, share a name);
* **gauges** — unique names pass through; colliding names are rebuilt
  by replaying all samples in ``(time, rank)`` order;
* **histograms** — unique names pass through; colliding names are
  concatenated in rank order.

:class:`MergedTelemetry` wraps the live per-partition sinks behind the
``Telemetry`` API: *writes* (``root``/``begin``/``span``/``end``) go to
the driver partition's sink, *queries* (``spans``/``metrics``/...)
rebuild the merged snapshot on access.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import Span, Telemetry

__all__ = ["merge_telemetry", "MergedTelemetry", "PARTITION_ID_STRIDE"]

#: id-stream offset between partitions: rank r allocates trace/span ids
#: from ``1 + r * PARTITION_ID_STRIDE`` — collision-free for any
#: realistic span count, keeping merged ids stable without re-numbering
PARTITION_ID_STRIDE = 1_000_000_000


def _span_key(s: Span) -> Tuple[float, float, str, str, str]:
    t1 = s.t1 if s.t1 is not None else float("inf")
    return (s.t0, t1, s.pid, s.tid, s.name)


def merge_telemetry(parts: Sequence[Telemetry]) -> Telemetry:
    """Snapshot-merge partition sinks into one plain :class:`Telemetry`.

    The result is a read-side view: instruments with a unique name are
    shared (not copied) with the source registries.
    """
    out = Telemetry(enabled=any(p.enabled for p in parts))
    out.spans = sorted((s for p in parts for s in p.spans), key=_span_key)
    m = out.metrics = MetricsRegistry()
    for name in sorted({n for p in parts for n in p.metrics.counters}):
        owners = [p.metrics.counters[name] for p in parts
                  if name in p.metrics.counters]
        if len(owners) == 1:
            m.counters[name] = owners[0]
        else:
            c = m.counters[name] = Counter(name)
            c.value = sum(o.value for o in owners)
    for name in sorted({n for p in parts for n in p.metrics.gauges}):
        owners = [(rank, p.metrics.gauges[name]) for rank, p in enumerate(parts)
                  if name in p.metrics.gauges]
        if len(owners) == 1:
            m.gauges[name] = owners[0][1]
        else:
            m.gauges[name] = _replay_gauges(name, owners)
    for name in sorted({n for p in parts for n in p.metrics.histograms}):
        owners = [p.metrics.histograms[name] for p in parts
                  if name in p.metrics.histograms]
        if len(owners) == 1:
            m.histograms[name] = owners[0]
        else:
            h = Histogram(name)
            for o in owners:
                h.values.extend(o.values)
            m.histograms[name] = h
    return out


def _replay_gauges(name: str, owners: List[Tuple[int, Gauge]]) -> Gauge:
    """Rebuild one gauge by replaying all samples in (time, rank) order."""
    samples = sorted(
        (t, rank, v)
        for rank, g in owners
        for t, v in zip(g.times, g.values)
    )
    merged = Gauge(name)
    for t, _rank, v in samples:
        merged.set(t, v)
    return merged


class MergedTelemetry:
    """Live Telemetry facade over per-partition sinks.

    Mutations delegate to the driver partition (rank 0); queries merge
    on access.  ``reset()`` resets every partition sink (their id
    streams keep running, so offsets survive a reset).
    """

    def __init__(self, parts: Sequence[Telemetry]):
        self._parts = list(parts)

    # ------------------------------------------------------ master switch
    @property
    def enabled(self) -> bool:
        return self._parts[0].enabled

    @enabled.setter
    def enabled(self, on: bool) -> None:
        for p in self._parts:
            p.enabled = on

    # ------------------------------------------------------------ writes
    @property
    def _driver(self) -> Telemetry:
        return self._parts[0]

    def begin(self, *args: Any, **kw: Any) -> Span:
        return self._driver.begin(*args, **kw)

    @staticmethod
    def end(span: Span, t1: float) -> Span:
        return Telemetry.end(span, t1)

    def span(self, *args: Any, **kw: Any) -> Span:
        return self._driver.span(*args, **kw)

    def root(self, *args: Any, **kw: Any):
        return self._driver.root(*args, **kw)

    # ----------------------------------------------------------- queries
    @property
    def spans(self) -> List[Span]:
        return merge_telemetry(self._parts).spans

    @property
    def metrics(self) -> MetricsRegistry:
        return merge_telemetry(self._parts).metrics

    def finished_spans(self) -> List[Span]:
        return [s for s in self.spans if s.t1 is not None]

    def spans_by_cat(self, cat: str) -> List[Span]:
        return [s for s in self.spans if s.cat == cat]

    def spans_for_trace(self, trace_id: int) -> List[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def snapshot(self) -> Telemetry:
        """A frozen plain-:class:`Telemetry` merge (for exporters)."""
        return merge_telemetry(self._parts)

    def reset(self) -> None:
        for p in self._parts:
            p.reset()
