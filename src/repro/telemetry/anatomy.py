"""Latency anatomy: exact critical-path decomposition of request spans.

The raw telemetry of a run is a pile of spans — wire serializations,
HPU handler executions, PCIe crossings, retransmission backoffs — all
linked to their originating request by ``trace_id``.  This module turns
that pile into the paper's actual figures: *where did the latency go?*

Two complementary views per operation:

**Phase decomposition** (:func:`decompose`).  Every instant of the
request's ``[t0, t1)`` window is attributed to exactly one *phase*.
Spans carry a phase tag (``wire``, ``hpu``, ``dma``, ...); where tagged
spans overlap — a DMA flushing while the payload handler still runs —
the instant goes to the highest-priority phase (:data:`PRIORITY`), and
time covered by no span at all lands in ``other`` (propagation delays,
switch/NIC pipeline latencies, completion polling).  Because the phases
partition the window, they **sum exactly to the end-to-end latency**
(to float rounding, far below 1 ns) — the invariant the SLO regression
tracker and the CI gate both assert.

``retransmit`` sits at the *bottom* of the priority order: a backoff
span only claims time in which nothing else made progress, so under
seeded loss the decomposition shows precisely the latency the fault
added, not double-counted wire time.

**Critical path** (:func:`critical_path`).  A backwards "last finisher"
walk over the request's concurrent child spans: starting from the
request's completion, repeatedly step to the span that finished latest
and jump to its start.  Gaps (no span active) become explicit ``wait``
steps, so the returned steps also tile the window exactly.

Both views are pure post-hoc queries: they never mutate the telemetry
sink and cost nothing while the simulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .spans import Span, Telemetry

__all__ = [
    "PHASES",
    "PRIORITY",
    "OpAnatomy",
    "CriticalStep",
    "decompose",
    "decompose_trace",
    "critical_path",
    "phase_summary",
]

#: every latency-anatomy phase, in pipeline order (`other` = time covered
#: by no tagged span: propagation, switch/NIC pipelines, completion poll)
PHASES = (
    "submit",      # WQE build + doorbell + NIC tx pipeline
    "host_queue",  # waiting in the sender's egress queue / send loop
    "wire",        # packet serialization onto links
    "hpu",         # PsPIN handler execution
    "cpu",         # host CPU execution (RPC / CPU-replication paths)
    "dma",         # PCIe crossings, NVMe programs, commit-to-durability
    "ack",         # serialization of ack / nack / response packets
    "retransmit",  # RTO backoff: stalled time added by seeded faults
    "other",       # propagation, switch latency, rx pipelines, CQ poll
)

#: attribution priority for overlapping spans, highest first.  Compute
#: (hpu/cpu) beats the DMA it overlaps with, so ``dma`` is the
#: *non-overlapped* flush tail that actually gates the ack;
#: ``retransmit`` is last so backoff only claims otherwise-idle time.
PRIORITY = ("hpu", "cpu", "dma", "ack", "wire", "submit", "host_queue", "retransmit")

_PRIO_INDEX = {p: i for i, p in enumerate(PRIORITY)}
_N_PRIO = len(PRIORITY)


@dataclass
class OpAnatomy:
    """Exact phase decomposition of one request."""

    trace_id: int
    name: str
    protocol: str
    op: str
    nbytes: int
    ok: bool
    t0: float
    t1: float
    phases: Dict[str, float] = field(default_factory=dict)
    n_spans: int = 0

    @property
    def end_to_end_ns(self) -> float:
        return self.t1 - self.t0

    @property
    def sum_ns(self) -> float:
        return sum(self.phases.values())

    @property
    def sum_error_ns(self) -> float:
        """Decomposition defect: 0 up to float rounding (well under 1 ns)."""
        return self.sum_ns - self.end_to_end_ns

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "protocol": self.protocol,
            "op": self.op,
            "bytes": self.nbytes,
            "ok": self.ok,
            "end_to_end_ns": self.end_to_end_ns,
            "phases": dict(self.phases),
            "sum_error_ns": self.sum_error_ns,
        }


@dataclass
class CriticalStep:
    """One hop of a request's critical path."""

    name: str
    phase: str
    pid: str
    tid: str
    t0: float
    t1: float

    @property
    def duration_ns(self) -> float:
        return self.t1 - self.t0


# ------------------------------------------------------------ decomposition
def _phase_intervals(
    root: Span, children: Iterable[Span]
) -> List[Tuple[float, float, int]]:
    """Children clipped to the root window as (t0, t1, priority) tuples."""
    lo, hi = root.t0, root.t1
    out: List[Tuple[float, float, int]] = []
    for s in children:
        if s.t1 is None or s.phase is None:
            continue
        prio = _PRIO_INDEX.get(s.phase, _N_PRIO)
        a = s.t0 if s.t0 > lo else lo
        b = s.t1 if s.t1 < hi else hi
        if b > a:
            out.append((a, b, prio))
    return out


def _attribute(t0: float, t1: float, intervals: List[Tuple[float, float, int]]) -> Dict[str, float]:
    """Sweep the elementary segments of ``[t0, t1)``, crediting each to
    the highest-priority active phase (``other`` when none is active).
    The segments partition the window, so the credited times sum to
    ``t1 - t0`` up to float rounding."""
    phases = dict.fromkeys(PHASES, 0.0)
    if t1 <= t0:
        return phases
    events: List[Tuple[float, int, int]] = []
    for a, b, prio in intervals:
        events.append((a, prio, 1))
        events.append((b, prio, -1))
    events.sort(key=lambda e: e[0])
    # one extra slot for phases tagged outside PRIORITY ("retransmit"):
    # they claim time only when nothing ranked is active
    counts = [0] * (_N_PRIO + 1)
    retrans_prio = _PRIO_INDEX.get("retransmit", _N_PRIO)

    def credit(a: float, b: float) -> None:
        for i in range(_N_PRIO + 1):
            if counts[i] > 0:
                name = PRIORITY[i] if i < _N_PRIO else "retransmit"
                phases[name] += b - a
                return
        phases["other"] += b - a

    prev = t0
    j, n = 0, len(events)
    while j < n:
        t = events[j][0]
        if t > prev:
            credit(prev, t)
            prev = t
        while j < n and events[j][0] == t:
            _, prio, delta = events[j]
            counts[prio if prio < _N_PRIO else _N_PRIO] += delta
            j += 1
    if t1 > prev:
        credit(prev, t1)
    # Fold accumulated rounding into `other` so the phases sum to the
    # end-to-end latency as exactly as floats allow.
    named = sum(phases[p] for p in PHASES if p != "other")
    residual = (t1 - t0) - named
    phases["other"] = residual if residual > 0.0 else 0.0
    return phases


def decompose_trace(root: Span, children: Iterable[Span]) -> OpAnatomy:
    """Phase decomposition of one finished request span."""
    assert root.t1 is not None, "decompose_trace needs a finished root"
    intervals = _phase_intervals(root, children)
    phases = _attribute(root.t0, root.t1, intervals)
    args = root.args or {}
    return OpAnatomy(
        trace_id=root.trace_id if root.trace_id is not None else -1,
        name=root.name,
        protocol=str(args.get("protocol", "")),
        op=str(args.get("op", "")),
        nbytes=int(args.get("bytes", 0)),
        ok=bool(args.get("ok", True)),
        t0=root.t0,
        t1=root.t1,
        phases=phases,
        n_spans=len(intervals),
    )


def _traces(tel: Telemetry) -> List[Tuple[Span, List[Span]]]:
    """(root, children) per finished request, in root start order."""
    by_trace: Dict[int, List[Span]] = {}
    roots: List[Span] = []
    for s in tel.spans:
        if s.trace_id is None:
            continue
        if s.cat == "request":
            if s.t1 is not None:
                roots.append(s)
        else:
            by_trace.setdefault(s.trace_id, []).append(s)
    roots.sort(key=lambda r: (r.t0, r.span_id))
    return [(r, by_trace.get(r.trace_id, [])) for r in roots]


def decompose(tel: Telemetry) -> List[OpAnatomy]:
    """Phase decomposition of every finished request in the sink."""
    return [decompose_trace(root, kids) for root, kids in _traces(tel)]


# ------------------------------------------------------------ critical path
def critical_path(tel: Telemetry, trace_id: int) -> List[CriticalStep]:
    """Backwards last-finisher walk over one request's child spans.

    The returned steps tile ``[root.t0, root.t1)`` exactly: intervals in
    which no child span was active appear as explicit ``wait`` steps
    (phase ``other``), so ``sum(step.duration_ns)`` equals the request's
    end-to-end latency.
    """
    root = None
    for s in tel.spans:
        if s.cat == "request" and s.trace_id == trace_id and s.t1 is not None:
            root = s
            break
    if root is None:
        raise KeyError(f"no finished request span for trace {trace_id}")
    spans = [
        s
        for s in tel.spans
        if s.trace_id == trace_id
        and s is not root
        and s.t1 is not None
        and s.phase is not None
        and s.t1 > root.t0
        and s.t0 < root.t1
    ]
    steps: List[CriticalStep] = []
    cur = root.t1
    while cur > root.t0:
        best: Optional[Span] = None
        best_end = root.t0
        for s in spans:
            if s.t0 >= cur:
                continue
            end = s.t1 if s.t1 < cur else cur
            if end <= root.t0:
                continue
            # latest finisher wins; ties go to the earliest starter so
            # the walk jumps as far back as possible in one step
            if best is None or end > best_end or (end == best_end and s.t0 < best.t0):
                best, best_end = s, end
        if best is None:
            steps.append(CriticalStep("wait", "other", root.pid, root.tid, root.t0, cur))
            break
        if best_end < cur:
            steps.append(CriticalStep("wait", "other", root.pid, root.tid, best_end, cur))
        start = best.t0 if best.t0 > root.t0 else root.t0
        steps.append(
            CriticalStep(best.name, best.phase or "other", best.pid, best.tid, start, best_end)
        )
        cur = start
    steps.reverse()
    return steps


# ---------------------------------------------------------------- summaries
def phase_summary(ops: List[OpAnatomy]) -> Dict[str, Dict[str, Optional[float]]]:
    """Per-phase distribution statistics over a population of operations.

    Returns ``{phase: summarize(...)}`` for every phase plus an
    ``end_to_end`` entry — the shape consumed by :mod:`repro.slo`.
    """
    from ..simnet.trace import summarize

    out: Dict[str, Dict[str, Optional[float]]] = {}
    for phase in PHASES:
        out[phase] = summarize([op.phases.get(phase, 0.0) for op in ops])
    out["end_to_end"] = summarize([op.end_to_end_ns for op in ops])
    return out
