"""Flat metrics export (JSON / CSV) and utilization summaries.

The JSON dump is the machine-readable side of the BENCH tables: a
single object with ``counters`` / ``gauges`` / ``histograms`` sections
plus the simulator self-profile.  The CSV form is long-format
(kind, name, stat, value) so spreadsheet pivoting works without custom
parsing.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, Optional

from .spans import Telemetry

__all__ = ["metrics_snapshot", "dump_metrics", "utilization_report"]


def metrics_snapshot(
    tel: Telemetry,
    now: Optional[float] = None,
    profile: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """JSON-ready snapshot of the metrics registry (+ optional simulator
    self-profile from :meth:`repro.simnet.engine.Simulator.profile`)."""
    snap = tel.metrics.to_dict(now)
    snap["sim_now_ns"] = now
    snap["n_spans"] = len(tel.spans)
    if profile is not None:
        snap["simulator_profile"] = profile
    return snap


def dump_metrics(
    tel: Telemetry,
    path: str,
    fmt: str = "json",
    now: Optional[float] = None,
    profile: Optional[Dict[str, Any]] = None,
) -> str:
    """Write the metrics snapshot as JSON or long-form CSV."""
    if fmt == "json":
        with open(path, "w") as fh:
            json.dump(metrics_snapshot(tel, now, profile), fh, indent=2, sort_keys=True)
    elif fmt == "csv":
        rows = tel.metrics.csv_rows(now)
        with open(path, "w", newline="") as fh:
            w = csv.DictWriter(fh, fieldnames=["kind", "name", "stat", "value"])
            w.writeheader()
            w.writerows(rows)
    else:
        raise ValueError(f"unknown metrics format {fmt!r} (json or csv)")
    return path


def utilization_report(
    tel: Telemetry, now: float, n_hpus_per_node: int
) -> Dict[str, float]:
    """Headline utilization fractions from the standard instrument names.

    * ``max_hpu_busy`` — busiest accelerator's mean HPU occupancy
      (``pspin.<node>.hpu_busy_ns`` over ``now * n_hpus``);
    * ``max_link_busy`` — busiest port's wire occupancy
      (``link.<owner>.busy_ns`` over ``now``);
    * ``max_pcie_busy`` — busiest host interconnect occupancy.

    Zero when the corresponding subsystem emitted nothing (e.g. a
    protocol that never touches an accelerator).
    """
    m = tel.metrics
    if now <= 0:
        return {"max_hpu_busy": 0.0, "max_link_busy": 0.0, "max_pcie_busy": 0.0}
    return {
        "max_hpu_busy": (
            m.max_matching("pspin.", ".hpu_busy_ns") / (now * n_hpus_per_node)
            if n_hpus_per_node > 0
            else 0.0
        ),
        "max_link_busy": m.max_matching("link.", ".busy_ns") / now,
        "max_pcie_busy": m.max_matching("pcie.", ".busy_ns") / now,
    }
