"""repro.telemetry — end-to-end observability for the simulation stack.

Three pieces (see README "Observability" and docs/API.md):

* **spans** — request-scoped timelines: each DFS write/read opens a root
  span; the trace context rides on packets so NIC handler executions,
  wire serialization, and host commits attach as children;
* **metrics** — counters / time-weighted gauges / histograms registered
  by name, emitted by every layer (links, switch, PsPIN, PCIe, CPU,
  NVMe, protocol drivers);
* **exporters** — Chrome/Perfetto ``trace_event`` JSON
  (:func:`write_chrome_trace`, openable at ``ui.perfetto.dev``) and
  flat JSON/CSV metrics dumps (:func:`dump_metrics`).

Entry points::

    tb = build_testbed(n_storage=4, telemetry=True)   # or:
    tb.sim.telemetry.enabled = True

    ... run a workload ...

    from repro.telemetry import write_chrome_trace, dump_metrics
    write_chrome_trace(tb.sim.telemetry, "out.trace.json")
    dump_metrics(tb.sim.telemetry, "metrics.json", now=tb.sim.now)

or from the shell: ``python -m repro trace --protocol spin --replication 3``.
"""

from .anatomy import (
    PHASES,
    PRIORITY,
    CriticalStep,
    OpAnatomy,
    critical_path,
    decompose,
    decompose_trace,
    phase_summary,
)
from .export import dump_metrics, metrics_snapshot, utilization_report
from .merge import PARTITION_ID_STRIDE, MergedTelemetry, merge_telemetry
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .perfetto import chrome_trace, trace_events, write_chrome_trace
from .spans import Span, Telemetry, TraceContext

__all__ = [
    "PARTITION_ID_STRIDE",
    "PHASES",
    "PRIORITY",
    "Counter",
    "CriticalStep",
    "Gauge",
    "Histogram",
    "MergedTelemetry",
    "MetricsRegistry",
    "OpAnatomy",
    "Span",
    "Telemetry",
    "TraceContext",
    "chrome_trace",
    "critical_path",
    "decompose",
    "decompose_trace",
    "dump_metrics",
    "merge_telemetry",
    "metrics_snapshot",
    "phase_summary",
    "trace_events",
    "utilization_report",
    "write_chrome_trace",
]
