"""Chrome / Perfetto ``trace_event`` export.

Converts a :class:`~repro.telemetry.spans.Telemetry` sink into the JSON
Trace Event Format understood by ``ui.perfetto.dev`` and
``chrome://tracing``:

* every distinct span ``pid`` becomes a *process* (with a
  ``process_name`` metadata record), every distinct ``(pid, tid)`` a
  *thread* — so the timeline groups as
  ``requests / net / pspin:sn0 / host:sn0 / ...``;
* finished spans become complete (``"ph": "X"``) events.  Timestamps
  are microseconds in the wire format, so simulated nanoseconds are
  divided by 1000 (fractional µs are legal and preserved);
* gauges become counter (``"ph": "C"``) tracks, one per gauge name.

The exporter is pure data-out: it never mutates the telemetry sink, and
the produced object is ``json.dumps``-able as-is.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .spans import Telemetry

__all__ = ["trace_events", "chrome_trace", "write_chrome_trace"]

_NS_PER_US = 1000.0


def trace_events(
    tel: Telemetry, include_counters: bool = True
) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list: metadata + slices (+ counter tracks)."""
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    meta: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []

    def pid_of(name: str) -> int:
        p = pids.get(name)
        if p is None:
            p = pids[name] = len(pids) + 1
            meta.append({
                "ph": "M", "name": "process_name", "pid": p, "tid": 0,
                "args": {"name": name},
            })
        return p

    def tid_of(pid_name: str, tid_name: str) -> tuple:
        key = (pid_name, tid_name)
        t = tids.get(key)
        if t is None:
            p = pid_of(pid_name)
            t = tids[key] = (p, len(tids) + 1)
            meta.append({
                "ph": "M", "name": "thread_name", "pid": p, "tid": t[1],
                "args": {"name": tid_name},
            })
        return t

    for span in tel.spans:
        if span.t1 is None:
            continue  # still open: no duration to draw
        p, t = tid_of(span.pid, span.tid)
        args: Dict[str, Any] = dict(span.args) if span.args else {}
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.cat,
            "pid": p,
            "tid": t,
            "ts": span.t0 / _NS_PER_US,
            "dur": (span.t1 - span.t0) / _NS_PER_US,
            "args": args,
        })

    if include_counters:
        for name, gauge in sorted(tel.metrics.gauges.items()):
            p = pid_of("metrics")
            for ts, v in zip(gauge.times, gauge.values):
                events.append({
                    "ph": "C",
                    "name": name,
                    "pid": p,
                    "tid": 0,
                    "ts": ts / _NS_PER_US,
                    "args": {"value": v},
                })

    events.sort(key=lambda e: e["ts"])
    return meta + events


def chrome_trace(tel: Telemetry, include_counters: bool = True) -> Dict[str, Any]:
    """The complete JSON-object form of the trace file."""
    return {
        "traceEvents": trace_events(tel, include_counters=include_counters),
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.telemetry",
            "time_unit_note": "ts/dur are microseconds of simulated time",
        },
    }


def write_chrome_trace(
    tel: Telemetry, path: str, include_counters: bool = True
) -> str:
    """Write the trace file; returns the path for chaining."""
    doc = chrome_trace(tel, include_counters=include_counters)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return path
