"""Chrome / Perfetto ``trace_event`` export.

Converts a :class:`~repro.telemetry.spans.Telemetry` sink into the JSON
Trace Event Format understood by ``ui.perfetto.dev`` and
``chrome://tracing``:

* every distinct span ``pid`` becomes a *process* (with a
  ``process_name`` metadata record), every distinct ``(pid, tid)`` a
  *thread*.  Process names are prefixed with their simulated
  *component* (``[request] requests``, ``[wire] net``,
  ``[hpu] pspin:sn0``, ``[host] host:sn0``) and carry a
  ``process_sort_index`` so the timeline groups pipeline-order by
  component instead of alphabetically by bare id;
* finished spans become complete (``"ph": "X"``) events.  Timestamps
  are microseconds in the wire format, so simulated nanoseconds are
  divided by 1000 (fractional µs are legal and preserved).  Spans
  tagged with a latency-anatomy phase (:mod:`repro.telemetry.anatomy`)
  get the phase in their ``args`` and a per-phase ``cname`` color, so
  e.g. retransmission backoffs are instantly visible in red;
* gauges become counter (``"ph": "C"``) tracks, one per gauge name.

The exporter is pure data-out: it never mutates the telemetry sink, and
the produced object is ``json.dumps``-able as-is.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .spans import Telemetry

__all__ = ["component_of", "trace_events", "chrome_trace", "write_chrome_trace"]

_NS_PER_US = 1000.0

#: simulated component of a span pid, in pipeline display order
_COMPONENTS = (
    ("requests", "request"),
    ("net", "wire"),
    ("pspin", "hpu"),
    ("host", "host"),
    ("metrics", "metrics"),
)
_SORT_INDEX = {comp: i for i, (_, comp) in enumerate(_COMPONENTS)}


def component_of(pid_name: str) -> str:
    """Component of a span pid: ``pspin:sn0`` -> ``hpu``, ``net`` ->
    ``wire``, ... (unknown pids group under ``other``)."""
    head = pid_name.split(":", 1)[0]
    for prefix, comp in _COMPONENTS:
        if head == prefix:
            return comp
    return "other"


#: Chrome trace-viewer reserved color per latency-anatomy phase —
#: distinct hues so a glance separates wire time from compute from
#: fault-induced stalls (retransmit = "terrible" = red)
_PHASE_CNAME = {
    "submit": "startup",
    "host_queue": "grey",
    "wire": "rail_response",
    "hpu": "rail_animation",
    "cpu": "rail_idle",
    "dma": "rail_load",
    "ack": "good",
    "retransmit": "terrible",
}


def trace_events(
    tel: Telemetry, include_counters: bool = True
) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list: metadata + slices (+ counter tracks)."""
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    meta: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []

    def pid_of(name: str) -> int:
        p = pids.get(name)
        if p is None:
            p = pids[name] = len(pids) + 1
            comp = component_of(name)
            meta.append({
                "ph": "M", "name": "process_name", "pid": p, "tid": 0,
                "args": {"name": f"[{comp}] {name}"},
            })
            meta.append({
                "ph": "M", "name": "process_sort_index", "pid": p, "tid": 0,
                "args": {"sort_index": _SORT_INDEX.get(comp, len(_SORT_INDEX))},
            })
        return p

    def tid_of(pid_name: str, tid_name: str) -> tuple:
        key = (pid_name, tid_name)
        t = tids.get(key)
        if t is None:
            p = pid_of(pid_name)
            t = tids[key] = (p, len(tids) + 1)
            meta.append({
                "ph": "M", "name": "thread_name", "pid": p, "tid": t[1],
                "args": {"name": tid_name},
            })
        return t

    for span in tel.spans:
        if span.t1 is None:
            continue  # still open: no duration to draw
        p, t = tid_of(span.pid, span.tid)
        args: Dict[str, Any] = dict(span.args) if span.args else {}
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event: Dict[str, Any] = {
            "ph": "X",
            "name": span.name,
            "cat": span.cat,
            "pid": p,
            "tid": t,
            "ts": span.t0 / _NS_PER_US,
            "dur": (span.t1 - span.t0) / _NS_PER_US,
            "args": args,
        }
        if span.phase is not None:
            args["phase"] = span.phase
            cname = _PHASE_CNAME.get(span.phase)
            if cname is not None:
                event["cname"] = cname
        events.append(event)

    if include_counters:
        for name, gauge in sorted(tel.metrics.gauges.items()):
            p = pid_of("metrics")
            for ts, v in zip(gauge.times, gauge.values):
                events.append({
                    "ph": "C",
                    "name": name,
                    "pid": p,
                    "tid": 0,
                    "ts": ts / _NS_PER_US,
                    "args": {"value": v},
                })

    events.sort(key=lambda e: e["ts"])
    return meta + events


def chrome_trace(tel: Telemetry, include_counters: bool = True) -> Dict[str, Any]:
    """The complete JSON-object form of the trace file."""
    return {
        "traceEvents": trace_events(tel, include_counters=include_counters),
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.telemetry",
            "time_unit_note": "ts/dur are microseconds of simulated time",
        },
    }


def write_chrome_trace(
    tel: Telemetry, path: str, include_counters: bool = True
) -> str:
    """Write the trace file; returns the path for chaining."""
    doc = chrome_trace(tel, include_counters=include_counters)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return path
