"""Metrics instruments: counters, gauges, time-weighted histograms.

Three instrument kinds, mirroring the usual metrics taxonomy:

* :class:`Counter` — a monotonically increasing sum (packets forwarded,
  link busy-nanoseconds, HPU busy-nanoseconds);
* :class:`Gauge` — a sampled level with *time-weighted* averaging
  (egress queue depth, concurrently active HPUs per cluster).  Samples
  are kept so exporters can render a Perfetto counter track;
* :class:`Histogram` — a value distribution summarized with the
  linear-interpolation percentiles of
  :func:`repro.simnet.trace.summarize` (per-protocol request latency,
  per-handler execution time).

Instruments are created lazily by name through
:class:`MetricsRegistry`; emitting into one that nobody reads is cheap,
reading one that nobody wrote returns zeros.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "HandleCache"]


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def to_dict(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge:
    """A sampled level with time-weighted statistics.

    ``set(t, v)`` records the level ``v`` holding from time ``t``
    onwards; :meth:`time_average` integrates the step function up to a
    query time.  The raw samples double as a Perfetto counter track.
    """

    __slots__ = ("name", "times", "values", "_area", "_last_t", "_last_v", "max")

    def __init__(self, name: str):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []
        self._area = 0.0
        self._last_t = 0.0
        self._last_v = 0.0
        self.max = 0.0

    def set(self, t: float, v: float) -> None:
        if t > self._last_t:
            self._area += self._last_v * (t - self._last_t)
            self._last_t = t
        self._last_v = v
        if v > self.max:
            self.max = v
        self.times.append(t)
        self.values.append(v)

    @property
    def last(self) -> float:
        return self._last_v

    def time_average(self, t_end: Optional[float] = None) -> float:
        """Mean level over ``[0, t_end]`` (defaults to the last sample)."""
        t = self._last_t if t_end is None else t_end
        if t <= 0:
            return 0.0
        area = self._area
        if t > self._last_t:
            area += self._last_v * (t - self._last_t)
        return area / t

    def to_dict(self, now: Optional[float] = None) -> Dict[str, float]:
        return {
            "last": self.last,
            "max": self.max,
            "time_average": self.time_average(now),
            "n_samples": float(len(self.times)),
        }


class Histogram:
    """A value distribution (latencies, sizes)."""

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, v: float) -> None:
        self.values.append(v)

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return float(sum(self.values))

    def summary(self) -> Dict[str, float]:
        # Lazy import: telemetry must stay import-cycle-free with simnet
        # (the engine imports this package at module load).
        from ..simnet.trace import summarize

        return summarize(self.values)

    def to_dict(self) -> Dict[str, float]:
        return self.summary()


class HandleCache:
    """Pre-resolved instrument handles for one component.

    Instrument names like ``link.sn0.queue_depth`` are stable for the
    lifetime of a component, yet the old instrumentation sites rebuilt
    the f-string and re-did the registry lookup on every packet.  A
    component instead constructs ``HandleCache(build)`` once, where
    ``build(registry)`` resolves all its instruments, and calls
    ``get(tel.metrics)`` per event: the handles are rebuilt only when
    the registry object changes (i.e. after ``Telemetry.reset()``), so
    the steady-state cost is one identity comparison.
    """

    __slots__ = ("_build", "_registry", "_handles")

    def __init__(self, build):
        self._build = build
        self._registry: Optional["MetricsRegistry"] = None
        self._handles: Any = None

    def get(self, registry: "MetricsRegistry") -> Any:
        if registry is not self._registry:
            self._handles = self._build(registry)
            self._registry = registry
        return self._handles


class MetricsRegistry:
    """Name-indexed instrument store with lazy creation."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ----------------------------------------------------- get-or-create
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    # ------------------------------------------------------------ export
    def to_dict(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Flat JSON-ready snapshot of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.to_dict(now) for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.to_dict() for n, h in sorted(self.histograms.items())},
        }

    def csv_rows(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Long-form rows: one (kind, name, stat, value) per statistic."""
        rows: List[Dict[str, Any]] = []
        for n, c in sorted(self.counters.items()):
            rows.append({"kind": "counter", "name": n, "stat": "value", "value": c.value})
        for n, g in sorted(self.gauges.items()):
            for stat, v in g.to_dict(now).items():
                rows.append({"kind": "gauge", "name": n, "stat": stat, "value": v})
        for n, h in sorted(self.histograms.items()):
            for stat, v in h.to_dict().items():
                rows.append({"kind": "histogram", "name": n, "stat": stat, "value": v})
        return rows

    def sum_matching(self, prefix: str, suffix: str = "") -> float:
        """Sum of all counters whose name starts/ends with the given
        affixes (e.g. ``sum_matching("link.", ".busy_ns")``)."""
        return sum(
            c.value
            for n, c in self.counters.items()
            if n.startswith(prefix) and n.endswith(suffix)
        )

    def max_matching(self, prefix: str, suffix: str = "") -> float:
        vals = [
            c.value
            for n, c in self.counters.items()
            if n.startswith(prefix) and n.endswith(suffix)
        ]
        return max(vals) if vals else 0.0
