"""Workload generators and measurement drivers.

Two measurement styles from the paper:

* **latency** — a single isolated write, reported request-to-response
  (Figs. 6, 9 left/center, 10, 15 left);
* **window-based goodput/bandwidth** — keep a window of operations in
  flight back to back and divide bytes by elapsed time (Fig. 9 right,
  Fig. 15 right; §VI-C(b): "common to window-based messaging
  benchmarks").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

import numpy as np

from .dfs.client import DfsClient
from .dfs.cluster import Testbed
from .protocols.base import WriteOutcome
from .simnet.engine import Event

__all__ = [
    "measure_write_latency",
    "measure_goodput",
    "measure_latency_distribution",
    "GoodputResult",
    "sweep",
    "optimal_chunk_size",
    "payload_bytes",
]


def payload_bytes(size: int, seed: int = 0) -> np.ndarray:
    """Deterministic pseudo-random payload (content-checkable)."""
    return np.random.default_rng(seed).integers(0, 256, size=size, dtype=np.uint8)


def measure_write_latency(
    client: DfsClient,
    path: str,
    size: int,
    protocol: str,
    warmup: int = 1,
    repeats: int = 3,
    **kw,
) -> float:
    """Median latency of isolated writes (first write warms structures)."""
    data = payload_bytes(size)
    samples = []
    for i in range(warmup + repeats):
        out = client.write_sync(path, data, protocol=protocol, **kw)
        if not out.ok:
            raise RuntimeError(f"write failed: {out.nacks}")
        if i >= warmup:
            samples.append(out.latency_ns)
    samples.sort()
    return samples[len(samples) // 2]


@dataclass
class GoodputResult:
    bytes_completed: int
    elapsed_ns: float
    n_ops: int

    @property
    def goodput_gbps(self) -> float:
        return self.bytes_completed * 8.0 / self.elapsed_ns if self.elapsed_ns else 0.0


def measure_goodput(
    testbed: Testbed,
    issue: Callable[[int], Event],
    n_ops: int,
    op_bytes: int,
    window: int = 16,
) -> GoodputResult:
    """Window-based goodput: keep ``window`` operations in flight.

    ``issue(i)`` posts operation ``i`` and returns its completion event.
    Elapsed time runs from the first issue to the last completion.
    """
    sim = testbed.sim
    t0 = sim.now
    in_flight: List[Event] = [issue(i) for i in range(min(window, n_ops))]
    issued = len(in_flight)
    completed = 0
    while completed < n_ops:
        # wait for the oldest op (FIFO window, deterministic)
        ev = in_flight.pop(0)
        out = sim.run_until_event(ev)
        if isinstance(out, WriteOutcome) and not out.ok:
            raise RuntimeError(f"write failed mid-window: {out.nacks}")
        completed += 1
        if issued < n_ops:
            in_flight.append(issue(issued))
            issued += 1
    return GoodputResult(
        bytes_completed=completed * op_bytes,
        elapsed_ns=sim.now - t0,
        n_ops=n_ops,
    )


def measure_latency_distribution(
    testbed: Testbed,
    issue: Callable[[int], Event],
    n_ops: int,
    window: int = 16,
) -> dict:
    """Per-operation latency distribution under load.

    Unlike :func:`measure_goodput` this records every operation's
    latency (from the outcome objects), returning the
    :func:`~repro.simnet.trace.summarize` statistics — useful for tail
    behaviour under contention (p99 vs median).
    """
    from .simnet.trace import summarize

    sim = testbed.sim
    in_flight: List[Event] = [issue(i) for i in range(min(window, n_ops))]
    issued = len(in_flight)
    latencies: List[float] = []
    while in_flight:
        ev = in_flight.pop(0)
        out = sim.run_until_event(ev)
        lat = getattr(out, "latency_ns", None)
        if lat is None:
            raise TypeError("issue() must yield outcomes with latency_ns")
        if isinstance(out, WriteOutcome) and not out.ok:
            raise RuntimeError(f"operation failed: {out.nacks}")
        latencies.append(lat)
        if issued < n_ops:
            in_flight.append(issue(issued))
            issued += 1
    return summarize(latencies)


def sweep(fn: Callable[[int], float], points: Iterable[int]) -> dict[int, float]:
    """Evaluate ``fn`` over a parameter sweep; returns {point: value}."""
    return {p: fn(p) for p in points}


def optimal_chunk_size(
    run: Callable[[int], float],
    candidates: Optional[Iterable[int]] = None,
) -> tuple[int, float]:
    """Pick the pipelining chunk size minimising ``run(chunk)`` —
    the paper reports CPU/HyperLoop strategies "with optimal chunk
    size" (§V-B).  Returns (best_chunk, best_latency)."""
    if candidates is None:
        candidates = [8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10]
    best = None
    for c in candidates:
        lat = run(c)
        if best is None or lat < best[1]:
            best = (c, lat)
    assert best is not None
    return best
