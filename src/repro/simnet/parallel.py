"""Partitioned conservative-time-window parallel DES engine.

The serial :class:`~repro.simnet.engine.Simulator` dispatches one global
heap.  This module shards one big simulation the way the paper shards
packet processing across PsPIN HPUs: the topology is cut at the switch
core into per-partition subgraphs (each host/NIC subtree plus its local
switch ports), every partition runs the *unmodified* serial kernel over
its own heap, and partitions advance in lock-stepped conservative time
windows.

**Lookahead.**  A packet crossing the cut is known one switch-traversal
latency before it can have any effect on the destination partition: the
serial switch schedules ``out.send(pkt)`` at ``arrival +
switch_latency_ns``.  With ``t_min`` the earliest pending event (or
boundary fire time) across all partitions, every partition can safely
run the window ``[t_min, t_min + switch_latency_ns)`` — any boundary
message generated inside the window fires at or after the horizon.

**Determinism.**  Boundary messages carry their exact serial fire time
and are injected into the destination heap — via the same absolute-time
``_call_at1(out.send, pkt, t)`` push the serial switch uses — sorted by
``(fire_t, source_rank, source_seq)``.  Packet / message / RDMA-request
ids are drawn from per-partition strided streams so id allocation is
order-independent.  The differential suite
(``tests/test_parallel_differential.py``) gates the construction:
completion times and telemetry must be byte-identical to the serial
kernel across 2/4/8-way cuts, all eight write protocols, with and
without seeded faults.

**Modes.**  ``inline`` steps every partition in one process (full
compatibility: driver-side Python may touch any node's state between
windows).  ``process`` forks partitions ``1..k-1`` into workers at the
first window (copy-on-write after construction) and keeps the driver
partition — clients, metadata, measurement — in the parent; boundary
packets cross on pipes.  Windows are identical in both modes, so
results are too; the parent's direct view of *remote* node memory is
stale in process mode (see ``docs/parallel_engine.md``).
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from ..telemetry.merge import PARTITION_ID_STRIDE, MergedTelemetry
from .engine import Event, Process, SimulationError, Simulator
from .network import NetConfig, Switch
from .topology import PartitionSpec

__all__ = [
    "ParallelSimulator",
    "PartitionedNetwork",
    "PartitionSwitch",
    "MultiEvent",
]

#: boundary-message tuple layout: (fire_t, src_rank, src_seq, dst_rank,
#: dst_name, pkt) — the first three fields are a unique total order, so
#: sorting never compares packets
_FIRE_T, _SRC_RANK, _SRC_SEQ, _DST_RANK, _DST, _PKT = range(6)


def _invoke(fn: Callable[[], None]) -> None:
    fn()


class _IdStreams:
    """One partition's strided slice of the global id spaces.

    ``packet._pkt_ids`` / ``packet._msg_ids`` / ``nic._greq_ids`` are
    module globals consumed at allocation time; rank ``r`` of ``k``
    partitions draws ``start + r`` with stride ``k + 1`` (the extra
    stream belongs to driver-side code between windows), so ids are
    globally unique without cross-partition coordination and each
    partition's sequence is independent of sibling scheduling.
    """

    __slots__ = ("pkt", "msg", "greq")

    def __init__(self, rank: int, stride: int):
        self.pkt = itertools.count(rank, stride)
        self.msg = itertools.count(rank, stride)
        self.greq = itertools.count(1 + rank, stride)

    def install(self) -> None:
        from ..rdma import nic as _nic
        from . import packet as _pkt

        _pkt._pkt_ids = self.pkt
        _pkt._msg_ids = self.msg
        _nic._greq_ids = self.greq


class _PartitionRuntime:
    """Per-partition boundary-message outbox."""

    __slots__ = ("rank", "outbox", "_seq")

    def __init__(self, rank: int):
        self.rank = rank
        self.outbox: List[tuple] = []
        self._seq = 0

    def emit(self, fire_t: float, dst_rank: int, dst: str, pkt: Any) -> None:
        self._seq += 1
        self.outbox.append((fire_t, self.rank, self._seq, dst_rank, dst, pkt))

    def take(self) -> List[tuple]:
        out = self.outbox
        self.outbox = []
        return out


class PartitionSwitch(Switch):
    """One partition's slice of the star switch.

    Local destinations take exactly the serial
    :meth:`~repro.simnet.network.Switch.forward` path.  A packet for an
    endpoint owned by another partition becomes a boundary message
    stamped with its serial fire time (``now + switch_latency_ns``); the
    coordinator replays the identical ``out.send`` push in the owning
    partition before the window containing that time.  Coalesced trains
    hit the inherited ``forward_train`` out-of-partition fallback, which
    de-coalesces into per-packet :meth:`forward` calls at the exact
    slow-path times — the PR 4 differential suite proves that path
    byte-identical to the coalesced one.
    """

    def __init__(
        self,
        sim: Simulator,
        cfg: NetConfig,
        rt: _PartitionRuntime,
        rank_of: Dict[str, int],
        name: str = "switch",
    ) -> None:
        super().__init__(sim, cfg, name=name)
        self._rt = rt
        self._rank = rt.rank
        self._rank_of = rank_of

    def forward(self, pkt: Any) -> None:
        self.rx_packets += 1
        out = self._out_ports.get(pkt.dst)
        if out is not None:
            tel = self.sim.telemetry
            if tel.enabled:
                self._handles.get(tel.metrics)[0].inc()
            self.sim._call_soon1(out.send, pkt, delay=self.cfg.switch_latency_ns)
            return
        dst_rank = self._rank_of.get(pkt.dst)
        routable = dst_rank is not None and dst_rank != self._rank
        tel = self.sim.telemetry
        if tel.enabled:
            rx, drops = self._handles.get(tel.metrics)
            rx.inc()
            if not routable:
                drops.inc()
        if not routable:
            raise KeyError(f"{self.name}: no route to {pkt.dst!r}")
        self._rt.emit(
            self.sim.now + self.cfg.switch_latency_ns, dst_rank, pkt.dst, pkt
        )


class _SwitchView:
    """Read-only aggregate over the per-partition switch slices."""

    __slots__ = ("_switches",)

    def __init__(self, switches: List[PartitionSwitch]):
        self._switches = switches

    @property
    def rx_packets(self) -> int:
        return sum(s.rx_packets for s in self._switches)

    def out_port(self, node_name: str):
        for s in self._switches:
            if node_name in s._out_ports:
                return s._out_ports[node_name]
        raise KeyError(node_name)


class PartitionedNetwork:
    """Star network sliced into one :class:`PartitionSwitch` per rank.

    API-compatible with :class:`~repro.simnet.network.Network` for the
    testbed's purposes: ``register`` attaches an endpoint to the switch
    slice of its partition (both link ports live on that partition's
    simulator), ``.switch`` is an aggregate view, ``min_rtt_ns`` is
    unchanged.
    """

    def __init__(self, psim: "ParallelSimulator", cfg: Optional[NetConfig] = None):
        self.psim = psim
        self.cfg = cfg or NetConfig()
        if psim.lookahead_ns > self.cfg.switch_latency_ns:
            raise SimulationError(
                f"lookahead {psim.lookahead_ns} ns exceeds the cut latency "
                f"(switch traversal {self.cfg.switch_latency_ns} ns)"
            )
        self.switches = [
            PartitionSwitch(sim, self.cfg, rt, psim._rank_of)
            for sim, rt in zip(psim.sims, psim._runtimes)
        ]
        self.endpoints: Dict[str, object] = {}
        psim._attach_network(self)

    def register(self, endpoint: Any) -> Any:
        name = endpoint.name
        if name in self.endpoints:
            raise ValueError(f"duplicate endpoint name {name!r}")
        rank = self.psim._rank_of.setdefault(name, 0)
        sw = self.switches[rank]
        ep_sim = getattr(endpoint, "sim", None)
        if ep_sim is self.psim:  # built on the facade -> driver partition
            ep_sim = self.psim.driver_sim
        if ep_sim is not None and ep_sim is not sw.sim:
            raise SimulationError(
                f"endpoint {name!r} was built on a different simulator than "
                f"its partition {rank} — construct it with "
                f"ParallelSimulator.sim_for({name!r})"
            )
        self.endpoints[name] = endpoint
        return sw.attach(endpoint)

    @property
    def switch(self) -> _SwitchView:
        return _SwitchView(self.switches)

    def min_rtt_ns(self) -> float:
        one_way = 2 * self.cfg.link_latency_ns + self.cfg.switch_latency_ns
        return 2 * one_way


class MultiEvent:
    """Cross-partition ``all_of``: a poll-based conjunction.

    The serial :class:`~repro.simnet.engine.AllOf` registers callbacks
    on its children, which requires every child to live on one
    simulator.  Partitioned workloads wait on events spread across
    partitions, so the facade polls between windows instead.  Child
    :class:`Process` failures are marked observed here and surface from
    :meth:`ParallelSimulator.run_until_event` (matching AllOf's
    fail-fast observer semantics) rather than crashing mid-window.
    """

    __slots__ = ("events", "name")

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)
        self.name = "all_of"
        for e in self.events:
            if isinstance(e, Process):
                e._observed = True

    @property
    def triggered(self) -> bool:
        return all(e.triggered for e in self.events)

    @property
    def exception(self) -> Optional[BaseException]:
        for e in self.events:
            if e.triggered and e.exception is not None:
                return e.exception
        return None

    @property
    def value(self) -> List[Any]:
        return [e.value for e in self.events]


class ParallelSimulator:
    """Coordinator facade over ``k`` per-partition serial kernels.

    Exposes the driver-facing subset of the
    :class:`~repro.simnet.engine.Simulator` API —
    ``run``/``run_until_event``/``process``/``timeout``/``event``/
    ``all_of``/``now``/``peek``/``profile`` — so testbeds, workloads,
    and experiments run unchanged.  Driver-side constructions delegate
    to :attr:`driver_sim` (partition 0); components living on other
    partitions must be built with their own partition's simulator
    (:meth:`sim_for`).
    """

    def __init__(self, spec: PartitionSpec, mode: str = "inline",
                 sanitize: bool = False):
        if mode not in ("inline", "process"):
            raise ValueError(f"unknown parallel mode {mode!r}")
        if sanitize and mode == "process":
            raise SimulationError(
                "sanitize=True needs inline partitions: worker-process "
                "findings would be lost at the pipe (use mode='inline')"
            )
        if spec.lookahead_ns <= 0:
            raise SimulationError(
                f"conservative windows need positive lookahead, "
                f"got {spec.lookahead_ns}"
            )
        self.spec = spec
        self.k = spec.k
        self.mode = mode
        self.lookahead_ns = spec.lookahead_ns
        self.sims = [Simulator(sanitize=sanitize) for _ in range(self.k)]
        #: cross-partition determinism auditor (sanitize runs only)
        self.audit = None
        if sanitize:
            from ..simsan import BoundaryAudit

            self.audit = BoundaryAudit()
        for rank, sim in enumerate(self.sims):
            # collision-free span/trace ids across partitions -> telemetry
            # merge is pure concatenation (see repro.telemetry.merge)
            sim.telemetry._trace_ids = itertools.count(1 + rank * PARTITION_ID_STRIDE)
            sim.telemetry._span_ids = itertools.count(1 + rank * PARTITION_ID_STRIDE)
        self.driver_sim = self.sims[0]
        self.telemetry = MergedTelemetry([s.telemetry for s in self.sims])
        self.faults = None  # driver partition's injector (testbed fills it)
        self._rank_of: Dict[str, int] = dict(spec.ranks)
        self._runtimes = [_PartitionRuntime(r) for r in range(self.k)]
        self._ids = [_IdStreams(r, self.k + 1) for r in range(self.k)]
        self._driver_ids = _IdStreams(self.k, self.k + 1)
        self._driver_ids.install()
        self._pending: List[List[tuple]] = [[] for _ in range(self.k)]
        self._net: Optional[PartitionedNetwork] = None
        self._workers: Optional[List["_Worker"]] = None
        self.rounds = 0
        self.boundary_messages = 0
        self._wall_s = 0.0

    # ------------------------------------------------------------ wiring
    def _attach_network(self, net: PartitionedNetwork) -> None:
        self._net = net

    def rank_of(self, name: str) -> int:
        """Partition rank owning endpoint ``name`` (driver rank 0 if
        unregistered — late control-plane nodes land with the driver)."""
        return self._rank_of.get(name, 0)

    def sim_for(self, name: str) -> Simulator:
        """The simulator an endpoint named ``name`` must be built on."""
        return self.sims[self.rank_of(name)]

    # ------------------------------------------- Simulator-API delegation
    @property
    def now(self) -> float:
        return max(sim.now for sim in self.sims)

    def event(self, name: str = "") -> Event:
        return self.driver_sim.event(name)

    def timeout(self, delay: float, value: Any = None):
        return self.driver_sim.timeout(delay, value)

    def timeout_at(self, t: float, value: Any = None) -> Event:
        return self.driver_sim.timeout_at(t, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return self.driver_sim.process(gen, name=name)

    def all_of(self, events: Iterable[Event]) -> MultiEvent:
        return MultiEvent(events)

    def any_of(self, events: Iterable[Event]):
        # callback-based: legal only when every child shares a simulator
        events = list(events)
        owners = {e.sim for e in events}
        if len(owners) > 1:
            raise SimulationError(
                "any_of across partitions is not supported; wait on a "
                "single partition's events or poll a MultiEvent"
            )
        return (owners.pop() if owners else self.driver_sim).any_of(events)

    # Compatibility shims so code that passes the facade itself into
    # Event/Store constructors keeps working: Event.succeed touches
    # sim._seq/_heap directly.  They resolve to the driver partition.
    @property
    def sanitizer(self):
        """Driver partition's sanitizer (None when sanitize is off); use
        :func:`repro.simsan.report_for` to aggregate all partitions."""
        return self.driver_sim.sanitizer

    @property
    def _heap(self) -> list:
        return self.driver_sim._heap

    @property
    def _seq(self) -> int:
        return self.driver_sim._seq

    @_seq.setter
    def _seq(self, v: int) -> None:
        self.driver_sim._seq = v

    @property
    def coalescing(self) -> bool:
        return self.driver_sim.coalescing

    @coalescing.setter
    def coalescing(self, on: bool) -> None:
        for sim in self.sims:
            sim.coalescing = on

    def _schedule_event(self, ev: Event, delay: float = 0.0) -> None:
        self.driver_sim._schedule_event(ev, delay)

    def _call_soon(self, fn: Callable[[], None], delay: float = 0.0) -> None:
        self.driver_sim._call_soon(fn, delay)

    def _call_soon1(self, fn: Callable[[Any], None], arg: Any, delay: float = 0.0) -> None:
        self.driver_sim._call_soon1(fn, arg, delay)

    def _call_at1(self, fn: Callable[[Any], None], arg: Any, t: float) -> None:
        self.driver_sim._call_at1(fn, arg, t)

    def call_at(self, t: float, fn: Callable[[], None], rank: int = 0) -> None:
        """Schedule ``fn()`` at absolute time ``t`` in partition ``rank``.

        The cross-partition control primitive for drivers that must act
        on remote-partition state at an exact time (e.g. the recovery
        storm's rack killer failing nodes in their own partitions).
        """
        sim = self.sims[rank]
        if t < sim.now:
            raise SimulationError(
                f"call_at({t}) is in partition {rank}'s past (now={sim.now})"
            )
        sim._call_at1(_invoke, fn, t)

    # ------------------------------------------------------- observation
    @property
    def events_dispatched(self) -> int:
        return sum(sim.events_dispatched for sim in self.sims)

    @property
    def heap_high_water(self) -> int:
        return max(sim.heap_high_water for sim in self.sims)

    @property
    def wall_seconds(self) -> float:
        return self._wall_s

    def peek(self) -> float:
        return self._next_time()

    def profile(self) -> dict:
        wall_ns = self._wall_s * 1e9
        now = self.now
        return {
            "events_dispatched": self.events_dispatched,
            "heap_high_water": self.heap_high_water,
            "sim_ns": now,
            "wall_s": self._wall_s,
            "wall_ns_per_sim_ns": wall_ns / now if now > 0 else 0.0,
            "events_per_wall_s": (
                self.events_dispatched / self._wall_s if self._wall_s > 0 else 0.0
            ),
            "partitions": self.k,
            "rounds": self.rounds,
            "boundary_messages": self.boundary_messages,
            "mode": self.mode if self._workers is None else "process",
        }

    # ------------------------------------------------------ coordination
    def _next_time(self) -> float:
        if self._workers is None:
            t = min(sim.peek() for sim in self.sims)
        else:
            t = self.driver_sim.peek()
            for w in self._workers:
                if w.peek < t:
                    t = w.peek
        for pend in self._pending:
            if pend and pend[0][_FIRE_T] < t:
                t = pend[0][_FIRE_T]
        return t

    def _take_due(self, rank: int, horizon: float, inclusive: bool) -> List[tuple]:
        """Pop rank's boundary messages firing inside this window."""
        pend = self._pending[rank]
        if not pend:
            return ()
        i, n = 0, len(pend)
        while i < n:
            t = pend[i][_FIRE_T]
            if t > horizon or (t == horizon and not inclusive):
                break
            i += 1
        if not i:
            return ()
        due = pend[:i]
        del pend[:i]
        return due

    def _inject(self, sim: Simulator, rank: int, msgs: List[tuple]) -> None:
        # replay the exact push the serial switch makes: out.send(pkt)
        # at the absolute fire time, in (fire_t, src_rank, src_seq) order
        ports = self._net.switches[rank]._out_ports
        san = sim.sanitizer
        for m in msgs:
            if san is not None and m[_FIRE_T] < sim.now - 1e-9:
                san.record_stale_injection(m[_FIRE_T], m[_DST], sim.now)
            sim._call_at1(ports[m[_DST]].send, m[_PKT], m[_FIRE_T])

    def _window_inline(self, rank: int, horizon: float, inclusive: bool) -> None:
        sim = self.sims[rank]
        self._ids[rank].install()
        due = self._take_due(rank, horizon, inclusive)
        if due:
            self._inject(sim, rank, due)
        sim.run_window(horizon, inclusive)

    def _route(self, msgs: List[tuple]) -> None:
        if not msgs:
            return
        self.boundary_messages += len(msgs)
        for m in msgs:
            self._pending[m[_DST_RANK]].append(m)
        for pend in self._pending:
            pend.sort()

    def _round(self, clip: Optional[float]) -> bool:
        """Run one conservative window everywhere; False when drained
        (or when the next event lies beyond ``clip``)."""
        t_min = self._next_time()
        if t_min == float("inf"):
            return False
        if clip is not None and t_min > clip:
            return False
        horizon = t_min + self.lookahead_ns
        inclusive = False
        if clip is not None and horizon > clip:
            # final window: run(until) includes events at exactly `until`
            # only if nothing else bounds them — match serial run(), which
            # stops *before* events later than `until` but processes
            # everything at or before it
            horizon, inclusive = clip, True
        self.rounds += 1
        if self._workers is None and self.mode == "process":
            self._start_workers()
        try:
            if self._workers is not None:
                for w in self._workers:
                    w.send_window(horizon, inclusive,
                                  self._take_due(w.rank, horizon, inclusive))
                self._window_inline(0, horizon, inclusive)
                msgs = self._runtimes[0].take()
                for w in self._workers:
                    msgs.extend(w.collect())
            else:
                msgs = []
                for rank in range(self.k):
                    self._window_inline(rank, horizon, inclusive)
                for rt in self._runtimes:
                    msgs.extend(rt.take())
            if self.audit is not None:
                self.audit.record(self.rounds, msgs)
            self._route(msgs)
        finally:
            self._driver_ids.install()
        return True

    # ------------------------------------------------------------ running
    def run(self, until: Optional[float] = None) -> float:
        wall0 = time.perf_counter()  # simlint: disable=SIM101 -- coordinator self-profile
        try:
            while self._round(until):
                pass
            if until is not None:
                # mirror the serial run(until) clock contract exactly —
                # one GLOBAL decision, like the single serial heap: any
                # event left beyond the bound anywhere -> now = until
                # (even if that steps a partition's clock back); fully
                # drained -> now = max(now, until)
                drained = self._next_time() == float("inf")
                self._sync_clocks(until, drained)
            else:
                # drained to empty: the serial clock stops at the last
                # event anywhere — pull the idle partitions forward so
                # driver code never schedules at a stale local clock
                self._sync_clocks(self.now, drained=True)
        finally:
            self._wall_s += time.perf_counter() - wall0  # simlint: disable=SIM101 -- coordinator self-profile
        return self.now

    def _sync_clocks(self, t: float, drained: bool = False) -> None:
        """Set every partition clock to ``t`` — the serial kernel's
        stopping point — before handing control back to driver code.

        Without this, driver-side scheduling between runs would land on
        idle partitions at their *stale local* clocks (possibly far in
        the global past), and their boundary traffic would then inject
        into partitions whose clocks are already ahead.  Rewinding an
        overshot partition is safe after a completed round: every heap
        item and pending boundary message lies at or beyond the final
        window's horizon, which bounds ``t`` from above.
        """
        for rank, sim in enumerate(self.sims):
            if self._workers is not None and rank > 0:
                continue  # worker-side clocks sync over the pipe
            sim.now = max(sim.now, t) if drained else t
        if self._workers is not None:
            for w in self._workers:
                w.sync_now(t, drained)

    def run_until_event(self, ev: Any, limit: Optional[float] = None) -> Any:
        """Run whole windows until ``ev`` triggers (completed windows may
        overshoot the trigger time by up to one lookahead; the clocks are
        rewound to the exact trigger time before returning, so driver
        code observes the serial ``now``)."""
        wall0 = time.perf_counter()  # simlint: disable=SIM101 -- coordinator self-profile
        # succeed()/fail() dispatch an event's callbacks at the
        # triggering partition's current time — exactly where the serial
        # kernel's clock would stop.  Capture it so the window overshoot
        # never leaks into driver-visible time.
        fired: List[float] = []
        _mark = fired.append
        targets = ev.events if isinstance(ev, MultiEvent) else (ev,)
        for e in targets:
            if not e.triggered:
                e.add_callback(lambda _e: _mark(_e.sim.now))
        try:
            while True:
                if isinstance(ev, MultiEvent):
                    exc = ev.exception  # fail fast, like AllOf
                    if exc is not None:
                        raise exc
                if ev.triggered:
                    break
                t_min = self._next_time()
                if t_min == float("inf"):
                    raise SimulationError(
                        f"deadlock: event {ev.name!r} can never fire (heap empty)"
                    )
                if limit is not None and t_min > limit:
                    raise SimulationError(
                        f"event {ev.name!r} did not fire by t={limit} ns"
                    )
                self._round(None)
        finally:
            self._wall_s += time.perf_counter() - wall0  # simlint: disable=SIM101 -- coordinator self-profile
        if fired:
            # a MultiEvent completes when its last child does, so the
            # serial stopping point is the latest capture
            self._sync_clocks(max(fired))
        if ev.exception is not None:
            raise ev.exception
        return ev.value

    def run_until_complete(self, proc: Process, until: Optional[float] = None) -> Any:
        proc._observed = True
        return self.run_until_event(proc, limit=until)

    # ------------------------------------------------------ process mode
    def start_workers(self) -> None:
        """Fork the worker pool *now* instead of lazily on the first
        window.  Call after the testbed is fully built and before any
        timed region: fork + import cost lands outside the measurement
        (the perf harness warms pools this way).  No-op in inline mode
        or when the pool is already up."""
        if self.mode == "process" and self._workers is None:
            self._start_workers()

    def _start_workers(self) -> None:
        """Fork partitions 1..k-1 (copy-on-write: call after the full
        testbed is built).  The driver partition stays in the parent."""
        import multiprocessing as mp

        if self._workers is not None:
            return
        if self._net is None:
            raise SimulationError("process mode needs an attached network")
        ctx = mp.get_context("fork")
        workers = []
        for rank in range(1, self.k):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(self, rank, child_conn), daemon=True
            )
            proc.start()
            child_conn.close()
            tag, peek = parent_conn.recv()
            if tag != "ready":  # pragma: no cover - defensive
                raise SimulationError(f"partition {rank} worker failed to start")
            workers.append(_Worker(rank, proc, parent_conn, peek))
        self._workers = workers

    def finish(self) -> None:
        """Join process-mode workers, folding their final clocks, event
        counts, and telemetry back into the parent's partition objects.
        No-op in inline mode; the facade stays queryable afterwards."""
        if self._workers is None:
            return
        for w in self._workers:
            w.conn.send(("finish",))
        for w in self._workers:
            reply = w.conn.recv()
            if reply[0] != "fin":
                raise SimulationError(
                    f"partition {w.rank} worker failed:\n{reply[1]}"
                )
            _tag, now, ndisp, hw, wall_s, tel = reply
            sim = self.sims[w.rank]
            sim.now = max(sim.now, now)
            sim.events_dispatched = ndisp
            sim._heap_high_water = hw
            sim._wall_s = wall_s
            sim.telemetry = tel
            self.telemetry._parts[w.rank] = tel
            w.conn.close()
            w.proc.join()
        self._workers = None
        self.mode = "inline"  # any further windows run in-process


class _Worker:
    """Parent-side handle for one forked partition."""

    __slots__ = ("rank", "proc", "conn", "peek")

    def __init__(self, rank: int, proc: Any, conn: Any, peek: float):
        self.rank = rank
        self.proc = proc
        self.conn = conn
        self.peek = peek

    def send_window(self, horizon: float, inclusive: bool, msgs: List[tuple]) -> None:
        self.conn.send(("win", horizon, inclusive, list(msgs)))

    def collect(self) -> List[tuple]:
        reply = self.conn.recv()
        if reply[0] != "out":
            raise SimulationError(f"partition {self.rank} worker failed:\n{reply[1]}")
        _tag, outbox, self.peek = reply
        return outbox

    def sync_now(self, until: float, drained: bool) -> None:
        self.conn.send(("sync_now", until, drained))
        reply = self.conn.recv()
        if reply[0] != "ok":
            raise SimulationError(f"partition {self.rank} worker failed:\n{reply[1]}")


def _worker_main(psim: ParallelSimulator, rank: int, conn: Any) -> None:
    """Forked worker loop: one partition, commanded window by window."""
    sim = psim.sims[rank]
    rt = psim._runtimes[rank]
    ids = psim._ids[rank]
    net = psim._net
    try:
        conn.send(("ready", sim.peek()))
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "win":
                _op, horizon, inclusive, msgs = cmd
                ids.install()
                if msgs:
                    psim._inject(sim, rank, msgs)
                sim.run_window(horizon, inclusive)
                conn.send(("out", rt.take(), sim.peek()))
            elif op == "sync_now":
                _op, until, drained = cmd
                sim.now = max(sim.now, until) if drained else until
                conn.send(("ok",))
            elif op == "finish":
                conn.send((
                    "fin", sim.now, sim.events_dispatched,
                    sim._heap_high_water, sim._wall_s, sim.telemetry,
                ))
                conn.close()
                return
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown worker command {op!r}")
    except BaseException:
        import traceback

        try:
            conn.send(("err", traceback.format_exc()))
        except OSError:  # parent already gone
            pass
    finally:
        # keep `net` alive in the child until the loop exits (forked
        # state is shared only by copy-on-write, nothing to clean up)
        del net
