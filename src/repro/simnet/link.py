"""Links and ports: the serializing, store-and-forward wire model.

Each :class:`Port` owns a bounded egress queue drained by a server
process that charges serialization time (``bytes * 8 / bandwidth``) per
packet, then delivers the packet to the attached peer after the link
propagation latency.  The bounded queue is what creates *egress
back-pressure*: a PsPIN handler that forwards two packets per incoming
packet (sPIN-PBT) ends up blocked on the egress port, which is precisely
the mechanism behind the paper's observed IPC collapse (Table I,
IPC 0.06 for PBT payload handlers).
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from .engine import Event, Simulator
from .packet import Packet
from .resources import Store

__all__ = ["Port", "Endpoint", "gbps_to_ns_per_byte"]


def gbps_to_ns_per_byte(gbps: float) -> float:
    """Serialization cost in ns/byte for a line rate in Gbit/s."""
    return 8.0 / gbps


class Endpoint(Protocol):
    """Anything that can terminate a link."""

    name: str

    def receive(self, pkt: Packet) -> None: ...


class Port:
    """A full-duplex network port with a serializing egress queue."""

    def __init__(
        self,
        sim: Simulator,
        owner_name: str,
        bandwidth_gbps: float,
        queue_packets: int = 64,
    ):
        self.sim = sim
        self.owner_name = owner_name
        self.bandwidth_gbps = bandwidth_gbps
        self._ns_per_byte = gbps_to_ns_per_byte(bandwidth_gbps)
        self.queue: Store = Store(sim, capacity=queue_packets, name=f"egress({owner_name})")
        self.peer: Optional[Endpoint] = None
        self.latency_ns: float = 0.0
        # statistics
        self.tx_packets = 0
        self.tx_bytes = 0
        self.busy_ns = 0.0
        self._server: Optional[object] = None

    # -- wiring ----------------------------------------------------------
    def connect(self, peer: Endpoint, latency_ns: float) -> None:
        if self.peer is not None:
            raise RuntimeError(f"port of {self.owner_name} already connected")
        self.peer = peer
        self.latency_ns = latency_ns
        self._server = self.sim.process(self._serve(), name=f"tx({self.owner_name})")

    # -- sending ---------------------------------------------------------
    def send(self, pkt: Packet) -> Event:
        """Enqueue a packet for transmission.

        Returns an event that fires when the packet has been *fully
        serialized onto the wire* (not when delivered).  Yielding on it
        models a sender that blocks until egress accepts its data.
        """
        done = self.sim.event(name=f"tx_done(pkt={pkt.pkt_id})")
        pkt.enqueue_t = self.sim.now
        # Store.put queues the item (or hands it straight to a waiting
        # server); the server drains in order, so `done` fires once the
        # packet has been serialized.
        self.queue.put((pkt, done))
        tel = self.sim.telemetry
        if tel.enabled:
            tel.metrics.gauge(f"link.{self.owner_name}.queue_depth").set(
                self.sim.now, len(self.queue)
            )
        return done

    def try_send(self, pkt: Packet) -> Optional[Event]:
        """Non-blocking enqueue; None when the egress queue is full."""
        done = self.sim.event(name=f"tx_done(pkt={pkt.pkt_id})")
        pkt.enqueue_t = self.sim.now
        if self.queue.try_put((pkt, done)):
            return done
        return None

    def serialization_ns(self, nbytes: int) -> float:
        return nbytes * self._ns_per_byte

    # -- server ------------------------------------------------------------
    def _serve(self):
        sim = self.sim
        tel = sim.telemetry
        while True:
            pkt, done = yield self.queue.get()
            ser = self.serialization_ns(pkt.size)
            t0 = sim.now
            yield sim.timeout(ser)
            self.tx_packets += 1
            self.tx_bytes += pkt.size
            self.busy_ns += ser
            if tel.enabled:
                tel.span(
                    f"{pkt.op} m{pkt.msg_id} {pkt.seq + 1}/{pkt.nseq}",
                    pid="net",
                    tid=self.owner_name,
                    t0=t0,
                    t1=sim.now,
                    cat="net",
                    trace=pkt.trace,
                    args={"bytes": pkt.size, "queued_ns": t0 - pkt.enqueue_t},
                )
                m = tel.metrics
                m.counter(f"link.{self.owner_name}.busy_ns").inc(ser)
                m.counter(f"link.{self.owner_name}.tx_bytes").inc(pkt.size)
                m.counter(f"link.{self.owner_name}.tx_packets").inc()
                m.gauge(f"link.{self.owner_name}.queue_depth").set(
                    sim.now, len(self.queue)
                )
            done.succeed(pkt)
            peer = self.peer
            assert peer is not None
            faults = sim.faults
            if faults is not None:
                # Wire faults strike after serialization (the sender paid
                # the egress cost either way) and before propagation.
                verdict = faults.egress_verdict(self.owner_name, pkt)
                if verdict == "drop":
                    continue
                if verdict == "corrupt":
                    pkt.corrupted = True
            # Propagation: deliver after link latency without blocking
            # the serializer (pipelined wire).
            sim._call_soon(_deliver(peer, pkt), delay=self.latency_ns)

    def utilisation(self) -> float:
        return self.busy_ns / self.sim.now if self.sim.now > 0 else 0.0


def _deliver(peer: Endpoint, pkt: Packet) -> Callable[[], None]:
    def cb() -> None:
        peer.receive(pkt)

    return cb
